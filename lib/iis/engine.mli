(** The iterated immediate-snapshot (IIS) model and its canonical
    layering: one layer per {e ordered partition} of the processes.

    Round [r] uses a fresh one-shot memory: every process writes (value
    fixed at round start) and snapshots.  The environment schedules the
    round as an ordered partition [B1, ..., Bm] of [{1..n}]: a process in
    block [Bk] sees exactly the writes of [B1 U ... U Bk].  Since each
    memory is one-shot and fully resolved within its round, the global
    state is just the vector of local states — the environment carries
    nothing across rounds, which is what makes this the simplest substrate
    of the family.

    The number of layers per state is the Fubini (ordered-Bell) number:
    3, 13, 75 for n = 2, 3, 4.

    The model is wait-free-flavoured (every process moves every round);
    the paper's connectivity machinery applies verbatim: each layer is
    similarity connected (adjacent-block merges and splits differ in the
    view of a single process), hence valence connected, hence consensus is
    unsolvable — experiment E13. *)

open Layered_core

(** An ordered partition: pairwise-disjoint non-empty blocks covering
    [{1..n}], earlier blocks snapshot-before later ones. *)
type partition = Pid.t list list

(** All ordered partitions of [{1..n}] (Fubini-number many). *)
val partitions : n:int -> partition list

(** Number of ordered partitions (for sanity checks and sizing). *)
val fubini : int -> int

module Make (P : Protocol.S) : sig
  type state = private {
    round : int;
    locals : P.local array;
    interned : Intern.slot;  (** memo cell for the state's {!Intern.meta} *)
  }

  val n_of : state -> int
  val initial : inputs:Value.t array -> state
  val initial_states : n:int -> values:Value.t list -> state list

  (** Execute one IIS round under the given ordered partition (validated:
      blocks non-empty, disjoint, covering). *)
  val apply : state -> partition -> state

  (** The layering: de-duplicated [apply x] over all ordered
      partitions. *)
  val layer : state -> state list

  val key : state -> string

  (** Dense intern id of the canonical encoding (O(1) equality). *)
  val ident : state -> int

  val equal : state -> state -> bool
  val decisions : state -> Value.t option array
  val decided_vset : state -> Vset.t
  val terminal : state -> bool

  (** [agree_modulo x y j]: rounds equal and locals of every [i <> j]
      equal (the environment is empty in this model). *)
  val agree_modulo : state -> state -> Pid.t -> bool

  val similar : state -> state -> bool

  (** Similarity graph over [states]; see {!Simgraph.build}. *)
  val similarity_graph :
    ?builder:Simgraph.builder -> state list -> state array * Graph.t

  (** Packed identity: the part-id vector hash-consed in the statevec
      arena.  Injective like {!ident}. *)
  val vec_ident : state -> int

  (** {!layer} answered from a precomputed successor table keyed on
      {!vec_ident} (small instances only; falls back to computing). *)
  val layer_tab : state -> state list

  (** Orbit data under role-respecting process renamings: sound to
      quotient by whenever the protocol's local keys are pid-free
      (header = round, part i = local key).  See {!Layered_core.Canon}. *)
  val canon : roles:int array -> state -> Intern.canon

  val explore_spec : state Explore.spec
  val valence_spec : succ:(state -> state list) -> state Valence.spec
  val pp : Format.formatter -> state -> unit
end

(** Render an ordered partition, e.g. ["{1}{2,3}"]. *)
val pp_partition : Format.formatter -> partition -> unit
