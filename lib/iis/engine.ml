open Layered_core

type partition = Pid.t list list

let nonempty_subsets l =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = go rest in
        s @ List.map (fun sub -> x :: sub) s
  in
  List.filter (fun s -> s <> []) (go l)

let partitions ~n =
  let rec go remaining =
    match remaining with
    | [] -> [ [] ]
    | _ :: _ ->
        List.concat_map
          (fun block ->
            let rest = List.filter (fun i -> not (List.mem i block)) remaining in
            List.map (fun tail -> block :: tail) (go rest))
          (nonempty_subsets remaining)
  in
  go (Pid.all n)

let rec binomial n k =
  if k = 0 || k = n then 1
  else if k < 0 || k > n then 0
  else binomial (n - 1) (k - 1) + binomial (n - 1) k

let fubini n =
  let memo = Array.make (n + 1) 0 in
  memo.(0) <- 1;
  for m = 1 to n do
    let total = ref 0 in
    for k = 1 to m do
      total := !total + (binomial m k * memo.(m - k))
    done;
    memo.(m) <- !total
  done;
  memo.(n)

module Make (P : Protocol.S) = struct
  type state = { round : int; locals : P.local array; interned : Intern.slot }

  let n_of x = Array.length x.locals

  let initial ~inputs =
    let n = Array.length inputs in
    {
      round = 0;
      locals = Array.init n (fun i -> P.init ~n ~pid:(i + 1) ~input:inputs.(i));
      interned = Intern.fresh_slot ();
    }

  let initial_states ~n ~values =
    List.map (fun inputs -> initial ~inputs) (Inputs.vectors ~n ~values)

  let validate_partition n blocks =
    let members = List.concat blocks in
    if List.exists (fun b -> b = []) blocks then invalid_arg "Iis: empty block";
    if List.sort compare members <> Pid.all n then
      invalid_arg "Iis: blocks must partition {1..n}"

  let apply x blocks =
    let n = n_of x in
    validate_partition n blocks;
    let round = x.round + 1 in
    let write i = P.write ~n ~pid:i x.locals.(i - 1) in
    let writes = Array.init n (fun idx -> write (idx + 1)) in
    (* Prefix-union views: a process in block k sees blocks 1..k. *)
    let locals = Array.copy x.locals in
    let rec run_blocks seen = function
      | [] -> ()
      | block :: rest ->
          let seen = List.sort compare (seen @ block) in
          let snapshot = List.map (fun i -> (i, writes.(i - 1))) seen in
          List.iter
            (fun i ->
              let before = P.decision locals.(i - 1) in
              locals.(i - 1) <- P.step ~n ~pid:i x.locals.(i - 1) ~snapshot;
              match (before, P.decision locals.(i - 1)) with
              | Some v, Some w when not (Value.equal v w) ->
                  invalid_arg "Iis: protocol violated write-once decision"
              | Some _, None -> invalid_arg "Iis: protocol erased a decision"
              | (Some _ | None), _ -> ())
            block;
          run_blocks seen rest
    in
    run_blocks [] blocks;
    { round; locals; interned = Intern.fresh_slot () }

  let raw_key x =
    let buf = Buffer.create 64 in
    Buffer.add_string buf (string_of_int x.round);
    Array.iter
      (fun l ->
        Buffer.add_char buf '|';
        Buffer.add_string buf (P.key l))
      x.locals;
    Buffer.contents buf

  (* Interning signature: header = round, part i = process i's local key —
     the environment carries nothing across rounds in this model, so that
     is exactly the data [agree_modulo] compares outside the mask. *)
  let raw_parts x =
    let n = n_of x in
    Array.init (n + 1) (fun i ->
        if i = 0 then string_of_int x.round else P.key x.locals.(i - 1))

  let intern_table = Intern.create ~key:raw_key ~parts:raw_parts ()
  let meta x = Intern.memo intern_table x.interned x
  let key x = (meta x).Intern.key
  let ident x = (meta x).Intern.id
  let equal x y = ident x = ident y

  let layer =
    let table = Hashtbl.create 4 in
    fun x ->
      let n = n_of x in
      let parts =
        match Hashtbl.find_opt table n with
        | Some ps -> ps
        | None ->
            let ps = partitions ~n in
            Hashtbl.add table n ps;
            ps
      in
      let seen = Hashtbl.create 64 in
      List.filter_map
        (fun p ->
          let y = apply x p in
          let k = ident y in
          if Hashtbl.mem seen k then None
          else begin
            Hashtbl.add seen k ();
            Some y
          end)
        parts

  let decisions x = Array.map P.decision x.locals

  let decided_vset x =
    Array.fold_left
      (fun acc l -> match P.decision l with Some v -> Vset.add v acc | None -> acc)
      Vset.empty x.locals

  let terminal x = Array.for_all (fun l -> P.decision l <> None) x.locals

  (* Masked part-id equality: rounds (header part) and locals of every
     [i <> j], as before, but O(n) int compares on interned ids. *)
  let agree_modulo x y j =
    Simgraph.masked_equal (meta x).Intern.parts (meta y).Intern.parts j

  let similar x y = List.exists (agree_modulo x y) (Pid.all (n_of x))

  (* Definition 3.1's witness condition is vacuous here: no process ever
     fails in the IIS model. *)
  let sim_adapter =
    { Simgraph.parts = (fun x -> (meta x).Intern.parts); witness = (fun _ _ _ -> true) }

  let sim_inc = Simgraph.Incremental.create ~rel:similar sim_adapter

  let similarity_graph ?builder states =
    Simgraph.Incremental.build ?builder sim_inc states

  (* Packed hot-path identity + precomputed successor table (small n). *)
  let vec_table = Statevec.create ()
  let vec_ident x = Statevec.id vec_table (meta x).Intern.parts
  let succ_cache : state Statevec.Memo.cache = Statevec.Memo.create ()

  let layer_tab x =
    Statevec.Memo.find succ_cache ~ctx:0 ~id:(vec_ident x) ~compute:(fun () -> layer x)

  (* Symmetry: sound whenever the protocol's local keys are pid-free
     (header = round, part i = local key). *)
  let canon ~roles x = Intern.canon_meta intern_table ~roles x

  let explore_spec = { Explore.succ = layer; key }
  let valence_spec ~succ = { Valence.succ; key; decided = decided_vset; terminal }

  let pp ppf x =
    Format.fprintf ppf "@[<v>round %d@," x.round;
    Array.iteri
      (fun idx l ->
        Format.fprintf ppf "  p%d: %a%s@," (idx + 1) P.pp l
          (match P.decision l with
          | Some v -> Printf.sprintf "  [decided %s]" (Value.to_string v)
          | None -> ""))
      x.locals;
    Format.fprintf ppf "@]"
end

let pp_partition ppf blocks =
  List.iter
    (fun b ->
      Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int b)))
    blocks
