module Stats = Layered_runtime.Stats

type entry = { exit_code : int; output : string }
type t = { tbl : (string, entry) Hashtbl.t; max_entries : int }

let create ?(max_entries = 256) () = { tbl = Hashtbl.create 64; max_entries }

let find t key =
  let r = Hashtbl.find_opt t.tbl key in
  Stats.record_result_cache ~hit:(r <> None);
  r

let add t key entry =
  if not (Hashtbl.mem t.tbl key) then begin
    if Hashtbl.length t.tbl >= t.max_entries then Hashtbl.reset t.tbl;
    Hashtbl.add t.tbl key entry
  end

let entries t = Hashtbl.length t.tbl

(* Sorted, so spilled bytes do not depend on hash-bucket order. *)
let export t =
  Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* [add], not a raw [Hashtbl.add]: imports respect [max_entries] and
   stay silent in the stats counters — a reload is not a probe. *)
let import t entries = List.iter (fun (k, e) -> add t k e) entries
