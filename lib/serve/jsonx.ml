type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let max_depth = 32

(* ------------------------------------------------------------------ *)
(* Printer                                                            *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec add_json b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* %.17g round-trips every double; trim the common integral case *)
        let s = Printf.sprintf "%.17g" f in
        Buffer.add_string b s
      else Buffer.add_string b "null"
  | String s -> escape_into b s
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          add_json b x)
        l;
      Buffer.add_char b ']'
  | Obj members ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_into b k;
          Buffer.add_char b ':';
          add_json b v)
        members;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  add_json b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Bad (Printf.sprintf "%s at byte %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | _ -> error c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> error c "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.src then
                  error c "truncated \\u escape";
                (* int_of_string would also accept OCaml literal syntax
                   (underscores), so check each digit by hand *)
                let hex_digit ch =
                  match ch with
                  | '0' .. '9' -> Char.code ch - Char.code '0'
                  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
                  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
                  | _ -> error c "bad \\u escape"
                in
                let code =
                  (hex_digit c.src.[c.pos] lsl 12)
                  lor (hex_digit c.src.[c.pos + 1] lsl 8)
                  lor (hex_digit c.src.[c.pos + 2] lsl 4)
                  lor (hex_digit c.src.[c.pos + 3])
                in
                c.pos <- c.pos + 4;
                (* UTF-8 encode the BMP code point; surrogate pairs in
                   input are passed through as two 3-byte sequences,
                   which round-trips our own printer's output (it never
                   emits \u above 0x1f). *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                end
            | _ -> error c "unknown escape");
            go ())
    | Some ch when Char.code ch < 0x20 -> error c "raw control character in string"
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> advance c; true | _ -> false do
    ()
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f when Float.is_finite f -> Float f
      | _ ->
          c.pos <- start;
          error c "malformed number")

let rec parse_value c ~depth =
  if depth > max_depth then error c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c ~depth:(depth + 1) in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List (List.rev (v :: acc))
          | _ -> error c "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else
        let member () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c ~depth:(depth + 1) in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members (kv :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev (kv :: acc))
          | _ -> error c "expected ',' or '}'"
        in
        members []
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected character %C" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c ~depth:0 with
  | v ->
      skip_ws c;
      if c.pos < String.length s then Error (Printf.sprintf "trailing garbage at byte %d" c.pos)
      else Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)

let member k = function
  | Obj members -> List.assoc_opt k members
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
