type retry = {
  connect_deadline_s : float;
  backoff_initial_s : float;
  backoff_max_s : float;
  jitter_seed : int;
  max_replays : int;
  retry_overloaded : bool;
}

let default_retry =
  {
    connect_deadline_s = 5.;
    backoff_initial_s = 0.02;
    backoff_max_s = 0.5;
    jitter_seed = 0;
    max_replays = 4;
    retry_overloaded = false;
  }

type error =
  | Connect_timeout of {
      path : string;
      attempts : int;
      elapsed_s : float;
      last : string;
    }
  | Io of string

let error_message = function
  | Connect_timeout { path; attempts; elapsed_s; last } ->
      Printf.sprintf
        "cannot connect to %s: %s (gave up after %d attempt(s) over %.1f s)"
        path last attempts elapsed_s
  | Io msg -> msg

type t = {
  path : string;
  retry : retry;
  mutable fd : Unix.file_descr option;
  mutable session : Session.t;
  mutable queued : string list;
  mutable reconnects : int;
  mutable replays : int;
}

let reconnects t = t.reconnects
let replays t = t.replays

(* Same shape as the supervisor's jitter: deterministic, cheap, spread
   enough to desynchronise a herd of retrying clients. *)
let jitter ~seed ~attempt =
  let z = (seed * 0x9e3779b9) + attempt + 1 in
  let z = z lxor (z lsr 13) in
  let z = (z * 0x2545f491) land 0x3fffffff in
  float_of_int (z land 0xff) /. 255.

let backoff_s retry ~attempt =
  let nominal =
    Float.min retry.backoff_max_s
      (retry.backoff_initial_s *. (2. ** float_of_int attempt))
  in
  nominal *. (0.5 +. (0.5 *. jitter ~seed:retry.jitter_seed ~attempt))

(* One socket+connect attempt loop under a total deadline.  Retries
   cover both the startup race against a daemon still binding its
   socket and the respawn window of a supervised daemon mid-restart
   (ENOENT while the new incarnation has not re-bound yet). *)
let connect_fd ~retry ~deadline_s path =
  let t0 = Unix.gettimeofday () in
  let rec go attempt last =
    let elapsed = Unix.gettimeofday () -. t0 in
    if attempt > 0 && elapsed >= deadline_s then
      Error (Connect_timeout { path; attempts = attempt; elapsed_s = elapsed; last })
    else
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          let remaining = deadline_s -. (Unix.gettimeofday () -. t0) in
          if remaining <= 0. then
            Error
              (Connect_timeout
                 {
                   path;
                   attempts = attempt + 1;
                   elapsed_s = Unix.gettimeofday () -. t0;
                   last = Unix.error_message e;
                 })
          else begin
            Unix.sleepf (Float.min remaining (backoff_s retry ~attempt));
            go (attempt + 1) (Unix.error_message e)
          end
  in
  go 0 "never tried"

let connect_err ?(retry = default_retry) path =
  match connect_fd ~retry ~deadline_s:retry.connect_deadline_s path with
  | Ok fd ->
      Ok
        {
          path;
          retry;
          fd = Some fd;
          (* responses come from our own trusted server and carry whole
             report outputs, so they are not bound by the request-line
             cap *)
          session = Session.create ~max_line_bytes:max_int ();
          queued = [];
          reconnects = 0;
          replays = 0;
        }
  | Error e -> Error e

let connect ?retry path =
  Result.map_error error_message (connect_err ?retry path)

let close t =
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None

(* Dropping the connection also drops the parse state: a torn frame's
   residue must not prefix the replayed response. *)
let disconnect t =
  close t;
  t.session <- Session.create ~max_line_bytes:max_int ();
  t.queued <- []

let reconnect t ~deadline_s =
  disconnect t;
  match connect_fd ~retry:t.retry ~deadline_s t.path with
  | Ok fd ->
      t.fd <- Some fd;
      t.reconnects <- t.reconnects + 1;
      Ok ()
  | Error e -> Error e

let live_fd t =
  match t.fd with
  | Some fd -> Ok fd
  | None -> Error (Io "connection closed (call reconnect or request)")

(* Connection-level failures are retryable (the daemon died or the
   frame tore; a replay may succeed against its successor); everything
   else is final for the request. *)
type io_failure = Retryable of string | Fatal of string

let send_raw t line =
  match live_fd t with
  | Error e -> Error (Fatal (error_message e))
  | Ok fd -> (
      let data = line ^ "\n" in
      let len = String.length data in
      let rec go off =
        if off < len then
          match Unix.write_substring fd data off (len - off) with
          | n -> go (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              (try ignore (Unix.select [] [ fd ] [] 1.0)
               with Unix.Unix_error (Unix.EINTR, _, _) -> ());
              go off
      in
      match go 0 with
      | () -> Ok ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET) as e, _, _) ->
          Error (Retryable ("write failed: " ^ Unix.error_message e))
      | exception Unix.Unix_error (e, _, _) ->
          Error (Fatal ("write failed: " ^ Unix.error_message e)))

let send t line = Result.map_error (function Retryable m | Fatal m -> m) (send_raw t line)

let read_one t ~deadline =
  match live_fd t with
  | Error e -> Error (Fatal (error_message e))
  | Ok fd -> (
      let buf = Bytes.create 4096 in
      let rec go () =
        match t.queued with
        | line :: rest ->
            t.queued <- rest;
            Ok line
        | [] -> (
            let remaining = deadline -. Unix.gettimeofday () in
            if remaining <= 0. then
              Error (Fatal "timed out waiting for a response line")
            else
              match Unix.select [ fd ] [] [] remaining with
              (* a signal mid-wait is not a timeout: retry with the
                 deadline recomputed *)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
              | [], _, _ -> Error (Fatal "timed out waiting for a response line")
              | _ -> (
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 ->
                      (* mid-read EOF: the daemon died with our response
                         in flight (possibly half-written) *)
                      Error (Retryable "connection closed by server")
                  | got ->
                      let lines, overflow =
                        Session.feed t.session (Bytes.sub_string buf 0 got)
                      in
                      if overflow then Error (Fatal "oversized response line")
                      else begin
                        t.queued <- t.queued @ lines;
                        go ()
                      end
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
                  | exception
                      Unix.Unix_error
                        ((Unix.ECONNRESET | Unix.EPIPE) as e, _, _) ->
                      Error (Retryable ("read failed: " ^ Unix.error_message e))
                  | exception Unix.Unix_error (e, _, _) ->
                      Error (Fatal ("read failed: " ^ Unix.error_message e))))
      in
      go ())

let read_lines t ~n ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go acc need =
    if need = 0 then Ok (List.rev acc)
    else
      match read_one t ~deadline with
      | Ok line -> go (line :: acc) (need - 1)
      | Error (Retryable m | Fatal m) -> Error m
  in
  go [] n

(* One request line, one response line, resiliently: a retryable
   failure anywhere in the exchange reconnects (jittered backoff under
   what is left of the deadline) and replays the {e same} encoded line.
   Replays are idempotent by construction — the request id rides along
   unchanged, and deterministic dispatch plus the result cache answer a
   replay with the same bytes the lost response carried. *)
let request_raw t line ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let give_up msg = Error (Io msg) in
  let rec attempt ~replays_left =
    let exchange () =
      match send_raw t line with
      | Error f -> Error f
      | Ok () -> read_one t ~deadline
    in
    let retry msg =
      if replays_left = 0 then
        give_up (Printf.sprintf "%s (replay budget exhausted)" msg)
      else begin
        t.replays <- t.replays + 1;
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then
          give_up (Printf.sprintf "%s (deadline passed before replay)" msg)
        else
          match reconnect t ~deadline_s:remaining with
          | Ok () -> attempt ~replays_left:(replays_left - 1)
          | Error e -> Error e
      end
    in
    match exchange () with
    | Ok response -> (
        match
          (t.retry.retry_overloaded, Protocol.decode_response response)
        with
        | true, Ok (Protocol.Resp_overloaded { retry_after_s; _ }) ->
            let remaining = deadline -. Unix.gettimeofday () in
            let wait = Option.value retry_after_s ~default:0.1 in
            if wait >= remaining then Ok response
            else begin
              (* shed, not failed: honour the server's backoff hint and
                 re-send on the same connection (not a replay) *)
              Unix.sleepf wait;
              attempt ~replays_left
            end
        | _ -> Ok response)
    | Error (Retryable msg) -> retry msg
    | Error (Fatal msg) -> give_up msg
  in
  (match t.fd with
  | Some _ -> attempt ~replays_left:t.retry.max_replays
  | None -> (
      (* a previous exchange tore the connection down; come back up first *)
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then give_up "deadline passed"
      else
        match reconnect t ~deadline_s:remaining with
        | Ok () -> attempt ~replays_left:t.retry.max_replays
        | Error e -> Error e))

let request_err t ?id req ~timeout_s =
  request_raw t (Protocol.encode_request ?id req) ~timeout_s

let request t ?id req ~timeout_s =
  Result.map_error error_message (request_err t ?id req ~timeout_s)
