type t = { fd : Unix.file_descr; session : Session.t; mutable queued : string list }

let connect ?(retries = 50) ?(retry_delay_s = 0.1) path =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    (* responses come from our own trusted server and carry whole report
       outputs, so they are not bound by the request-line cap *)
    | () -> Ok { fd; session = Session.create ~max_line_bytes:max_int (); queued = [] }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if attempt + 1 < retries then begin
          Unix.sleepf retry_delay_s;
          go (attempt + 1)
        end
        else
          Error
            (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))
  in
  go 0

let send t line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec go off =
    if off < len then go (off + Unix.write_substring t.fd data off (len - off))
  in
  match go 0 with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "write failed: %s" (Unix.error_message e))

let read_lines t ~n ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let buf = Bytes.create 4096 in
  let rec go acc need =
    if need = 0 then Ok (List.rev acc)
    else
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then
        Error (Printf.sprintf "timed out waiting for %d more line(s)" need)
      else
        match Unix.select [ t.fd ] [] [] remaining with
        | [], _, _ -> Error (Printf.sprintf "timed out waiting for %d more line(s)" need)
        | _ -> (
            match Unix.read t.fd buf 0 (Bytes.length buf) with
            | 0 -> Error "connection closed by server"
            | got ->
                let lines, overflow =
                  Session.feed t.session (Bytes.sub_string buf 0 got)
                in
                if overflow then Error "oversized response line"
                else begin
                  t.queued <- t.queued @ lines;
                  drain acc need
                end
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go acc need
            | exception Unix.Unix_error (e, _, _) ->
                Error (Printf.sprintf "read failed: %s" (Unix.error_message e)))
  and drain acc need =
    match t.queued with
    | line :: rest when need > 0 ->
        t.queued <- rest;
        drain (line :: acc) (need - 1)
    | _ -> go acc need
  in
  drain [] n

let request t ?id req ~timeout_s =
  match send t (Protocol.encode_request ?id req) with
  | Error _ as e -> e
  | Ok () -> (
      match read_lines t ~n:1 ~timeout_s with
      | Ok [ line ] -> Ok line
      | Ok _ -> Error "protocol error: wrong line count"
      | Error _ as e -> e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
