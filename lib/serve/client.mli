(** A resilient blocking client for the serve protocol — the other half
    of the wire used by [layered serve-client], the serve oracles and
    the smoke tests.

    Reads are select-guarded with a deadline so a dead or wedged daemon
    turns into an explicit error instead of a hang.  On top of that,
    {!request} survives a daemon crash mid-exchange: a connection-level
    failure ([ECONNRESET], [EPIPE], mid-read EOF — a torn response
    frame included) tears the connection down, reconnects under a
    jittered exponential backoff bounded by what is left of the request
    deadline, and {e replays the same encoded line}, request id
    unchanged.  Replays are idempotent by construction: dispatch is
    deterministic and the daemon's result cache answers a replayed id
    with the same bytes the lost response carried, so a client cannot
    tell a crashed-and-recovered daemon from one that never crashed. *)

(** Retry policy, shared by connection establishment and replay. *)
type retry = {
  connect_deadline_s : float;
      (** total budget for the initial {!connect}; reconnects inside
          {!request} use the request's remaining deadline instead *)
  backoff_initial_s : float;  (** first retry delay; doubles per attempt *)
  backoff_max_s : float;  (** delay cap *)
  jitter_seed : int;
      (** deterministic jitter seed; each delay is scaled into
          [50%, 100%] of nominal *)
  max_replays : int;  (** replays per {!request} before giving up *)
  retry_overloaded : bool;
      (** when the daemon sheds with an [overloaded] response, sleep
          its [retry-after] hint and re-send instead of returning the
          shed to the caller (off by default: one-shot tools want to
          see the shed) *)
}

val default_retry : retry

type error =
  | Connect_timeout of {
      path : string;
      attempts : int;
      elapsed_s : float;
      last : string;  (** the last [Unix_error]'s rendering *)
    }  (** the connect deadline passed; every attempt failed *)
  | Io of string  (** anything fatal after a connection existed *)

val error_message : error -> string

type t

(** [connect ?retry path] — jittered exponential backoff (covering the
    startup race against a daemon still binding, and a supervised
    daemon mid-respawn) under [retry.connect_deadline_s] total. *)
val connect : ?retry:retry -> string -> (t, string) result

(** [connect_err] is {!connect} with the typed error. *)
val connect_err : ?retry:retry -> string -> (t, error) result

(** Counters: how many times this client rebuilt its connection, and
    how many request lines it replayed after a connection-level
    failure.  The recovery oracles read these to prove a fault was
    absorbed rather than absent. *)
val reconnects : t -> int

val replays : t -> int

(** [send t line] writes one request line ([line] must not contain a
    newline; the terminator is appended).  No replay: callers driving
    [send] directly own their own recovery. *)
val send : t -> string -> (unit, string) result

(** [read_lines t ~n ~timeout_s] collects the next [n] response lines,
    or errors out when the deadline passes first.  No replay. *)
val read_lines : t -> n:int -> timeout_s:float -> (string list, string) result

(** [request t ?id req ~timeout_s] sends one encoded request and reads
    one raw response line, transparently reconnecting and replaying on
    connection-level failure.  [timeout_s] bounds the whole exchange,
    replays included. *)
val request :
  t -> ?id:int -> Protocol.request -> timeout_s:float -> (string, string) result

(** [request_err] is {!request} with the typed error. *)
val request_err :
  t -> ?id:int -> Protocol.request -> timeout_s:float -> (string, error) result

(** [request_raw t line ~timeout_s] is {!request} for an already-encoded
    request line — what [layered serve-client] feeds through. *)
val request_raw : t -> string -> timeout_s:float -> (string, error) result

val close : t -> unit

(** The deterministic backoff schedule, exposed for tests. *)
val backoff_s : retry -> attempt:int -> float
