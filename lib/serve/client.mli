(** A small blocking client for the serve protocol — the other half of
    the wire used by [layered serve-client], the serve oracles and the
    smoke tests.

    Reads are select-guarded with a deadline so a dead or wedged daemon
    turns into an explicit error instead of a hang. *)

type t

(** [connect ?retries ?retry_delay_s path] — retries cover the startup
    race against a daemon still binding its socket (default 50 tries,
    0.1 s apart). *)
val connect :
  ?retries:int -> ?retry_delay_s:float -> string -> (t, string) result

(** [send t line] writes one request line ([line] must not contain a
    newline; the terminator is appended). *)
val send : t -> string -> (unit, string) result

(** [read_lines t ~n ~timeout_s] collects the next [n] response lines,
    or errors out when the deadline passes first. *)
val read_lines : t -> n:int -> timeout_s:float -> (string list, string) result

(** [request t ?id req ~timeout_s] sends one encoded request and reads
    one raw response line. *)
val request :
  t -> ?id:int -> Protocol.request -> timeout_s:float -> (string, string) result

val close : t -> unit
