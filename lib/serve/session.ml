type t = { buf : Buffer.t; mutable overflowed : bool; max_line_bytes : int }

let create ?(max_line_bytes = Protocol.max_line_bytes) () =
  { buf = Buffer.create 256; overflowed = false; max_line_bytes }
let pending_bytes t = Buffer.length t.buf

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let feed t chunk =
  if t.overflowed then ([], true)
  else begin
    Buffer.add_string t.buf chunk;
    let data = Buffer.contents t.buf in
    Buffer.clear t.buf;
    let lines = ref [] in
    let start = ref 0 in
    let overflow = ref false in
    (try
       for i = 0 to String.length data - 1 do
         if data.[i] = '\n' then begin
           let line = String.sub data !start (i - !start) in
           if String.length line > t.max_line_bytes then raise Exit;
           lines := strip_cr line :: !lines;
           start := i + 1
         end
       done
     with Exit -> overflow := true);
    let residue = String.length data - !start in
    if (not !overflow) && residue > t.max_line_bytes then overflow := true;
    if !overflow then begin
      t.overflowed <- true;
      (List.rev !lines, true)
    end
    else begin
      Buffer.add_substring t.buf data !start residue;
      (List.rev !lines, false)
    end
  end
