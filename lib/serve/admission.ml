module Budget = Layered_runtime.Budget

type config = {
  queue_cap : int;
  max_heap_mb : int;
  request_timeout_s : float;
  per_client_cap : int;
}

let default =
  { queue_cap = 64; max_heap_mb = 1024; request_timeout_s = 10.; per_client_cap = 16 }

type decision =
  | Admit of Budget.t
  | Shed of { reason : [ `Queue | `Memory | `Client ]; retry_after_s : float }

let heap_mb () =
  let words = (Gc.quick_stat ()).Gc.heap_words in
  words * (Sys.word_size / 8) / (1024 * 1024)

(* The backoff hint shipped with a shed: proportional to how far over
   the queue cap the drain is (the deeper the backlog, the longer the
   wait), a flat half-second for memory pressure — the heap only
   relaxes on a major collection, not per-request.  A per-client shed
   clears as soon as the client's own in-flight requests finish, so its
   hint is the floor. *)
let queue_retry_after ~pending ~queue_cap =
  Float.min 1.0 (0.05 +. (0.01 *. float_of_int (max 0 (pending - queue_cap))))

let memory_retry_after = 0.5
let client_retry_after = 0.05

let decide ?parent cfg ~pending ~client_pending =
  if cfg.per_client_cap > 0 && client_pending >= cfg.per_client_cap then
    (* checked before the global gates: a client past its own cap is
       never allowed to consume a global admission slot *)
    Shed { reason = `Client; retry_after_s = client_retry_after }
  else if pending > cfg.queue_cap then
    Shed
      {
        reason = `Queue;
        retry_after_s = queue_retry_after ~pending ~queue_cap:cfg.queue_cap;
      }
  else if heap_mb () > cfg.max_heap_mb then
    Shed { reason = `Memory; retry_after_s = memory_retry_after }
  else
    let timeout_s =
      if cfg.request_timeout_s > 0. then Some cfg.request_timeout_s else None
    in
    Admit
      (match parent with
      | None -> Budget.create ?timeout_s ~max_memory_mb:cfg.max_heap_mb ()
      | Some p -> Budget.child ?timeout_s ~max_memory_mb:cfg.max_heap_mb p)

(* ------------------------------------------------------------------ *)
(* Backlog                                                            *)

module Backlog = struct
  (* A binary min-heap ordered by (deadline, seq): earliest deadline
     first, and — the determinism the tie-break tests pin — arrival
     order among equal deadlines, via a total arrival sequence number.
     Per-client occupancy is tracked on the side so fair-share policy
     (cap checks, evicting the deepest client) reads in O(1). *)
  type 'a entry = { deadline : float; seq : int; client : int; payload : 'a }

  type 'a t = {
    mutable heap : 'a entry array;  (* slots [0, len) are live *)
    mutable len : int;
    depths : (int, int) Hashtbl.t;  (* client -> queued entries *)
    mutable next_seq : int;
  }

  let create () =
    { heap = [||]; len = 0; depths = Hashtbl.create 16; next_seq = 0 }

  let length t = t.len

  let depth_of t ~client =
    Option.value ~default:0 (Hashtbl.find_opt t.depths client)

  let bump t client d =
    let cur = depth_of t ~client in
    let next = cur + d in
    if next <= 0 then Hashtbl.remove t.depths client
    else Hashtbl.replace t.depths client next

  let before a b =
    a.deadline < b.deadline || (a.deadline = b.deadline && a.seq < b.seq)

  let swap t i j =
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(j);
    t.heap.(j) <- tmp

  let rec sift_up t i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if before t.heap.(i) t.heap.(p) then begin
        swap t i p;
        sift_up t p
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = if l < t.len && before t.heap.(l) t.heap.(i) then l else i in
    let m = if r < t.len && before t.heap.(r) t.heap.(m) then r else m in
    if m <> i then begin
      swap t i m;
      sift_down t m
    end

  let push t ~client ~deadline payload =
    let e = { deadline; seq = t.next_seq; client; payload } in
    t.next_seq <- t.next_seq + 1;
    if Array.length t.heap = 0 then t.heap <- Array.make 8 e
    else if t.len = Array.length t.heap then begin
      let bigger = Array.make (2 * t.len) e in
      Array.blit t.heap 0 bigger 0 t.len;
      t.heap <- bigger
    end;
    t.heap.(t.len) <- e;
    t.len <- t.len + 1;
    bump t client 1;
    sift_up t (t.len - 1)

  (* Delete the entry at heap slot [i] (swap-with-last then restore the
     heap property in whichever direction the replacement violates). *)
  let delete_at t i =
    let e = t.heap.(i) in
    t.len <- t.len - 1;
    bump t e.client (-1);
    if i < t.len then begin
      t.heap.(i) <- t.heap.(t.len);
      sift_down t i;
      sift_up t i
    end;
    e

  let pop t =
    if t.len = 0 then None
    else
      let e = delete_at t 0 in
      Some e.payload

  let evict_newest_of_deepest t ~spare ~deeper_than =
    if t.len = 0 then None
    else begin
      (* deepest client other than [spare]; depth ties break toward the
         smaller client id so the shedding order is deterministic *)
      let victim_client = ref (-1) and victim_depth = ref 0 in
      Hashtbl.iter
        (fun client depth ->
          if
            client <> spare
            && (depth > !victim_depth
               || (depth = !victim_depth && !victim_client >= 0
                  && client < !victim_client))
          then begin
            victim_client := client;
            victim_depth := depth
          end)
        t.depths;
      if !victim_client < 0 || !victim_depth <= deeper_than then None
      else begin
        (* that client's newest entry = max (deadline, seq) among its
           slots — the request that would have run last anyway *)
        let best = ref (-1) in
        for i = 0 to t.len - 1 do
          if
            t.heap.(i).client = !victim_client
            && (!best < 0 || before t.heap.(!best) t.heap.(i))
          then best := i
        done;
        let e = delete_at t !best in
        Some (e.client, e.payload)
      end
    end

  let remove_client t ~client =
    let keep = ref [] and mine = ref [] in
    for i = 0 to t.len - 1 do
      let e = t.heap.(i) in
      if e.client = client then mine := e :: !mine else keep := e :: !keep
    done;
    t.heap <- Array.of_list !keep;
    t.len <- Array.length t.heap;
    for i = (t.len / 2) - 1 downto 0 do
      sift_down t i
    done;
    Hashtbl.remove t.depths client;
    List.sort (fun a b -> if before a b then -1 else 1) !mine
    |> List.map (fun e -> e.payload)
end
