module Budget = Layered_runtime.Budget

type config = {
  queue_cap : int;
  max_heap_mb : int;
  request_timeout_s : float;
}

let default = { queue_cap = 64; max_heap_mb = 1024; request_timeout_s = 10. }

type decision =
  | Admit of Budget.t
  | Shed of { reason : [ `Queue | `Memory ]; retry_after_s : float }

let heap_mb () =
  let words = (Gc.quick_stat ()).Gc.heap_words in
  words * (Sys.word_size / 8) / (1024 * 1024)

(* The backoff hint shipped with a shed: proportional to how far over
   the queue cap the drain is (the deeper the backlog, the longer the
   wait), a flat half-second for memory pressure — the heap only
   relaxes on a major collection, not per-request. *)
let queue_retry_after ~pending ~queue_cap =
  Float.min 1.0 (0.05 +. (0.01 *. float_of_int (max 0 (pending - queue_cap))))

let memory_retry_after = 0.5

let decide cfg ~pending =
  if pending > cfg.queue_cap then
    Shed
      {
        reason = `Queue;
        retry_after_s = queue_retry_after ~pending ~queue_cap:cfg.queue_cap;
      }
  else if heap_mb () > cfg.max_heap_mb then
    Shed { reason = `Memory; retry_after_s = memory_retry_after }
  else
    let timeout_s =
      if cfg.request_timeout_s > 0. then Some cfg.request_timeout_s else None
    in
    Admit (Budget.create ?timeout_s ~max_memory_mb:cfg.max_heap_mb ())
