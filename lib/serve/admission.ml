module Budget = Layered_runtime.Budget

type config = {
  queue_cap : int;
  max_heap_mb : int;
  request_timeout_s : float;
}

let default = { queue_cap = 64; max_heap_mb = 1024; request_timeout_s = 10. }

type decision =
  | Admit of Budget.t
  | Shed of [ `Queue | `Memory ]

let heap_mb () =
  let words = (Gc.quick_stat ()).Gc.heap_words in
  words * (Sys.word_size / 8) / (1024 * 1024)

let decide cfg ~pending =
  if pending > cfg.queue_cap then Shed `Queue
  else if heap_mb () > cfg.max_heap_mb then Shed `Memory
  else
    let timeout_s =
      if cfg.request_timeout_s > 0. then Some cfg.request_timeout_s else None
    in
    Admit (Budget.create ?timeout_s ~max_memory_mb:cfg.max_heap_mb ())
