type config = {
  max_restarts : int;
  window_s : float;
  backoff_initial_s : float;
  backoff_max_s : float;
  seed : int;
  pid_file : string option;
  verbose : bool;
}

let default =
  {
    max_restarts = 5;
    window_s = 30.;
    backoff_initial_s = 0.1;
    backoff_max_s = 5.;
    seed = 0;
    pid_file = None;
    verbose = true;
  }

type outcome = { exit_code : int; restarts : int; gave_up : bool }

let exit_crash_loop = 1

(* An xorshift step over seed+attempt: enough spread to desynchronise a
   herd of restarting daemons, fully deterministic for the oracles. *)
let jitter ~seed ~attempt =
  let z = (seed * 0x9e3779b9) + attempt + 1 in
  let z = z lxor (z lsr 13) in
  let z = (z * 0x2545f491) land 0x3fffffff in
  float_of_int (z land 0xff) /. 255.

(* Exponential from [backoff_initial_s], capped at [backoff_max_s], the
   attempt's jitter scaling each delay into [50%, 100%] of nominal. *)
let backoff_s cfg ~attempt =
  let nominal =
    Float.min cfg.backoff_max_s
      (cfg.backoff_initial_s *. (2. ** float_of_int attempt))
  in
  nominal *. (0.5 +. (0.5 *. jitter ~seed:cfg.seed ~attempt))

let log cfg fmt =
  Format.(
    if cfg.verbose then eprintf fmt else ifprintf err_formatter fmt)

let write_pid_file cfg pid =
  Option.iter
    (fun path ->
      try
        let oc = open_out path in
        Printf.fprintf oc "%d\n" pid;
        close_out oc
      with Sys_error _ -> ())
    cfg.pid_file

(* The supervision loop, abstracted over how one daemon incarnation
   runs.  [spawn ()] blocks until the daemon is gone and reports
   [`Clean code] (done — a shutdown request, a signal drain, or a
   configuration error the respawn could only repeat) or [`Crashed
   reason] (respawn, unless the breaker trips).  The circuit breaker is
   a sliding window: more than [max_restarts] crashes within [window_s]
   and the supervisor stops feeding the failure. *)
let supervise cfg spawn =
  let crash_times = ref [] in
  let rec go ~attempt ~restarts =
    match spawn () with
    | `Clean code -> { exit_code = code; restarts; gave_up = false }
    | `Crashed reason ->
        let now = Unix.gettimeofday () in
        crash_times :=
          now :: List.filter (fun t -> now -. t <= cfg.window_s) !crash_times;
        if List.length !crash_times > cfg.max_restarts then begin
          log cfg
            "layered serve: crash loop (%d abnormal exits in %.0f s); giving up@."
            (List.length !crash_times) cfg.window_s;
          { exit_code = exit_crash_loop; restarts; gave_up = true }
        end
        else begin
          let delay = backoff_s cfg ~attempt in
          log cfg "layered serve: daemon died (%s); restarting in %.2f s@."
            reason delay;
          Unix.sleepf delay;
          go ~attempt:(attempt + 1) ~restarts:(restarts + 1)
        end
  in
  go ~attempt:0 ~restarts:0

let run_inprocess ?(config = default) run =
  supervise config (fun () ->
      match run () with
      | code when code = Server.exit_crashed ->
          `Crashed (Printf.sprintf "exit %d" code)
      | code -> `Clean code
      | exception e -> `Crashed (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Forked supervision (the CLI's --supervise)                          *)

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

type forwarding = { signal : int; previous : Sys.signal_behavior }

(* SIGTERM/SIGINT land on the supervisor (the pid the operator knows);
   forward them so the child drains and the supervisor sees a clean
   WEXITED 0 instead of mistaking the stop for a crash. *)
let install_forwarding child =
  List.filter_map
    (fun signal ->
      match
        Sys.signal signal
          (Sys.Signal_handle
             (fun s ->
               match Atomic.get child with
               | Some pid -> ( try Unix.kill pid s with Unix.Unix_error _ -> ())
               | None -> ()))
      with
      | previous -> Some { signal; previous }
      | exception (Invalid_argument _ | Sys_error _) -> None)
    [ Sys.sigterm; Sys.sigint ]

let restore_forwarding saved =
  List.iter
    (fun { signal; previous } ->
      try Sys.set_signal signal previous
      with Invalid_argument _ | Sys_error _ -> ())
    saved

let run_forked ?(config = default) run =
  let child : int option Atomic.t = Atomic.make None in
  let saved = install_forwarding child in
  Fun.protect
    ~finally:(fun () -> restore_forwarding saved)
    (fun () ->
      supervise config (fun () ->
          match Unix.fork () with
          | 0 ->
              (* the child must never fall back into the supervisor
                 loop: whatever happens, leave through [exit] *)
              let code =
                try run ()
                with e ->
                  Printf.eprintf "layered serve: daemon raised: %s\n%!"
                    (Printexc.to_string e);
                  Server.exit_crashed
              in
              Stdlib.exit code
          | pid -> (
              Atomic.set child (Some pid);
              write_pid_file config pid;
              let status = waitpid_retry pid in
              Atomic.set child None;
              match status with
              | Unix.WEXITED 0 -> `Clean 0
              | Unix.WEXITED 2 ->
                  (* bind/config failure: respawning can only repeat it *)
                  `Clean 2
              | Unix.WEXITED code -> `Crashed (Printf.sprintf "exit %d" code)
              | Unix.WSIGNALED s -> `Crashed (Printf.sprintf "signal %d" s)
              | Unix.WSTOPPED _ ->
                  (* only possible under WUNTRACED, which we do not pass *)
                  `Crashed "stopped")))
