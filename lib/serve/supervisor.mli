(** Supervised daemon restarts: the crash-recovery half of resilient
    serving, with the client replay logic in {!Client} as the other
    half.

    The supervisor state machine is a loop over daemon incarnations:

    - a {e clean} exit — 0 (shutdown request or signal drain) or 2
      (bind/config failure a respawn could only repeat) — ends the
      loop with that code;
    - an {e abnormal} exit (any other code, {!Server.exit_crashed}
      included, or a fatal signal) respawns the daemon after a jittered
      exponential backoff, unless the circuit breaker trips.

    {b Backoff.}  Delays grow from [backoff_initial_s] by doubling,
    capped at [backoff_max_s]; each delay is scaled into [50%, 100%] of
    nominal by a deterministic jitter derived from [seed] and the
    attempt number, so a herd of supervised daemons desynchronises while
    the chaos harness stays reproducible.

    {b Circuit breaker.}  More than [max_restarts] crashes inside a
    sliding [window_s] window and the supervisor gives up with exit
    code 1 — a daemon that dies on arrival must not be respawned
    forever.  Crashes older than the window are forgiven, so a
    long-lived daemon that absorbs one fault a day never trips it. *)

type config = {
  max_restarts : int;  (** breaker threshold: crashes tolerated per window *)
  window_s : float;  (** breaker sliding-window width *)
  backoff_initial_s : float;
  backoff_max_s : float;
  seed : int;  (** jitter seed; same seed, same delays *)
  pid_file : string option;
      (** rewritten with the child pid after every (re)spawn — how the
          crash smoke test finds the incarnation to SIGKILL
          ({!run_forked} only) *)
  verbose : bool;  (** log restarts and breaker trips to stderr *)
}

val default : config

type outcome = {
  exit_code : int;  (** the final incarnation's exit code, or 1 on a trip *)
  restarts : int;  (** abnormal exits absorbed *)
  gave_up : bool;  (** the circuit breaker tripped *)
}

(** [run_inprocess ?config run] supervises [run] as a function call in
    this process: {!Server.exit_crashed} and raised exceptions count as
    crashes.  This is the oracle/test harness flavour — a simulated
    crash must not kill the test process. *)
val run_inprocess : ?config:config -> (unit -> int) -> outcome

(** [run_forked ?config run] supervises [run] in a forked child per
    incarnation — the [layered serve --supervise] flavour, where a
    SIGKILLed daemon is a crash like any other.  SIGTERM/SIGINT sent to
    the supervisor are forwarded to the live child so an operator stop
    drains cleanly. *)
val run_forked : ?config:config -> (unit -> int) -> outcome

(** The deterministic backoff schedule, exposed for tests. *)
val backoff_s : config -> attempt:int -> float
