(** Warm-cache durability for the serve daemon.

    One spill is a single CRC-validated {!Layered_runtime.Checkpoint}
    generation (name ["serve-cache"]) whose payload marshals both shared
    caches: the keyed result cache ({!Cache.export}) and every valence
    classifier's memo ({!Layered_analysis.Valence_query.export_spill}).
    The checkpoint layer supplies atomic tmp+rename writes, torn-write
    rollback and generation numbering; this module adds a payload
    version guard (Marshal checks nothing) and prunes all but the two
    newest generations after each save so a daemon spilling every few
    responses keeps the directory bounded.

    A restarted daemon calls {!load} before accepting connections: a
    missing, torn or version-skewed spill is a cold start, never an
    error — recovery must not be able to fail harder than the crash. *)

(** Spill generations kept on disk after each {!save} when [?keep] is
    not given (the [--spill-keep] default). *)
val keep_generations : int

(** [save ?keep ~dir ~rcache ~vcache ()] spills both caches and prunes
    all but the [keep] (default {!keep_generations}) newest
    generations; returns the number of entries written, or an error
    description (disk full, directory gone) the caller logs and
    ignores. *)
val save :
  ?keep:int ->
  dir:string ->
  rcache:Cache.t ->
  vcache:Layered_analysis.Valence_query.cache ->
  unit ->
  (int, string) result

(** [load ~dir ~rcache ~vcache] rehydrates both caches from the newest
    intact spill.  Returns the number of entries restored; 0 when there
    is nothing (or nothing readable) to restore. *)
val load :
  dir:string ->
  rcache:Cache.t ->
  vcache:Layered_analysis.Valence_query.cache ->
  int
