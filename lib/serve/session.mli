(** Per-connection line framing.

    A TCP-style byte stream hands the server arbitrary chunks: half a
    line, three lines and a half, a line split across ten reads.  A
    session buffers the residue between reads and yields complete lines
    (['\n']-terminated, terminator stripped, one trailing ['\r'] also
    stripped for telnet-style clients).

    A line longer than the session's cap — terminated or not — marks
    the session {e overflowed}: the server answers with a [Parse]
    error and closes the connection, since line sync is lost. *)

type t

(** [create ()] caps lines at {!Protocol.max_line_bytes}, the request
    limit the server enforces.  The client half passes a larger
    [max_line_bytes]: response lines carry whole report outputs, which
    the request cap does not bound. *)
val create : ?max_line_bytes:int -> unit -> t

(** [feed t chunk] appends [chunk] and returns the complete lines it
    finished, oldest first, plus [true] if the session just overflowed.
    After an overflow, [feed] returns no further lines. *)
val feed : t -> string -> string list * bool

(** Bytes buffered beyond the last complete line. *)
val pending_bytes : t -> int
