module Checkpoint = Layered_runtime.Checkpoint
module Valence_query = Layered_analysis.Valence_query

let name = "serve-cache"
let keep_generations = 2

(* Bumped when the payload shape changes: Marshal does not check types,
   so a version guard is the only thing standing between an old spill
   file and a segfault-grade misread. *)
let payload_version = 1

type payload = {
  version : int;
  rcache : (string * Cache.entry) list;
  vcache : Valence_query.spill;
}

let entry_count p =
  List.length p.rcache + Valence_query.spill_entries p.vcache

let save ?(keep = keep_generations) ~dir ~rcache ~vcache () =
  let p =
    {
      version = payload_version;
      rcache = Cache.export rcache;
      vcache = Valence_query.export_spill vcache;
    }
  in
  let entries = entry_count p in
  match
    Checkpoint.save ~dir ~name
      ~meta:(Checkpoint.make_meta ~progress:entries ())
      ~payload:(Marshal.to_string p [])
  with
  | (_ : Checkpoint.saved) ->
      ignore (Checkpoint.prune ~dir ~name ~keep : int);
      Ok entries
  | exception e ->
      (* a full disk or a vanished directory must not take the daemon
         down: serving warm beats spilling *)
      Error (Printexc.to_string e)

let load ~dir ~rcache ~vcache =
  match Checkpoint.load_latest ~dir ~name with
  | None -> 0
  | Some { Checkpoint.payload; _ } -> (
      match (Marshal.from_string payload 0 : payload) with
      | p when p.version = payload_version ->
          Cache.import rcache p.rcache;
          Valence_query.import_spill vcache p.vcache;
          entry_count p
      | _ -> 0
      | exception _ ->
          (* an unreadable spill is a cold start, not a crash *)
          0)
