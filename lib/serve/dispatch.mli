(** Request execution: one decoded request in, one response out.

    Two execution paths share these renderers: the sequential {!handle}
    (one request at a time on the calling thread, pool parallelism
    {e inside} queries) and {!execute_concurrent}, the task body the
    concurrent {!Dispatcher} posts to pool workers (whole requests in
    parallel, no inner pool nesting).  Per-request containment either
    way: any exception out of a handler (including an injected
    {!Layered_runtime.Fault} one) becomes an [internal] error response
    for that request only; the daemon keeps serving.

    {b Byte-identity.}  The [output] field of an [ok] response is
    rendered by the same pretty-printers the one-shot CLI drives
    ({!Layered_analysis.Valence_query.pp}, {!Layered_analysis.Sweep.pp},
    the registry report layout), so a daemon answer diffs cleanly
    against [layered classify] / [layered layers] / [layered run].  The
    pure renderers are exposed so oracles can build reference outputs
    without going anywhere near the serve fault sites. *)

type ctx = {
  pool : Layered_runtime.Pool.t;
  vcache : Layered_analysis.Valence_query.cache;
      (** cross-request valence classifiers (the warm memo) *)
  rcache : Cache.t;  (** keyed result cache *)
  admission : Admission.config;
  stop : bool Atomic.t;  (** set by a [shutdown] request or a signal *)
}

(** [create_ctx ?spill ~pool ~admission ()] — with [spill], the valence
    cache is built exportable (see {!Layered_analysis.Valence_query})
    so {!Spill} can persist it across daemon restarts. *)
val create_ctx :
  ?spill:bool ->
  pool:Layered_runtime.Pool.t -> admission:Admission.config -> unit -> ctx

(** The CLI exit code for a budget-truncated result (3).  Truncated
    results are never cached — they reflect one request's deadline
    luck, not the query's answer. *)
val exit_trunc : int

(** [handle ctx ~pending line] decodes, validates, admits and executes
    one request line, sequentially on the calling thread.  [pending] is
    the number of requests queued behind this one (admission's
    queue-depth signal; the per-client gate is not consulted).  Never
    raises.  This is the reference path — the concurrent {!Dispatcher}
    must be byte-equivalent to it per connection. *)
val handle : ctx -> pending:int -> string -> Protocol.response

(** [execute_concurrent ctx ~budget req] renders one compute request on
    the calling (pool-worker) thread: no inner pool parallelism, and
    [budget] threaded into the walk — classification receives it as a
    limit-free cancellation child, so verdicts stay deadline-free.  Home
    of the [serve_handler_raise] and [serve_singleflight_leader_crash]
    fault sites; raises whatever the handler (or an injected fault)
    raises — the dispatcher contains it. *)
val execute_concurrent :
  ctx -> budget:Layered_runtime.Budget.t -> Protocol.request -> int * string

(** {1 Pure renderers}

    Exactly the bytes the CLI prints on stdout for the same query,
    paired with the CLI exit code (0 pass, 1 failures, 3 truncated). *)

val classify_output :
  ?cache:Layered_analysis.Valence_query.cache ->
  ?budget:Layered_runtime.Budget.t ->
  model:string -> n:int -> t:int -> depth:int -> unit -> int * string

val sweep_output :
  ?pool:Layered_runtime.Pool.t ->
  ?budget:Layered_runtime.Budget.t ->
  model:string -> n:int -> t:int -> depth:int -> unit -> int * string

val run_experiment_output :
  ?pool:Layered_runtime.Pool.t ->
  ?budget:Layered_runtime.Budget.t -> id:string -> unit -> int * string
