(** Admission control: decide, before any work happens, whether a
    compute request runs — and under what budget — or is shed.

    Three shedding triggers, all answered with a distinguished
    [overloaded] response rather than an error (the client did nothing
    wrong; it should back off and retry):

    - {b per-client cap}: this connection alone already has
      [per_client_cap] requests in flight — checked first, so a
      flooding client is turned away before it can consume a global
      admission slot (the fair-share half of overload isolation);
    - {b queue depth}: more than [queue_cap] requests already waiting
      across all clients;
    - {b memory watermark}: the OCaml heap is over [max_heap_mb] at
      admission time — new work would push a loaded daemon toward the
      OOM killer.

    Admitted compute requests get a fresh {!Layered_runtime.Budget}
    carrying the per-request deadline (and the memory cap, so a single
    admitted query that blows past the watermark mid-flight truncates
    instead of taking the daemon down).  With [?parent], the budget is
    a {e child} of the caller's token — the per-request fault domain:
    cancelling the parent (client disconnect) trips every one of its
    admitted requests, cancelling one request touches nothing else. *)

type config = {
  queue_cap : int;  (** shed when more than this many requests wait *)
  max_heap_mb : int;  (** shed new work when the heap exceeds this *)
  request_timeout_s : float;  (** per-request deadline; 0 = none *)
  per_client_cap : int;
      (** max in-flight requests per connection; 0 disables the cap *)
}

val default : config

type decision =
  | Admit of Layered_runtime.Budget.t
  | Shed of {
      reason : [ `Queue | `Memory | `Client ];
      retry_after_s : float;
    }
      (** [retry_after_s] is the backoff the overloaded response
          suggests: queue sheds scale with backlog depth (50 ms plus
          10 ms per excess request, capped at 1 s), memory sheds are a
          flat 0.5 s, per-client sheds a flat 50 ms (the cap clears as
          soon as the client's own requests finish) *)

(** [decide ?parent cfg ~pending ~client_pending] — [pending] is how
    many admitted requests are queued or running across all clients;
    [client_pending] is how many this connection already has in
    flight. *)
val decide :
  ?parent:Layered_runtime.Budget.t ->
  config -> pending:int -> client_pending:int -> decision

(** Current major-heap size in MiB, as admission sees it. *)
val heap_mb : unit -> int

(** A deterministic priority queue for admitted-but-not-yet-running
    work, keyed by (deadline, arrival seq): earliest deadline first,
    strict arrival (FIFO) order among equal deadlines — so the order
    work starts, and the order fair-share shedding evicts it, is a pure
    function of the admission sequence, independent of scheduling.
    Deadline-free entries (daemon running with [request_timeout_s = 0])
    all tie at infinity and drain strictly FIFO.

    Not thread-safe: the serve dispatcher owns its backlog from the
    select-loop thread. *)
module Backlog : sig
  type 'a t

  val create : unit -> 'a t
  val length : 'a t -> int

  (** Queued entries for one client (0 when absent). *)
  val depth_of : 'a t -> client:int -> int

  (** [push t ~client ~deadline payload] enqueues with the next arrival
      sequence number.  Use [infinity] for "no deadline". *)
  val push : 'a t -> client:int -> deadline:float -> 'a -> unit

  (** Remove and return the minimum — earliest (deadline, seq). *)
  val pop : 'a t -> 'a option

  (** [evict_newest_of_deepest t ~spare ~deeper_than] removes the
      (deadline, seq) {e maximum} entry of the client with the most
      queued entries, never touching client [spare] — the fair-share
      shed: the deepest queue loses the request that would have run
      last.  Depth ties break toward the smaller client id.  [None]
      when no client other than [spare] has queued work, or when the
      deepest such client holds no more than [deeper_than] entries
      (evicting a peer no deeper than the newcomer would be churn, not
      fairness). *)
  val evict_newest_of_deepest :
    'a t -> spare:int -> deeper_than:int -> (int * 'a) option

  (** Drop every entry of one client (its connection died), returned in
      (deadline, seq) order. *)
  val remove_client : 'a t -> client:int -> 'a list
end
