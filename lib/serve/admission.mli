(** Admission control: decide, before any work happens, whether a
    compute request runs — and under what budget — or is shed.

    Two shedding triggers, both answered with a distinguished
    [overloaded] response rather than an error (the client did nothing
    wrong; it should back off and retry):

    - {b queue depth}: more than [queue_cap] requests already waiting
      in the batch being drained;
    - {b memory watermark}: the OCaml heap is over [max_heap_mb] at
      admission time — new work would push a loaded daemon toward the
      OOM killer.

    Admitted compute requests get a fresh {!Layered_runtime.Budget}
    carrying the per-request deadline (and the memory cap, so a single
    admitted query that blows past the watermark mid-flight truncates
    instead of taking the daemon down). *)

type config = {
  queue_cap : int;  (** shed when more than this many requests wait *)
  max_heap_mb : int;  (** shed new work when the heap exceeds this *)
  request_timeout_s : float;  (** per-request deadline; 0 = none *)
}

val default : config

type decision =
  | Admit of Layered_runtime.Budget.t
  | Shed of { reason : [ `Queue | `Memory ]; retry_after_s : float }
      (** [retry_after_s] is the backoff the overloaded response
          suggests: queue sheds scale with backlog depth (50 ms plus
          10 ms per excess request, capped at 1 s), memory sheds are a
          flat 0.5 s *)

(** [decide cfg ~pending] — [pending] is how many requests are queued
    behind this one in the current drain. *)
val decide : config -> pending:int -> decision

(** Current major-heap size in MiB, as admission sees it. *)
val heap_mb : unit -> int
