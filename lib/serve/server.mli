(** The serve daemon: a Unix-domain-socket server for the layered
    verification queries.

    Single accept/dispatch loop on [Unix.select]; requests are executed
    sequentially, in arrival order, with parallelism inside each query
    via one shared worker {!Layered_runtime.Pool}.  Shared across
    requests: the valence classifier cache (warm memo), the keyed
    result cache, and the process-wide {!Layered_runtime.Stats}.

    {b Shutdown.}  SIGINT, SIGTERM (when [install_signals]) and the
    [shutdown] request all set one stop flag.  The loop then finishes
    the batch it is draining — every request already read gets its
    response — closes client connections and the listening socket,
    unlinks the socket path, flushes a final stats snapshot to stderr
    (when [stats] or stopped by a signal) and returns 0.  Never a stack
    trace.

    {b Containment.}  A request that raises — including a fault-
    injection raise — poisons only its own response ([internal] error);
    a crashed pool worker is respawned by the pool itself.  A client
    that overflows {!Protocol.max_line_bytes} gets a [parse] error and
    its connection closed; other clients are untouched. *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains for the shared pool *)
  queue_cap : int;
  max_heap_mb : int;
  request_timeout_s : float;  (** per-request deadline; 0 = none *)
  stats : bool;  (** flush a stats snapshot to stderr on exit *)
  install_signals : bool;
      (** install SIGINT/SIGTERM handlers (off for in-process servers
          spawned by tests and oracles) *)
}

val default_config : socket_path:string -> config

(** [run config] serves until stopped; returns the process exit code
    (0 on a clean shutdown, 2 when the socket cannot be bound). *)
val run : config -> int
