(** The serve daemon: a Unix-domain-socket server for the layered
    verification queries.

    Single accept/read loop on [Unix.select]; decoded requests are
    handed to the concurrent {!Dispatcher}, which runs whole requests
    in parallel on the shared domain {!Layered_runtime.Pool} (at
    [jobs = 1] they run inline, reproducing sequential dispatch
    exactly).  Shared across requests: the valence classifier cache
    (warm memo), the keyed result cache, and the process-wide
    {!Layered_runtime.Stats}.

    {b Isolation.}  Each connection owns a {!Layered_runtime.Budget}
    fault-domain root; each admitted request runs under a child of it.
    A disconnect cancels exactly that connection's in-flight requests
    (answered [cancelled], results discarded, caches untouched); a
    per-client in-flight cap and fair-share backlog shedding keep one
    flooding client from starving the rest.

    {b Shutdown.}  SIGINT, SIGTERM (when [install_signals]) and the
    [shutdown] request all set one stop flag.  The loop then drains the
    dispatcher — every admitted request gets its response — closes
    client connections and the listening socket, unlinks the socket
    path, flushes a final stats snapshot to stderr (when [stats] or
    stopped by a signal) and returns 0.  Never a stack trace.  A signal
    interrupting [select], [accept] or [read] is retried or absorbed
    (EINTR discipline), never fatal.

    {b Containment.}  A request that raises — including a fault-
    injection raise — poisons only its own response ([internal] error);
    a crashed pool worker is respawned by the pool itself.  A client
    that overflows {!Protocol.max_line_bytes} gets a [parse] error and
    its connection closed; other clients are untouched. *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains for the shared pool *)
  queue_cap : int;
  max_heap_mb : int;
  request_timeout_s : float;  (** per-request deadline; 0 = none *)
  per_client_cap : int;
      (** max in-flight requests per connection; 0 = uncapped *)
  idle_timeout_s : float;
      (** slow-loris deadline: a connection holding a {e partial}
          request line longer than this gets a [timeout] error response
          and is dropped; 0 = none.  Idle connections with an empty
          buffer are never reaped.  Default 30 s. *)
  spill_dir : string option;
      (** warm-cache durability: reload both shared caches from this
          directory at startup and spill them back through the
          checkpoint format, periodically and on drain *)
  spill_every : int;
      (** spill after every this-many responses (before the response
          write, so a crash in the reply window never loses the entry
          it just cached); 0 = on drain only.  Default 32. *)
  spill_keep : int;
      (** spill generations kept on disk after each save
          ([--spill-keep]); default {!Spill.keep_generations} *)
  stats : bool;  (** flush a stats snapshot to stderr on exit *)
  install_signals : bool;
      (** install SIGINT/SIGTERM handlers (off for in-process servers
          spawned by tests and oracles) *)
}

val default_config : socket_path:string -> config

(** The exit code of a simulated daemon crash (the
    [Serve_crash_before_reply] fault site): caches spilled, reply
    unsent, socket file left behind — everything a SIGKILL would leave.
    {!Supervisor} treats it, like any nonzero code other than 2, as
    abnormal and respawns. *)
val exit_crashed : int

(** [run config] serves until stopped; returns the process exit code
    (0 on a clean shutdown, 2 when the socket cannot be bound,
    {!exit_crashed} when an injected crash killed the incarnation). *)
val run : config -> int
