(** Differential oracles for the serve daemon, registered into
    {!Layered_analysis.Oracle} (the analysis library cannot depend on
    this one, so serve's detectors arrive via its extension point).

    Each oracle spawns a real in-process daemon — own domain, own Unix
    socket, signals not installed — talks to it over the wire, and
    compares raw response lines:

    - [serve/oneshot-eq]: every daemon answer equals the one-shot CLI
      rendering of the same query, byte for byte;
    - [serve/interleave-eq]: two clients issuing the same queries in
      different orders and groupings (one per-line, one batched) get
      identical response bytes, and a repeated query is answered
      identically warm (cached) and cold;
    - [serve/jobs-eq]: a jobs=1 daemon and a multi-worker daemon answer
      the same query set identically.

    Each oracle issues at least three uncached compute requests, so an
    armed serve fault site (firing index < 3) is guaranteed to fire
    during a chaos trial. *)

(** Register the three oracles.  Idempotent. *)
val register : unit -> unit
