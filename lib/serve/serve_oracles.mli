(** Differential oracles for the serve daemon, registered into
    {!Layered_analysis.Oracle} (the analysis library cannot depend on
    this one, so serve's detectors arrive via its extension point).

    Each oracle spawns a real in-process daemon — own domain, own Unix
    socket, signals not installed — talks to it over the wire, and
    compares raw response lines:

    - [serve/oneshot-eq]: every daemon answer equals the one-shot CLI
      rendering of the same query, byte for byte;
    - [serve/interleave-eq]: two clients issuing the same queries in
      different orders and groupings (one per-line, one batched) get
      identical response bytes, and a repeated query is answered
      identically warm (cached) and cold;
    - [serve/jobs-eq]: a jobs=1 daemon and a multi-worker daemon answer
      the same query set identically;
    - [serve/cancel-clean]: a client disconnect cancels only that
      client's in-flight requests — a surviving client's answers and
      the shared caches' accounting are untouched;
    - [serve/singleflight-eq]: four connections firing the identical
      query at once all receive the leader's bytes, and the daemon
      computed exactly once;
    - [serve/fair-share]: a client flooding past its per-client cap is
      shed deterministically (FIFO, reason per-client) while a
      well-behaved client is served one-shot bytes;
    - the [serve/crash-recover-eq], [serve/warm-restart] and
      [serve/replay-idempotent] recovery oracles run the supervised
      stack and treat restarts, replays and latency-guard trips as
      detections even when the bytes come back right.

    Each oracle issues at least three byte-checked compute requests
    covering the first three admissions and the first three executed
    flights, so an armed serve fault site (firing index < 3) is
    guaranteed to fire on a response the oracle verifies. *)

(** Register the oracles.  Idempotent. *)
val register : unit -> unit
