module Oracle = Layered_analysis.Oracle
module Fault = Layered_runtime.Fault

let pass_ = { Oracle.ok = true; detail = "ok" }
let fail detail = { Oracle.ok = false; detail }
let clamp jobs = max 2 jobs
let timeout_s = 10.

(* Fast backoffs for in-process trials: a crash-recovery cycle must not
   dominate a chaos trial's wall clock. *)
let oracle_retry =
  {
    Client.default_retry with
    backoff_initial_s = 0.01;
    backoff_max_s = 0.05;
    max_replays = 8;
  }

let counter = Atomic.make 0

(* Short names: ADDR_UNIX paths are capped near 104 bytes. *)
let fresh_socket_path () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "lsrv-%d-%d.sock" (Unix.getpid ())
       (Atomic.fetch_and_add counter 1))

(* An in-process daemon on its own domain.  [request_timeout_s = 0.]:
   oracle verdicts must not depend on deadline luck.  Shutdown goes over
   the wire in [finally], so the daemon dies even when [f] bails early;
   the client-side read deadline keeps a dead daemon from hanging us. *)
let with_server ?(tweak = Fun.id) ~jobs f =
  let path = fresh_socket_path () in
  let cfg =
    tweak
      {
        (Server.default_config ~socket_path:path) with
        jobs;
        request_timeout_s = 0.;
        install_signals = false;
      }
  in
  let dom = Domain.spawn (fun () -> Server.run cfg) in
  let rec wait n =
    if Sys.file_exists path then true
    else if n = 0 then false
    else begin
      Unix.sleepf 0.05;
      wait (n - 1)
    end
  in
  let ready = wait 100 in
  Fun.protect
    ~finally:(fun () ->
      (match
         Client.connect
           ~retry:{ oracle_retry with connect_deadline_s = 0.5 }
           path
       with
      | Ok c ->
          ignore (Client.request c Protocol.Shutdown ~timeout_s:5.);
          Client.close c
      | Error _ -> ());
      ignore (Domain.join dom : int);
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> if ready then f path else fail "server socket never appeared")

let with_client path f =
  match Client.connect path with
  | Error e -> fail e
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* Four queries, three distinct: q4 repeats q1 so the keyed result
   cache answers it — cache transparency is part of what the oracles
   assert. *)
let q1 = Protocol.Classify_valence { model = "sync"; n = 3; t = 1; depth = 3 }
let q2 = Protocol.Classify_valence { model = "mobile"; n = 3; t = 1; depth = 2 }
let q3 = Protocol.Sweep { model = "iis"; n = 3; t = 1; depth = 2 }
let queries = [ (1, q1); (2, q2); (3, q3); (4, q1) ]

(* One-shot references never touch dispatch or the server: an armed
   serve fault cannot contaminate the expectation being compared to. *)
let reference = function
  | Protocol.Classify_valence { model; n; t; depth } ->
      Dispatch.classify_output ~model ~n ~t ~depth ()
  | Protocol.Sweep { model; n; t; depth } ->
      Dispatch.sweep_output ~model ~n ~t ~depth ()
  | Protocol.Run_experiment { id } -> Dispatch.run_experiment_output ~id ()
  | Protocol.Stats_query | Protocol.Shutdown -> assert false

let expected_line ~id req =
  let exit_code, output = reference req in
  Protocol.encode_response
    (Protocol.Resp_ok { id = Some id; exit_code; output })

(* Sequential request/response over one connection; raw lines out. *)
let roundtrip c qs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (id, req) :: rest -> (
        match Client.request c ~id req ~timeout_s with
        | Ok line -> go (line :: acc) rest
        | Error _ as e -> e)
  in
  go [] qs

let oneshot_eq ~jobs =
  with_server ~jobs:(clamp jobs) (fun path ->
      with_client path (fun c ->
          let rec go = function
            | [] -> pass_
            | (id, req) :: rest ->
                (match Client.request c ~id req ~timeout_s with
                | Error e -> fail e
                | Ok line ->
                    if line = expected_line ~id req then go rest
                    else
                      fail
                        (Printf.sprintf
                           "response %d differs from the one-shot CLI rendering" id))
          in
          go queries))

let interleave_eq ~jobs =
  with_server ~jobs:(clamp jobs) (fun path ->
      with_client path (fun a ->
          with_client path (fun b ->
              (* A: one request line per write, lock-step *)
              match roundtrip a queries with
              | Error e -> fail ("client A: " ^ e)
              | Ok a_lines -> (
                  (* B: the same queries, reversed, in a single write *)
                  let b_queries = List.rev queries in
                  let payload =
                    String.concat "\n"
                      (List.map
                         (fun (id, req) -> Protocol.encode_request ~id req)
                         b_queries)
                  in
                  match Client.send b payload with
                  | Error e -> fail ("client B: " ^ e)
                  | Ok () -> (
                      match
                        Client.read_lines b ~n:(List.length b_queries) ~timeout_s
                      with
                      | Error e -> fail ("client B: " ^ e)
                      | Ok b_lines ->
                          if List.rev b_lines <> a_lines then
                            fail "responses depend on interleaving or grouping"
                          else
                            (* warm (cached) q4 vs cold q1: same bytes *)
                            let out i =
                              match Protocol.decode_response (List.nth a_lines i) with
                              | Ok (Protocol.Resp_ok { output; exit_code; _ }) ->
                                  Some (exit_code, output)
                              | _ -> None
                            in
                            if out 0 <> out 3 || out 0 = None then
                              fail "cached replay differs from the cold answer"
                            else pass_)))))

let jobs_eq ~jobs =
  let run_one ~jobs =
    with_server ~jobs (fun path ->
        with_client path (fun c ->
            match roundtrip c queries with
            | Ok lines -> { Oracle.ok = true; detail = String.concat "\x00" lines }
            | Error e -> fail e))
  in
  let serial = run_one ~jobs:1 in
  if not serial.Oracle.ok then fail ("jobs=1 daemon: " ^ serial.Oracle.detail)
  else
    let parallel = run_one ~jobs:(clamp jobs) in
    if not parallel.Oracle.ok then
      fail (Printf.sprintf "jobs=%d daemon: %s" (clamp jobs) parallel.Oracle.detail)
    else if serial.Oracle.detail <> parallel.Oracle.detail then
      fail "daemon responses differ between jobs=1 and a multi-worker pool"
    else pass_

(* ------------------------------------------------------------------ *)
(* Concurrency oracles: per-request fault domains, single-flight,      *)
(* fair-share shedding                                                 *)

(* "result cache hits     3" out of the stats pretty-printer. *)
let stats_field output name =
  String.split_on_char '\n' output
  |> List.find_map (fun line ->
         let line = String.trim line in
         if String.starts_with ~prefix:name line then
           int_of_string_opt
             (String.trim
                (String.sub line (String.length name)
                   (String.length line - String.length name)))
         else None)

let query_stats c =
  match Client.request c Protocol.Stats_query ~timeout_s with
  | Error e -> Error ("stats: " ^ e)
  | Ok line -> (
      match Protocol.decode_response line with
      | Ok (Protocol.Resp_ok { output; _ }) -> Ok output
      | Ok _ -> Error "stats request answered with a non-ok response"
      | Error e -> Error ("stats response did not decode: " ^ e))

(* Distinct from q1..q3 so intra-oracle cache interactions are exactly
   the ones each oracle scripts. *)
let q_solo = Protocol.Classify_valence { model = "mobile"; n = 3; t = 1; depth = 3 }
let q_flock = Protocol.Classify_valence { model = "sync"; n = 3; t = 1; depth = 2 }

(* Lock-step roundtrip with a byte check per response. *)
let check_queries c qs =
  let rec go = function
    | [] -> pass_
    | (id, req) :: rest -> (
        match Client.request c ~id req ~timeout_s with
        | Error e -> fail e
        | Ok line ->
            if line = expected_line ~id req then go rest
            else
              fail
                (Printf.sprintf
                   "response %d differs from the one-shot CLI rendering" id))
  in
  go qs

(* A disconnect is a private fault: the dying connection's requests are
   cancelled, and nothing a surviving client can observe — response
   bytes or cache accounting — may change.  Y's first three queries are
   also the first three admissions AND the first three executed
   flights, so any armed serve fault lands on a response this oracle
   byte-checks. *)
let cancel_clean ~jobs =
  with_server ~jobs:(clamp jobs) (fun path ->
      with_client path (fun y ->
          let warm = check_queries y [ (1, q1); (2, q2); (3, q3) ] in
          if not warm.Oracle.ok then warm
          else
            (* X: one admitted request, then a hard disconnect — its
               fault domain must cancel without touching anything Y
               sees *)
            match Client.connect path with
            | Error e -> fail ("client X: " ^ e)
            | Ok x -> (
                let sent = Client.send x (Protocol.encode_request ~id:9 q_solo) in
                Client.close x;
                match sent with
                | Error e -> fail ("client X send: " ^ e)
                | Ok () -> (
                    match Client.request y ~id:5 q_solo ~timeout_s with
                    | Error e -> fail ("post-disconnect: " ^ e)
                    | Ok line ->
                        if line <> expected_line ~id:5 q_solo then
                          fail
                            "query after a foreign disconnect differs from \
                             the one-shot rendering"
                        else (
                          match query_stats y with
                          | Error e -> fail e
                          | Ok output -> (
                              (* five compute submissions total; each is
                                 exactly one of hit / miss / join in every
                                 legal interleaving of X's disconnect *)
                              match
                                ( stats_field output "result cache hits",
                                  stats_field output "result cache misses",
                                  stats_field output "single-flight joins" )
                              with
                              | Some h, Some m, Some j ->
                                  if h + m + j = 5 then pass_
                                  else
                                    fail
                                      (Printf.sprintf
                                         "cache accounting off after a \
                                          disconnect: hits+misses+joins = %d, \
                                          expected 5"
                                         (h + m + j))
                              | _ -> fail "stats output lacks cache counters"))))))

(* Four connections fire the same query at once: everyone must get the
   leader's bytes, and the daemon must have computed exactly once
   (one miss; the other three are joins or warm hits, depending on
   arrival timing — never a second miss). *)
let singleflight_eq ~jobs =
  with_server ~jobs:(clamp jobs) (fun path ->
      let conns = List.init 4 (fun _ -> Client.connect path) in
      let cs = List.filter_map Result.to_option conns in
      Fun.protect
        ~finally:(fun () -> List.iter Client.close cs)
        (fun () ->
          match
            List.find_map
              (function Error e -> Some e | Ok _ -> None)
              conns
          with
          | Some e -> fail ("connect: " ^ e)
          | None -> (
              let line = Protocol.encode_request ~id:1 q_flock in
              match
                List.find_map
                  (fun c ->
                    match Client.send c line with
                    | Error e -> Some e
                    | Ok () -> None)
                  cs
              with
              | Some e -> fail ("send: " ^ e)
              | None -> (
                  let expect = expected_line ~id:1 q_flock in
                  let bad =
                    List.find_map
                      (fun c ->
                        match Client.read_lines c ~n:1 ~timeout_s with
                        | Error e -> Some ("read: " ^ e)
                        | Ok [ l ] when l = expect -> None
                        | Ok _ ->
                            Some
                              "a coalesced reply differs from the one-shot \
                               rendering")
                      cs
                  in
                  match bad with
                  | Some d -> fail d
                  | None -> (
                      let c0 = List.hd cs in
                      match query_stats c0 with
                      | Error e -> fail e
                      | Ok output -> (
                          match
                            ( stats_field output "result cache hits",
                              stats_field output "result cache misses",
                              stats_field output "single-flight joins" )
                          with
                          | Some h, Some m, Some j ->
                              if m <> 1 then
                                fail
                                  (Printf.sprintf
                                     "identical concurrent requests computed \
                                      %d times, expected 1"
                                     m)
                              else if h + j <> 3 then
                                fail
                                  (Printf.sprintf
                                     "expected 3 coalesced followers \
                                      (hits+joins), found %d"
                                     (h + j))
                              else
                                (* three more executed flights so the
                                   execution-side fault sites always fire
                                   on a byte-checked response *)
                                check_queries c0
                                  [ (11, q1); (12, q2); (13, q3) ]
                          | _ -> fail "stats output lacks cache counters"))))))

(* One flooding client, one well-behaved one, per-client cap 4.  The
   flood's first four requests coalesce onto one flight and answer ok;
   the rest are shed with the per-client reason, in FIFO order.  The
   well-behaved client's queries all answer with one-shot bytes. *)
let q_fair_b = [ (11, q2); (12, q3); (13, q_solo) ]

let fair_share ~jobs =
  with_server ~jobs:(clamp jobs)
    ~tweak:(fun c -> { c with Server.per_client_cap = 4 })
    (fun path ->
      with_client path (fun a ->
          with_client path (fun b ->
              let ids = List.init 8 (fun i -> i + 1) in
              let payload =
                String.concat "\n"
                  (List.map (fun id -> Protocol.encode_request ~id q1) ids)
              in
              match Client.send a payload with
              | Error e -> fail ("flooding client: " ^ e)
              | Ok () -> (
                  match Client.read_lines a ~n:8 ~timeout_s with
                  | Error e -> fail ("flooding client: " ^ e)
                  | Ok lines -> (
                      let check_reply i line =
                        let id = i + 1 in
                        if i < 4 then
                          if line = expected_line ~id q1 then None
                          else
                            Some
                              (Printf.sprintf
                                 "admitted flood request %d does not carry \
                                  the one-shot bytes"
                                 id)
                        else
                          match Protocol.decode_response line with
                          | Ok
                              (Protocol.Resp_overloaded
                                 { id = Some rid; reason = `Client; _ })
                            when rid = id ->
                              None
                          | _ ->
                              Some
                                (Printf.sprintf
                                   "flood request %d over the per-client cap \
                                    was not shed with reason per-client"
                                   id)
                      in
                      let bad =
                        List.mapi check_reply lines
                        |> List.find_map Fun.id
                      in
                      match bad with
                      | Some d -> fail d
                      | None -> (
                          (* the well-behaved client is untouched by the
                             flood next door *)
                          let v = check_queries b q_fair_b in
                          if not v.Oracle.ok then
                            fail ("well-behaved client: " ^ v.Oracle.detail)
                          else
                            match query_stats b with
                            | Error e -> fail e
                            | Ok output -> (
                                match
                                  stats_field output "single-flight joins"
                                with
                                | Some 3 -> pass_
                                | Some j ->
                                    fail
                                      (Printf.sprintf
                                         "expected the flood's 3 identical \
                                          admitted requests to coalesce, \
                                          found %d joins"
                                         j)
                                | None ->
                                    fail
                                      "stats output lacks a single-flight \
                                       line")))))))

(* ------------------------------------------------------------------ *)
(* Recovery oracles: crash-proof serving                               *)
(*                                                                     *)
(* The contract (after Gafni–Losa's crash/omission equivalence lens):  *)
(* a client must not be able to distinguish, byte for byte, a run      *)
(* against a supervised daemon that crashed and recovered from one     *)
(* that never crashed.  So these oracles do the opposite of ignoring   *)
(* recovery: they run the full supervised stack — spill dir, respawn   *)
(* loop, resilient client — and then treat any recovery event          *)
(* (a restart, a replay, a latency-guard trip) as a DETECTED fault     *)
(* even though the bytes came back right.  Control runs have no        *)
(* recovery events and pass clean.                                     *)

let sup_config =
  {
    Supervisor.default with
    max_restarts = 8;
    window_s = 60.;
    backoff_initial_s = 0.01;
    backoff_max_s = 0.05;
    verbose = false;
  }

let spill_counter = Atomic.make 0

let with_spill_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lsrv-spill-%d-%d" (Unix.getpid ())
         (Atomic.fetch_and_add spill_counter 1))
  in
  let rec rm path =
    match Sys.is_directory path with
    | true ->
        Array.iter (fun x -> rm (Filename.concat path x)) (Sys.readdir path);
        Sys.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then try rm dir with Sys_error _ -> ())
    (fun () -> f dir)

(* One supervised in-process daemon session: spill dir armed, spill on
   every response, no deadlines (verdicts must not depend on timing
   luck).  Returns [f]'s verdict plus the recovery evidence: supervised
   restarts, client replays, and the wall clock of the whole request
   phase (client connect through shutdown response, so an injected read
   stall always lands inside the measured window). *)
let with_supervised_server ~jobs ~dir f =
  let path = fresh_socket_path () in
  let cfg =
    {
      (Server.default_config ~socket_path:path) with
      jobs;
      request_timeout_s = 0.;
      idle_timeout_s = 0.;
      spill_dir = Some dir;
      spill_every = 1;
      install_signals = false;
    }
  in
  let dom =
    Domain.spawn (fun () ->
        Supervisor.run_inprocess ~config:sup_config (fun () -> Server.run cfg))
  in
  let rec wait n =
    if Sys.file_exists path then true
    else if n = 0 then false
    else begin
      Unix.sleepf 0.05;
      wait (n - 1)
    end
  in
  let ready = wait 100 in
  let t0 = Unix.gettimeofday () in
  let finish verdict ~replays =
    let elapsed = Unix.gettimeofday () -. t0 in
    let outcome = Domain.join dom in
    ignore (try Unix.unlink path with Unix.Unix_error _ -> ());
    (verdict, outcome.Supervisor.restarts, replays, elapsed)
  in
  (* last-ditch shutdown so [Domain.join] cannot hang behind a live
     respawned daemon when the main client's shutdown went missing *)
  let ensure_down () =
    match
      Client.connect_err ~retry:{ oracle_retry with connect_deadline_s = 1. } path
    with
    | Ok c ->
        ignore (Client.request c Protocol.Shutdown ~timeout_s:2.);
        Client.close c
    | Error _ -> ()
  in
  if not ready then finish (fail "server socket never appeared") ~replays:0
  else
    match Client.connect_err ~retry:oracle_retry path with
    | Error e ->
        ensure_down ();
        finish (fail ("connect: " ^ Client.error_message e)) ~replays:0
    | Ok c ->
        let verdict = try f c with e -> fail ("raised " ^ Printexc.to_string e) in
        let verdict =
          match Client.request c Protocol.Shutdown ~timeout_s:2. with
          | Ok _ -> verdict
          | Error e ->
              ensure_down ();
              if verdict.Oracle.ok then fail ("shutdown: " ^ e) else verdict
        in
        let replays = Client.replays c in
        Client.close c;
        finish verdict ~replays

(* The read-stall site adds a flat {!Fault.stall_seconds} (0.25 s) to
   some request read; the guard only applies when that site is the one
   armed, so a slow CI box can never flake a control run. *)
let stall_guard_s = 0.2

let stall_armed () =
  match Fault.armed () with
  | Some Fault.Serve_stalled_client -> true
  | _ -> false

(* Byte-correct responses with recovery events are detections, not
   passes (see the header above).  Details carry deterministic counts
   only — the chaos report must stay byte-identical across --jobs. *)
let absorbed ~restarts ~replays ~elapsed verdict =
  if not verdict.Oracle.ok then verdict
  else if restarts > 0 then
    fail
      (Printf.sprintf
         "detected %d supervised restart(s); recovery still reproduced the \
          crash-free bytes"
         restarts)
  else if replays > 0 then
    fail
      (Printf.sprintf
         "detected %d replayed request(s); recovery still reproduced the \
          crash-free bytes"
         replays)
  else if stall_armed () && elapsed > stall_guard_s then
    fail
      "detected an injected read stall (latency guard exceeded); responses \
       were still byte-correct"
  else verdict

let crash_recover_eq ~jobs =
  with_spill_dir (fun dir ->
      let verdict, restarts, replays, elapsed =
        with_supervised_server ~jobs:(clamp jobs) ~dir (fun c ->
            let rec go = function
              | [] -> pass_
              | (id, req) :: rest -> (
                  match Client.request c ~id req ~timeout_s with
                  | Error e -> fail e
                  | Ok line ->
                      if line = expected_line ~id req then go rest
                      else
                        fail
                          (Printf.sprintf
                             "recovered response %d differs from the \
                              crash-free rendering"
                             id))
            in
            go queries)
      in
      absorbed ~restarts ~replays ~elapsed verdict)

let warm_restart ~jobs =
  with_spill_dir (fun dir ->
      let phase f = with_supervised_server ~jobs:(clamp jobs) ~dir f in
      (* Phase 1: compute cold, spill (every response spills, and the
         drain spills again), stop cleanly. *)
      let v1, r1, p1, e1 =
        phase (fun c ->
            match Client.request c ~id:1 q1 ~timeout_s with
            | Error e -> fail e
            | Ok line ->
                if line = expected_line ~id:1 q1 then pass_
                else fail "cold response differs from the one-shot rendering")
      in
      if not v1.Oracle.ok then
        absorbed ~restarts:r1 ~replays:p1 ~elapsed:e1 v1
      else
        (* Phase 2: a fresh daemon on the same spill dir must answer the
           same bytes from the reloaded cache — the hit counter is the
           proof it reloaded rather than recomputed. *)
        let v2, r2, p2, e2 =
          phase (fun c ->
              match Client.request c ~id:1 q1 ~timeout_s with
              | Error e -> fail e
              | Ok line ->
                  if line <> expected_line ~id:1 q1 then
                    fail
                      "restarted daemon's answer differs from the crash-free \
                       bytes"
                  else (
                    match query_stats c with
                    | Error e -> fail e
                    | Ok output -> (
                        match stats_field output "result cache hits" with
                        | Some hits when hits >= 1 -> pass_
                        | Some _ ->
                            fail
                              "restarted daemon answered cold: no result-cache \
                               hit after spill reload"
                        | None -> fail "stats output lacks a result-cache line")))
        in
        absorbed ~restarts:(r1 + r2) ~replays:(p1 + p2) ~elapsed:(e1 +. e2) v2)

let replay_idempotent ~jobs =
  with_spill_dir (fun dir ->
      let verdict, restarts, replays, elapsed =
        with_supervised_server ~jobs:(clamp jobs) ~dir (fun c ->
            match Client.request c ~id:7 q1 ~timeout_s with
            | Error e -> fail e
            | Ok first ->
                if first <> expected_line ~id:7 q1 then
                  fail "first response differs from the one-shot rendering"
                else (
                  (* the same id again, deliberately: an explicit replay *)
                  match Client.request c ~id:7 q1 ~timeout_s with
                  | Error e -> fail ("duplicate send: " ^ e)
                  | Ok second ->
                      if second <> first then
                        fail "a replayed request id produced different bytes"
                      else (
                        match query_stats c with
                        | Error e -> fail e
                        | Ok output -> (
                            match
                              ( stats_field output "result cache hits",
                                stats_field output "result cache misses" )
                            with
                            | Some hits, _ when hits < 1 ->
                                fail
                                  "replayed request id was recomputed (no \
                                   result-cache hit)"
                            | _, Some misses when misses > 1 ->
                                fail
                                  (Printf.sprintf
                                     "replayed request id went cold %d times"
                                     misses)
                            | Some _, Some _ -> pass_
                            | _ -> fail "stats output lacks result-cache lines"))))
      in
      absorbed ~restarts ~replays ~elapsed verdict)

let oracles =
  [
    {
      Oracle.name = "serve/oneshot-eq";
      what = "daemon responses equal the one-shot CLI rendering, byte for byte";
      check = oneshot_eq;
    };
    {
      Oracle.name = "serve/interleave-eq";
      what =
        "responses are independent of client interleaving/grouping; cached \
         replays equal cold answers";
      check = interleave_eq;
    };
    {
      Oracle.name = "serve/jobs-eq";
      what = "a jobs=1 daemon and a multi-worker daemon answer identically";
      check = jobs_eq;
    };
    {
      Oracle.name = "serve/cancel-clean";
      what =
        "a client disconnect cancels only its own in-flight requests; \
         surviving clients see one-shot bytes and clean cache accounting";
      check = cancel_clean;
    };
    {
      Oracle.name = "serve/singleflight-eq";
      what =
        "identical concurrent requests coalesce onto one computation; every \
         waiter receives the leader's bytes";
      check = singleflight_eq;
    };
    {
      Oracle.name = "serve/fair-share";
      what =
        "a flooding client is shed at its per-client cap (FIFO, reason \
         per-client) while a well-behaved client gets one-shot bytes";
      check = fair_share;
    };
    {
      Oracle.name = "serve/crash-recover-eq";
      what =
        "a supervised daemon that crashes mid-batch still yields the \
         crash-free bytes; restarts and replays count as detections";
      check = crash_recover_eq;
    };
    {
      Oracle.name = "serve/warm-restart";
      what =
        "a restarted daemon answers from the reloaded spill (result-cache \
         hit), byte-identical to the cold run";
      check = warm_restart;
    };
    {
      Oracle.name = "serve/replay-idempotent";
      what =
        "resending a request id returns the first response's bytes from the \
         cache, never a recomputation";
      check = replay_idempotent;
    };
  ]

let register () = List.iter Oracle.register oracles
