module Oracle = Layered_analysis.Oracle

let pass_ = { Oracle.ok = true; detail = "ok" }
let fail detail = { Oracle.ok = false; detail }
let clamp jobs = max 2 jobs
let timeout_s = 10.

let counter = Atomic.make 0

(* Short names: ADDR_UNIX paths are capped near 104 bytes. *)
let fresh_socket_path () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "lsrv-%d-%d.sock" (Unix.getpid ())
       (Atomic.fetch_and_add counter 1))

(* An in-process daemon on its own domain.  [request_timeout_s = 0.]:
   oracle verdicts must not depend on deadline luck.  Shutdown goes over
   the wire in [finally], so the daemon dies even when [f] bails early;
   the client-side read deadline keeps a dead daemon from hanging us. *)
let with_server ~jobs f =
  let path = fresh_socket_path () in
  let cfg =
    {
      (Server.default_config ~socket_path:path) with
      jobs;
      request_timeout_s = 0.;
      install_signals = false;
    }
  in
  let dom = Domain.spawn (fun () -> Server.run cfg) in
  let rec wait n =
    if Sys.file_exists path then true
    else if n = 0 then false
    else begin
      Unix.sleepf 0.05;
      wait (n - 1)
    end
  in
  let ready = wait 100 in
  Fun.protect
    ~finally:(fun () ->
      (match Client.connect ~retries:3 path with
      | Ok c ->
          ignore (Client.request c Protocol.Shutdown ~timeout_s:5.);
          Client.close c
      | Error _ -> ());
      ignore (Domain.join dom : int);
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> if ready then f path else fail "server socket never appeared")

let with_client path f =
  match Client.connect path with
  | Error e -> fail e
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* Four queries, three distinct: q4 repeats q1 so the keyed result
   cache answers it — cache transparency is part of what the oracles
   assert. *)
let q1 = Protocol.Classify_valence { model = "sync"; n = 3; t = 1; depth = 3 }
let q2 = Protocol.Classify_valence { model = "mobile"; n = 3; t = 1; depth = 2 }
let q3 = Protocol.Sweep { model = "iis"; n = 3; t = 1; depth = 2 }
let queries = [ (1, q1); (2, q2); (3, q3); (4, q1) ]

(* One-shot references never touch dispatch or the server: an armed
   serve fault cannot contaminate the expectation being compared to. *)
let reference = function
  | Protocol.Classify_valence { model; n; t; depth } ->
      Dispatch.classify_output ~model ~n ~t ~depth ()
  | Protocol.Sweep { model; n; t; depth } ->
      Dispatch.sweep_output ~model ~n ~t ~depth ()
  | Protocol.Run_experiment { id } -> Dispatch.run_experiment_output ~id ()
  | Protocol.Stats_query | Protocol.Shutdown -> assert false

let expected_line ~id req =
  let exit_code, output = reference req in
  Protocol.encode_response
    (Protocol.Resp_ok { id = Some id; exit_code; output })

(* Sequential request/response over one connection; raw lines out. *)
let roundtrip c qs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (id, req) :: rest -> (
        match Client.request c ~id req ~timeout_s with
        | Ok line -> go (line :: acc) rest
        | Error _ as e -> e)
  in
  go [] qs

let oneshot_eq ~jobs =
  with_server ~jobs:(clamp jobs) (fun path ->
      with_client path (fun c ->
          let rec go = function
            | [] -> pass_
            | (id, req) :: rest ->
                (match Client.request c ~id req ~timeout_s with
                | Error e -> fail e
                | Ok line ->
                    if line = expected_line ~id req then go rest
                    else
                      fail
                        (Printf.sprintf
                           "response %d differs from the one-shot CLI rendering" id))
          in
          go queries))

let interleave_eq ~jobs =
  with_server ~jobs:(clamp jobs) (fun path ->
      with_client path (fun a ->
          with_client path (fun b ->
              (* A: one request line per write, lock-step *)
              match roundtrip a queries with
              | Error e -> fail ("client A: " ^ e)
              | Ok a_lines -> (
                  (* B: the same queries, reversed, in a single write *)
                  let b_queries = List.rev queries in
                  let payload =
                    String.concat "\n"
                      (List.map
                         (fun (id, req) -> Protocol.encode_request ~id req)
                         b_queries)
                  in
                  match Client.send b payload with
                  | Error e -> fail ("client B: " ^ e)
                  | Ok () -> (
                      match
                        Client.read_lines b ~n:(List.length b_queries) ~timeout_s
                      with
                      | Error e -> fail ("client B: " ^ e)
                      | Ok b_lines ->
                          if List.rev b_lines <> a_lines then
                            fail "responses depend on interleaving or grouping"
                          else
                            (* warm (cached) q4 vs cold q1: same bytes *)
                            let out i =
                              match Protocol.decode_response (List.nth a_lines i) with
                              | Ok (Protocol.Resp_ok { output; exit_code; _ }) ->
                                  Some (exit_code, output)
                              | _ -> None
                            in
                            if out 0 <> out 3 || out 0 = None then
                              fail "cached replay differs from the cold answer"
                            else pass_)))))

let jobs_eq ~jobs =
  let run_one ~jobs =
    with_server ~jobs (fun path ->
        with_client path (fun c ->
            match roundtrip c queries with
            | Ok lines -> { Oracle.ok = true; detail = String.concat "\x00" lines }
            | Error e -> fail e))
  in
  let serial = run_one ~jobs:1 in
  if not serial.Oracle.ok then fail ("jobs=1 daemon: " ^ serial.Oracle.detail)
  else
    let parallel = run_one ~jobs:(clamp jobs) in
    if not parallel.Oracle.ok then
      fail (Printf.sprintf "jobs=%d daemon: %s" (clamp jobs) parallel.Oracle.detail)
    else if serial.Oracle.detail <> parallel.Oracle.detail then
      fail "daemon responses differ between jobs=1 and a multi-worker pool"
    else pass_

let oracles =
  [
    {
      Oracle.name = "serve/oneshot-eq";
      what = "daemon responses equal the one-shot CLI rendering, byte for byte";
      check = oneshot_eq;
    };
    {
      Oracle.name = "serve/interleave-eq";
      what =
        "responses are independent of client interleaving/grouping; cached \
         replays equal cold answers";
      check = interleave_eq;
    };
    {
      Oracle.name = "serve/jobs-eq";
      what = "a jobs=1 daemon and a multi-worker daemon answer identically";
      check = jobs_eq;
    };
  ]

let register () = List.iter Oracle.register oracles
