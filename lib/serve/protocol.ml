module Registry = Layered_analysis.Registry
module Sweep_a = Layered_analysis.Sweep

type request =
  | Classify_valence of { model : string; n : int; t : int; depth : int }
  | Run_experiment of { id : string }
  | Sweep of { model : string; n : int; t : int; depth : int }
  | Stats_query
  | Shutdown

type error_code =
  | Parse
  | Bad_request
  | Out_of_range
  | Unknown_experiment
  | Unknown_model
  | Internal
  | Timeout
  | Cancelled

let error_code_name = function
  | Parse -> "parse"
  | Bad_request -> "bad-request"
  | Out_of_range -> "out-of-range"
  | Unknown_experiment -> "unknown-experiment"
  | Unknown_model -> "unknown-model"
  | Internal -> "internal"
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"

let error_code_of_name = function
  | "parse" -> Some Parse
  | "bad-request" -> Some Bad_request
  | "out-of-range" -> Some Out_of_range
  | "unknown-experiment" -> Some Unknown_experiment
  | "unknown-model" -> Some Unknown_model
  | "internal" -> Some Internal
  | "timeout" -> Some Timeout
  | "cancelled" -> Some Cancelled
  | _ -> None

type response =
  | Resp_ok of { id : int option; exit_code : int; output : string }
  | Resp_error of { id : int option; code : error_code; message : string }
  | Resp_overloaded of {
      id : int option;
      reason : [ `Queue | `Memory | `Client ];
      retry_after_s : float option;
    }

(* The CLI's parse-time lower bounds, plus upper caps: a daemon must not
   let one request size an exponential state space to fill the heap.
   The caps comfortably cover every workload in the test-suite and the
   registry (n <= 5, t <= 2, depth <= 8 across all experiments). *)
let max_n = 8
let max_t = 4
let max_depth = 12
let max_line_bytes = 65536

let reason_name = function
  | `Queue -> "queue-depth"
  | `Memory -> "memory"
  | `Client -> "per-client"

let reason_of_name = function
  | "queue-depth" -> Some `Queue
  | "memory" -> Some `Memory
  | "per-client" -> Some `Client
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Decoding                                                           *)

type 'a decode = ('a, error_code * string) result

let ( let* ) (x : 'a decode) f = match x with Ok v -> f v | Error _ as e -> e

let get_int obj key : int decode =
  match Jsonx.member key obj with
  | None -> Error (Bad_request, Printf.sprintf "missing member %S" key)
  | Some j -> (
      match Jsonx.to_int j with
      | Some i -> Ok i
      | None -> Error (Bad_request, Printf.sprintf "member %S must be an integer" key))

let get_str obj key : string decode =
  match Jsonx.member key obj with
  | None -> Error (Bad_request, Printf.sprintf "missing member %S" key)
  | Some j -> (
      match Jsonx.to_str j with
      | Some s -> Ok s
      | None -> Error (Bad_request, Printf.sprintf "member %S must be a string" key))

let in_range ~what ~lo ~hi v : int decode =
  if v < lo || v > hi then
    Error
      ( Out_of_range,
        Printf.sprintf "%s must be between %d and %d (got %d)" what lo hi v )
  else Ok v

let model_params obj : (string * int * int * int) decode =
  let* model = get_str obj "model" in
  let* model =
    if List.mem model Sweep_a.models then Ok model
    else
      Error
        ( Unknown_model,
          Printf.sprintf "unknown model %S (expected one of %s)" model
            (String.concat ", " Sweep_a.models) )
  in
  let* n = get_int obj "n" in
  let* n = in_range ~what:"n" ~lo:1 ~hi:max_n n in
  let* t = get_int obj "t" in
  let* t = in_range ~what:"t" ~lo:0 ~hi:max_t t in
  let* depth = get_int obj "depth" in
  let* depth = in_range ~what:"depth" ~lo:0 ~hi:max_depth depth in
  Ok (model, n, t, depth)

let decode_request line =
  match Jsonx.of_string line with
  | Error msg -> Error (None, Parse, "malformed JSON: " ^ msg)
  | Ok (Jsonx.Obj _ as obj) -> (
      (* The id decodes before anything else so every later rejection
         can still be matched to its request by the client. *)
      let id =
        match Jsonx.member "id" obj with
        | Some j -> Jsonx.to_int j
        | None -> None
      in
      let tag_err (code, msg) = Error (id, code, msg) in
      match Jsonx.member "id" obj with
      | Some j when Jsonx.to_int j = None ->
          tag_err (Bad_request, "member \"id\" must be an integer")
      | _ -> (
          match get_str obj "op" with
          | Error e -> tag_err e
          | Ok op -> (
              let decoded : request decode =
                match op with
                | "classify-valence" ->
                    let* model, n, t, depth = model_params obj in
                    Ok (Classify_valence { model; n; t; depth })
                | "sweep" ->
                    let* model, n, t, depth = model_params obj in
                    Ok (Sweep { model; n; t; depth })
                | "run-experiment" -> (
                    let* eid = get_str obj "experiment" in
                    match Registry.find eid with
                    | Some e -> Ok (Run_experiment { id = e.Registry.id })
                    | None ->
                        Error
                          (Unknown_experiment, Printf.sprintf "unknown experiment %S" eid))
                | "stats" -> Ok Stats_query
                | "shutdown" -> Ok Shutdown
                | other ->
                    Error (Bad_request, Printf.sprintf "unknown op %S" other)
              in
              match decoded with
              | Ok req -> Ok (id, req)
              | Error e -> tag_err e)))
  | Ok _ -> Error (None, Parse, "request must be a JSON object")

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)

let id_member id =
  ("id", match id with Some i -> Jsonx.Int i | None -> Jsonx.Null)

let encode_request ?id req =
  let base =
    match req with
    | Classify_valence { model; n; t; depth } ->
        [
          ("op", Jsonx.String "classify-valence");
          ("model", Jsonx.String model);
          ("n", Jsonx.Int n);
          ("t", Jsonx.Int t);
          ("depth", Jsonx.Int depth);
        ]
    | Sweep { model; n; t; depth } ->
        [
          ("op", Jsonx.String "sweep");
          ("model", Jsonx.String model);
          ("n", Jsonx.Int n);
          ("t", Jsonx.Int t);
          ("depth", Jsonx.Int depth);
        ]
    | Run_experiment { id } ->
        [ ("op", Jsonx.String "run-experiment"); ("experiment", Jsonx.String id) ]
    | Stats_query -> [ ("op", Jsonx.String "stats") ]
    | Shutdown -> [ ("op", Jsonx.String "shutdown") ]
  in
  let members =
    match id with Some i -> ("id", Jsonx.Int i) :: base | None -> base
  in
  Jsonx.to_string (Jsonx.Obj members)

let encode_response = function
  | Resp_ok { id; exit_code; output } ->
      Jsonx.to_string
        (Jsonx.Obj
           [
             id_member id;
             ("status", Jsonx.String "ok");
             ("exit", Jsonx.Int exit_code);
             ("output", Jsonx.String output);
           ])
  | Resp_error { id; code; message } ->
      Jsonx.to_string
        (Jsonx.Obj
           [
             id_member id;
             ("status", Jsonx.String "error");
             ("code", Jsonx.String (error_code_name code));
             ("message", Jsonx.String message);
           ])
  | Resp_overloaded { id; reason; retry_after_s } ->
      Jsonx.to_string
        (Jsonx.Obj
           ([
              id_member id;
              ("status", Jsonx.String "overloaded");
              ("reason", Jsonx.String (reason_name reason));
            ]
           @
           match retry_after_s with
           | Some s -> [ ("retry-after", Jsonx.Float s) ]
           | None -> []))

let decode_response line =
  match Jsonx.of_string line with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok obj -> (
      let id =
        match Jsonx.member "id" obj with
        | Some j -> Jsonx.to_int j
        | None -> None
      in
      match Option.bind (Jsonx.member "status" obj) Jsonx.to_str with
      | None -> Error "missing or non-string \"status\""
      | Some "ok" -> (
          match
            ( Option.bind (Jsonx.member "exit" obj) Jsonx.to_int,
              Option.bind (Jsonx.member "output" obj) Jsonx.to_str )
          with
          | Some exit_code, Some output -> Ok (Resp_ok { id; exit_code; output })
          | _ -> Error "ok response lacks integer \"exit\" or string \"output\"")
      | Some "error" -> (
          match
            ( Option.bind (Jsonx.member "code" obj) Jsonx.to_str,
              Option.bind (Jsonx.member "message" obj) Jsonx.to_str )
          with
          | Some code, Some message -> (
              match error_code_of_name code with
              | Some code -> Ok (Resp_error { id; code; message })
              | None -> Error (Printf.sprintf "unknown error code %S" code))
          | _ -> Error "error response lacks \"code\" or \"message\"")
      | Some "overloaded" -> (
          match Option.bind (Jsonx.member "reason" obj) Jsonx.to_str with
          | Some r -> (
              match reason_of_name r with
              | Some reason ->
                  let retry_after_s =
                    match Jsonx.member "retry-after" obj with
                    | Some (Jsonx.Float s) when s >= 0. -> Some s
                    | Some (Jsonx.Int s) when s >= 0 -> Some (float_of_int s)
                    | _ -> None
                  in
                  Ok (Resp_overloaded { id; reason; retry_after_s })
              | None -> Error (Printf.sprintf "unknown overload reason %S" r))
          | None -> Error "overloaded response lacks \"reason\"")
      | Some other -> Error (Printf.sprintf "unknown status %S" other))

let cache_key = function
  | Classify_valence { model; n; t; depth } ->
      Some (Printf.sprintf "classify/%s/%d/%d/%d" model n t depth)
  | Sweep { model; n; t; depth } ->
      Some (Printf.sprintf "sweep/%s/%d/%d/%d" model n t depth)
  | Run_experiment { id } -> Some ("run/" ^ id)
  | Stats_query | Shutdown -> None

let response_id = function
  | Resp_ok { id; _ } | Resp_error { id; _ } | Resp_overloaded { id; _ } -> id
