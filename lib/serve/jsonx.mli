(** A minimal JSON codec for the serve wire protocol.

    The sealed toolchain ships no JSON library, and the protocol needs
    only a conservative subset: finite numbers, strings, booleans,
    null, arrays and objects.  The printer emits compact single-line
    JSON (no raw newlines can appear inside a value — strings escape
    them), which is exactly what a line-delimited protocol needs.  The
    parser is a recursive-descent reader with a nesting-depth cap, and
    rejects trailing garbage, so a hostile client cannot blow the stack
    or smuggle a second document onto the same line. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact, single-line rendering.  Strings are escaped per RFC 8259
    (control characters as [\uXXXX]); non-finite floats render as
    [null]. *)
val to_string : t -> string

(** [of_string s] parses exactly one JSON document spanning all of [s]
    (surrounding whitespace allowed).  Errors are one-line descriptions
    with a byte offset.  Nesting deeper than {!max_depth} is rejected. *)
val of_string : string -> (t, string) result

val max_depth : int

(** {1 Accessors}

    Total lookups used by the protocol decoder; [None] on a missing
    member or a shape mismatch.  [member] is [None] on non-objects. *)

val member : string -> t -> t option

val to_int : t -> int option
val to_str : t -> string option
