(** Concurrent request dispatch with per-request fault domains.

    The {!Server} select loop stays single-threaded: it reads lines,
    feeds them to {!submit}, and calls {!pump} each iteration.  Compute
    requests become {e flights} — single-flight coalesced computations —
    queued on a deterministic {!Admission.Backlog} and executed on the
    domain {!Layered_runtime.Pool} via {!Dispatch.execute_concurrent},
    whole requests in parallel.  Completions travel back over a mutex'd
    queue plus a self-pipe ({!wakeup_fd}) that the select loop watches.

    {b Fault domains.}  Each connection owns a root
    {!Layered_runtime.Budget} token; each admitted request gets a child
    of it.  A client disconnect cancels the root — tripping exactly that
    connection's in-flight requests; a per-request deadline or an
    eviction cancels one child.  A cancelled request is answered with
    the structured [cancelled] error code, its partial output is
    discarded (never cached), and nothing else notices.

    {b Single-flight.}  Identical concurrent requests (same
    {!Protocol.cache_key}) coalesce onto one in-flight computation; the
    waiters receive the leader's result byte-for-byte.  If the leader is
    cancelled or its handler crashes, only the leader's client sees the
    error: the oldest surviving waiter is promoted and the computation
    re-queued under {e its} budget (the cancellation-safe retry).

    {b Determinism.}  Replies on one connection are flushed strictly in
    request order (out-of-order completions park until their turn), the
    backlog starts work in (deadline, arrival) order, and cache fills
    commit before any reply for that result — so daemon transcripts are
    byte-identical at [--jobs 1] and [--jobs 4].

    Not thread-safe: every function here must be called from the select
    loop's thread.  Only the pool-worker completion path touches the
    internal queue, under its own mutex. *)

(** Raised out of {!pump}/{!drain} when the [serve_crash_before_reply]
    fault fires on the commit path: caches are filled (and spilled on
    cadence), the reply is lost, the daemon dies abnormally. *)
exception Crashed

type t
type conn

(** [create ~ctx ~on_commit ()] — [on_commit] runs once per flushed
    response, {e before} the crash-before-reply fault site and the
    write: the server hooks its served-counter and spill cadence here.
    Concurrency is [jobs - 1] pool workers (the select loop owns the
    caller slot); at [jobs = 1] requests run inline at submission,
    reproducing sequential dispatch exactly. *)
val create : ctx:Dispatch.ctx -> on_commit:(unit -> unit) -> unit -> t

(** The read end of the completion self-pipe: add it to the select read
    set and call {!pump} when it (or anything else) wakes the loop. *)
val wakeup_fd : t -> Unix.file_descr

(** True once a [shutdown] request has been accepted. *)
val shutdown_requested : t -> bool

(** [add_conn t ~write ~on_dead] registers a connection.  [write] sends
    one response and returns whether the peer is still writable;
    [on_dead] runs exactly once when the connection is dropped (failed
    write, {!drop_conn}, or a flushed farewell) — the server closes the
    socket there. *)
val add_conn :
  t -> write:(Protocol.response -> bool) -> on_dead:(unit -> unit) -> conn

val conn_alive : conn -> bool

(** [submit t conn line] decodes, admits and enqueues one request line.
    Control requests answer immediately; compute requests join an
    existing flight, hit the result cache, or queue a new flight.  A
    queue-full shed first attempts the fair-share rescue: evict the
    newest queued flight of the deepest {e other} client if that client
    is strictly deeper than this one.  May raise {!Crashed} (via an
    immediate flush at [jobs = 1]). *)
val submit : t -> conn -> string -> unit

(** [finish_conn t conn ~farewell] queues a final response (timeout
    notice, oversized-line error) behind everything the connection is
    still owed and closes it once the whole FIFO has flushed — a reaped
    connection still receives its in-flight answers first. *)
val finish_conn : t -> conn -> farewell:Protocol.response -> unit

(** [drop_conn t conn] — the connection is gone.  Cancels its budget
    root, purges its queued work and its single-flight memberships,
    promotes flights it led to surviving waiters, and runs [on_dead].
    Idempotent. *)
val drop_conn : t -> conn -> unit

(** Process completed flights and start queued ones.  Call once per
    select iteration.  May raise {!Crashed}. *)
val pump : t -> unit

(** Block (in 50 ms select slices on the self-pipe) until no flight is
    running or queued — the shutdown path: stop reading, drain, then
    spill.  May raise {!Crashed}. *)
val drain : t -> unit

(** Close the self-pipe.  Call {e after} the pool is shut down, so no
    worker can write to a closed fd. *)
val close : t -> unit
