(** The serve wire protocol: line-delimited JSON requests and responses.

    One request per line, one response line per request line, in order.
    A request is a JSON object with an ["op"] member naming the query
    and an optional integer ["id"] echoed verbatim in the response (the
    handle concurrent clients use to match responses to requests):

    {v
    {"id":1,"op":"classify-valence","model":"sync","n":3,"t":1,"depth":4}
    {"id":2,"op":"sweep","model":"iis","n":3,"t":1,"depth":2}
    {"id":3,"op":"run-experiment","experiment":"E1"}
    {"id":4,"op":"stats"}
    {"id":5,"op":"shutdown"}
    v}

    Responses are one of three shapes:

    {v
    {"id":1,"status":"ok","exit":0,"output":"..."}
    {"id":1,"status":"error","code":"out-of-range","message":"..."}
    {"id":1,"status":"overloaded","reason":"queue-depth"}
    v}

    [output] holds exactly the bytes the one-shot CLI would print on
    stdout for the same query, so daemon answers diff cleanly against
    [layered classify] / [layered layers] / [layered run].  [exit]
    follows the CLI contract: 0 success, 1 failures found, 3 truncated
    by the per-request budget.

    Parameter validation applies the same lower bounds the CLI enforces
    at parse time ([n >= 1], [t >= 0], [depth >= 0]) plus serve-side
    upper caps ({!max_n}, {!max_t}, {!max_depth}) — a daemon answers
    strangers, so unlike the CLI it also refuses queries sized to hog
    the process. *)

type request =
  | Classify_valence of { model : string; n : int; t : int; depth : int }
  | Run_experiment of { id : string }
  | Sweep of { model : string; n : int; t : int; depth : int }
  | Stats_query
  | Shutdown

type error_code =
  | Parse  (** the line was not a JSON object of the documented shape *)
  | Bad_request  (** a member is missing or has the wrong type *)
  | Out_of_range  (** a parameter is outside the documented bounds *)
  | Unknown_experiment
  | Unknown_model
  | Internal  (** the handler failed; the daemon itself keeps serving *)
  | Timeout
      (** the server gave up waiting — a stalled connection holding half
          a request line past the idle deadline, never a compute result
          (deadline-tripped compute is a truncated [ok], exit 3) *)
  | Cancelled
      (** the request's fault domain was cancelled before a result was
          committed — its client disconnected, an admission fair-share
          eviction revoked it, or an injected cancellation tripped its
          budget token.  Scoped strictly to the one request: the daemon,
          its caches and every other in-flight request are unaffected *)

val error_code_name : error_code -> string

type response =
  | Resp_ok of { id : int option; exit_code : int; output : string }
  | Resp_error of { id : int option; code : error_code; message : string }
  | Resp_overloaded of {
      id : int option;
      reason : [ `Queue | `Memory | `Client ];
          (** [`Queue]: global queue depth; [`Memory]: heap watermark;
              [`Client]: this connection alone is past its fair-share
              in-flight cap ([per-client] on the wire) — other clients
              are still being admitted *)
      retry_after_s : float option;
          (** the server's backoff suggestion ([retry-after] on the
              wire); a resilient client sleeps this long and replays
              instead of treating shedding as failure *)
    }

(** Serve-side parameter caps (inclusive). *)

val max_n : int
val max_t : int
val max_depth : int

(** Longest accepted request line, newline excluded.  A longer line is
    answered with a [Parse] error and the connection is closed. *)
val max_line_bytes : int

(** [decode_request line] parses and validates one request line.
    [Ok (id, req)] carries the echoed request id; [Error (id, code,
    message)] still carries the id when the line parsed far enough to
    have one, so even a rejection can be matched by the client. *)
val decode_request :
  string -> (int option * request, int option * error_code * string) result

val encode_request : ?id:int -> request -> string
val encode_response : response -> string

(** [decode_response line] parses a response line — the client half of
    the codec, also used by the round-trip tests. *)
val decode_response : string -> (response, string) result

(** The result-cache key for a request: [Some] for the compute queries
    (identical keys must yield byte-identical responses), [None] for
    [Stats_query] and [Shutdown], which are never cached. *)
val cache_key : request -> string option

val response_id : response -> int option
