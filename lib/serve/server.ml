module Pool = Layered_runtime.Pool
module Stats = Layered_runtime.Stats
module Fault = Layered_runtime.Fault

type config = {
  socket_path : string;
  jobs : int;
  queue_cap : int;
  max_heap_mb : int;
  request_timeout_s : float;
  stats : bool;
  install_signals : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = 1;
    queue_cap = Admission.default.Admission.queue_cap;
    max_heap_mb = Admission.default.Admission.max_heap_mb;
    request_timeout_s = Admission.default.Admission.request_timeout_s;
    stats = false;
    install_signals = true;
  }

type client = { fd : Unix.file_descr; session : Session.t }

(* One response line.  The corrupt-response fault site lives here, on
   the byte boundary between dispatcher and socket: when armed, one
   response has its first byte flipped just before the write — the
   transport-level corruption the serve oracles must catch. *)
let write_response fd response =
  let line = Protocol.encode_response response ^ "\n" in
  let line =
    if Fault.point Fault.Serve_corrupt_response && String.length line > 0 then begin
      let b = Bytes.of_string line in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x20));
      Bytes.to_string b
    end
    else line
  in
  let len = String.length line in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd line off (len - off) in
      go (off + n)
  in
  try
    go 0;
    true
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
    false

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

type disposition = { signal : int; previous : Sys.signal_behavior }

let install_stop_handlers ~install_signals stop =
  let set signal behavior =
    match Sys.signal signal behavior with
    | previous -> Some { signal; previous }
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let stop_handler =
    Sys.Signal_handle (fun _ -> Atomic.set stop true)
  in
  List.filter_map Fun.id
    ((* writes to a client that vanished must surface as EPIPE, not kill
        the process *)
     set Sys.sigpipe Sys.Signal_ignore
    ::
    (if install_signals then
       [ set Sys.sigint stop_handler; set Sys.sigterm stop_handler ]
     else []))

let restore_handlers saved =
  List.iter
    (fun { signal; previous } ->
      try Sys.set_signal signal previous
      with Invalid_argument _ | Sys_error _ -> ())
    saved

let run cfg =
  let listener =
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (* a stale socket file from a crashed daemon would make bind fail *)
      unlink_quiet cfg.socket_path;
      Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen fd 64;
      Some fd
    with Unix.Unix_error (e, _, _) ->
      Format.eprintf "layered serve: cannot listen on %s: %s@." cfg.socket_path
        (Unix.error_message e);
      None
  in
  match listener with
  | None -> 2
  | Some listener ->
      Stats.reset ();
      Pool.with_pool ~jobs:cfg.jobs (fun pool ->
          let admission =
            {
              Admission.queue_cap = cfg.queue_cap;
              max_heap_mb = cfg.max_heap_mb;
              request_timeout_s = cfg.request_timeout_s;
            }
          in
          let ctx = Dispatch.create_ctx ~pool ~admission in
          let saved =
            install_stop_handlers ~install_signals:cfg.install_signals ctx.Dispatch.stop
          in
          let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
          let drop_client c =
            Hashtbl.remove clients c.fd;
            close_quiet c.fd
          in
          let stopped_by_request = ref false in
          let stopping () = Atomic.get ctx.Dispatch.stop in
          (* Answer every line already read from [c], oldest first.  The
             batch keeps draining after a shutdown request or signal:
             in-flight requests always get their response.  A failed
             write means the client is gone — drop it and abandon the
             rest of the batch rather than writing to a closed fd.
             Returns [false] when the client was dropped. *)
          let serve_lines c lines =
            let total = List.length lines in
            let dropped = ref false in
            List.iteri
              (fun i line ->
                if not !dropped then begin
                  let before = stopping () in
                  let response =
                    Dispatch.handle ctx ~pending:(total - 1 - i) line
                  in
                  if stopping () && not before then stopped_by_request := true;
                  if not (write_response c.fd response) then begin
                    drop_client c;
                    dropped := true
                  end
                end)
              lines;
            not !dropped
          in
          let handle_readable c =
            let buf = Bytes.create 4096 in
            match Unix.read c.fd buf 0 (Bytes.length buf) with
            | 0 -> drop_client c
            | n ->
                let lines, overflow =
                  Session.feed c.session (Bytes.sub_string buf 0 n)
                in
                let alive = serve_lines c lines in
                if overflow && alive then begin
                  (* line sync is lost; answer once, then hang up *)
                  ignore
                    (write_response c.fd
                       (Protocol.Resp_error
                          {
                            id = None;
                            code = Protocol.Parse;
                            message =
                              Printf.sprintf "request line exceeds %d bytes"
                                Protocol.max_line_bytes;
                          }));
                  drop_client c
                end
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error (_, _, _) -> drop_client c
          in
          while not (stopping ()) do
            let fds =
              listener :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
            in
            match Unix.select fds [] [] 0.2 with
            | readable, _, _ ->
                List.iter
                  (fun fd ->
                    if fd = listener then begin
                      match Unix.accept listener with
                      | client_fd, _ ->
                          Hashtbl.replace clients client_fd
                            { fd = client_fd; session = Session.create () }
                      | exception Unix.Unix_error (_, _, _) -> ()
                    end
                    else
                      match Hashtbl.find_opt clients fd with
                      | Some c -> handle_readable c
                      | None -> ())
                  readable
            | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                (* a signal landed; the loop condition notices the flag *)
                ()
          done;
          let stopped_by_signal = stopping () && not !stopped_by_request in
          (* One more pass: anything the signal interrupted mid-read has
             already been answered (dispatch is synchronous), so shutdown
             is closing fds and reporting. *)
          Hashtbl.iter (fun _ c -> close_quiet c.fd) clients;
          Hashtbl.reset clients;
          close_quiet listener;
          unlink_quiet cfg.socket_path;
          restore_handlers saved;
          if cfg.stats || stopped_by_signal then
            Format.eprintf "%a" Stats.pp (Stats.snapshot ());
          0)
