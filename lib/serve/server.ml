module Pool = Layered_runtime.Pool
module Stats = Layered_runtime.Stats
module Fault = Layered_runtime.Fault

type config = {
  socket_path : string;
  jobs : int;
  queue_cap : int;
  max_heap_mb : int;
  request_timeout_s : float;
  idle_timeout_s : float;
  spill_dir : string option;
  spill_every : int;
  stats : bool;
  install_signals : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = 1;
    queue_cap = Admission.default.Admission.queue_cap;
    max_heap_mb = Admission.default.Admission.max_heap_mb;
    request_timeout_s = Admission.default.Admission.request_timeout_s;
    idle_timeout_s = 30.;
    spill_dir = None;
    spill_every = 32;
    stats = false;
    install_signals = true;
  }

(* Distinguished from every CLI exit code (0 ok, 1 failures, 2 usage,
   3 truncated): what an injected daemon crash "exits" with, so the
   in-process supervisor can tell a simulated death from a clean stop. *)
let exit_crashed = 70

(* Raised by the crash-before-reply fault site: the in-process stand-in
   for the whole daemon dying between cache fill and response write. *)
exception Crashed

type client = {
  fd : Unix.file_descr;
  session : Session.t;
  mutable last_data_s : float;
      (* when this connection last produced bytes; with a partial line
         pending, the slow-loris deadline counts from here *)
}

(* One response line.  Two fault sites live here, on the byte boundary
   between dispatcher and socket: [Serve_corrupt_response] flips the
   first byte just before the write; [Serve_torn_frame] emits only the
   first half of the frame and reports the client dead — the torn
   window a crash between two write(2)s leaves, which the client-side
   replay must absorb.  Partial writes loop, and EAGAIN (a nonblocking
   socket with a full buffer) waits for writability instead of killing
   the daemon, so large responses survive small socket buffers. *)
let write_response fd response =
  let line = Protocol.encode_response response ^ "\n" in
  let line =
    if Fault.point Fault.Serve_corrupt_response && String.length line > 0 then begin
      let b = Bytes.of_string line in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x20));
      Bytes.to_string b
    end
    else line
  in
  let len = String.length line in
  let rec go off =
    if off < len then
      match Unix.write_substring fd line off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ignore (Unix.select [] [ fd ] [] 1.0);
          go off
  in
  if Fault.point Fault.Serve_torn_frame then begin
    (try ignore (Unix.write_substring fd line 0 (max 1 (len / 2)) : int)
     with Unix.Unix_error _ -> ());
    false
  end
  else
    try
      go 0;
      true
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
      false

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

type disposition = { signal : int; previous : Sys.signal_behavior }

let install_stop_handlers ~install_signals stop =
  let set signal behavior =
    match Sys.signal signal behavior with
    | previous -> Some { signal; previous }
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let stop_handler =
    Sys.Signal_handle (fun _ -> Atomic.set stop true)
  in
  List.filter_map Fun.id
    ((* writes to a client that vanished must surface as EPIPE, not kill
        the process *)
     set Sys.sigpipe Sys.Signal_ignore
    ::
    (if install_signals then
       [ set Sys.sigint stop_handler; set Sys.sigterm stop_handler ]
     else []))

let restore_handlers saved =
  List.iter
    (fun { signal; previous } ->
      try Sys.set_signal signal previous
      with Invalid_argument _ | Sys_error _ -> ())
    saved

let run cfg =
  let listener =
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (* a stale socket file from a crashed daemon would make bind fail *)
      unlink_quiet cfg.socket_path;
      Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen fd 64;
      Some fd
    with Unix.Unix_error (e, _, _) ->
      Format.eprintf "layered serve: cannot listen on %s: %s@." cfg.socket_path
        (Unix.error_message e);
      None
  in
  match listener with
  | None -> 2
  | Some listener ->
      Stats.reset ();
      Pool.with_pool ~jobs:cfg.jobs (fun pool ->
          let admission =
            {
              Admission.queue_cap = cfg.queue_cap;
              max_heap_mb = cfg.max_heap_mb;
              request_timeout_s = cfg.request_timeout_s;
            }
          in
          let ctx =
            Dispatch.create_ctx
              ~spill:(cfg.spill_dir <> None)
              ~pool ~admission ()
          in
          (* Warm-cache recovery: rehydrate both shared caches from the
             newest intact spill before the first request arrives. *)
          (match cfg.spill_dir with
          | Some dir ->
              let restored =
                Spill.load ~dir ~rcache:ctx.Dispatch.rcache
                  ~vcache:ctx.Dispatch.vcache
              in
              if restored > 0 then
                Format.eprintf "layered serve: restored %d cache entries@."
                  restored
          | None -> ());
          let served = ref 0 in
          let do_spill () =
            match cfg.spill_dir with
            | None -> ()
            | Some dir -> (
                match
                  Spill.save ~dir ~rcache:ctx.Dispatch.rcache
                    ~vcache:ctx.Dispatch.vcache
                with
                | Ok _ -> ()
                | Error e ->
                    Format.eprintf "layered serve: cache spill failed: %s@." e)
          in
          let saved =
            install_stop_handlers ~install_signals:cfg.install_signals ctx.Dispatch.stop
          in
          let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
          let drop_client c =
            Hashtbl.remove clients c.fd;
            close_quiet c.fd
          in
          let stopped_by_request = ref false in
          let stopping () = Atomic.get ctx.Dispatch.stop in
          (* Answer every line already read from [c], oldest first.  The
             batch keeps draining after a shutdown request or signal:
             in-flight requests always get their response.  A failed
             write means the client is gone — drop it and abandon the
             rest of the batch rather than writing to a closed fd.
             Returns [false] when the client was dropped. *)
          let serve_lines c lines =
            let total = List.length lines in
            let dropped = ref false in
            List.iteri
              (fun i line ->
                if not !dropped then begin
                  let before = stopping () in
                  let response =
                    Dispatch.handle ctx ~pending:(total - 1 - i) line
                  in
                  if stopping () && not before then stopped_by_request := true;
                  (* Spill BEFORE the crash site and the write: the
                     crash window the recovery oracles probe is "caches
                     filled and durable, reply lost" — the replayed
                     request must be answered from the reloaded cache,
                     never recomputed. *)
                  incr served;
                  if
                    cfg.spill_every > 0
                    && !served mod cfg.spill_every = 0
                  then do_spill ();
                  if Fault.point Fault.Serve_crash_before_reply then
                    raise Crashed;
                  if not (write_response c.fd response) then begin
                    drop_client c;
                    dropped := true
                  end
                end)
              lines;
            not !dropped
          in
          let handle_readable c =
            (* chaos site: the read path stalls before consuming bytes,
               as by a scheduling hiccup — the latency guard in the
               recovery oracles must notice *)
            if Fault.point Fault.Serve_stalled_client then
              Unix.sleepf Fault.stall_seconds;
            let buf = Bytes.create 4096 in
            match Unix.read c.fd buf 0 (Bytes.length buf) with
            | 0 -> drop_client c
            | n ->
                c.last_data_s <- Unix.gettimeofday ();
                let lines, overflow =
                  Session.feed c.session (Bytes.sub_string buf 0 n)
                in
                let alive = serve_lines c lines in
                if overflow && alive then begin
                  (* line sync is lost; answer once, then hang up *)
                  ignore
                    (write_response c.fd
                       (Protocol.Resp_error
                          {
                            id = None;
                            code = Protocol.Parse;
                            message =
                              Printf.sprintf "request line exceeds %d bytes"
                                Protocol.max_line_bytes;
                          }));
                  drop_client c
                end
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error (_, _, _) -> drop_client c
          in
          (* Slow-loris guard: a connection holding half a request line
             past the idle deadline gets a structured [timeout] error
             and is dropped — one stalled client must not wedge the
             select loop for the others.  Connections idle with an
             {e empty} buffer are legitimate (a keep-alive client
             between requests) and are left alone. *)
          let reap_stalled () =
            if cfg.idle_timeout_s > 0. then begin
              let now = Unix.gettimeofday () in
              let stalled =
                Hashtbl.fold
                  (fun _ c acc ->
                    if
                      Session.pending_bytes c.session > 0
                      && now -. c.last_data_s > cfg.idle_timeout_s
                    then c :: acc
                    else acc)
                  clients []
              in
              List.iter
                (fun c ->
                  ignore
                    (write_response c.fd
                       (Protocol.Resp_error
                          {
                            id = None;
                            code = Protocol.Timeout;
                            message =
                              Printf.sprintf
                                "no complete request line within %g s"
                                cfg.idle_timeout_s;
                          }));
                  drop_client c)
                stalled
            end
          in
          let serve_loop () =
            while not (stopping ()) do
              let fds =
                listener :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
              in
              (match Unix.select fds [] [] 0.2 with
              | readable, _, _ ->
                  List.iter
                    (fun fd ->
                      if fd = listener then begin
                        match Unix.accept listener with
                        | client_fd, _ ->
                            Hashtbl.replace clients client_fd
                              {
                                fd = client_fd;
                                session = Session.create ();
                                last_data_s = Unix.gettimeofday ();
                              }
                        | exception Unix.Unix_error (_, _, _) -> ()
                      end
                      else
                        match Hashtbl.find_opt clients fd with
                        | Some c -> handle_readable c
                        | None -> ())
                    readable
              | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                  (* a signal landed; the loop condition notices the flag *)
                  ());
              reap_stalled ()
            done
          in
          match serve_loop () with
          | () ->
              let stopped_by_signal = stopping () && not !stopped_by_request in
              (* One more pass: anything the signal interrupted mid-read
                 has already been answered (dispatch is synchronous), so
                 shutdown is spilling, closing fds and reporting. *)
              do_spill ();
              Hashtbl.iter (fun _ c -> close_quiet c.fd) clients;
              Hashtbl.reset clients;
              close_quiet listener;
              unlink_quiet cfg.socket_path;
              restore_handlers saved;
              if cfg.stats || stopped_by_signal then
                Format.eprintf "%a" Stats.pp (Stats.snapshot ());
              0
          | exception Crashed ->
              (* Simulated whole-daemon death: do what the kernel would
                 do for a real one — close fds — and nothing a dead
                 process could not: no drain spill, no socket unlink, no
                 stats.  The supervisor treats [exit_crashed] as
                 abnormal and respawns. *)
              Hashtbl.iter (fun _ c -> close_quiet c.fd) clients;
              Hashtbl.reset clients;
              close_quiet listener;
              restore_handlers saved;
              exit_crashed)
