module Pool = Layered_runtime.Pool
module Stats = Layered_runtime.Stats
module Fault = Layered_runtime.Fault

type config = {
  socket_path : string;
  jobs : int;
  queue_cap : int;
  max_heap_mb : int;
  request_timeout_s : float;
  per_client_cap : int;
  idle_timeout_s : float;
  spill_dir : string option;
  spill_every : int;
  spill_keep : int;
  stats : bool;
  install_signals : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = 1;
    queue_cap = Admission.default.Admission.queue_cap;
    max_heap_mb = Admission.default.Admission.max_heap_mb;
    request_timeout_s = Admission.default.Admission.request_timeout_s;
    per_client_cap = Admission.default.Admission.per_client_cap;
    idle_timeout_s = 30.;
    spill_dir = None;
    spill_every = 32;
    spill_keep = Spill.keep_generations;
    stats = false;
    install_signals = true;
  }

(* Distinguished from every CLI exit code (0 ok, 1 failures, 2 usage,
   3 truncated): what an injected daemon crash "exits" with, so the
   in-process supervisor can tell a simulated death from a clean stop. *)
let exit_crashed = 70

exception Crashed = Dispatcher.Crashed

type client = {
  fd : Unix.file_descr;
  session : Session.t;
  conn : Dispatcher.conn;
  mutable last_data_s : float;
      (* when this connection last produced bytes; with a partial line
         pending, the slow-loris deadline counts from here *)
}

(* One response line.  Two fault sites live here, on the byte boundary
   between dispatcher and socket: [Serve_corrupt_response] flips the
   first byte just before the write; [Serve_torn_frame] emits only the
   first half of the frame and reports the client dead — the torn
   window a crash between two write(2)s leaves, which the client-side
   replay must absorb.  Partial writes loop, and EAGAIN (a nonblocking
   socket with a full buffer) waits for writability instead of killing
   the daemon, so large responses survive small socket buffers. *)
let write_response fd response =
  let line = Protocol.encode_response response ^ "\n" in
  let line =
    if Fault.point Fault.Serve_corrupt_response && String.length line > 0 then begin
      let b = Bytes.of_string line in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x20));
      Bytes.to_string b
    end
    else line
  in
  let len = String.length line in
  let rec go off =
    if off < len then
      match Unix.write_substring fd line off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ignore (Unix.select [] [ fd ] [] 1.0);
          go off
  in
  if Fault.point Fault.Serve_torn_frame then begin
    (try ignore (Unix.write_substring fd line 0 (max 1 (len / 2)) : int)
     with Unix.Unix_error _ -> ());
    false
  end
  else
    try
      go 0;
      true
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
      false

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

type disposition = { signal : int; previous : Sys.signal_behavior }

let install_stop_handlers ~install_signals stop =
  let set signal behavior =
    match Sys.signal signal behavior with
    | previous -> Some { signal; previous }
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let stop_handler =
    Sys.Signal_handle (fun _ -> Atomic.set stop true)
  in
  List.filter_map Fun.id
    ((* writes to a client that vanished must surface as EPIPE, not kill
        the process *)
     set Sys.sigpipe Sys.Signal_ignore
    ::
    (if install_signals then
       [ set Sys.sigint stop_handler; set Sys.sigterm stop_handler ]
     else []))

let restore_handlers saved =
  List.iter
    (fun { signal; previous } ->
      try Sys.set_signal signal previous
      with Invalid_argument _ | Sys_error _ -> ())
    saved

let run cfg =
  let listener =
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (* a stale socket file from a crashed daemon would make bind fail *)
      unlink_quiet cfg.socket_path;
      Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen fd 64;
      Some fd
    with Unix.Unix_error (e, _, _) ->
      Format.eprintf "layered serve: cannot listen on %s: %s@." cfg.socket_path
        (Unix.error_message e);
      None
  in
  match listener with
  | None -> 2
  | Some listener ->
      Stats.reset ();
      let pool = Pool.create ~jobs:cfg.jobs () in
      let admission =
        {
          Admission.queue_cap = cfg.queue_cap;
          max_heap_mb = cfg.max_heap_mb;
          request_timeout_s = cfg.request_timeout_s;
          per_client_cap = cfg.per_client_cap;
        }
      in
      let ctx =
        Dispatch.create_ctx
          ~spill:(cfg.spill_dir <> None)
          ~pool ~admission ()
      in
      (* Warm-cache recovery: rehydrate both shared caches from the
         newest intact spill before the first request arrives. *)
      (match cfg.spill_dir with
      | Some dir ->
          let restored =
            Spill.load ~dir ~rcache:ctx.Dispatch.rcache
              ~vcache:ctx.Dispatch.vcache
          in
          if restored > 0 then
            Format.eprintf "layered serve: restored %d cache entries@."
              restored
      | None -> ());
      let served = ref 0 in
      let do_spill () =
        match cfg.spill_dir with
        | None -> ()
        | Some dir -> (
            match
              Spill.save ~keep:cfg.spill_keep ~dir
                ~rcache:ctx.Dispatch.rcache ~vcache:ctx.Dispatch.vcache ()
            with
            | Ok _ -> ()
            | Error e ->
                Format.eprintf "layered serve: cache spill failed: %s@." e)
      in
      (* Spill cadence runs per committed response, BEFORE the crash
         site and the write (inside Dispatcher.flush): the crash window
         the recovery oracles probe is "caches filled and durable,
         reply lost" — the replayed request must be answered from the
         reloaded cache, never recomputed. *)
      let disp =
        Dispatcher.create ~ctx
          ~on_commit:(fun () ->
            incr served;
            if cfg.spill_every > 0 && !served mod cfg.spill_every = 0 then
              do_spill ())
          ()
      in
      let saved =
        install_stop_handlers ~install_signals:cfg.install_signals
          ctx.Dispatch.stop
      in
      let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
      let stopping () = Atomic.get ctx.Dispatch.stop in
      let add_client client_fd =
        (* the cycle (conn needs fd's closures, client holds conn) is
           tied through [on_dead]: the dispatcher decides when the
           connection is dead — failed write, disconnect, or a flushed
           farewell — and this closure retires the fd exactly once *)
        let conn =
          Dispatcher.add_conn disp
            ~write:(fun resp -> write_response client_fd resp)
            ~on_dead:(fun () ->
              Hashtbl.remove clients client_fd;
              close_quiet client_fd)
        in
        Hashtbl.replace clients client_fd
          {
            fd = client_fd;
            session = Session.create ();
            conn;
            last_data_s = Unix.gettimeofday ();
          }
      in
      let handle_readable c =
        (* chaos site: the read path stalls before consuming bytes,
           as by a scheduling hiccup — the latency guard in the
           recovery oracles must notice *)
        if Fault.point Fault.Serve_stalled_client then
          Unix.sleepf Fault.stall_seconds;
        let buf = Bytes.create 4096 in
        match Unix.read c.fd buf 0 (Bytes.length buf) with
        | 0 -> Dispatcher.drop_conn disp c.conn
        | n ->
            c.last_data_s <- Unix.gettimeofday ();
            let lines, overflow =
              Session.feed c.session (Bytes.sub_string buf 0 n)
            in
            List.iter (Dispatcher.submit disp c.conn) lines;
            if overflow then
              (* line sync is lost; answer everything owed, then the
                 farewell, then hang up *)
              Dispatcher.finish_conn disp c.conn
                ~farewell:
                  (Protocol.Resp_error
                     {
                       id = None;
                       code = Protocol.Parse;
                       message =
                         Printf.sprintf "request line exceeds %d bytes"
                           Protocol.max_line_bytes;
                     })
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            (* a signal landed mid-read; select will re-offer the fd *)
            ()
        | exception Unix.Unix_error (_, _, _) ->
            Dispatcher.drop_conn disp c.conn
      in
      (* Slow-loris guard: a connection holding half a request line
         past the idle deadline gets a structured [timeout] error —
         queued behind any answers it is still owed — and is dropped;
         one stalled client must not wedge the select loop for the
         others.  Connections idle with an {e empty} buffer are
         legitimate (a keep-alive client between requests) and are
         left alone. *)
      let reap_stalled () =
        if cfg.idle_timeout_s > 0. then begin
          let now = Unix.gettimeofday () in
          let stalled =
            Hashtbl.fold
              (fun _ c acc ->
                if
                  Session.pending_bytes c.session > 0
                  && now -. c.last_data_s > cfg.idle_timeout_s
                then c :: acc
                else acc)
              clients []
          in
          List.iter
            (fun c ->
              Dispatcher.finish_conn disp c.conn
                ~farewell:
                  (Protocol.Resp_error
                     {
                       id = None;
                       code = Protocol.Timeout;
                       message =
                         Printf.sprintf
                           "no complete request line within %g s"
                           cfg.idle_timeout_s;
                     }))
            stalled
        end
      in
      (* EINTR discipline, audited: [select] interrupted by a signal is
         an empty readiness set (the loop condition re-checks the stop
         flag); [accept] interrupted by a signal retries immediately —
         a SIGUSR1 (or a stop signal, which the retry guard notices)
         during accept must never kill the daemon or lose the pending
         connection.  Other accept errors (ECONNABORTED, EMFILE) drop
         that one connection attempt and keep serving. *)
      let rec accept_retry () =
        match Unix.accept listener with
        | r -> Some r
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            if stopping () then None else accept_retry ()
        | exception Unix.Unix_error (_, _, _) -> None
      in
      let wake_r = Dispatcher.wakeup_fd disp in
      let serve_loop () =
        while not (stopping ()) do
          let fds =
            listener :: wake_r
            :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
          in
          (match Unix.select fds [] [] 0.2 with
          | readable, _, _ ->
              List.iter
                (fun fd ->
                  if fd = listener then (
                    match accept_retry () with
                    | Some (client_fd, _) -> add_client client_fd
                    | None -> ())
                  else
                    (* the wakeup pipe falls through here: pump below
                       drains it *)
                    match Hashtbl.find_opt clients fd with
                    | Some c -> handle_readable c
                    | None -> ())
                readable
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              (* a signal landed; the loop condition notices the flag *)
              ());
          (* settle completed flights, start queued ones, flush replies *)
          Dispatcher.pump disp;
          reap_stalled ()
        done
      in
      Fun.protect
        ~finally:(fun () ->
          (* pool first, pipe second: a worker finishing during
             shutdown must find the wakeup pipe still open *)
          Pool.shutdown pool;
          Dispatcher.close disp;
          restore_handlers saved)
        (fun () ->
          match
            serve_loop ();
            (* every admitted request still gets its response: finish
               running and queued flights before the final spill *)
            Dispatcher.drain disp
          with
          | () ->
              let stopped_by_signal =
                stopping () && not (Dispatcher.shutdown_requested disp)
              in
              do_spill ();
              Hashtbl.iter (fun _ c -> close_quiet c.fd) clients;
              Hashtbl.reset clients;
              close_quiet listener;
              unlink_quiet cfg.socket_path;
              if cfg.stats || stopped_by_signal then
                Format.eprintf "%a" Stats.pp (Stats.snapshot ());
              0
          | exception Crashed ->
              (* Simulated whole-daemon death: do what the kernel would
                 do for a real one — close fds — and nothing a dead
                 process could not: no drain spill, no socket unlink, no
                 stats.  The supervisor treats [exit_crashed] as
                 abnormal and respawns. *)
              Hashtbl.iter (fun _ c -> close_quiet c.fd) clients;
              Hashtbl.reset clients;
              close_quiet listener;
              exit_crashed)
