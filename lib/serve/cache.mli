(** The keyed result cache: identical compute requests are answered by
    replaying the recorded response bytes instead of recomputing.

    Keys come from {!Protocol.cache_key}; entries hold the rendered
    output and its exit code, so a hit reproduces the earlier response
    byte-for-byte.  Truncated results (exit code 3) must not be cached
    — a deadline trip depends on wall-clock luck, and replaying it
    would make responses depend on which request arrived first.  The
    dispatcher enforces that; the cache itself is policy-free.

    Every probe is counted in {!Layered_runtime.Stats}
    ([result_cache_hits] / [result_cache_misses]).  Not thread-safe:
    the serve dispatcher is single-threaded (parallelism lives inside
    queries, in the {!Layered_runtime.Pool}). *)

type entry = { exit_code : int; output : string }
type t

(** [create ?max_entries ()] — at [max_entries] (default 256) the next
    {!add} empties the cache first: crude, but bounded and free of
    eviction-order state that could differ between runs. *)
val create : ?max_entries:int -> unit -> t

(** [find t key] probes the cache, recording a hit or miss in stats. *)
val find : t -> string -> entry option

val add : t -> string -> entry -> unit
val entries : t -> int

(** The cache contents sorted by key — [Marshal]-safe and byte-stable,
    for the serve daemon's crash spill. *)
val export : t -> (string * entry) list

(** [import t entries] seeds the cache without touching the hit/miss
    counters; [max_entries] still applies. *)
val import : t -> (string * entry) list -> unit
