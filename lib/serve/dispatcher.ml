module Budget = Layered_runtime.Budget
module Pool = Layered_runtime.Pool
module Stats = Layered_runtime.Stats
module Fault = Layered_runtime.Fault

(* Raised by the crash-before-reply fault site on the commit path: the
   in-process stand-in for the whole daemon dying between cache fill
   and response write.  Propagates out of [pump]/[drain] to the server,
   which exits the incarnation abnormally. *)
exception Crashed

type conn = {
  conn_id : int;
  parent : Budget.t;
      (* the connection's fault-domain root: every admitted request
         gets a child of this token, so one [cancel] on disconnect
         trips exactly this connection's in-flight work *)
  write : Protocol.response -> bool;
  on_dead : unit -> unit;
  mutable next_seq : int;  (* sequence number for the next request *)
  mutable next_write : int;  (* next sequence number to flush *)
  ready : (int, Protocol.response) Hashtbl.t;
      (* out-of-order completions parked until their FIFO turn *)
  mutable inflight : int;  (* admitted compute requests awaiting reply *)
  mutable alive : bool;
  mutable closing : bool;  (* farewell queued; drop once fully flushed *)
}

(* One admitted request: where its reply goes and the budget token that
   is its fault domain. *)
type member = {
  m_conn : conn;
  m_seq : int;
  m_id : int option;
  m_budget : Budget.t;
}

(* One in-flight (or queued) computation.  Identical admitted requests
   coalesce here: the leader's budget drives the walk, waiters receive
   the leader's result — or, if the leader is cancelled or crashes, a
   waiter is promoted and the computation re-runs under the waiter's
   own budget (the cancellation-safe retry). *)
type flight = {
  key : string;
  f_req : Protocol.request;
  mutable leader : member;
  mutable waiters : member list;  (* newest first *)
}

type outcome = F_done of int * string | F_raised of string

type t = {
  ctx : Dispatch.ctx;
  on_commit : unit -> unit;
      (* the server's served-counter / spill-cadence hook, called once
         per flushed response, before the crash site and the write *)
  slots : int;  (* max concurrently-running flights *)
  mutable running : int;
  backlog : flight Admission.Backlog.t;
  flights : (string, flight) Hashtbl.t;  (* cache key -> flight *)
  completions : (string * outcome) Queue.t;  (* worker -> loop thread *)
  cmutex : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable next_conn_id : int;
  mutable shutdown_requested : bool;
}

let create ~ctx ~on_commit () =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  {
    ctx;
    on_commit;
    (* the select loop owns slot 0; compute runs on the workers.  A
       one-slot pool has no workers: requests then run inline at
       submission, reproducing the sequential dispatch exactly. *)
    slots = max 1 (Pool.jobs ctx.Dispatch.pool - 1);
    running = 0;
    backlog = Admission.Backlog.create ();
    flights = Hashtbl.create 32;
    completions = Queue.create ();
    cmutex = Mutex.create ();
    wake_r;
    wake_w;
    next_conn_id = 0;
    shutdown_requested = false;
  }

let wakeup_fd t = t.wake_r
let shutdown_requested t = t.shutdown_requested

let close t =
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

let add_conn t ~write ~on_dead =
  let id = t.next_conn_id in
  t.next_conn_id <- id + 1;
  {
    conn_id = id;
    parent = Budget.create ();
    write;
    on_dead;
    next_seq = 0;
    next_write = 0;
    ready = Hashtbl.create 8;
    inflight = 0;
    alive = true;
    closing = false;
  }

let conn_alive c = c.alive

(* ------------------------------------------------------------------ *)
(* Reply path: per-connection FIFO                                    *)

(* Flush every response whose FIFO turn has come.  The commit order per
   connection is the request order, whatever order computations finish
   in — the reply-ordering half of the determinism obligation.  May
   raise [Crashed] (the injected whole-daemon death). *)
let rec flush t c =
  if c.alive then begin
    match Hashtbl.find_opt c.ready c.next_write with
    | Some resp ->
        Hashtbl.remove c.ready c.next_write;
        c.next_write <- c.next_write + 1;
        (* Spill cadence BEFORE the crash site BEFORE the write: the
           crash window the recovery oracles probe is "caches filled
           and durable, reply lost". *)
        t.on_commit ();
        if Fault.point Fault.Serve_crash_before_reply then raise Crashed;
        if c.write resp then flush t c else drop_conn t c
    | None ->
        (* a closing connection (reaped, oversized line) drops once its
           whole FIFO — in-flight answers included — has been flushed *)
        if c.closing && c.next_write = c.next_seq then drop_conn t c
  end

and finish t c seq resp =
  if c.alive then begin
    Hashtbl.replace c.ready seq resp;
    flush t c
  end

(* Resolve one admitted member with a response.  [inflight] settles
   here exactly once per member, whatever path resolved it. *)
and resolve t (m : member) resp =
  if m.m_conn.alive then begin
    m.m_conn.inflight <- m.m_conn.inflight - 1;
    finish t m.m_conn m.m_seq resp
  end

and resolve_cancelled t m =
  Stats.record_request_cancelled ();
  resolve t m
    (Protocol.Resp_error
       {
         id = m.m_id;
         code = Protocol.Cancelled;
         message = "request cancelled before completion";
       })

(* The connection is gone (EOF, read error, failed write, or a flushed
   farewell).  Cancel its fault-domain root — every admitted child
   budget trips — purge its queued work, and promote flights it led
   whose waiters belong to other, still-live connections. *)
and drop_conn t c =
  if c.alive then begin
    c.alive <- false;
    Budget.cancel c.parent;
    Hashtbl.reset c.ready;
    (* drop this connection's waiters from every flight *)
    Hashtbl.iter
      (fun _ fl ->
        let mine, others =
          List.partition (fun m -> m.m_conn == c) fl.waiters
        in
        List.iter (fun _ -> Stats.record_request_cancelled ()) mine;
        fl.waiters <- others)
      t.flights;
    (* flights this connection leads that are still queued: re-lead
       them from a surviving waiter or forget them.  Running flights
       stay; their completion sees the cancelled leader and promotes
       then. *)
    let led = Admission.Backlog.remove_client t.backlog ~client:c.conn_id in
    List.iter
      (fun fl ->
        Stats.record_request_cancelled ();
        promote_or_forget t fl)
      led;
    c.on_dead ()
  end

(* Hand a queued-or-failed flight to its oldest surviving waiter, or
   drop it from the table.  Cancelled waiters resolve as [cancelled]
   on the way. *)
and promote_or_forget t fl =
  match List.rev fl.waiters with
  | [] -> Hashtbl.remove t.flights fl.key
  | oldest :: rest -> (
      fl.waiters <- List.rev rest;
      if (not oldest.m_conn.alive) || Budget.is_cancelled oldest.m_budget then begin
        if oldest.m_conn.alive then resolve_cancelled t oldest
        else Stats.record_request_cancelled ();
        promote_or_forget t fl
      end
      else begin
        fl.leader <- oldest;
        Admission.Backlog.push t.backlog ~client:oldest.m_conn.conn_id
          ~deadline:(deadline_of oldest.m_budget) fl
      end)

and deadline_of budget =
  match Budget.deadline_remaining budget with
  | None -> infinity
  | Some s -> Unix.gettimeofday () +. s

(* ------------------------------------------------------------------ *)
(* Scheduling                                                         *)

let enqueue_completion t key outcome =
  Mutex.lock t.cmutex;
  Queue.add (key, outcome) t.completions;
  Mutex.unlock t.cmutex;
  (* poke the select loop; EPIPE/EBADF after shutdown is harmless *)
  try ignore (Unix.write_substring t.wake_w "x" 0 1 : int)
  with Unix.Unix_error _ -> ()

let take_completion t =
  Mutex.lock t.cmutex;
  let c = Queue.take_opt t.completions in
  Mutex.unlock t.cmutex;
  c

let start_flight t fl =
  t.running <- t.running + 1;
  let budget = fl.leader.m_budget in
  let req = fl.f_req in
  let key = fl.key in
  Pool.post t.ctx.Dispatch.pool
    ~run:(fun () ->
      let outcome =
        match Dispatch.execute_concurrent t.ctx ~budget req with
        | exit_code, output -> F_done (exit_code, output)
        | exception e -> F_raised (Printexc.to_string e)
      in
      enqueue_completion t key outcome)
    ~fail:(fun e -> enqueue_completion t key (F_raised (Printexc.to_string e)))

let rec schedule t =
  if t.running < t.slots then
    match Admission.Backlog.pop t.backlog with
    | Some fl ->
        start_flight t fl;
        schedule t
    | None -> ()

(* ------------------------------------------------------------------ *)
(* Completion processing                                              *)

let settle t key outcome =
  t.running <- t.running - 1;
  match Hashtbl.find_opt t.flights key with
  | None -> ()  (* unreachable: running flights stay in the table *)
  | Some fl -> (
      let leader = fl.leader in
      let leader_cancelled =
        (not leader.m_conn.alive) || Budget.is_cancelled leader.m_budget
      in
      match outcome with
      | F_done (exit_code, output) when not leader_cancelled ->
          (* Valid result: commit the cache fill before any reply, so
             replies and cache state can never disagree.  Truncated
             (exit 3) results are this request's deadline luck and are
             never cached. *)
          if exit_code <> Dispatch.exit_trunc then
            Cache.add t.ctx.Dispatch.rcache key { Cache.exit_code; output };
          let waiters = List.rev fl.waiters in
          Hashtbl.remove t.flights key;
          resolve t leader
            (Protocol.Resp_ok { id = leader.m_id; exit_code; output });
          List.iter
            (fun w ->
              if (not w.m_conn.alive) || Budget.is_cancelled w.m_budget then begin
                if w.m_conn.alive then resolve_cancelled t w
                else Stats.record_request_cancelled ()
              end
              else
                resolve t w
                  (Protocol.Resp_ok { id = w.m_id; exit_code; output }))
            waiters
      | F_done _ | F_raised _ ->
          (* The leader was cancelled (its result, computed under a
             tripped token, is degraded and must be discarded) or the
             handler raised.  Fail only the leader; surviving waiters
             re-run under their own budget. *)
          (if leader.m_conn.alive then
             if Budget.is_cancelled leader.m_budget then
               resolve_cancelled t leader
             else
               match outcome with
               | F_raised message ->
                   resolve t leader
                     (Protocol.Resp_error
                        { id = leader.m_id; code = Protocol.Internal; message })
               | F_done _ -> resolve_cancelled t leader
           else Stats.record_request_cancelled ());
          promote_or_forget t fl)

(* Drain the wakeup pipe (edge coalescing: one select wakeup may cover
   many completions). *)
let drain_wake t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 (Bytes.length buf) with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

let rec pump t =
  drain_wake t;
  match take_completion t with
  | Some (key, outcome) ->
      settle t key outcome;
      pump t
  | None -> (
      schedule t;
      (* at jobs = 1 the pool has no workers and the flight ran inline
         during [schedule]: settle it now rather than next iteration *)
      match take_completion t with
      | Some (key, outcome) ->
          settle t key outcome;
          pump t
      | None -> ())

let idle t =
  t.running = 0
  && Admission.Backlog.length t.backlog = 0
  &&
  (Mutex.lock t.cmutex;
   let empty = Queue.is_empty t.completions in
   Mutex.unlock t.cmutex;
   empty)

let drain t =
  pump t;
  while not (idle t) do
    (match Unix.select [ t.wake_r ] [] [] 0.05 with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    pump t
  done

(* ------------------------------------------------------------------ *)
(* Submission                                                         *)

let overloaded id reason retry_after_s =
  Protocol.Resp_overloaded { id; reason; retry_after_s = Some retry_after_s }

(* Evicted members are answered [overloaded `Queue]: from the client's
   side a fair-share eviction is indistinguishable from never having
   been admitted, so the resilient client's retry-overloaded path just
   works. *)
let shed_flight t fl ~retry_after_s =
  Hashtbl.remove t.flights fl.key;
  let members = fl.leader :: List.rev fl.waiters in
  List.iter
    (fun m ->
      Budget.cancel m.m_budget;
      resolve t m (overloaded m.m_id `Queue retry_after_s))
    members

let submit_admitted t c seq id req budget =
  (* chaos site: this request's own token is cancelled at dispatch
     time, as by a disconnect racing the request — exactly one request
     must degrade to [cancelled]; the daemon, the caches and every
     other request must not notice *)
  if Fault.point Fault.Serve_cancel_midflight then Budget.cancel budget;
  if Budget.is_cancelled budget then begin
    (* tripped before any work — the cache-hit and single-flight paths
       must not mask a cancellation, or the chaos cell goes blind *)
    Stats.record_request_cancelled ();
    finish t c seq
      (Protocol.Resp_error
         {
           id;
           code = Protocol.Cancelled;
           message = "request cancelled before completion";
         })
  end
  else begin
  let m = { m_conn = c; m_seq = seq; m_id = id; m_budget = budget } in
  let key =
    match Protocol.cache_key req with
    | Some key -> key
    | None -> assert false (* control requests never reach admission *)
  in
  match Hashtbl.find_opt t.flights key with
  | Some fl ->
      (* single-flight: coalesce onto the identical in-flight request *)
      Stats.record_singleflight_join ();
      c.inflight <- c.inflight + 1;
      fl.waiters <- m :: fl.waiters
  | None -> (
      match Cache.find t.ctx.Dispatch.rcache key with
      | Some { Cache.exit_code; output } ->
          finish t c seq (Protocol.Resp_ok { id; exit_code; output })
      | None ->
          c.inflight <- c.inflight + 1;
          let fl = { key; f_req = req; leader = m; waiters = [] } in
          Hashtbl.add t.flights key fl;
          Admission.Backlog.push t.backlog ~client:c.conn_id
            ~deadline:(deadline_of budget) fl)
  end

let submit t c line =
  if c.alive && not c.closing then begin
    let seq = c.next_seq in
    c.next_seq <- seq + 1;
    match Protocol.decode_request line with
    | Error (id, code, message) ->
        finish t c seq (Protocol.Resp_error { id; code; message })
    | Ok (id, Protocol.Stats_query) ->
        (* control requests bypass admission and the result cache:
           stats must answer even when compute is shedding *)
        let output = Format.asprintf "%a" Stats.pp (Stats.snapshot ()) in
        finish t c seq (Protocol.Resp_ok { id; exit_code = 0; output })
    | Ok (id, Protocol.Shutdown) ->
        t.shutdown_requested <- true;
        Atomic.set t.ctx.Dispatch.stop true;
        finish t c seq
          (Protocol.Resp_ok { id; exit_code = 0; output = "shutting down\n" })
    | Ok (id, req) -> (
        let pending = t.running + Admission.Backlog.length t.backlog in
        match
          Admission.decide ~parent:c.parent t.ctx.Dispatch.admission ~pending
            ~client_pending:c.inflight
        with
        | Admission.Admit budget -> submit_admitted t c seq id req budget
        | Admission.Shed { reason = `Queue; retry_after_s } -> (
            (* fair-share rescue: when the global queue is full but
               this client's backlog is strictly shallower than the
               deepest one, evict that client's newest queued flight
               and admit the newcomer — one flooder cannot lock
               everyone else out *)
            let own =
              Admission.Backlog.depth_of t.backlog ~client:c.conn_id
            in
            match
              Admission.Backlog.evict_newest_of_deepest t.backlog
                ~spare:c.conn_id ~deeper_than:own
            with
            | Some (_, victim) ->
                shed_flight t victim ~retry_after_s;
                let timeout_s =
                  let s = t.ctx.Dispatch.admission.Admission.request_timeout_s in
                  if s > 0. then Some s else None
                in
                let budget =
                  Budget.child ?timeout_s
                    ~max_memory_mb:t.ctx.Dispatch.admission.Admission.max_heap_mb
                    c.parent
                in
                submit_admitted t c seq id req budget
            | None -> finish t c seq (overloaded id `Queue retry_after_s))
        | Admission.Shed { reason; retry_after_s } ->
            finish t c seq (overloaded id reason retry_after_s))
  end

(* Queue a farewell response (timeout, oversized line) behind whatever
   the connection is still owed, and close it once everything has been
   flushed in order — a reaped connection still gets its in-flight
   answers. *)
let finish_conn t c ~farewell =
  if c.alive && not c.closing then begin
    let seq = c.next_seq in
    c.next_seq <- seq + 1;
    c.closing <- true;
    finish t c seq farewell
  end
