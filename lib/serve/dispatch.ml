open Layered_analysis
module Budget = Layered_runtime.Budget
module Pool = Layered_runtime.Pool
module Stats = Layered_runtime.Stats
module Fault = Layered_runtime.Fault
module Report = Layered_core.Report

type ctx = {
  pool : Pool.t;
  vcache : Valence_query.cache;
  rcache : Cache.t;
  admission : Admission.config;
  stop : bool Atomic.t;
}

let create_ctx ?(spill = false) ~pool ~admission () =
  {
    pool;
    vcache = Valence_query.create_cache ~spill ();
    rcache = Cache.create ();
    admission;
    stop = Atomic.make false;
  }

let exit_trunc = 3

(* ------------------------------------------------------------------ *)
(* Renderers: same pretty-printers, same layout, same trailing lines   *)
(* as the one-shot CLI, captured into a string.                        *)

let with_buffer f =
  let b = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer b in
  let code = f ppf in
  Format.pp_print_flush ppf ();
  (code, Buffer.contents b)

(* Classification runs deadline-free by design: a deadline
   mid-exploration would make verdicts depend on cache warmth (a warm
   memo answers before the deadline, a cold one trips it), breaking the
   guarantee that responses are independent of request history.  The
   caps in [Protocol] bound the work instead.  [?budget] therefore
   carries only a {e cancellation} token (a limit-free budget child):
   a cancelled walk degrades to Unknown verdicts and caches nothing,
   and the dispatcher discards the output in favour of a [cancelled]
   error — warm-cache determinism is untouched. *)
let classify_output ?cache ?budget ~model ~n ~t ~depth () =
  with_buffer (fun ppf ->
      let q = Valence_query.run ?budget ?cache ~model ~n ~t ~depth () in
      Format.fprintf ppf "%a" Valence_query.pp q;
      0)

let sweep_output ?pool ?budget ~model ~n ~t ~depth () =
  with_buffer (fun ppf ->
      let sweep = Sweep.run ?pool ?budget ~model ~n ~t ~depth () in
      Format.fprintf ppf "%a" Sweep.pp sweep;
      match sweep.Sweep.status with Budget.Complete -> 0 | _ -> exit_trunc)

let run_experiment_output ?pool ?budget ~id () =
  let e =
    match Registry.find id with
    | Some e -> e
    | None -> invalid_arg ("Dispatch: unknown experiment " ^ id)
  in
  with_buffer (fun ppf ->
      let results =
        match pool with
        | Some pool -> Registry.run_all ~pool ?budget [ e ]
        | None -> Registry.run_all ?budget [ e ]
      in
      let rows =
        List.concat_map
          (fun ((e : Registry.experiment), rows) ->
            Format.fprintf ppf "== %s: %s@." e.id e.title;
            Format.fprintf ppf "%a" Report.pp_table rows;
            Format.fprintf ppf "@.";
            rows)
          results
      in
      let tripped = Option.bind budget Budget.tripped in
      (match tripped with
      | Some reason ->
          Format.fprintf ppf
            "TRUNCATED: budget exhausted (%a); the report above is partial.@."
            Budget.pp_reason reason
      | None -> ());
      if not (Report.all_pass rows) then begin
        Format.fprintf ppf "FAILURES among %d checks.@." (List.length rows);
        1
      end
      else
        match tripped with
        | Some _ -> exit_trunc
        | None ->
            Format.fprintf ppf "All %d checks passed.@." (List.length rows);
            0)

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)

let execute ctx ~budget req =
  (* The chaos harness arms this site to prove per-request containment:
     the raise must surface as an [internal] error response — and as a
     failing serve oracle — never as a dead daemon. *)
  if Fault.point Fault.Serve_handler_raise then
    raise (Fault.Injected Fault.Serve_handler_raise);
  match req with
  | Protocol.Classify_valence { model; n; t; depth } ->
      classify_output ~cache:ctx.vcache ~model ~n ~t ~depth ()
  | Protocol.Sweep { model; n; t; depth } ->
      sweep_output ~pool:ctx.pool ~budget ~model ~n ~t ~depth ()
  | Protocol.Run_experiment { id } ->
      run_experiment_output ~pool:ctx.pool ~budget ~id ()
  | Protocol.Stats_query | Protocol.Shutdown -> assert false

(* Task body for the concurrent dispatcher: runs on a pool worker, so
   inner parallelism is disabled (Pool combinators must not be nested
   on the same pool; serial and pooled renderings are byte-identical by
   construction) and the request's budget token is threaded everywhere
   — into classification as a pure cancellation child, so a disconnect
   or an eviction interrupts the walk without ever imposing a deadline
   on verdicts.  The leader-crash site lives here: every task is the
   leader of exactly one single-flight computation. *)
let execute_concurrent ctx ~budget req =
  if Fault.point Fault.Serve_handler_raise then
    raise (Fault.Injected Fault.Serve_handler_raise);
  if Fault.point Fault.Serve_singleflight_leader_crash then
    raise (Fault.Injected Fault.Serve_singleflight_leader_crash);
  match req with
  | Protocol.Classify_valence { model; n; t; depth } ->
      let cancel_token = Budget.child budget in
      classify_output ~cache:ctx.vcache ~budget:cancel_token ~model ~n ~t
        ~depth ()
  | Protocol.Sweep { model; n; t; depth } ->
      sweep_output ~budget ~model ~n ~t ~depth ()
  | Protocol.Run_experiment { id } -> run_experiment_output ~budget ~id ()
  | Protocol.Stats_query | Protocol.Shutdown -> assert false

let handle ctx ~pending line =
  match Protocol.decode_request line with
  | Error (id, code, message) -> Protocol.Resp_error { id; code; message }
  | Ok (id, Protocol.Stats_query) ->
      (* Control requests bypass admission, the result cache, and the
         fault site: stats must answer even when compute is shedding. *)
      let output = Format.asprintf "%a" Stats.pp (Stats.snapshot ()) in
      Protocol.Resp_ok { id; exit_code = 0; output }
  | Ok (id, Protocol.Shutdown) ->
      Atomic.set ctx.stop true;
      Protocol.Resp_ok { id; exit_code = 0; output = "shutting down\n" }
  | Ok (id, req) -> (
      match Admission.decide ctx.admission ~pending ~client_pending:0 with
      | Admission.Shed { reason; retry_after_s } ->
          Protocol.Resp_overloaded { id; reason; retry_after_s = Some retry_after_s }
      | Admission.Admit budget -> (
          let key = Protocol.cache_key req in
          let cached = Option.map (Cache.find ctx.rcache) key in
          match cached with
          | Some (Some { Cache.exit_code; output }) ->
              Protocol.Resp_ok { id; exit_code; output }
          | _ -> (
              match execute ctx ~budget req with
              | exit_code, output ->
                  (* A truncated (exit 3) result reflects this request's
                     deadline luck; replaying it would make later answers
                     depend on arrival order, so it is never cached. *)
                  if exit_code <> exit_trunc then
                    Option.iter
                      (fun k -> Cache.add ctx.rcache k { Cache.exit_code; output })
                      key;
                  Protocol.Resp_ok { id; exit_code; output }
              | exception e ->
                  Protocol.Resp_error
                    {
                      id;
                      code = Protocol.Internal;
                      message = Printexc.to_string e;
                    })))
