type site =
  | Drop_successor
  | Duplicate_state
  | Corrupt_dedup_shard
  | Worker_raise
  | Worker_stall
  | Spurious_cancel
  | Flip_valence_bit
  | Torn_checkpoint_write
  | Corrupt_checkpoint_crc
  | Serve_handler_raise
  | Serve_corrupt_response
  | Serve_torn_frame
  | Serve_stalled_client
  | Serve_crash_before_reply
  | Serve_cancel_midflight
  | Serve_singleflight_leader_crash
  | Frontier_spill_torn
  | Frontier_spill_enospc
  | Frontier_reload_corrupt

exception Injected of site

let all =
  [
    Drop_successor; Duplicate_state; Corrupt_dedup_shard; Worker_raise;
    Worker_stall; Spurious_cancel; Flip_valence_bit; Torn_checkpoint_write;
    Corrupt_checkpoint_crc; Serve_handler_raise; Serve_corrupt_response;
    Serve_torn_frame; Serve_stalled_client; Serve_crash_before_reply;
    Serve_cancel_midflight; Serve_singleflight_leader_crash;
    Frontier_spill_torn; Frontier_spill_enospc; Frontier_reload_corrupt;
  ]

let site_name = function
  | Drop_successor -> "drop_successor"
  | Duplicate_state -> "duplicate_state"
  | Corrupt_dedup_shard -> "corrupt_dedup_shard"
  | Worker_raise -> "worker_raise"
  | Worker_stall -> "worker_stall"
  | Spurious_cancel -> "spurious_cancel"
  | Flip_valence_bit -> "flip_valence_bit"
  | Torn_checkpoint_write -> "torn_checkpoint_write"
  | Corrupt_checkpoint_crc -> "corrupt_checkpoint_crc"
  | Serve_handler_raise -> "serve_handler_raise"
  | Serve_corrupt_response -> "serve_corrupt_response"
  | Serve_torn_frame -> "serve_torn_frame"
  | Serve_stalled_client -> "serve_stalled_client"
  | Serve_crash_before_reply -> "serve_crash_before_reply"
  | Serve_cancel_midflight -> "serve_cancel_midflight"
  | Serve_singleflight_leader_crash -> "serve_singleflight_leader_crash"
  | Frontier_spill_torn -> "frontier_spill_torn"
  | Frontier_spill_enospc -> "frontier_spill_enospc"
  | Frontier_reload_corrupt -> "frontier_reload_corrupt"

let site_of_name s = List.find_opt (fun site -> site_name site = s) all
let pp_site ppf s = Format.pp_print_string ppf (site_name s)

(* Make an injected fault unmistakable in reports and exception text. *)
let () =
  Printexc.register_printer (function
    | Injected s -> Some (Printf.sprintf "Fault.Injected(%s)" (site_name s))
    | _ -> None)

let stall_seconds = 0.25

(* The one hot-path guard.  Everything below it is only read when armed. *)
let enabled = Atomic.make false
let armed_site : site option Atomic.t = Atomic.make None
let armed_seed = Atomic.make 0
let visit_count = Atomic.make 0
let fire_count = Atomic.make 0
let fire_at = Atomic.make 0

(* A splitmix-style finaliser: spreads consecutive seeds over the firing
   window.  Stays within OCaml's tagged-int range. *)
let mix z =
  let z = (z + 0x9e3779b9) land 0x3fffffff in
  let z = z lxor (z lsr 16) in
  let z = z * 0x21f0aaad land 0x3fffffff in
  let z = z lxor (z lsr 15) in
  z * 0x735a2d97 land 0x3fffffff

(* The firing window is deliberately tiny: a site visited >= 3 times
   during the armed run is certain to fire, so chaos workloads only need
   to guarantee a handful of visits. *)
let fire_window = 3

let arm ~seed site =
  Atomic.set armed_site (Some site);
  Atomic.set armed_seed seed;
  Atomic.set visit_count 0;
  Atomic.set fire_count 0;
  Atomic.set fire_at (mix seed mod fire_window);
  Atomic.set enabled true

let disarm () =
  Atomic.set enabled false;
  Atomic.set armed_site None

let armed () = if Atomic.get enabled then Atomic.get armed_site else None

let armed_with () =
  match armed () with
  | None -> None
  | Some site -> Some (site, Atomic.get armed_seed)

let point site =
  Atomic.get enabled
  && Atomic.get armed_site = Some site
  &&
  (* fetch_and_add hands every racing visit a distinct index, so exactly
     one visit matches [fire_at]: the fault fires once, at a
     deterministic visit ordinal, on whichever domain got there. *)
  let v = Atomic.fetch_and_add visit_count 1 in
  v = Atomic.get fire_at
  && begin
       ignore (Atomic.fetch_and_add fire_count 1);
       true
     end

let hits () = Atomic.get visit_count
let fired () = Atomic.get fire_count

let mangle_level level =
  if not (Atomic.get enabled) then level
  else
    match level with
    | [] -> level
    | x :: rest ->
        if point Drop_successor then rest
        else if point Duplicate_state then x :: x :: rest
        else level
