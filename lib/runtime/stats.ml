type snapshot = {
  states_expanded : int;
  dedup_hits : int;
  valence_cache_hits : int;
  valence_cache_misses : int;
  tasks_executed : int;
  domains_utilised : int;
  workers_respawned : int;
  interned_states : int;
  intern_hits : int;
  simgraph_maskings : int;
  simgraph_candidates : int;
  result_cache_hits : int;
  result_cache_misses : int;
  requests_cancelled : int;
  singleflight_joins : int;
  gc_compactions : int;
  ckpt_rejected : int;
  mem_soft_events : int;
  spill_segments : int;
  spill_keys : int;
  spill_bytes : int;
  spill_write_failures : int;
  spill_reloads : int;
  spill_restarts : int;
  spill_backpressure : int;
  orbit_hits : int;
  statevec_states : int;
  arena_bytes : int;
}

let states_expanded = Atomic.make 0
let dedup_hits = Atomic.make 0
let valence_cache_hits = Atomic.make 0
let valence_cache_misses = Atomic.make 0
let tasks_executed = Atomic.make 0
let workers_respawned = Atomic.make 0
let interned_states = Atomic.make 0
let intern_hits = Atomic.make 0
let simgraph_maskings = Atomic.make 0
let simgraph_candidates = Atomic.make 0
let result_cache_hits = Atomic.make 0
let result_cache_misses = Atomic.make 0
let requests_cancelled = Atomic.make 0
let singleflight_joins = Atomic.make 0
let gc_compactions = Atomic.make 0
let ckpt_rejected = Atomic.make 0
let mem_soft_events = Atomic.make 0
let spill_segments = Atomic.make 0
let spill_keys = Atomic.make 0
let spill_bytes = Atomic.make 0
let spill_write_failures = Atomic.make 0
let spill_reloads = Atomic.make 0
let spill_restarts = Atomic.make 0
let spill_backpressure = Atomic.make 0
let orbit_hits = Atomic.make 0
let statevec_states = Atomic.make 0
let arena_bytes = Atomic.make 0

(* One bit per pool slot; popcount = "domains utilised". *)
let domain_mask = Atomic.make 0

let add counter n = if n <> 0 then ignore (Atomic.fetch_and_add counter n)
let add_states_expanded n = add states_expanded n
let add_dedup_hits n = add dedup_hits n

let record_valence_lookup ~hit =
  add (if hit then valence_cache_hits else valence_cache_misses) 1

let record_intern ~fresh = add (if fresh then interned_states else intern_hits) 1

let record_result_cache ~hit =
  add (if hit then result_cache_hits else result_cache_misses) 1

let record_request_cancelled () = add requests_cancelled 1
let record_singleflight_join () = add singleflight_joins 1
let record_gc_compaction () = add gc_compactions 1
let add_ckpt_rejected n = add ckpt_rejected n
let record_mem_soft_event () = add mem_soft_events 1

let record_spill_segment ~keys ~bytes =
  add spill_segments 1;
  add spill_keys keys;
  add spill_bytes bytes

let record_spill_write_failure () = add spill_write_failures 1
let record_spill_reload () = add spill_reloads 1
let record_spill_restart () = add spill_restarts 1
let record_spill_backpressure () = add spill_backpressure 1
let add_simgraph_maskings n = add simgraph_maskings n
let add_simgraph_candidates n = add simgraph_candidates n
let add_orbit_hits n = add orbit_hits n

let record_statevec ~bytes =
  add statevec_states 1;
  add arena_bytes bytes

let rec set_bit bit =
  let cur = Atomic.get domain_mask in
  let next = cur lor bit in
  if cur <> next && not (Atomic.compare_and_set domain_mask cur next) then set_bit bit

let record_task ~slot =
  add tasks_executed 1;
  set_bit (1 lsl min slot 62)

let record_worker_respawn () = add workers_respawned 1

let popcount n =
  let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
  go 0 n

let snapshot () =
  {
    states_expanded = Atomic.get states_expanded;
    dedup_hits = Atomic.get dedup_hits;
    valence_cache_hits = Atomic.get valence_cache_hits;
    valence_cache_misses = Atomic.get valence_cache_misses;
    tasks_executed = Atomic.get tasks_executed;
    domains_utilised = popcount (Atomic.get domain_mask);
    workers_respawned = Atomic.get workers_respawned;
    interned_states = Atomic.get interned_states;
    intern_hits = Atomic.get intern_hits;
    simgraph_maskings = Atomic.get simgraph_maskings;
    simgraph_candidates = Atomic.get simgraph_candidates;
    result_cache_hits = Atomic.get result_cache_hits;
    result_cache_misses = Atomic.get result_cache_misses;
    requests_cancelled = Atomic.get requests_cancelled;
    singleflight_joins = Atomic.get singleflight_joins;
    gc_compactions = Atomic.get gc_compactions;
    ckpt_rejected = Atomic.get ckpt_rejected;
    mem_soft_events = Atomic.get mem_soft_events;
    spill_segments = Atomic.get spill_segments;
    spill_keys = Atomic.get spill_keys;
    spill_bytes = Atomic.get spill_bytes;
    spill_write_failures = Atomic.get spill_write_failures;
    spill_reloads = Atomic.get spill_reloads;
    spill_restarts = Atomic.get spill_restarts;
    spill_backpressure = Atomic.get spill_backpressure;
    orbit_hits = Atomic.get orbit_hits;
    statevec_states = Atomic.get statevec_states;
    arena_bytes = Atomic.get arena_bytes;
  }

let reset () =
  Atomic.set states_expanded 0;
  Atomic.set dedup_hits 0;
  Atomic.set valence_cache_hits 0;
  Atomic.set valence_cache_misses 0;
  Atomic.set tasks_executed 0;
  Atomic.set workers_respawned 0;
  Atomic.set interned_states 0;
  Atomic.set intern_hits 0;
  Atomic.set simgraph_maskings 0;
  Atomic.set simgraph_candidates 0;
  Atomic.set result_cache_hits 0;
  Atomic.set result_cache_misses 0;
  Atomic.set requests_cancelled 0;
  Atomic.set singleflight_joins 0;
  Atomic.set gc_compactions 0;
  Atomic.set ckpt_rejected 0;
  Atomic.set mem_soft_events 0;
  Atomic.set spill_segments 0;
  Atomic.set spill_keys 0;
  Atomic.set spill_bytes 0;
  Atomic.set spill_write_failures 0;
  Atomic.set spill_reloads 0;
  Atomic.set spill_restarts 0;
  Atomic.set spill_backpressure 0;
  Atomic.set orbit_hits 0;
  Atomic.set statevec_states 0;
  Atomic.set arena_bytes 0;
  Atomic.set domain_mask 0

(* [domains_utilised] is a popcount, so restoring it can only mark "that
   many slots": the low bits stand in for whichever slots were live. *)
let mask_of_count k = (1 lsl min (max k 0) 62) - 1

let restore s =
  Atomic.set states_expanded s.states_expanded;
  Atomic.set dedup_hits s.dedup_hits;
  Atomic.set valence_cache_hits s.valence_cache_hits;
  Atomic.set valence_cache_misses s.valence_cache_misses;
  Atomic.set tasks_executed s.tasks_executed;
  Atomic.set workers_respawned s.workers_respawned;
  Atomic.set interned_states s.interned_states;
  Atomic.set intern_hits s.intern_hits;
  Atomic.set simgraph_maskings s.simgraph_maskings;
  Atomic.set simgraph_candidates s.simgraph_candidates;
  Atomic.set result_cache_hits s.result_cache_hits;
  Atomic.set result_cache_misses s.result_cache_misses;
  Atomic.set requests_cancelled s.requests_cancelled;
  Atomic.set singleflight_joins s.singleflight_joins;
  Atomic.set gc_compactions s.gc_compactions;
  Atomic.set ckpt_rejected s.ckpt_rejected;
  Atomic.set mem_soft_events s.mem_soft_events;
  Atomic.set spill_segments s.spill_segments;
  Atomic.set spill_keys s.spill_keys;
  Atomic.set spill_bytes s.spill_bytes;
  Atomic.set spill_write_failures s.spill_write_failures;
  Atomic.set spill_reloads s.spill_reloads;
  Atomic.set spill_restarts s.spill_restarts;
  Atomic.set spill_backpressure s.spill_backpressure;
  Atomic.set orbit_hits s.orbit_hits;
  Atomic.set statevec_states s.statevec_states;
  Atomic.set arena_bytes s.arena_bytes;
  Atomic.set domain_mask (mask_of_count s.domains_utilised)

let merge s =
  add states_expanded s.states_expanded;
  add dedup_hits s.dedup_hits;
  add valence_cache_hits s.valence_cache_hits;
  add valence_cache_misses s.valence_cache_misses;
  add tasks_executed s.tasks_executed;
  add workers_respawned s.workers_respawned;
  add interned_states s.interned_states;
  add intern_hits s.intern_hits;
  add simgraph_maskings s.simgraph_maskings;
  add simgraph_candidates s.simgraph_candidates;
  add result_cache_hits s.result_cache_hits;
  add result_cache_misses s.result_cache_misses;
  add requests_cancelled s.requests_cancelled;
  add singleflight_joins s.singleflight_joins;
  add gc_compactions s.gc_compactions;
  add ckpt_rejected s.ckpt_rejected;
  add mem_soft_events s.mem_soft_events;
  add spill_segments s.spill_segments;
  add spill_keys s.spill_keys;
  add spill_bytes s.spill_bytes;
  add spill_write_failures s.spill_write_failures;
  add spill_reloads s.spill_reloads;
  add spill_restarts s.spill_restarts;
  add spill_backpressure s.spill_backpressure;
  add orbit_hits s.orbit_hits;
  add statevec_states s.statevec_states;
  add arena_bytes s.arena_bytes;
  let rec or_mask m =
    let cur = Atomic.get domain_mask in
    let next = cur lor m in
    if cur <> next && not (Atomic.compare_and_set domain_mask cur next) then
      or_mask m
  in
  or_mask (mask_of_count s.domains_utilised)

let diff a b =
  let d x y = max 0 (x - y) in
  {
    states_expanded = d a.states_expanded b.states_expanded;
    dedup_hits = d a.dedup_hits b.dedup_hits;
    valence_cache_hits = d a.valence_cache_hits b.valence_cache_hits;
    valence_cache_misses = d a.valence_cache_misses b.valence_cache_misses;
    tasks_executed = d a.tasks_executed b.tasks_executed;
    (* utilisation is a set, not a count: a "delta" keeps [a]'s view *)
    domains_utilised = a.domains_utilised;
    workers_respawned = d a.workers_respawned b.workers_respawned;
    interned_states = d a.interned_states b.interned_states;
    intern_hits = d a.intern_hits b.intern_hits;
    simgraph_maskings = d a.simgraph_maskings b.simgraph_maskings;
    simgraph_candidates = d a.simgraph_candidates b.simgraph_candidates;
    result_cache_hits = d a.result_cache_hits b.result_cache_hits;
    result_cache_misses = d a.result_cache_misses b.result_cache_misses;
    requests_cancelled = d a.requests_cancelled b.requests_cancelled;
    singleflight_joins = d a.singleflight_joins b.singleflight_joins;
    gc_compactions = d a.gc_compactions b.gc_compactions;
    ckpt_rejected = d a.ckpt_rejected b.ckpt_rejected;
    mem_soft_events = d a.mem_soft_events b.mem_soft_events;
    spill_segments = d a.spill_segments b.spill_segments;
    spill_keys = d a.spill_keys b.spill_keys;
    spill_bytes = d a.spill_bytes b.spill_bytes;
    spill_write_failures = d a.spill_write_failures b.spill_write_failures;
    spill_reloads = d a.spill_reloads b.spill_reloads;
    spill_restarts = d a.spill_restarts b.spill_restarts;
    spill_backpressure = d a.spill_backpressure b.spill_backpressure;
    orbit_hits = d a.orbit_hits b.orbit_hits;
    statevec_states = d a.statevec_states b.statevec_states;
    arena_bytes = d a.arena_bytes b.arena_bytes;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>runtime stats:@,\
    \  states expanded       %d@,\
    \  dedup hits            %d@,\
    \  valence cache hits    %d@,\
    \  valence cache misses  %d@,\
    \  tasks executed        %d@,\
    \  domains utilised      %d@,\
    \  workers respawned     %d@,\
    \  interned states       %d@,\
    \  intern hits           %d@,\
    \  simgraph maskings     %d@,\
    \  simgraph candidates   %d@,\
    \  result cache hits     %d@,\
    \  result cache misses   %d@,\
    \  requests cancelled    %d@,\
    \  single-flight joins   %d@,\
    \  gc compactions        %d@,\
    \  checkpoint generations rejected  %d@,\
    \  memory soft events    %d@,\
    \  spill segments written  %d@,\
    \  spill keys evicted    %d@,\
    \  spill bytes written   %d@,\
    \  spill write failures  %d@,\
    \  spill segment reloads  %d@,\
    \  spill restarts        %d@,\
    \  spill backpressure waits  %d@,\
    \  orbit hits            %d@,\
    \  statevec states       %d@,\
    \  arena bytes           %d@]@."
    s.states_expanded s.dedup_hits s.valence_cache_hits s.valence_cache_misses
    s.tasks_executed s.domains_utilised s.workers_respawned s.interned_states
    s.intern_hits s.simgraph_maskings s.simgraph_candidates s.result_cache_hits
    s.result_cache_misses s.requests_cancelled s.singleflight_joins
    s.gc_compactions s.ckpt_rejected s.mem_soft_events s.spill_segments
    s.spill_keys s.spill_bytes s.spill_write_failures s.spill_reloads
    s.spill_restarts s.spill_backpressure s.orbit_hits s.statevec_states
    s.arena_bytes
