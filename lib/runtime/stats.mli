(** Process-wide instrumentation counters for the multicore runtime.

    All counters are [Atomic]-backed and may be bumped from any domain.
    They are cumulative across the whole process: callers that want
    per-phase numbers should [reset] first and [snapshot] after.  The
    counters observe, never influence, execution — enabling them costs a
    handful of atomic adds per explored state. *)

type snapshot = {
  states_expanded : int;
      (** states whose successor list was computed (BFS interior nodes) *)
  dedup_hits : int;
      (** candidate states discarded because their key was already seen *)
  valence_cache_hits : int;  (** memo-table hits in {!Layered_core.Valence} *)
  valence_cache_misses : int;  (** memo-table misses (entry (re)computed) *)
  tasks_executed : int;  (** work chunks executed by {!Pool.parallel_map} *)
  domains_utilised : int;
      (** distinct pool slots (caller = slot 0, workers = 1..) that
          executed at least one chunk since the last [reset] *)
  workers_respawned : int;
      (** dead worker domains replaced by {!Pool} crash containment *)
  interned_states : int;
      (** distinct states hash-consed into {!Layered_core.Intern} tables
          (the total intern-table population across all engines) *)
  intern_hits : int;
      (** intern calls answered by an existing table entry (per-state
          memo-slot hits are not counted — they never reach the table) *)
  simgraph_maskings : int;
      (** state × masked-position bucket insertions performed by the
          bucketed similarity-graph builder (its O(m·n) term) *)
  simgraph_candidates : int;
      (** bucket-mate pairs verified exactly by the bucketed builder
          (the output-sensitive term; compare against m²/2 probes) *)
  result_cache_hits : int;
      (** serve-mode keyed result-cache probes answered from the cache
          (the response bytes were replayed, not recomputed) *)
  result_cache_misses : int;
      (** result-cache probes that fell through to a fresh computation *)
  requests_cancelled : int;
      (** serve requests answered with the structured [cancelled] error
          (their per-request fault domain was cancelled — disconnect,
          shed eviction or injected cancellation) *)
  singleflight_joins : int;
      (** serve requests that coalesced onto an identical in-flight
          computation instead of starting their own engine walk *)
  gc_compactions : int;
      (** [Gc.compact] calls issued by the memory-pressure ladder — a
          fragmented heap is compacted (once per budget) before the
          [Memory] hard trip or a spill is allowed to fire *)
  ckpt_rejected : int;
      (** checkpoint generations {!Checkpoint.load_latest} skipped
          because they were torn or corrupt (rolled back past) *)
  mem_soft_events : int;
      (** level boundaries at which the sampled heap was found above the
          soft watermark (the degradation ladder engaged) *)
  spill_segments : int;
      (** dedup/prefix segments written to the spill directory and
          validated by the post-write read-back *)
  spill_keys : int;  (** committed dedup keys evicted from the heap to disk *)
  spill_bytes : int;  (** payload bytes written into validated spill segments *)
  spill_write_failures : int;
      (** segment writes abandoned (torn read-back, ENOSPC, I/O error);
          their keys stayed in core — graceful degradation, not data loss *)
  spill_reloads : int;
      (** spilled segments read back from disk into the probe cache *)
  spill_restarts : int;
      (** traversals restarted in-core because a spilled segment was
          lost or corrupt at reload time — re-exploration, never wrong
          dedup *)
  spill_backpressure : int;
      (** level dispatches held back (compaction forced) because the
          heap was still above the watermark after spilling *)
  orbit_hits : int;
      (** candidate states merged into an already-claimed symmetry orbit
          by the canon-keyed frontier dedup (states the unreduced run
          would have explored separately) *)
  statevec_states : int;
      (** distinct packed state vectors hash-consed into
          {!Layered_core.Statevec} arenas *)
  arena_bytes : int;
      (** bytes of packed state-vector storage across all statevec
          arenas (the flat encoding backing the hot explore/valence
          paths) *)
}

val reset : unit -> unit
val snapshot : unit -> snapshot
val pp : Format.formatter -> snapshot -> unit

(** [restore s] overwrites the live counters with [s] — used to roll the
    counters back to a pre-attempt snapshot when the work that bumped
    them is discarded (a failed experiment attempt that gets rerun, a
    parallel map superseded by a serial fallback).  [domains_utilised]
    is a popcount, so restore marks that many low slots as utilised
    rather than the original slot set. *)
val restore : snapshot -> unit

(** [merge s] adds [s]'s counts into the live counters — used when a
    resumed run inherits the counter state of the checkpointed prefix. *)
val merge : snapshot -> unit

(** [diff a b] is the pointwise difference [a - b], clamped at zero:
    the counter delta between two snapshots taken around an attempt.
    [domains_utilised] is carried over from [a] (deltas of a popcount
    are not meaningful). *)
val diff : snapshot -> snapshot -> snapshot

(** {1 Incrementors}

    Cheap and lock-free; safe from any domain.  No-ops when the delta is
    zero. *)

val add_states_expanded : int -> unit
val add_dedup_hits : int -> unit
val record_valence_lookup : hit:bool -> unit

(** [record_intern ~fresh] counts one intern-table probe: a fresh
    insert when [fresh], a hit on an existing entry otherwise. *)
val record_intern : fresh:bool -> unit

val add_simgraph_maskings : int -> unit
val add_simgraph_candidates : int -> unit

(** [add_orbit_hits n] counts [n] candidates that dedup'd against an
    already-claimed orbit representative under [--symmetry]. *)
val add_orbit_hits : int -> unit

(** [record_statevec ~bytes] counts one fresh packed vector of [bytes]
    bytes hash-consed into a statevec arena. *)
val record_statevec : bytes:int -> unit

(** [record_result_cache ~hit] counts one keyed result-cache probe in
    the serve daemon: a replayed response when [hit], a fresh
    computation otherwise. *)
val record_result_cache : hit:bool -> unit

(** One serve request was answered with the [cancelled] error code. *)
val record_request_cancelled : unit -> unit

(** One serve request joined an identical in-flight computation as a
    single-flight waiter. *)
val record_singleflight_join : unit -> unit

(** One [Gc.compact] issued by the memory-pressure ladder. *)
val record_gc_compaction : unit -> unit

(** [add_ckpt_rejected n] counts [n] torn/corrupt checkpoint generations
    rolled back past by {!Checkpoint.load_latest}. *)
val add_ckpt_rejected : int -> unit

(** The sampled heap crossed the soft watermark at a level boundary. *)
val record_mem_soft_event : unit -> unit

(** [record_spill_segment ~keys ~bytes] counts one validated spill
    segment holding [keys] evicted keys and [bytes] payload bytes. *)
val record_spill_segment : keys:int -> bytes:int -> unit

(** One segment write was abandoned; its keys stayed in core. *)
val record_spill_write_failure : unit -> unit

(** One spilled segment was read back from disk for a membership probe
    or a checkpoint flush. *)
val record_spill_reload : unit -> unit

(** One traversal fell back to in-core re-exploration after losing a
    spilled segment. *)
val record_spill_restart : unit -> unit

(** One level dispatch was held until eviction took effect. *)
val record_spill_backpressure : unit -> unit

(** [record_task ~slot] counts one executed chunk and marks pool slot
    [slot] as utilised (slots >= 62 share the last bit). *)
val record_task : slot:int -> unit

(** One dead worker domain was detected and respawned. *)
val record_worker_respawn : unit -> unit
