(** Durable, crash-safe snapshots of in-flight runs.

    The budget layer makes infeasible instances degrade to partial
    results; this module makes those partials survive the process.  A
    checkpoint is a {e generation-numbered} file in a caller-chosen
    directory: [<name>.g000001.ckpt], [<name>.g000002.ckpt], ... — each
    save appends a new generation, never overwrites an old one.

    {b Format.}  [magic | body-length (u32 BE) | body CRC-32 (u32 BE) |
    body], where the body is [Marshal] of [(meta, payload)] and the
    payload is an opaque string the caller encodes (typically another
    [Marshal] of its own resume state).  Validation is layered: a torn
    write fails the length check, a flipped byte fails the CRC check,
    and [Marshal] only ever runs on a body both checks accepted.

    {b Atomicity.}  [save] writes to [<file>.tmp] and [Sys.rename]s it
    into place; readers never observe a half-visible generation under a
    POSIX rename.  Torn {e contents} (a crash mid-write that still left
    a file) are the CRC/length checks' job, exercised by the
    [Torn_checkpoint_write] and [Corrupt_checkpoint_crc] fault sites
    that live inside [save] itself.

    {b Rollback.}  {!load_latest} walks generations newest-first and
    returns the newest {e intact} one, reporting how many newer
    generations it had to reject — a corrupt latest generation rolls
    back to the previous good snapshot instead of crashing or resuming
    from garbage.  The [recovery/rollback] oracle holds this contract
    under fault injection. *)

(** Bumped whenever the format changes; snapshots from another version
    are rejected as not-intact rather than misread. *)
val current_version : int

type meta = {
  version : int;
  created_s : float;  (** wall-clock save time, [Unix.gettimeofday] scale *)
  progress : int;
      (** caller-defined progress marker (completed BFS levels, finished
          experiments, ...) — diagnostic only *)
  states_charged : int;
      (** budget states charged when the snapshot was taken; a resumed
          run re-charges these so caps trip at the same boundary *)
  deadline_remaining_s : float option;
      (** wall-clock budget left at save time; a resumed run restricts
          its deadline to this so interruption cannot buy extra time *)
  stats : Stats.snapshot;  (** runtime counters at save time *)
  fault : (string * int) option;
      (** armed fault site and seed, when the snapshot was written under
          chaos injection — lets a resumed run know it is tainted *)
  symmetry : bool;
      (** whether the traversal ran under symmetry reduction
          ([--symmetry]): its committed dedup keys are orbit keys, which
          an unreduced run cannot consume (and vice versa), so resume
          must {!Symmetry_mismatch}-refuse to cross the setting *)
}

(** Raised by consumers (e.g. [Sweep]) when a snapshot's {!meta}
    [symmetry] flag disagrees with the resuming run's — resuming across
    the setting would silently misinterpret the committed key set.
    Carries both settings; registered with a [Printexc] printer. *)
exception Symmetry_mismatch of { saved : bool; requested : bool }

(** [make_meta ?budget ?symmetry ~progress ()] captures the current
    budget consumption, {!Stats} counters and armed fault into a [meta].
    [symmetry] (default [false]) records the run's symmetry-reduction
    setting. *)
val make_meta : ?budget:Budget.t -> ?symmetry:bool -> progress:int -> unit -> meta

type saved = { generation : int; bytes : int }

(** [save ~dir ~name ~meta ~payload] writes the next generation for
    [name] under [dir] (created if missing), atomically.  Returns the
    generation number and on-disk size. *)
val save : dir:string -> name:string -> meta:meta -> payload:string -> saved

type loaded = {
  meta : meta;
  payload : string;
  generation : int;  (** the generation actually loaded *)
  rejected : int;
      (** newer generations skipped because they were torn or corrupt *)
}

(** Newest intact generation for [name] under [dir], or [None] when no
    generation validates (or the directory does not exist).  Every
    skipped torn/corrupt generation is counted into the
    [checkpoint generations rejected] {!Stats} counter — rollback is
    surfaced, never silent. *)
val load_latest : dir:string -> name:string -> loaded option

(** [load_generation ~dir ~name g] decodes exactly generation [g] —
    [None] when it is missing, torn, or corrupt.  The spill tier uses
    this for read-back validation and segment reloads, where rollback
    to an older generation would be the wrong behaviour. *)
val load_generation : dir:string -> name:string -> int -> (meta * string) option

(** On-disk path of generation [g] for [name] under [dir] — exposed so
    the spill tier's fault sites can tear a just-written segment the
    way a crash would, and so recovery tooling can point at the exact
    file it rejected. *)
val path_of : dir:string -> name:string -> int -> string

(** Every [.ckpt] file directly under [dir] (any name, sorted) paired
    with whether it validates — the debris view a recovery oracle takes
    of a spill directory, where each segment is its own name. *)
val scan_dir : dir:string -> (string * bool) list

(** Sorted generation numbers present on disk for [name]. *)
val generations : dir:string -> name:string -> int list

(** Every generation on disk paired with whether it validates — the
    recovery oracles' view of the checkpoint directory. *)
val scan : dir:string -> name:string -> (int * bool) list

(** [prune ~dir ~name ~keep] deletes every generation of [name] except
    the newest [keep] (clamped to at least 1, so rollback always has a
    predecessor to land on).  Returns the number of files removed.  A
    long-lived writer — the serve daemon spilling its caches every few
    responses — calls this after each save to keep the directory
    bounded. *)
val prune : dir:string -> name:string -> keep:int -> int
