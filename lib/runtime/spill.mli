(** Disk tier for the out-of-core frontier.

    When a traversal crosses its memory soft watermark, the frontier
    drains its committed dedup keys (and, under a checkpoint sink, the
    undelivered level prefix) into {e spill segments}: generation-
    numbered, CRC-validated files in the {!Checkpoint} format, one fresh
    name per segment, written atomically (tmp+rename) and {b validated
    by an immediate read-back} before the in-heap copy may be evicted.
    A failed read-back (torn file, ENOSPC, any I/O error) keeps the data
    in core and counts a [spill write failure] — graceful degradation,
    never data loss.

    {b Exact membership.}  Spilled keys are probed through a per-segment
    sorted fingerprint index (~60 bits per key).  A fingerprint miss is
    a definitive "unseen" and costs no I/O; a hit is only a {e maybe}
    and is confirmed against the segment's actual keys, reloaded through
    a small FIFO cache.  False "already seen" answers — which would
    silently drop states and change the traversal's bytes — are
    structurally impossible.

    {b Loss is survivable, corruption is not acceptable.}  A segment
    that cannot be read back intact when consulted raises
    {!Segment_lost}; {!Frontier.iter_levels} catches it and restarts the
    traversal in-core ([spill restarts] counter), trading time for
    correctness.

    A session's registered files are scratch — checkpoint snapshots
    absorb spilled keys — and are removed by {!discard}; torn debris is
    deliberately left on disk for the recovery oracles.

    Writes ({!spill_keys}, {!spill_prefix}, {!discard}) must come from
    one domain at a time (the frontier calls them at level boundaries,
    where no pool pass is in flight); {!member} is safe from any number
    of worker domains concurrently. *)

type t

(** A spilled segment could not be read back intact when it was needed.
    Callers must treat the spilled dedup knowledge as gone and
    re-explore; answering membership from a lost segment is never
    sound. *)
exception Segment_lost of string

(** [create ~dir] opens a spill session rooted at [dir] (created on
    first write).  File names carry a per-session tag, so concurrent or
    successive sessions can share a directory. *)
val create : dir:string -> t

(** [spill_keys t keys] writes one dedup segment holding [keys] (which
    the caller passes sorted — the read-back confirm binary-searches
    them).  [true] on a validated write: the caller may evict the keys
    from the heap.  [false] when the write failed; the keys must stay in
    core.  An empty [keys] is a no-op [true]. *)
val spill_keys : t -> string list -> bool

(** Exact membership of [key] in any spilled segment.  Raises
    {!Segment_lost} when a fingerprint-hit segment cannot be consulted
    intact. *)
val member : t -> string -> bool

(** Every spilled dedup key, oldest segment first (each segment's keys
    in their sorted order).  Used by checkpoint flushes, so snapshots
    stay complete while keys live on disk.  Raises {!Segment_lost}. *)
val all_keys : t -> string list

(** [spill_prefix t payload] writes one opaque prefix chunk (the caller
    marshals its own levels).  Same contract as {!spill_keys}. *)
val spill_prefix : t -> string -> bool

(** Every prefix chunk payload, oldest first.  Raises {!Segment_lost}. *)
val prefix_payloads : t -> string list

(** Registered (validated) segments in this session, dedup + prefix. *)
val segments : t -> int

(** Dedup keys currently living only on disk. *)
val spilled_keys : t -> int

(** Delete the session's registered segment files and forget them.
    Torn debris from failed writes is left behind. *)
val discard : t -> unit
