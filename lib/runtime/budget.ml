type reason = Deadline | States | Memory | Interrupted

exception Exhausted of reason

type truncation = { reason : reason; at_depth : int; states_seen : int }
type status = Complete | Truncated of truncation
type 'a outcome = { value : 'a; status : status }

type t = {
  deadline : float option Atomic.t;  (* absolute, Unix.gettimeofday scale *)
  max_states : int option;
  max_heap_words : int option;
  soft_heap_words : int option;  (* spill/compact watermark, below the cap *)
  cancelled : bool Atomic.t;
  states : int Atomic.t;
  probe : int Atomic.t;  (* check counter, for sampling the heap *)
  compacted : bool Atomic.t;  (* the once-per-budget Gc.compact was spent *)
  first_trip : reason option Atomic.t;  (* sticky: first reason observed *)
  parent : parent;  (* cancellation flows down the chain, never up *)
}

and parent = Root | Child of t

let word_bytes = Sys.word_size / 8

let create ?timeout_s ?max_states ?max_memory_mb ?soft_memory_mb () =
  (match timeout_s with
  | Some s when s < 0. -> invalid_arg "Budget.create: timeout_s must be >= 0"
  | _ -> ());
  (match max_states with
  | Some n when n < 1 -> invalid_arg "Budget.create: max_states must be >= 1"
  | _ -> ());
  (match max_memory_mb with
  | Some n when n < 1 -> invalid_arg "Budget.create: max_memory_mb must be >= 1"
  | _ -> ());
  (match soft_memory_mb with
  | Some n when n < 1 -> invalid_arg "Budget.create: soft_memory_mb must be >= 1"
  | _ -> ());
  let words mb = mb * 1024 * 1024 / word_bytes in
  {
    deadline = Atomic.make (Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s);
    max_states;
    max_heap_words = Option.map words max_memory_mb;
    soft_heap_words = Option.map words soft_memory_mb;
    cancelled = Atomic.make false;
    states = Atomic.make 0;
    probe = Atomic.make 0;
    compacted = Atomic.make false;
    first_trip = Atomic.make None;
    parent = Root;
  }

let child ?timeout_s ?max_states ?max_memory_mb ?soft_memory_mb parent =
  { (create ?timeout_s ?max_states ?max_memory_mb ?soft_memory_mb ()) with
    parent = Child parent;
  }

let cancel t = Atomic.set t.cancelled true

let rec is_cancelled t =
  Atomic.get t.cancelled
  || match t.parent with Root -> false | Child p -> is_cancelled p
let charge t n = if n <> 0 then ignore (Atomic.fetch_and_add t.states n)
let states_seen t = Atomic.get t.states

let deadline_remaining t =
  Option.map
    (fun d -> Float.max 0. (d -. Unix.gettimeofday ()))
    (Atomic.get t.deadline)

let restrict_deadline t ~remaining_s =
  if remaining_s < 0. then
    invalid_arg "Budget.restrict_deadline: remaining_s must be >= 0";
  let candidate = Unix.gettimeofday () +. remaining_s in
  let rec tighten () =
    let cur = Atomic.get t.deadline in
    let next =
      match cur with None -> candidate | Some d -> Float.min d candidate
    in
    if not (Atomic.compare_and_set t.deadline cur (Some next)) then tighten ()
  in
  tighten ()

(* The heap watermark costs a [Gc.quick_stat] (no heap walk, but not
   free either); sample it every 64th check. *)
let sample_mask = 63

(* Spend the budget's one [Gc.compact]: true iff this call performed it.
   The CAS makes the compaction a once-per-budget event even when worker
   domains race through a sampled probe together. *)
let compact_once t =
  Atomic.compare_and_set t.compacted false true
  && begin
       Gc.compact ();
       Stats.record_gc_compaction ();
       true
     end

let heap_words () = (Gc.quick_stat ()).Gc.heap_words

(* Direct (un-sampled) pressure reading, for level boundaries where the
   cost of a [quick_stat] is amortised over a whole level. *)
let pressure t =
  let heap = heap_words () in
  match t.max_heap_words with
  | Some cap when heap > cap -> `Hard
  | _ -> (
      match t.soft_heap_words with
      | Some soft when heap > soft -> `Soft
      | _ -> `Ok)

let pressure_opt = function None -> `Ok | Some t -> pressure t

(* A fragmented heap must not trip a run that would fit: on the first
   sampled crossing the budget spends its one compaction and only
   reports [Memory] if the live heap is still over the cap. *)
let over_hard_cap t cap =
  heap_words () > cap && ((not (compact_once t)) || heap_words () > cap)

let probe_limits t =
  if is_cancelled t then Some Interrupted
    (* chaos site: a probe claims cancellation nobody asked for — the
       clean-run-completes oracle must notice the lie *)
  else if Fault.point Fault.Spurious_cancel then Some Interrupted
  else
    match t.max_states with
    | Some cap when Atomic.get t.states > cap -> Some States
    | _ -> (
        let late =
          match Atomic.get t.deadline with
          | Some d -> Unix.gettimeofday () > d
          | None -> false
        in
        if late then Some Deadline
        else
          match t.max_heap_words with
          | Some cap
            when Atomic.fetch_and_add t.probe 1 land sample_mask = 0
                 && over_hard_cap t cap ->
              Some Memory
          | _ -> None)

(* Serial engines poll this per state: a sampled soft-watermark check
   that spends the budget's compaction on the first crossing.  Returns
   [true] when pressure persists after relief (callers with a disk tier
   should spill; serial callers just learn the squeeze is real). *)
let relieve t =
  match t.soft_heap_words with
  | None -> false
  | Some soft ->
      Atomic.fetch_and_add t.probe 1 land sample_mask = 0
      && heap_words () > soft
      && begin
           Stats.record_mem_soft_event ();
           ignore (compact_once t);
           heap_words () > soft
         end

let relieve_opt = function None -> false | Some t -> relieve t

let exceeded t =
  match Atomic.get t.first_trip with
  | Some _ as r -> r
  | None -> (
      match probe_limits t with
      | None -> None
      | Some reason ->
          ignore (Atomic.compare_and_set t.first_trip None (Some reason));
          (* re-read: another domain may have won the race *)
          Atomic.get t.first_trip)

let check t = match exceeded t with Some r -> raise (Exhausted r) | None -> ()
let tripped t = Atomic.get t.first_trip

let truncated t ~reason ~at_depth =
  Truncated { reason; at_depth; states_seen = Atomic.get t.states }

let exceeded_opt = function None -> None | Some t -> exceeded t
let charge_opt b n = match b with None -> () | Some t -> charge t n
let check_opt = function None -> () | Some t -> check t

(* The previous handler must come back whatever [f] does, and the
   restore itself must never shadow [f]'s outcome (a raising finally
   would surface as [Fun.Finally_raised] instead): nested and repeated
   uses — e.g. [Pool.with_pool ~budget] inside a budgeted driver — then
   unwind to exactly the handler stack they started from. *)
let with_sigint t f =
  match Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> cancel t)) with
  | exception (Invalid_argument _ | Sys_error _) -> f ()
  | previous ->
      Fun.protect
        ~finally:(fun () ->
          try ignore (Sys.signal Sys.sigint previous)
          with Invalid_argument _ | Sys_error _ -> ())
        f

let reason_string = function
  | Deadline -> "deadline"
  | States -> "max-states"
  | Memory -> "max-mem"
  | Interrupted -> "interrupted"

let pp_reason ppf r = Format.pp_print_string ppf (reason_string r)

let pp_truncation ppf { reason; at_depth; states_seen } =
  Format.fprintf ppf "%a at depth %d after %d states" pp_reason reason at_depth
    states_seen

let pp_status ppf = function
  | Complete -> Format.pp_print_string ppf "complete"
  | Truncated tr -> Format.fprintf ppf "truncated (%a)" pp_truncation tr
