type reason = Deadline | States | Memory | Interrupted

exception Exhausted of reason

type truncation = { reason : reason; at_depth : int; states_seen : int }
type status = Complete | Truncated of truncation
type 'a outcome = { value : 'a; status : status }

type t = {
  deadline : float option Atomic.t;  (* absolute, Unix.gettimeofday scale *)
  max_states : int option;
  max_heap_words : int option;
  cancelled : bool Atomic.t;
  states : int Atomic.t;
  probe : int Atomic.t;  (* check counter, for sampling the heap *)
  first_trip : reason option Atomic.t;  (* sticky: first reason observed *)
  parent : parent;  (* cancellation flows down the chain, never up *)
}

and parent = Root | Child of t

let word_bytes = Sys.word_size / 8

let create ?timeout_s ?max_states ?max_memory_mb () =
  (match timeout_s with
  | Some s when s < 0. -> invalid_arg "Budget.create: timeout_s must be >= 0"
  | _ -> ());
  (match max_states with
  | Some n when n < 1 -> invalid_arg "Budget.create: max_states must be >= 1"
  | _ -> ());
  (match max_memory_mb with
  | Some n when n < 1 -> invalid_arg "Budget.create: max_memory_mb must be >= 1"
  | _ -> ());
  {
    deadline = Atomic.make (Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s);
    max_states;
    max_heap_words = Option.map (fun mb -> mb * 1024 * 1024 / word_bytes) max_memory_mb;
    cancelled = Atomic.make false;
    states = Atomic.make 0;
    probe = Atomic.make 0;
    first_trip = Atomic.make None;
    parent = Root;
  }

let child ?timeout_s ?max_states ?max_memory_mb parent =
  { (create ?timeout_s ?max_states ?max_memory_mb ()) with
    parent = Child parent;
  }

let cancel t = Atomic.set t.cancelled true

let rec is_cancelled t =
  Atomic.get t.cancelled
  || match t.parent with Root -> false | Child p -> is_cancelled p
let charge t n = if n <> 0 then ignore (Atomic.fetch_and_add t.states n)
let states_seen t = Atomic.get t.states

let deadline_remaining t =
  Option.map
    (fun d -> Float.max 0. (d -. Unix.gettimeofday ()))
    (Atomic.get t.deadline)

let restrict_deadline t ~remaining_s =
  if remaining_s < 0. then
    invalid_arg "Budget.restrict_deadline: remaining_s must be >= 0";
  let candidate = Unix.gettimeofday () +. remaining_s in
  let rec tighten () =
    let cur = Atomic.get t.deadline in
    let next =
      match cur with None -> candidate | Some d -> Float.min d candidate
    in
    if not (Atomic.compare_and_set t.deadline cur (Some next)) then tighten ()
  in
  tighten ()

(* The heap watermark costs a [Gc.quick_stat] (no heap walk, but not
   free either); sample it every 64th check. *)
let sample_mask = 63

let probe_limits t =
  if is_cancelled t then Some Interrupted
    (* chaos site: a probe claims cancellation nobody asked for — the
       clean-run-completes oracle must notice the lie *)
  else if Fault.point Fault.Spurious_cancel then Some Interrupted
  else
    match t.max_states with
    | Some cap when Atomic.get t.states > cap -> Some States
    | _ -> (
        let late =
          match Atomic.get t.deadline with
          | Some d -> Unix.gettimeofday () > d
          | None -> false
        in
        if late then Some Deadline
        else
          match t.max_heap_words with
          | Some cap
            when Atomic.fetch_and_add t.probe 1 land sample_mask = 0
                 && (Gc.quick_stat ()).Gc.heap_words > cap ->
              Some Memory
          | _ -> None)

let exceeded t =
  match Atomic.get t.first_trip with
  | Some _ as r -> r
  | None -> (
      match probe_limits t with
      | None -> None
      | Some reason ->
          ignore (Atomic.compare_and_set t.first_trip None (Some reason));
          (* re-read: another domain may have won the race *)
          Atomic.get t.first_trip)

let check t = match exceeded t with Some r -> raise (Exhausted r) | None -> ()
let tripped t = Atomic.get t.first_trip

let truncated t ~reason ~at_depth =
  Truncated { reason; at_depth; states_seen = Atomic.get t.states }

let exceeded_opt = function None -> None | Some t -> exceeded t
let charge_opt b n = match b with None -> () | Some t -> charge t n
let check_opt = function None -> () | Some t -> check t

(* The previous handler must come back whatever [f] does, and the
   restore itself must never shadow [f]'s outcome (a raising finally
   would surface as [Fun.Finally_raised] instead): nested and repeated
   uses — e.g. [Pool.with_pool ~budget] inside a budgeted driver — then
   unwind to exactly the handler stack they started from. *)
let with_sigint t f =
  match Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> cancel t)) with
  | exception (Invalid_argument _ | Sys_error _) -> f ()
  | previous ->
      Fun.protect
        ~finally:(fun () ->
          try ignore (Sys.signal Sys.sigint previous)
          with Invalid_argument _ | Sys_error _ -> ())
        f

let reason_string = function
  | Deadline -> "deadline"
  | States -> "max-states"
  | Memory -> "max-mem"
  | Interrupted -> "interrupted"

let pp_reason ppf r = Format.pp_print_string ppf (reason_string r)

let pp_truncation ppf { reason; at_depth; states_seen } =
  Format.fprintf ppf "%a at depth %d after %d states" pp_reason reason at_depth
    states_seen

let pp_status ppf = function
  | Complete -> Format.pp_print_string ppf "complete"
  | Truncated tr -> Format.fprintf ppf "truncated (%a)" pp_truncation tr
