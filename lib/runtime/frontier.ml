(* Key-sharded visited table.  An entry's value is either a provisional
   minimum candidate index for the level being built (>= 0) or the
   committed marker -1 (state claimed at this or an earlier level). *)
module Shards = struct
  type t = {
    tables : (string, int) Hashtbl.t array;
    mutexes : Mutex.t array;
    mask : int;
  }

  let create ~shards =
    let rec pow2 m = if m >= shards then m else pow2 (m * 2) in
    let m = pow2 1 in
    {
      tables = Array.init m (fun _ -> Hashtbl.create 64);
      mutexes = Array.init m (fun _ -> Mutex.create ());
      mask = m - 1;
    }

  let with_shard t k f =
    let i = Hashtbl.hash k land t.mask in
    let m = t.mutexes.(i) in
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f t.tables.(i))

  let commit t k = with_shard t k (fun tbl -> Hashtbl.replace tbl k (-1))

  (* Pass A: propose candidate [idx] for key [k]; the minimum index wins.
     Committed keys are never displaced. *)
  let propose t k idx =
    with_shard t k (fun tbl ->
        (* chaos site: the shard lies that [k] was already claimed, so no
           candidate for it can win pass B and the state is lost — the
           differential oracles must catch the parallel leg short *)
        if Fault.point Fault.Corrupt_dedup_shard then Hashtbl.replace tbl k (-1)
        else
          match Hashtbl.find_opt tbl k with
          | None -> Hashtbl.replace tbl k idx
          | Some v when v >= 0 && idx < v -> Hashtbl.replace tbl k idx
          | Some _ -> ())

  (* Pass B: true iff [idx] is the recorded winner for [k]; commits the
     key on success.  Sound only after every proposal of the level has
     settled (the passes are separated by a pool barrier). *)
  let claim t k idx =
    with_shard t k (fun tbl ->
        match Hashtbl.find_opt tbl k with
        | Some v when v = idx ->
            Hashtbl.replace tbl k (-1);
            true
        | _ -> false)
end

let default_shards = 64

(* Drive the level-synchronous BFS, calling [f] on each level (the root
   singleton included) as it is completed.  Returns the budget status:
   levels delivered to [f] are always a complete prefix — the states-cap
   decision happens only at level boundaries from the charged counts, so
   a States truncation is deterministic across job counts, while a
   deadline/cancellation firing mid-level (via [Budget.Exhausted] out of
   a pool pass) abandons that level wholesale. *)
let iter_levels ?budget pool ~succ ~key ~depth ~f x0 =
  let tbl = Shards.create ~shards:default_shards in
  Shards.commit tbl (key x0);
  let expand frontier =
    Stats.add_states_expanded (List.length frontier);
    let candidates = List.concat (Pool.parallel_map ?budget pool succ frontier) in
    let cands = Array.of_list candidates in
    let keys = Array.of_list (Pool.parallel_map ?budget pool key candidates) in
    let idxs = List.init (Array.length cands) Fun.id in
    Pool.parallel_iter ?budget pool (fun i -> Shards.propose tbl keys.(i) i) idxs;
    let winners =
      Pool.parallel_map ?budget pool
        (fun i -> if Shards.claim tbl keys.(i) i then Some cands.(i) else None)
        idxs
    in
    let next = List.filter_map Fun.id winners in
    Stats.add_dedup_hits (Array.length cands - List.length next);
    (* chaos sites: drop or duplicate a state *after* dedup has settled
       the level, where the damage cannot be absorbed by rediscovery
       (the dropped state's key stays committed in the shards) *)
    Fault.mangle_level next
  in
  (* [go d frontier]: [frontier] is the completed level [d]; expanding it
     yields level [d + 1].  A truncation while (or before) expanding
     level [d]'s successors reports [at_depth = d]. *)
  let rec go d frontier =
    if d >= depth || frontier = [] then None
    else
      match Budget.exceeded_opt budget with
      | Some reason -> Some (reason, d)
      | None -> (
          match expand frontier with
          | exception Budget.Exhausted reason -> Some (reason, d)
          | [] -> None
          | next -> (
              Budget.charge_opt budget (List.length next);
              match f next with
              | exception Budget.Exhausted reason -> Some (reason, d + 1)
              | () -> go (d + 1) next))
  in
  Budget.charge_opt budget 1;
  let trunc =
    match f [ x0 ] with
    | exception Budget.Exhausted reason -> Some (reason, 0)
    | () -> go 0 [ x0 ]
  in
  match trunc with
  | None -> Budget.Complete
  | Some (reason, at_depth) -> (
      match budget with
      | Some b -> Budget.truncated b ~reason ~at_depth
      | None -> assert false (* Exhausted only arises from a budget *))

let levels ?budget pool ~succ ~key ~depth x0 =
  let acc = ref [] in
  let status =
    iter_levels ?budget pool ~succ ~key ~depth ~f:(fun level -> acc := level :: !acc) x0
  in
  { Budget.value = List.rev !acc; status }

let reachable ?budget pool ~succ ~key ~depth x0 =
  let o = levels ?budget pool ~succ ~key ~depth x0 in
  { o with Budget.value = List.concat o.Budget.value }

let count_reachable ?budget pool ~succ ~key ~depth x0 =
  let n = ref 0 in
  let status =
    iter_levels ?budget pool ~succ ~key ~depth
      ~f:(fun level -> n := !n + List.length level)
      x0
  in
  { Budget.value = !n; status }

exception Found

let exists_reachable ?budget pool ~succ ~key ~depth ~pred x0 =
  let check level =
    if List.exists Fun.id (Pool.parallel_map ?budget pool pred level) then
      raise_notrace Found
  in
  match iter_levels ?budget pool ~succ ~key ~depth ~f:check x0 with
  | status -> { Budget.value = false; status }
  | exception Found -> { Budget.value = true; status = Budget.Complete }
