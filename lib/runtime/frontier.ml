(* Key-sharded visited table.  An entry's value is either a provisional
   minimum candidate index for the level being built (>= 0) or the
   committed marker -1 (state claimed at this or an earlier level). *)
module Shards = struct
  type t = {
    tables : (string, int) Hashtbl.t array;
    mutexes : Mutex.t array;
    mask : int;
  }

  let create ~shards =
    let rec pow2 m = if m >= shards then m else pow2 (m * 2) in
    let m = pow2 1 in
    {
      tables = Array.init m (fun _ -> Hashtbl.create 64);
      mutexes = Array.init m (fun _ -> Mutex.create ());
      mask = m - 1;
    }

  let with_shard t k f =
    let i = Hashtbl.hash k land t.mask in
    let m = t.mutexes.(i) in
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f t.tables.(i))

  let commit t k = with_shard t k (fun tbl -> Hashtbl.replace tbl k (-1))

  (* Pass A: propose candidate [idx] for key [k]; the minimum index wins.
     Committed keys are never displaced. *)
  let propose t k idx =
    with_shard t k (fun tbl ->
        (* chaos site: the shard lies that [k] was already claimed, so no
           candidate for it can win pass B and the state is lost — the
           differential oracles must catch the parallel leg short *)
        if Fault.point Fault.Corrupt_dedup_shard then Hashtbl.replace tbl k (-1)
        else
          match Hashtbl.find_opt tbl k with
          | None -> Hashtbl.replace tbl k idx
          | Some v when v >= 0 && idx < v -> Hashtbl.replace tbl k idx
          | Some _ -> ())

  (* Pass B: true iff [idx] is the recorded winner for [k]; commits the
     key on success.  Sound only after every proposal of the level has
     settled (the passes are separated by a pool barrier). *)
  let claim t k idx =
    with_shard t k (fun tbl ->
        match Hashtbl.find_opt tbl k with
        | Some v when v = idx ->
            Hashtbl.replace tbl k (-1);
            true
        | _ -> false)

  (* Sorted committed keys — the resume seed for a fresh table.  Takes
     each shard's mutex, though every caller runs at a level boundary
     where no pool pass is in flight. *)
  let committed t =
    let acc = ref [] in
    Array.iteri
      (fun i tbl ->
        let m = t.mutexes.(i) in
        Mutex.lock m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock m)
          (fun () ->
            Hashtbl.iter (fun k v -> if v = -1 then acc := k :: !acc) tbl))
      t.tables;
    List.sort compare !acc

  (* Evict every entry — the heap half of a spill.  Only sound at a
     level boundary, after the caller has durably captured [committed]
     (at a boundary every entry is committed: each proposed key's
     minimum candidate claimed it during pass B). *)
  let clear t =
    Array.iteri
      (fun i tbl ->
        let m = t.mutexes.(i) in
        Mutex.lock m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock m)
          (fun () -> Hashtbl.reset tbl))
      t.tables
end

let default_shards = 64

type 'a snapshot = { levels : 'a list list; committed : string list }
type 'a checkpoint = { every : int; save : 'a snapshot -> unit }

type spill_mode = Pressure | Always
type spill = { spill_dir : string; spill_mode : spill_mode }

(* Drive the level-synchronous BFS, calling [f] on each level (the root
   singleton included) as it is completed.  Returns the budget status:
   levels delivered to [f] are always a complete prefix — the states-cap
   decision happens only at level boundaries from the charged counts, so
   a States truncation is deterministic across job counts, while a
   deadline/cancellation firing mid-level (via [Budget.Exhausted] out of
   a pool pass) abandons that level wholesale.

   With [?spill], memory pressure becomes a graded ladder walked at each
   level boundary: sample the heap (Budget.pressure) -> spend the
   budget's one Gc.compact -> spill the committed dedup keys and the
   undelivered prefix to validated disk segments and evict them -> hold
   the next dispatch behind a forced compaction (backpressure) -> only
   then can the sampled hard watermark trip the budget.  Spill decisions
   never affect the traversal's output: the spilled tier answers exactly
   the membership queries the in-heap table would have, so the bytes are
   identical whether, when, or how often spilling happens — which is
   also why the (heap-sampling, hence nondeterministic) trigger needs no
   cross-jobs coordination. *)
let iter_levels ?budget ?checkpoint ?resume ?spill ?(on_restart = fun () -> ())
    ?canon pool ~succ ~key ~depth ~f x0 =
  (* Dedup key: with [?canon], states are claimed by orbit representative
     — the whole orbit shares one shard entry, so the traversal explores
     one member per orbit (the minimum candidate index, deterministic
     across job counts).  Committed keys, spill fingerprints and the
     checkpoint's [committed] list all hold canon keys, which is what
     makes snapshots refuse to cross a symmetry-setting change. *)
  let dedup_key = match canon with Some c -> c | None -> key in
  let attempt ~spill () =
    let tbl = Shards.create ~shards:default_shards in
    let disk = Option.map (fun s -> (s, Spill.create ~dir:s.spill_dir)) spill in
    let spilled_member k =
      match disk with None -> false | Some (_, d) -> Spill.member d k
    in
    let expand frontier =
      Stats.add_states_expanded (List.length frontier);
      let candidates = List.concat (Pool.parallel_map ?budget pool succ frontier) in
      let cands = Array.of_list candidates in
      let keys = Array.of_list (Pool.parallel_map ?budget pool dedup_key candidates) in
      let idxs = List.init (Array.length cands) Fun.id in
      (* a key living in a spilled segment is committed: it never gets a
         candidate, so pass B's find-nothing answer is the right "no" *)
      Pool.parallel_iter ?budget pool
        (fun i -> if not (spilled_member keys.(i)) then Shards.propose tbl keys.(i) i)
        idxs;
      let winners =
        Pool.parallel_map ?budget pool
          (fun i -> if Shards.claim tbl keys.(i) i then Some cands.(i) else None)
          idxs
      in
      let next = List.filter_map Fun.id winners in
      Stats.add_dedup_hits (Array.length cands - List.length next);
      (* chaos sites: drop or duplicate a state *after* dedup has settled
         the level, where the damage cannot be absorbed by rediscovery
         (the dropped state's key stays committed in the shards) *)
      Fault.mangle_level next
    in
    (* Checkpoint plumbing.  The completed-level prefix is accumulated
       only when a sink is present; snapshots are cut exclusively at level
       boundaries, after [f] returned, so their content (levels + committed
       keys) is identical for every job count.  A level whose [f] raised
       [Exhausted] is never recorded: the snapshot always describes work
       the consumer actually absorbed.  Under spill, parts of the prefix
       and of the committed keys may live on disk; flushes pull them back
       so snapshot content is indistinguishable from an in-core run's. *)
    let kept = ref [] (* delivered levels not yet spilled, newest first *) in
    let unsaved = ref 0 in
    let committed_all () =
      match disk with
      | None -> Shards.committed tbl
      | Some (_, d) ->
          List.sort compare
            (List.rev_append (Spill.all_keys d) (Shards.committed tbl))
    in
    let prefix_levels () =
      match disk with
      | None -> List.rev !kept
      | Some (_, d) ->
          List.concat_map
            (fun payload -> (Marshal.from_string payload 0 : 'a list list))
            (Spill.prefix_payloads d)
          @ List.rev !kept
    in
    let record level =
      match checkpoint with
      | None -> ()
      | Some _ ->
          kept := level :: !kept;
          incr unsaved
    in
    let flush ~force =
      match checkpoint with
      | Some ck when !unsaved > 0 && (force || !unsaved >= max 1 ck.every) ->
          ck.save { levels = prefix_levels (); committed = committed_all () };
          unsaved := 0
      | _ -> ()
    in
    (* The degradation ladder, walked at level boundaries (the pool is
       quiescent there, so evicting and compacting cannot race a pass). *)
    let relieve () =
      match disk with
      | None -> ignore (Budget.relieve_opt budget)
      | Some (cfg, d) ->
          let p = Budget.pressure_opt budget in
          if cfg.spill_mode = Always || p <> `Ok then begin
            (* rung 1: one compaction before paying for disk *)
            (if p <> `Ok then begin
               Stats.record_mem_soft_event ();
               match budget with
               | Some b -> ignore (Budget.compact_once b)
               | None -> ()
             end);
            let p = Budget.pressure_opt budget in
            if cfg.spill_mode = Always || p <> `Ok then begin
              (* rung 2: spill cold dedup shards, evict only what the
                 disk verifiably holds *)
              let keys = Shards.committed tbl in
              if Spill.spill_keys d keys then Shards.clear tbl;
              (* ... and the undelivered prefix (checkpointed runs) *)
              (match !kept with
              | [] -> ()
              | levels ->
                  let payload =
                    Marshal.to_string (List.rev levels : 'a list list) []
                  in
                  if Spill.spill_prefix d payload then kept := []);
              (* rung 3: backpressure — hold the next dispatch until the
                 eviction is actually reflected in the heap *)
              if Budget.pressure_opt budget <> `Ok then begin
                Stats.record_spill_backpressure ();
                Gc.compact ();
                Stats.record_gc_compaction ()
              end
            end
          end
    in
    (* [go d frontier]: [frontier] is the completed level [d]; expanding it
       yields level [d + 1].  A truncation while (or before) expanding
       level [d]'s successors reports [at_depth = d]. *)
    let rec go d frontier =
      if d >= depth || frontier = [] then None
      else
        match Budget.exceeded_opt budget with
        | Some reason -> Some (reason, d)
        | None -> (
            match expand frontier with
            | exception Budget.Exhausted reason -> Some (reason, d)
            | [] -> None
            | next -> (
                Budget.charge_opt budget (List.length next);
                match f next with
                | exception Budget.Exhausted reason -> Some (reason, d + 1)
                | () ->
                    record next;
                    flush ~force:false;
                    relieve ();
                    go (d + 1) next))
    in
    let run () =
      let trunc =
        match resume with
        | Some { levels = _ :: _ as prefix; committed } ->
            (* Re-seed the dedup table from the snapshot and restart at its
               last completed level.  The prefix is neither re-delivered to
               [f] nor re-charged to the budget: callers rebuild their own
               accumulators from the snapshot, and the budget is expected to
               be re-charged from the snapshot's recorded consumption.
               Re-expanding the restart level rediscovers exactly the
               successors the interrupted run would have claimed next, since
               every earlier claim is committed.  (Under spill, the seeded
               keys are the first thing the ladder evicts — resume composes
               with live spill segments.) *)
            List.iter (Shards.commit tbl) committed;
            if Option.is_some checkpoint then kept := List.rev prefix;
            relieve ();
            let d0 = List.length prefix - 1 in
            go d0 (List.nth prefix d0)
        | Some { levels = []; _ } | None -> (
            Shards.commit tbl (dedup_key x0);
            Budget.charge_opt budget 1;
            match f [ x0 ] with
            | exception Budget.Exhausted reason -> Some (reason, 0)
            | () ->
                record [ x0 ];
                flush ~force:false;
                go 0 [ x0 ])
      in
      (* Budget exhaustion (deadline, cap, SIGINT-driven cancellation) and
         clean completion alike flush whatever levels are not yet on disk. *)
      flush ~force:true;
      match trunc with
      | None -> Budget.Complete
      | Some (reason, at_depth) -> (
          match budget with
          | Some b -> Budget.truncated b ~reason ~at_depth
          | None -> assert false (* Exhausted only arises from a budget *))
    in
    (* Registered segments are scratch (the final flush above already
       pulled everything durable back); torn debris survives for the
       recovery oracles. *)
    match disk with
    | None -> run ()
    | Some (_, d) -> Fun.protect ~finally:(fun () -> Spill.discard d) run
  in
  match attempt ~spill () with
  | status -> status
  | exception Spill.Segment_lost _ ->
      (* A spilled segment could not be consulted intact: the dedup
         knowledge it held is gone, and guessing would corrupt the
         traversal.  Roll back to re-exploration — rerun the whole
         traversal in-core (spill disabled, so a second loss is
         impossible).  [on_restart] lets callers reset accumulators; the
         rerun re-delivers every level to [f] and re-charges the budget
         (conservative: a restarted run never gets more budget than a
         clean one). *)
      Stats.record_spill_restart ();
      on_restart ();
      attempt ~spill:None ()

(* The wrappers seed their accumulators from the resume prefix, because
   [iter_levels ~resume] does not re-deliver prefix levels to [f] — and
   re-seed them via [on_restart] when a lost spill segment forces a
   fresh in-core traversal. *)
let levels ?budget ?checkpoint ?resume ?spill ?(on_restart = fun () -> ())
    ?canon pool ~succ ~key ~depth x0 =
  let initial () = match resume with Some r -> List.rev r.levels | None -> [] in
  let acc = ref (initial ()) in
  let status =
    iter_levels ?budget ?checkpoint ?resume ?spill
      ~on_restart:(fun () ->
        acc := initial ();
        on_restart ())
      ?canon pool ~succ ~key ~depth
      ~f:(fun level -> acc := level :: !acc)
      x0
  in
  { Budget.value = List.rev !acc; status }

let reachable ?budget ?checkpoint ?resume ?spill ?on_restart ?canon pool ~succ
    ~key ~depth x0 =
  let o =
    levels ?budget ?checkpoint ?resume ?spill ?on_restart ?canon pool ~succ
      ~key ~depth x0
  in
  { o with Budget.value = List.concat o.Budget.value }

let count_reachable ?budget ?checkpoint ?resume ?spill ?(on_restart = fun () -> ())
    ?canon pool ~succ ~key ~depth x0 =
  let initial () =
    match resume with
    | Some r -> List.fold_left (fun a l -> a + List.length l) 0 r.levels
    | None -> 0
  in
  let n = ref (initial ()) in
  let status =
    iter_levels ?budget ?checkpoint ?resume ?spill
      ~on_restart:(fun () ->
        n := initial ();
        on_restart ())
      ?canon pool ~succ ~key ~depth
      ~f:(fun level -> n := !n + List.length level)
      x0
  in
  { Budget.value = !n; status }

exception Found

let exists_reachable ?budget pool ~succ ~key ~depth ~pred x0 =
  let check level =
    if List.exists Fun.id (Pool.parallel_map ?budget pool pred level) then
      raise_notrace Found
  in
  match iter_levels ?budget pool ~succ ~key ~depth ~f:check x0 with
  | status -> { Budget.value = false; status }
  | exception Found -> { Budget.value = true; status = Budget.Complete }
