(* Disk tier for the out-of-core frontier: committed dedup keys and the
   undelivered level prefix are written as generation-numbered,
   CRC-validated segments (the Checkpoint format, one fresh name per
   segment), evicted from the heap, and membership-probed through a
   per-segment fingerprint index with exact read-back confirmation.

   Exactness is non-negotiable: a false "already seen" would silently
   drop a state and change the traversal's bytes.  Fingerprints only
   pre-filter — a "no" is final, a "maybe" reloads the segment (through
   a small cache) and compares the actual key.  A segment that cannot be
   read back intact raises [Segment_lost]; the frontier answers that by
   restarting the traversal in-core, trading time for correctness. *)

exception Segment_lost of string

let () =
  Printexc.register_printer (function
    | Segment_lost detail -> Some (Printf.sprintf "Spill.Segment_lost(%s)" detail)
    | _ -> None)

type segment = {
  id : int;
  seg_name : string;
  gen : int;  (* the validated generation under [seg_name] *)
  fps : int array;  (* sorted fingerprints of the segment's keys *)
  nkeys : int;
}

type t = {
  dir : string;
  tag : string;  (* per-session file-name prefix: no cross-run collisions *)
  mutable segs : segment list;  (* newest first *)
  mutable next_id : int;
  mutable prefix_names : (string * int) list;  (* prefix chunks, newest first *)
  cache : (int, string array) Hashtbl.t;  (* seg id -> sorted keys *)
  cache_fifo : int Queue.t;
  mutex : Mutex.t;
}

(* Enough cached segments that the recently-spilled levels — where
   almost all dup probes land in a level-synchronous BFS — confirm from
   memory; small enough that the cache cannot defeat the eviction. *)
let cache_capacity = 4

let session_counter = Atomic.make 0

let create ~dir =
  {
    dir;
    tag =
      Printf.sprintf "spill-%d-%d" (Unix.getpid ())
        (Atomic.fetch_and_add session_counter 1);
    segs = [];
    next_id = 0;
    prefix_names = [];
    cache = Hashtbl.create 8;
    cache_fifo = Queue.create ();
    mutex = Mutex.create ();
  }

(* Two independent Hashtbl hashes give a ~60-bit fingerprint: collisions
   cost a confirming reload, never a wrong answer. *)
let fingerprint k =
  Hashtbl.hash k lor (Hashtbl.seeded_hash 0x9e37 k lsl 30)

let sorted_mem (cmp : 'a -> 'a -> int) (arr : 'a array) (x : 'a) =
  let rec go lo hi =
    lo < hi
    &&
    let mid = (lo + hi) / 2 in
    let c = cmp x arr.(mid) in
    if c = 0 then true else if c < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length arr)

let seg_file_name t id = Printf.sprintf "%s-seg%06d" t.tag id
let pfx_file_name t id = Printf.sprintf "%s-pfx%06d" t.tag id

(* One segment write through the Checkpoint format, read back and
   compared before anyone is allowed to rely on it.  Returns the
   generation on success; [None] (with the failure counted) on a torn
   read-back, injected or real ENOSPC, or any other I/O error — callers
   keep the data in core and carry on. *)
let write_validated t ~name ~payload =
  match
    if Fault.point Fault.Frontier_spill_enospc then
      (* injected: the disk fills mid-spill *)
      raise (Sys_error (t.dir ^ ": No space left on device (injected)"));
    let saved =
      Checkpoint.save ~dir:t.dir ~name
        ~meta:(Checkpoint.make_meta ~progress:t.next_id ())
        ~payload
    in
    (* injected: a crash between write and fsync leaves the renamed file
       short — tear the segment in place, after the atomic rename *)
    if Fault.point Fault.Frontier_spill_torn then begin
      let path = Checkpoint.path_of ~dir:t.dir ~name saved.Checkpoint.generation in
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let half = really_input_string ic (len / 2) in
      close_in_noerr ic;
      let oc = open_out_bin path in
      output_string oc half;
      close_out oc
    end;
    saved.Checkpoint.generation
  with
  | exception (Sys_error _ | Unix.Unix_error _) ->
      Stats.record_spill_write_failure ();
      None
  | generation -> (
      (* read-back validation: never evict against bytes the disk cannot
         return.  A torn/corrupt file stays on disk as debris for the
         recovery oracles; it is simply never registered. *)
      match Checkpoint.load_generation ~dir:t.dir ~name generation with
      | Some (_, read_back) when String.equal read_back payload -> Some generation
      | Some _ | None ->
          Stats.record_spill_write_failure ();
          None
      | exception (Sys_error _ | Unix.Unix_error _) ->
          Stats.record_spill_write_failure ();
          None)

let spill_keys t keys =
  match keys with
  | [] -> true
  | _ -> (
      let id = t.next_id in
      (* advance even on failure: a name is used at most once, so a
         registered segment is always its name's generation *)
      t.next_id <- id + 1;
      let name = seg_file_name t id in
      let arr = Array.of_list keys (* sorted by the caller *) in
      let payload = Marshal.to_string arr [] in
      match write_validated t ~name ~payload with
      | None -> false
      | Some gen ->
          let fps = Array.map fingerprint arr in
          Array.sort compare fps;
          t.segs <-
            { id; seg_name = name; gen; fps; nkeys = Array.length arr }
            :: t.segs;
          Stats.record_spill_segment ~keys:(Array.length arr)
            ~bytes:(String.length payload);
          true)

(* Consult a segment's actual bytes.  Every consultation — cache hit or
   miss — passes the reload-corruption fault site: the injected fault
   models the segment being found corrupt at the moment it is needed,
   wherever its bytes happen to live. *)
let consult t (seg : segment) =
  if Fault.point Fault.Frontier_reload_corrupt then
    raise (Segment_lost (seg.seg_name ^ ": corrupt at reload (injected)"));
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.cache seg.id with
      | Some keys -> keys
      | None -> (
          match
            Checkpoint.load_generation ~dir:t.dir ~name:seg.seg_name seg.gen
          with
          | exception (Sys_error _ | Unix.Unix_error _) ->
              raise (Segment_lost (seg.seg_name ^ ": unreadable"))
          | None -> raise (Segment_lost (seg.seg_name ^ ": torn or corrupt"))
          | Some (_, payload) ->
              let keys =
                match (Marshal.from_string payload 0 : string array) with
                | keys when Array.length keys = seg.nkeys -> keys
                | _ -> raise (Segment_lost (seg.seg_name ^ ": wrong key count"))
                | exception _ ->
                    raise (Segment_lost (seg.seg_name ^ ": undecodable"))
              in
              Stats.record_spill_reload ();
              Hashtbl.replace t.cache seg.id keys;
              Queue.add seg.id t.cache_fifo;
              if Queue.length t.cache_fifo > cache_capacity then
                Hashtbl.remove t.cache (Queue.pop t.cache_fifo);
              keys))

let member t key =
  t.segs <> []
  &&
  let fp = fingerprint key in
  List.exists
    (fun seg ->
      sorted_mem compare seg.fps fp
      && sorted_mem String.compare (consult t seg) key)
    t.segs

let all_keys t =
  List.concat_map
    (fun seg -> Array.to_list (consult t seg))
    (List.rev t.segs)

let spill_prefix t payload =
  let id = t.next_id in
  t.next_id <- id + 1;
  let name = pfx_file_name t id in
  match write_validated t ~name ~payload with
  | None -> false
  | Some gen ->
      t.prefix_names <- (name, gen) :: t.prefix_names;
      Stats.record_spill_segment ~keys:0 ~bytes:(String.length payload);
      true

let prefix_payloads t =
  List.rev_map
    (fun (name, gen) ->
      if Fault.point Fault.Frontier_reload_corrupt then
        raise (Segment_lost (name ^ ": corrupt at reload (injected)"));
      match Checkpoint.load_generation ~dir:t.dir ~name gen with
      | exception (Sys_error _ | Unix.Unix_error _) ->
          raise (Segment_lost (name ^ ": unreadable"))
      | None -> raise (Segment_lost (name ^ ": torn or corrupt"))
      | Some (_, payload) ->
          Stats.record_spill_reload ();
          payload)
    t.prefix_names

let segments t = List.length t.segs + List.length t.prefix_names
let spilled_keys t = List.fold_left (fun a s -> a + s.nkeys) 0 t.segs

(* Remove the session's registered files: spilled content is scratch
   (checkpoint snapshots absorb it), so a finished traversal leaves
   nothing behind.  Unregistered debris — torn read-backs — is left for
   the recovery oracles and post-mortems. *)
let discard t =
  let remove name gen =
    try Sys.remove (Checkpoint.path_of ~dir:t.dir ~name gen)
    with Sys_error _ -> ()
  in
  List.iter (fun seg -> remove seg.seg_name seg.gen) t.segs;
  List.iter (fun (name, gen) -> remove name gen) t.prefix_names;
  t.segs <- [];
  t.prefix_names <- [];
  Mutex.lock t.mutex;
  Hashtbl.reset t.cache;
  Queue.clear t.cache_fifo;
  Mutex.unlock t.mutex
