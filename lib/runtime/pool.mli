(** A fixed-size pool of worker domains with order-preserving parallel
    combinators over chunked work lists.

    The pool spawns [jobs - 1] worker domains at {!create} time; the
    calling domain is the pool's slot 0 and always participates in the
    work, so a pool of [jobs = n] runs work [n]-way parallel.  With
    [jobs = 1] no domains are spawned and every combinator degrades to
    its serial [List] counterpart — call sites need no special-casing.

    Work lists are split into at most [jobs] contiguous chunks, one per
    participating slot, so results can be stitched back by index:
    {!parallel_map} is deterministic and agrees with [List.map]
    regardless of scheduling.

    Combinators must not be called from inside a task running on the
    same pool (chunks are pinned to worker queues, so a nested call can
    wait on the very slot it occupies).

    {b Crash containment.}  Workers execute tasks under a wrapper that
    routes any escaping exception — including an injected
    {!Fault.Worker_raise}, which is raised {e outside} the task's own
    handlers — to the submitter's failure channel, so a crashed task
    always settles its slot and {!parallel_map} cannot wedge waiting on
    it.  A domain-fatal failure additionally kills the worker's domain;
    the pool detects the dead domain on its next dispatch and respawns
    it ({!Stats} counts the respawns), so a pool survives worker crashes
    without losing capacity.

    {b Quiescence.}  Every combinator is a barrier: it returns only
    after all of its chunks have settled, and workers run nothing
    between combinator calls.  Between two calls the pool is therefore
    {e quiescent} — no task is touching caller state — which is the
    invariant {!Frontier}'s out-of-core ladder relies on when it evicts
    the dedup table and compacts the heap at level boundaries. *)

type t

(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core to
    the caller's other work by default. *)
val default_jobs : unit -> int

(** [create ~jobs ()] spawns [jobs - 1] worker domains.  [jobs] defaults
    to {!default_jobs}; raises [Invalid_argument] if [jobs < 1]. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** [parallel_map t f xs] = [List.map f xs], computed on up to
    [jobs t] domains.  If one or more applications of [f] raise, the
    first exception observed is re-raised on the calling domain after
    every chunk has settled — the pool never deadlocks and remains
    usable.

    With [?budget], every slot consults the budget before each element:
    an exhausted budget makes the chunks stop early and
    [Budget.Exhausted] reach the caller through the same
    settle-then-reraise path, so cancellation (e.g. Ctrl-C) drains the
    workers instead of wedging them. *)
val parallel_map : ?budget:Budget.t -> t -> ('a -> 'b) -> 'a list -> 'b list

val parallel_iter : ?budget:Budget.t -> t -> ('a -> unit) -> 'a list -> unit

(** [post t ~run ~fail] submits one fire-and-forget task to a worker
    (round-robin), with the same crash containment as the combinators:
    anything escaping [run] is routed to [fail] instead of killing the
    submitter's accounting.  Completion must be reported by [run]/[fail]
    themselves (e.g. through a completion queue) — there is no barrier.
    On a pool of [jobs = 1] the task runs inline on the caller.  Call
    only from the pool's owner domain; unlike the combinators, [run]
    must not itself dispatch onto the same pool. *)
val post : t -> run:(unit -> unit) -> fail:(exn -> unit) -> unit

(** Join all worker domains.  Idempotent.  The pool must not be used
    afterwards. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down on
    exit (normal or exceptional).  With [?budget], a SIGINT handler that
    cancels the budget is installed for the duration
    ({!Budget.with_sigint}): Ctrl-C then drains the workers cooperatively
    and [f]'s partial results survive, instead of the process dying
    mid-write.  The previous SIGINT handler is restored on exit, so
    nested and repeated [with_pool] calls compose. *)
val with_pool : ?jobs:int -> ?budget:Budget.t -> (t -> 'a) -> 'a
