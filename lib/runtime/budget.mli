(** Execution budgets: deadlines, state caps, memory watermarks and
    cooperative cancellation.

    Every sweep and verification in this repository is an exhaustive walk
    over a state space that grows super-exponentially in [n], [t] and
    depth.  A {!t} bounds such a walk: it carries an optional wall-clock
    deadline, an optional cap on charged states, an optional live-heap
    watermark (sampled via [Gc.quick_stat]) and an [Atomic]-backed
    cancellation token (flipped by {!cancel}, e.g. from a SIGINT
    handler).  Engines thread a budget through their inner loops via
    {!charge}/{!exceeded}/{!check} — a handful of atomic reads per state,
    cheap enough for BFS hot paths — and, instead of diverging, stop at
    the budget and report the work already done as a {!status}.

    A budget is shared freely across domains: all mutable fields are
    atomics.  Once any limit has been observed the budget is {e tripped}
    and stays tripped ({!tripped} returns the first reason observed), so
    a partial run can report a single coherent truncation reason. *)

type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | States  (** more states were charged than [max_states] allows *)
  | Memory  (** the major heap grew past [max_memory_mb] *)
  | Interrupted  (** {!cancel} was called (e.g. SIGINT) *)

(** Raised by {!check} (and by budget-aware combinators such as
    {!Pool.parallel_map}) when the budget is exhausted.  Cooperative:
    engines catch it at a clean boundary and return their prefix. *)
exception Exhausted of reason

(** How far a truncated computation got before the budget fired. *)
type truncation = {
  reason : reason;
  at_depth : int;  (** deepest fully-completed level/round *)
  states_seen : int;  (** states charged to the budget when it fired *)
}

type status = Complete | Truncated of truncation

(** A computed value plus whether it is the whole answer or a prefix. *)
type 'a outcome = { value : 'a; status : status }

type t

(** [create ?timeout_s ?max_states ?max_memory_mb ?soft_memory_mb ()]
    makes a budget.  The deadline is [timeout_s] wall-clock seconds from
    the call; a [timeout_s] of [0.] is already expired.  All limits
    default to absent: a limit-free budget never trips except through
    {!cancel}.  [soft_memory_mb] is the {e soft} watermark of the
    degradation ladder — crossing it never trips the budget; it makes
    {!pressure} report [`Soft] and {!relieve} engage compaction, and
    spill-capable traversals start evicting to disk.  Raises
    [Invalid_argument] on a negative or non-positive limit. *)
val create :
  ?timeout_s:float ->
  ?max_states:int ->
  ?max_memory_mb:int ->
  ?soft_memory_mb:int ->
  unit ->
  t

(** [child ?timeout_s ?max_states ?max_memory_mb parent] makes a budget
    whose limits are its own but whose cancellation token is linked to
    [parent]: cancelling any ancestor trips the child as [Interrupted],
    while cancelling the child never affects the parent or siblings.
    This is the per-request fault domain used by the serve dispatcher —
    one parent token per connection, one child per admitted request, so
    a disconnect cancels exactly that connection's in-flight work.  A
    child with no limits of its own is a pure cancellation token. *)
val child :
  ?timeout_s:float ->
  ?max_states:int ->
  ?max_memory_mb:int ->
  ?soft_memory_mb:int ->
  t ->
  t

(** Flip the cancellation token.  Async-signal-safe (one atomic store);
    idempotent.  Affects this budget and its descendants, never its
    ancestors. *)
val cancel : t -> unit

(** True when this budget or any ancestor has been cancelled. *)
val is_cancelled : t -> bool

(** [charge t n] adds [n] states to the budget's counter. *)
val charge : t -> int -> unit

val states_seen : t -> int

(** Wall-clock seconds until the deadline (clamped at 0), or [None] when
    the budget has no deadline.  What a checkpoint records so a resumed
    run cannot be granted more total time than the original one. *)
val deadline_remaining : t -> float option

(** [restrict_deadline t ~remaining_s] tightens the deadline to at most
    [remaining_s] seconds from now — it never extends an earlier
    deadline.  Used on resume to re-impose the time a checkpointed run
    had already spent.  Raises [Invalid_argument] on a negative value. *)
val restrict_deadline : t -> remaining_s:float -> unit

(** [exceeded t] is the first limit observed to be exhausted, or [None].
    Cancellation and the states cap are checked on every call; the
    deadline is checked whenever one is set; the heap watermark is
    sampled every 64th call.  A sampled heap over the cap first spends
    the budget's one {!compact_once} and only reports [Memory] if the
    live heap is still over — a fragmented heap must not trip a run that
    would fit.  Sticky: once some reason is returned, every later call
    returns that same reason. *)
val exceeded : t -> reason option

(** {1 Memory-pressure ladder} *)

(** Direct (un-sampled) heap reading against this budget's watermarks:
    [`Hard] above [max_memory_mb], [`Soft] above [soft_memory_mb],
    [`Ok] otherwise (and always [`Ok] with no memory limits).  One
    [Gc.quick_stat]; meant for level boundaries, not per-state loops. *)
val pressure : t -> [ `Ok | `Soft | `Hard ]

(** [compact_once t] spends the budget's single [Gc.compact] (counted in
    {!Stats}): [true] iff this call performed it.  Idempotent across
    domains — racing callers get at most one compaction per budget. *)
val compact_once : t -> bool

(** [relieve t] is the per-state form of the ladder's first two rungs
    for serial engines: every 64th call it samples the heap against the
    soft watermark, counts a [memory soft event] and spends
    {!compact_once} on a crossing, and returns [true] when pressure
    persists after relief.  Free when no soft watermark is set. *)
val relieve : t -> bool

(** [check t] raises [Exhausted r] iff [exceeded t = Some r]. *)
val check : t -> unit

(** The first reason this budget was ever observed exhausted, if any —
    what a driver consults after a run to pick its exit code. *)
val tripped : t -> reason option

(** [truncated t ~reason ~at_depth] packages the budget's current state
    counter into a [Truncated] status. *)
val truncated : t -> reason:reason -> at_depth:int -> status

(** {1 [option] helpers}

    Engines take [?budget]; these make the [None] path free. *)

val exceeded_opt : t option -> reason option
val charge_opt : t option -> int -> unit
val check_opt : t option -> unit

(** [`Ok] when no budget is present. *)
val pressure_opt : t option -> [ `Ok | `Soft | `Hard ]

val relieve_opt : t option -> bool

(** {1 Signal integration} *)

(** [with_sigint t f] runs [f ()] with a SIGINT handler installed that
    calls [cancel t], restoring the previous handler on exit.  On
    platforms without signal support it just runs [f]. *)
val with_sigint : t -> (unit -> 'a) -> 'a

(** {1 Printers} *)

val pp_reason : Format.formatter -> reason -> unit
val pp_truncation : Format.formatter -> truncation -> unit
val pp_status : Format.formatter -> status -> unit
