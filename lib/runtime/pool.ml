type worker = {
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  cond : Condition.t;
}

type t = {
  size : int;
  workers : worker array;  (* [size - 1] of them; slot p runs on workers.(p - 1) *)
  stop : bool Atomic.t;
  mutable domains : unit Domain.t list;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)
let jobs t = t.size

(* Workers sleep on their own condition variable and drain their queue
   before honouring [stop], so shutdown never drops submitted work. *)
let rec worker_loop pool w =
  Mutex.lock w.mutex;
  while Queue.is_empty w.queue && not (Atomic.get pool.stop) do
    Condition.wait w.cond w.mutex
  done;
  match Queue.take_opt w.queue with
  | None -> Mutex.unlock w.mutex
  | Some task ->
      Mutex.unlock w.mutex;
      task ();
      worker_loop pool w

let create ?jobs () =
  let size =
    match jobs with
    | None -> default_jobs ()
    | Some j -> if j < 1 then invalid_arg "Pool.create: jobs must be >= 1" else j
  in
  let workers =
    Array.init (size - 1) (fun _ ->
        { queue = Queue.create (); mutex = Mutex.create (); cond = Condition.create () })
  in
  let pool = { size; workers; stop = Atomic.make false; domains = [] } in
  pool.domains <-
    Array.to_list (Array.map (fun w -> Domain.spawn (fun () -> worker_loop pool w)) workers);
  pool

let submit w task =
  Mutex.lock w.mutex;
  Queue.add task w.queue;
  Condition.signal w.cond;
  Mutex.unlock w.mutex

let shutdown pool =
  Atomic.set pool.stop true;
  Array.iter
    (fun w ->
      Mutex.lock w.mutex;
      Condition.broadcast w.cond;
      Mutex.unlock w.mutex)
    pool.workers;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool ?jobs ?budget f =
  let pool = create ?jobs () in
  let go () = Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool) in
  match budget with None -> go () | Some b -> Budget.with_sigint b go

let parallel_map ?budget pool f xs =
  match xs with
  | [] -> []
  | [ x ] ->
      Stats.record_task ~slot:0;
      Budget.check_opt budget;
      [ f x ]
  | xs when pool.size = 1 ->
      Stats.record_task ~slot:0;
      List.map
        (fun x ->
          Budget.check_opt budget;
          f x)
        xs
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let out = Array.make n None in
      let parts = min pool.size n in
      let remaining = Atomic.make parts in
      let first_exn = Atomic.make None in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      (* Slot [p] owns the index range [bound p, bound (p+1)). *)
      let bound p = p * n / parts in
      let run_chunk p =
        (try
           for i = bound p to bound (p + 1) - 1 do
             Budget.check_opt budget;
             out.(i) <- Some (f input.(i))
           done
         with e -> ignore (Atomic.compare_and_set first_exn None (Some e)));
        Stats.record_task ~slot:p;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          (* Last chunk: wake the caller, who may already be waiting. *)
          Mutex.lock done_mutex;
          Condition.broadcast done_cond;
          Mutex.unlock done_mutex
        end
      in
      for p = 1 to parts - 1 do
        submit pool.workers.(p - 1) (fun () -> run_chunk p)
      done;
      run_chunk 0;
      Mutex.lock done_mutex;
      while Atomic.get remaining > 0 do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex;
      (match Atomic.get first_exn with Some e -> raise e | None -> ());
      Array.to_list (Array.map (function Some y -> y | None -> assert false) out)

let parallel_iter ?budget pool f xs = ignore (parallel_map ?budget pool (fun x -> f x) xs)
