(* A queued unit of work.  [fail] is the crash-containment channel: if
   anything escapes [run] — including an injected worker fault raised
   outside [run]'s own handlers — the worker routes the exception there
   instead of dying with it, so the submitter's accounting always
   settles and a waiting [parallel_map] can never wedge on a lost
   slot. *)
type task = { run : unit -> unit; fail : exn -> unit }

type worker = {
  queue : task Queue.t;
  mutex : Mutex.t;
  cond : Condition.t;
  alive : bool Atomic.t;  (* false once the worker's domain has exited *)
  mutable domain : unit Domain.t option;
      (* touched only from the owner domain (create / ensure_live /
         shutdown), never from the worker itself *)
}

type t = {
  size : int;
  workers : worker array;  (* [size - 1] of them; slot p runs on workers.(p - 1) *)
  stop : bool Atomic.t;
  next_post : int Atomic.t;  (* round-robin cursor for [post] *)
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)
let jobs t = t.size

(* Execute one task under crash containment.  The [Worker_raise] and
   [Worker_stall] fault sites live here — around the task, outside its
   own handlers — precisely because this is the layer whose job is to
   survive them.  Returns [false] when the failure was domain-fatal
   (the injected worker crash): the loop then exits and the dead domain
   is respawned by [ensure_live] on the pool's next use. *)
let run_task w task =
  match
    if Fault.point Fault.Worker_raise then raise (Fault.Injected Fault.Worker_raise);
    if Fault.point Fault.Worker_stall then Unix.sleepf Fault.stall_seconds;
    task.run ()
  with
  | () -> true
  | exception e ->
      let fatal = match e with Fault.Injected Fault.Worker_raise -> true | _ -> false in
      (* On a domain-fatal failure, mark the worker dead *before*
         settling the submitter: [fail] wakes a waiting [parallel_map],
         and if that caller dispatched again while [alive] still read
         true, [ensure_live] would skip the respawn and the new task
         would sit in a queue nobody drains. *)
      if fatal then Atomic.set w.alive false;
      (try task.fail e with _ -> ());
      not fatal

(* Workers sleep on their own condition variable and drain their queue
   before honouring [stop], so shutdown never drops submitted work. *)
let rec worker_loop pool w =
  Mutex.lock w.mutex;
  while Queue.is_empty w.queue && not (Atomic.get pool.stop) do
    Condition.wait w.cond w.mutex
  done;
  match Queue.take_opt w.queue with
  | None -> Mutex.unlock w.mutex
  | Some task ->
      Mutex.unlock w.mutex;
      if run_task w task then worker_loop pool w

let spawn pool w = w.domain <- Some (Domain.spawn (fun () -> worker_loop pool w))

let create ?jobs () =
  let size =
    match jobs with
    | None -> default_jobs ()
    | Some j -> if j < 1 then invalid_arg "Pool.create: jobs must be >= 1" else j
  in
  let workers =
    Array.init (size - 1) (fun _ ->
        {
          queue = Queue.create ();
          mutex = Mutex.create ();
          cond = Condition.create ();
          alive = Atomic.make true;
          domain = None;
        })
  in
  let pool = { size; workers; stop = Atomic.make false; next_post = Atomic.make 0 } in
  Array.iter (fun w -> spawn pool w) workers;
  pool

(* Respawn any worker whose domain died (a contained catastrophic task
   failure).  Called from the owner domain before each dispatch, so a
   crashed worker costs one trip through here, not the pool. *)
let ensure_live pool =
  Array.iter
    (fun w ->
      if not (Atomic.get w.alive) then begin
        (* the domain set alive := false on its way out; join releases it *)
        Option.iter Domain.join w.domain;
        Atomic.set w.alive true;
        Stats.record_worker_respawn ();
        spawn pool w
      end)
    pool.workers

let submit w task =
  Mutex.lock w.mutex;
  Queue.add task w.queue;
  Condition.signal w.cond;
  Mutex.unlock w.mutex

let shutdown pool =
  Atomic.set pool.stop true;
  Array.iter
    (fun w ->
      Mutex.lock w.mutex;
      Condition.broadcast w.cond;
      Mutex.unlock w.mutex)
    pool.workers;
  Array.iter
    (fun w ->
      Option.iter Domain.join w.domain;
      w.domain <- None)
    pool.workers

(* Fire-and-forget submission for the serve dispatcher: one task, no
   barrier, completion reported through whatever channel [run] itself
   arranges.  On a single-slot pool the task runs inline on the caller
   with the same crash containment a worker would give it — the serve
   loop at --jobs 1 is then exactly the old sequential dispatch.  Must
   be called from the pool's owner domain (it may respawn workers). *)
let post pool ~run ~fail =
  if Array.length pool.workers = 0 then begin
    Stats.record_task ~slot:0;
    match run () with () -> () | exception e -> (try fail e with _ -> ())
  end
  else begin
    ensure_live pool;
    let w = Atomic.fetch_and_add pool.next_post 1 in
    let slot = w mod Array.length pool.workers in
    Stats.record_task ~slot:(slot + 1);
    submit pool.workers.(slot) { run; fail }
  end

let with_pool ?jobs ?budget f =
  let pool = create ?jobs () in
  let go () = Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool) in
  match budget with None -> go () | Some b -> Budget.with_sigint b go

let parallel_map ?budget pool f xs =
  match xs with
  | [] -> []
  | [ x ] ->
      Stats.record_task ~slot:0;
      Budget.check_opt budget;
      [ f x ]
  | xs when pool.size = 1 ->
      Stats.record_task ~slot:0;
      List.map
        (fun x ->
          Budget.check_opt budget;
          f x)
        xs
  | xs ->
      ensure_live pool;
      let input = Array.of_list xs in
      let n = Array.length input in
      let out = Array.make n None in
      let parts = min pool.size n in
      let remaining = Atomic.make parts in
      let first_exn = Atomic.make None in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      (* Every chunk settles through here exactly once — from its own
         bookkeeping on success, or from the worker's containment
         [fail] channel when the chunk itself was lost. *)
      let settle p =
        Stats.record_task ~slot:p;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          (* Last chunk: wake the caller, who may already be waiting. *)
          Mutex.lock done_mutex;
          Condition.broadcast done_cond;
          Mutex.unlock done_mutex
        end
      in
      (* Slot [p] owns the index range [bound p, bound (p+1)). *)
      let bound p = p * n / parts in
      let run_chunk p =
        (try
           for i = bound p to bound (p + 1) - 1 do
             Budget.check_opt budget;
             out.(i) <- Some (f input.(i))
           done
         with e -> ignore (Atomic.compare_and_set first_exn None (Some e)));
        settle p
      in
      let fail_chunk e =
        ignore (Atomic.compare_and_set first_exn None (Some e))
      in
      for p = 1 to parts - 1 do
        submit pool.workers.(p - 1)
          {
            run = (fun () -> run_chunk p);
            fail =
              (fun e ->
                fail_chunk e;
                settle p);
          }
      done;
      run_chunk 0;
      Mutex.lock done_mutex;
      while Atomic.get remaining > 0 do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex;
      (match Atomic.get first_exn with Some e -> raise e | None -> ());
      Array.to_list (Array.map (function Some y -> y | None -> assert false) out)

let parallel_iter ?budget pool f xs = ignore (parallel_map ?budget pool (fun x -> f x) xs)
