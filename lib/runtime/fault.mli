(** Deterministic, seed-driven fault injection for the runtime itself.

    The paper's subject is computation under adversarial failures; this
    module turns the same adversarial stance on our own runtime.  Named
    {e fault sites} are threaded through the hot paths of the pool, the
    frontier BFS, the budget probes and the valence engine.  A site is a
    call to {!point}: it answers [false] always — unless injection has
    been {!arm}ed for that site, in which case exactly one visit (chosen
    by the seed) answers [true] and the call site misbehaves in its own
    documented way (drop a successor, raise in a worker, report a
    spurious cancellation, ...).

    {b Fast path.}  Injection is guarded by a single [Atomic] flag read:
    with injection disarmed (the production state) {!point} is one
    [Atomic.get] and a branch, nothing else — see the
    [chaos/point-disabled] bench kernel for the measured cost.

    {b Determinism.}  [arm ~seed site] derives the firing visit index
    from [seed] and fires {e exactly once}: visit indices are allocated
    with a fetch-and-add, so precisely one visit observes the target
    index regardless of how many domains race through the site.  Which
    domain that is may vary with scheduling; that the fault fires, and
    how many times, does not.

    Injection is process-global (sites live inside engine hot loops that
    have no room for a handle); arm/disarm from one place only — the
    chaos harness does. *)

type site =
  | Drop_successor  (** a freshly-discovered state is silently discarded *)
  | Duplicate_state  (** a state enters the frontier twice, past dedup *)
  | Corrupt_dedup_shard
      (** a dedup shard marks an unseen key as already claimed *)
  | Worker_raise
      (** a pool worker raises around a task, outside the task's own
          handlers, and its domain dies *)
  | Worker_stall  (** a pool worker sleeps {!stall_seconds} mid-task *)
  | Spurious_cancel
      (** a budget probe reports [Interrupted] though nobody cancelled *)
  | Flip_valence_bit  (** a valence classification returns a wrong verdict *)
  | Torn_checkpoint_write
      (** a checkpoint file is truncated mid-write, as by a crash or a
          full disk, leaving a short (torn) generation on disk *)
  | Corrupt_checkpoint_crc
      (** a checkpoint payload byte is flipped {e after} the CRC was
          computed, so the stored checksum no longer matches the body *)
  | Serve_handler_raise
      (** the serve daemon's request handler raises mid-dispatch; the
          per-request containment layer must turn this into an error
          response and keep the daemon serving *)
  | Serve_corrupt_response
      (** one serve response line has a byte flipped just before the
          socket write, as by a transport-layer corruption *)
  | Serve_torn_frame
      (** a serve response line is torn mid-write: the daemon emits the
          first half of the frame and drops the connection, as by a
          crash between two [write(2)]s — the client sees a partial
          line followed by EOF and must reconnect and replay *)
  | Serve_stalled_client
      (** the daemon's read path stalls {!stall_seconds} before
          consuming a client's bytes, as by a scheduling hiccup or a
          slow-loris peer wedging the accept loop *)
  | Serve_crash_before_reply
      (** the daemon dies after dispatching a request — caches filled,
          spill written — but before the response write, the canonical
          torn-window crash the supervisor and client replay must mask *)
  | Serve_cancel_midflight
      (** an admitted request's budget token is cancelled at dispatch
          time, as by a client disconnect racing its own request — the
          per-request fault domain must answer {e that} request with the
          structured [cancelled] error and leave every other request,
          the caches and the daemon untouched *)
  | Serve_singleflight_leader_crash
      (** the leader of a single-flight computation raises mid-walk;
          the dispatcher must fail only the leader and re-run the
          computation for the coalesced waiters under a waiter's own
          budget (the cancellation-safe retry) *)
  | Frontier_spill_torn
      (** a spill segment is truncated after the rename, as a crash
          mid-write would leave it — the post-write read-back must
          reject it and keep the keys in core, never evict against a
          torn segment *)
  | Frontier_spill_enospc
      (** the spill write path sees ENOSPC mid-segment — the frontier
          must absorb the failure (keys stay in core, a write failure is
          counted) and keep exploring rather than crash or drop states *)
  | Frontier_reload_corrupt
      (** a spilled segment consulted for a membership probe or a
          checkpoint flush turns out corrupt — the traversal must fall
          back to in-core re-exploration (wrong dedup is never an
          option) *)

(** Raised into the runtime by the [Worker_raise] site. *)
exception Injected of site

val all : site list

val site_name : site -> string

(** Inverse of {!site_name}; [None] on an unknown name. *)
val site_of_name : string -> site option

val pp_site : Format.formatter -> site -> unit

(** How long the [Worker_stall] site sleeps when it fires.  Large enough
    that a timing oracle separates a stalled run from an honest one with
    a wide margin. *)
val stall_seconds : float

(** [arm ~seed site] enables injection for [site] and resets the visit
    counters.  The firing visit index is [seed]-derived but always small
    (< 3), so any site visited at least three times during the armed run
    is guaranteed to fire. *)
val arm : seed:int -> site -> unit

(** Disable injection: every {!point} is [false] again.  Idempotent. *)
val disarm : unit -> unit

val armed : unit -> site option

(** Like {!armed}, but also reports the seed injection was armed with —
    recorded in checkpoint metadata so a resumed run knows a snapshot was
    written under fire. *)
val armed_with : unit -> (site * int) option

(** [point site] is [true] iff the armed fault fires at this visit.
    Call sites must make the documented misbehaviour happen when it
    does.  Visits to sites other than the armed one are not counted. *)
val point : site -> bool

(** Visits to the armed site since {!arm} (how often the fault {e could}
    have fired). *)
val hits : unit -> int

(** Times the armed fault actually fired since {!arm} (0 or 1: a armed
    fault fires at most once).  A chaos trial whose armed run ends with
    [fired () = 0] never exercised the fault and proves nothing. *)
val fired : unit -> int

(** [mangle_level level] applies the [Drop_successor] / [Duplicate_state]
    sites to a completed BFS level: drops the head if [Drop_successor]
    fires, duplicates it if [Duplicate_state] fires, else returns the
    list unchanged.  Free when injection is disarmed (one flag read). *)
val mangle_level : 'a list -> 'a list
