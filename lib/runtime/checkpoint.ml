(* Version 2: meta grew the [symmetry] flag.  Version-1 snapshots are
   rejected as not-intact (fresh start) rather than misread — the first
   meta field is the version int in both layouts, so the check below
   reads clean even against an old body. *)
let current_version = 2
let magic = "LAYCKPT1"

type meta = {
  version : int;
  created_s : float;
  progress : int;
  states_charged : int;
  deadline_remaining_s : float option;
  stats : Stats.snapshot;
  fault : (string * int) option;
  symmetry : bool;
}

exception Symmetry_mismatch of { saved : bool; requested : bool }

let () =
  Printexc.register_printer (function
    | Symmetry_mismatch { saved; requested } ->
        Some
          (Printf.sprintf
             "checkpoint symmetry mismatch: snapshot was written with \
              --symmetry %s but this run has --symmetry %s (rerun with the \
              matching flag or remove the checkpoint directory)"
             (if saved then "on" else "off")
             (if requested then "on" else "off"))
    | _ -> None)

type saved = { generation : int; bytes : int }
type loaded = { meta : meta; payload : string; generation : int; rejected : int }

let make_meta ?budget ?(symmetry = false) ~progress () =
  {
    version = current_version;
    created_s = Unix.gettimeofday ();
    progress;
    states_charged =
      (match budget with Some b -> Budget.states_seen b | None -> 0);
    deadline_remaining_s =
      (match budget with Some b -> Budget.deadline_remaining b | None -> None);
    stats = Stats.snapshot ();
    fault =
      Option.map
        (fun (site, seed) -> (Fault.site_name site, seed))
        (Fault.armed_with ());
    symmetry;
  }

(* ---- CRC-32 (IEEE 802.3, table-driven; no external deps) ------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

(* ---- On-disk format -------------------------------------------------- *)
(* magic(8) | body length u32 BE | body CRC-32 u32 BE | body.
   The body is [Marshal.to_string (meta, payload)].  A torn write fails
   the length check; a flipped body byte fails the CRC check; Marshal is
   only ever run on a body both checks accepted. *)

let header_bytes = String.length magic + 8

let add_u32 buf n =
  for shift = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((n lsr (shift * 8)) land 0xff))
  done

let get_u32 s off =
  let b i = Char.code s.[off + i] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let file_name name generation = Printf.sprintf "%s.g%06d.ckpt" name generation
let path ~dir ~name generation = Filename.concat dir (file_name name generation)

let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let generations ~dir ~name =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      let prefix = name ^ ".g" and suffix = ".ckpt" in
      Array.to_list entries
      |> List.filter_map (fun entry ->
             if
               String.starts_with ~prefix entry
               && Filename.check_suffix entry suffix
             then
               int_of_string_opt
                 (String.sub entry (String.length prefix)
                    (String.length entry - String.length prefix
                   - String.length suffix))
             else None)
      |> List.sort_uniq compare

let save ~dir ~name ~meta ~payload =
  ensure_dir dir;
  let generation =
    match List.rev (generations ~dir ~name) with
    | latest :: _ -> latest + 1
    | [] -> 1
  in
  let body = Marshal.to_string (meta, payload) [] in
  let crc = crc32 body in
  (* chaos site: a payload byte flips after the checksum was computed, so
     the stored CRC vouches for bytes that are no longer there *)
  let body =
    if Fault.point Fault.Corrupt_checkpoint_crc && String.length body > 0 then begin
      let b = Bytes.of_string body in
      let i = Bytes.length b / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
      Bytes.to_string b
    end
    else body
  in
  let buf = Buffer.create (String.length body + header_bytes) in
  Buffer.add_string buf magic;
  add_u32 buf (String.length body);
  add_u32 buf crc;
  Buffer.add_string buf body;
  let data = Buffer.contents buf in
  (* chaos site: the write dies halfway — as a crash or full disk would
     leave it — and the torn file still gets renamed into place *)
  let data =
    if Fault.point Fault.Torn_checkpoint_write then
      String.sub data 0 (String.length data / 2)
    else data
  in
  let tmp = path ~dir ~name generation ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc data
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp (path ~dir ~name generation);
  { generation; bytes = String.length data }

let read_file p =
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic ->
      let len = in_channel_length ic in
      let data = really_input_string ic len in
      close_in_noerr ic;
      Some data

let decode data =
  if String.length data < header_bytes then None
  else if String.sub data 0 (String.length magic) <> magic then None
  else
    let body_len = get_u32 data (String.length magic) in
    let crc = get_u32 data (String.length magic + 4) in
    if String.length data <> header_bytes + body_len then None
    else
      let body = String.sub data header_bytes body_len in
      if crc32 body <> crc then None
      else
        match (Marshal.from_string body 0 : meta * string) with
        | meta, payload when meta.version = current_version ->
            Some (meta, payload)
        | _ | (exception _) -> None

let load_generation ~dir ~name generation =
  Option.bind (read_file (path ~dir ~name generation)) decode

let scan ~dir ~name =
  List.map
    (fun g -> (g, Option.is_some (load_generation ~dir ~name g)))
    (generations ~dir ~name)

let load_latest ~dir ~name =
  let rec newest_intact rejected = function
    | [] ->
        Stats.add_ckpt_rejected rejected;
        None
    | generation :: older -> (
        match load_generation ~dir ~name generation with
        | Some (meta, payload) ->
            Stats.add_ckpt_rejected rejected;
            Some { meta; payload; generation; rejected }
        | None -> newest_intact (rejected + 1) older)
  in
  newest_intact 0 (List.rev (generations ~dir ~name))

let path_of ~dir ~name generation = path ~dir ~name generation

let scan_dir ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter (fun e -> Filename.check_suffix e ".ckpt")
      |> List.sort compare
      |> List.map (fun e ->
             let intact =
               match read_file (Filename.concat dir e) with
               | None -> false
               | Some data -> Option.is_some (decode data)
             in
             (e, intact))

let prune ~dir ~name ~keep =
  let keep = max 1 keep in
  let gens = List.rev (generations ~dir ~name) in
  let stale = List.filteri (fun i _ -> i >= keep) gens in
  List.fold_left
    (fun deleted g ->
      match Sys.remove (path ~dir ~name g) with
      | () -> deleted + 1
      | exception Sys_error _ -> deleted)
    0 stale
