(** Round engine for the synchronous message-passing models of Sections 5
    and 6, functorised over a deterministic protocol.

    Two failure disciplines share the engine:

    - {e mobile} ([record_failures = false], Section 5, model [M^mf]): in
      every round the environment may drop some of one process's messages;
      nothing is recorded, nobody is ever "failed at" a finite state (the
      model displays no finite failure).
    - {e t-resilient} ([record_failures = true], Section 6): a process that
      omits a message is recorded as failed by the environment and is
      silenced (sends nothing) in all later rounds — the classical crash
      model where a crash may lose an arbitrary subset of the final
      round's messages. *)

(** Named result signature of {!Make}, so instantiated engines can be
    packed as first-class modules (e.g. the bench harness's shared
    [make_sync_engine] helper). *)
module type S = Engine_intf.S

module Make (P : Protocol.S) : S with type local = P.local
