open Layered_core

module type S = Engine_intf.S

module Make (P : Protocol.S) = struct
  type local = P.local

  type state = {
    round : int;
    locals : local array;
    failed : bool array;
    interned : Intern.slot;
  }

  type omission = { sender : Pid.t; blocked : Pid.t list }
  type action = omission list

  let n_of x = Array.length x.locals

  let initial ~inputs =
    let n = Array.length inputs in
    {
      round = 0;
      locals = Array.init n (fun i -> P.init ~n ~pid:(i + 1) ~input:inputs.(i));
      failed = Array.make n false;
      interned = Intern.fresh_slot ();
    }

  let initial_states ~n ~values =
    List.map (fun inputs -> initial ~inputs) (Inputs.vectors ~n ~values)

  let normalise_omission n { sender; blocked } =
    if sender < 1 || sender > n then invalid_arg "Engine: bad sender";
    { sender; blocked = List.sort_uniq compare (List.filter (fun d -> d <> sender) blocked) }

  let apply ~record_failures x action =
    let n = n_of x in
    let action = List.map (normalise_omission n) action in
    let senders = List.map (fun o -> o.sender) action in
    if List.length (List.sort_uniq compare senders) <> List.length senders then
      invalid_arg "Engine.apply: duplicate omitters";
    let round = x.round + 1 in
    (* blocked.(i - 1).(j - 1): is i -> j dropped this round?  Built once
       per action (non-omitting senders share one all-false row), so the
       per-(i, j) receive test below is an array probe instead of a
       List.mem over the omission's destination list. *)
    let no_block = Array.make n false in
    let blocked = Array.make n no_block in
    let omits = Array.make n false in
    List.iter
      (fun o ->
        let row = Array.make n false in
        List.iter (fun d -> row.(d - 1) <- true) o.blocked;
        blocked.(o.sender - 1) <- row;
        omits.(o.sender - 1) <- true)
      action;
    (* outbox.(i - 1): messages process i sends this round, or None if
       silenced. *)
    let outbox =
      Array.init n (fun idx ->
          let i = idx + 1 in
          if x.failed.(idx) then None
          else Some (fun dest -> P.send ~n ~round ~pid:i x.locals.(idx) ~dest))
    in
    let received_by j =
      Array.init n (fun idx ->
          let i = idx + 1 in
          if i = j then None
          else
            match outbox.(idx) with
            | None -> None
            | Some send -> if blocked.(idx).(j - 1) then None else send j)
    in
    let locals =
      Array.init n (fun idx ->
          let j = idx + 1 in
          P.step ~n ~round ~pid:j x.locals.(idx) ~received:(received_by j))
    in
    let failed =
      if record_failures then Array.init n (fun idx -> x.failed.(idx) || omits.(idx))
      else Array.copy x.failed
    in
    { round; locals; failed; interned = Intern.fresh_slot () }

  let apply_jk ~record_failures x j k =
    let blocked = List.filter (fun d -> d <= k) (Pid.all (n_of x)) in
    apply ~record_failures x [ { sender = j; blocked } ]

  let raw_key x =
    let buf = Buffer.create 64 in
    Buffer.add_string buf (string_of_int x.round);
    Buffer.add_char buf '|';
    Array.iter (fun f -> Buffer.add_char buf (if f then '1' else '0')) x.failed;
    Array.iter
      (fun l ->
        Buffer.add_char buf '|';
        Buffer.add_string buf (P.key l))
      x.locals;
    Buffer.contents buf

  (* Component signature for interning: header = round, part i = process
     i's failure bit + local key — exactly the data [agree_modulo]
     compares outside the masked position (the bit prefix has fixed
     width, so the encoding stays injective). *)
  let raw_parts x =
    let n = n_of x in
    Array.init (n + 1) (fun i ->
        if i = 0 then string_of_int x.round
        else (if x.failed.(i - 1) then "1" else "0") ^ P.key x.locals.(i - 1))

  let intern_table = Intern.create ~key:raw_key ~parts:raw_parts ()
  let meta x = Intern.memo intern_table x.interned x
  let key x = (meta x).Intern.key
  let ident x = (meta x).Intern.id
  let equal x y = ident x = ident y
  let decisions x = Array.map P.decision x.locals

  let decided_vset x =
    let s = ref Vset.empty in
    Array.iteri
      (fun idx l ->
        if not x.failed.(idx) then
          match P.decision l with Some v -> s := Vset.add v !s | None -> ())
      x.locals;
    !s

  let terminal x =
    let ok = ref true in
    Array.iteri
      (fun idx l -> if (not x.failed.(idx)) && P.decision l = None then ok := false)
      x.locals;
    !ok

  let failed_count x = Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 x.failed

  let nonfailed x =
    List.filter (fun i -> not (x.failed.(i - 1))) (Pid.all (n_of x))

  (* Masked part-id equality covers rounds (header part), local keys and
     failure bits of every i <> j — byte-for-byte the old per-local
     string comparison, now O(n) int compares on interned ids. *)
  let agree_modulo x y j = Simgraph.masked_equal (meta x).Intern.parts (meta y).Intern.parts j

  (* Definition 3.1's side condition: some process other than the masked
     one is non-failed in both states. *)
  let witness x y j =
    List.exists (fun i -> (not x.failed.(i - 1)) && not y.failed.(i - 1)) (Pid.others (n_of x) j)

  let similar x y =
    let n = n_of x in
    n = n_of y && List.exists (fun j -> agree_modulo x y j && witness x y j) (Pid.all n)

  let sim_adapter = { Simgraph.parts = (fun x -> (meta x).Intern.parts); witness }
  let sim_inc = Simgraph.Incremental.create ~rel:similar sim_adapter
  let similarity_graph ?builder states = Simgraph.Incremental.build ?builder sim_inc states

  (* Packed hot-path identity: part-id vector hash-consed in the
     statevec arena — injective like [ident] (parts determine the key)
     without rendering the full key string. *)
  let vec_table = Statevec.create ()
  let vec_ident x = Statevec.id vec_table (meta x).Intern.parts

  (* Symmetry: orbit representative under role-respecting renamings. *)
  let canon ~roles x = Intern.canon_meta intern_table ~roles x

  let dedup states =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun x ->
        let k = ident x in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      states

  let jk_action n j k = [ { sender = j; blocked = List.filter (fun d -> d <= k) (Pid.all n) } ]

  let s1_actions x =
    let n = n_of x in
    List.concat_map
      (fun j -> List.map (fun k -> jk_action n j k) (0 :: Pid.all n))
      (Pid.all n)

  let s1 ~record_failures x =
    dedup (List.map (apply ~record_failures x) (s1_actions x))

  (* S^t: while fewer than [t] processes are failed, allow a single fresh
     omission per layer — including the "declaration-only" crash (sender
     recorded failed, no message lost), which keeps the layer similarity
     connected in this model (see DESIGN.md); once [t] processes are
     failed, only the failure-free successor remains. *)
  let st_actions ~t x =
    if failed_count x >= t then [ [] ]
    else begin
      let n = n_of x in
      let per_sender j =
        if x.failed.(j - 1) then []
        else
          List.map (fun k -> jk_action n j k) (0 :: Pid.all n)
          @ [ [ { sender = j; blocked = [] } ] ]
      in
      [] :: List.concat_map per_sender (Pid.all n)
    end

  let st ~t x = dedup (List.map (apply ~record_failures:true x) (st_actions ~t x))

  (* Precomputed successor tables for small (n, t): the [_tab] variants
     answer repeat expansions of a state from the packed-id memo.
     Distinct successor functions share the cache under distinct
     contexts ([t >= 0] for [st], negative for the [s1] variants). *)
  let succ_cache : state Statevec.Memo.cache = Statevec.Memo.create ()

  let st_tab ~t x =
    Statevec.Memo.find succ_cache ~ctx:t ~id:(vec_ident x)
      ~compute:(fun () -> st ~t x)

  let s1_tab ~record_failures x =
    Statevec.Memo.find succ_cache
      ~ctx:(if record_failures then -1 else -2)
      ~id:(vec_ident x)
      ~compute:(fun () -> s1 ~record_failures x)

  let s_multi_actions ~omitters x =
    let n = n_of x in
    (* Choose up to [omitters] distinct senders in increasing order, each
       with a prefix block. *)
    let rec choose senders count =
      let none = [ [] ] in
      if count = 0 then none
      else
        match senders with
        | [] -> none
        | j :: rest ->
            let without = choose rest count in
            let with_j =
              List.concat_map
                (fun k ->
                  List.map
                    (fun tail -> List.concat (jk_action n j k :: [ tail ]))
                    (choose rest (count - 1)))
                (Pid.all n)
            in
            without @ with_j
    in
    choose (Pid.all n) omitters

  let s_multi ~omitters x =
    dedup (List.map (apply ~record_failures:false x) (s_multi_actions ~omitters x))

  let pp_action ppf = function
    | [] -> Format.pp_print_string ppf "(clean)"
    | omissions ->
        let render { sender; blocked } =
          match blocked with
          | [] -> Printf.sprintf "(%d,declare)" sender
          | _ :: _ ->
              Printf.sprintf "(%d,{%s})" sender
                (String.concat "," (List.map string_of_int blocked))
        in
        Format.pp_print_string ppf (String.concat "+" (List.map render omissions))

  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun sub -> x :: sub) s

  let all_actions ~max_new ~remaining_failures x =
    let n = n_of x in
    let candidates = List.filter (fun j -> not x.failed.(j - 1)) (Pid.all n) in
    let budget = min max_new remaining_failures in
    (* Choose up to [budget] distinct fresh omitters (in increasing order to
       avoid duplicates), each with an arbitrary blocked subset. *)
    let rec choose senders count =
      let none = [ [] ] in
      if count = 0 then none
      else
        match senders with
        | [] -> none
        | j :: rest ->
            let without = choose rest count in
            let with_j =
              List.concat_map
                (fun blocked ->
                  List.map
                    (fun tail -> { sender = j; blocked } :: tail)
                    (choose rest (count - 1)))
                (subsets (Pid.others n j))
            in
            without @ with_j
    in
    choose candidates budget

  let explore_spec ~record_failures =
    { Explore.succ = s1 ~record_failures; key }

  let valence_spec ~succ = { Valence.succ; key; decided = decided_vset; terminal }

  let pp ppf x =
    Format.fprintf ppf "@[<v>round %d, failed {%s}@," x.round
      (String.concat ","
         (List.filter_map
            (fun i -> if x.failed.(i - 1) then Some (string_of_int i) else None)
            (Pid.all (n_of x))));
    Array.iteri
      (fun idx l ->
        Format.fprintf ppf "  p%d: %a%s@," (idx + 1) P.pp l
          (match P.decision l with
          | Some v -> Printf.sprintf "  [decided %s]" (Value.to_string v)
          | None -> ""))
      x.locals;
    Format.fprintf ppf "@]"
end
