(** The result signature of {!Engine.Make}, in its own compilation unit
    so both [engine.ml] and [engine.mli] can name it.  See {!Engine} for
    the model-level documentation. *)

open Layered_core

module type S = sig
  type local
  (** the protocol's per-process state ([P.local] of the instantiation) *)

  type state = private {
    round : int;  (** number of completed rounds *)
    locals : local array;  (** index [i - 1] holds process [i]'s state *)
    failed : bool array;  (** environment failure record *)
    interned : Intern.slot;  (** memo cell for the state's {!Intern.meta} *)
  }

  (** Messages from [sender] to every destination in [blocked] are dropped
      in the upcoming round. *)
  type omission = { sender : Pid.t; blocked : Pid.t list }

  (** Simultaneous omissions by distinct senders.  The layerings of the
      paper only ever use a single omission per round; the general form
      supports exhaustive protocol verification. *)
  type action = omission list

  val n_of : state -> int
  val initial : inputs:Value.t array -> state

  (** [Con_0]: one initial state per assignment of [values] to processes. *)
  val initial_states : n:int -> values:Value.t list -> state list

  (** Execute one synchronous round under [action]. *)
  val apply : record_failures:bool -> state -> action -> state

  (** [x (j, [k])] in the paper's notation: a single omission by [j] to the
      prefix [{1, ..., k}]. *)
  val apply_jk : record_failures:bool -> state -> Pid.t -> int -> state

  val key : state -> string

  (** Dense intern id of the state's canonical encoding: equal keys have
      equal ids, so [equal] and memo-table probes are O(1). *)
  val ident : state -> int

  val equal : state -> state -> bool
  val decisions : state -> Value.t option array

  (** Values decided by processes non-failed at the state. *)
  val decided_vset : state -> Vset.t

  (** Every non-failed process has decided. *)
  val terminal : state -> bool

  val failed_count : state -> int
  val nonfailed : state -> Pid.t list

  (** [agree_modulo x y j]: rounds equal, locals of every [i <> j] equal,
      and failure records equal except possibly at [j] (the "version for
      this model" refinement — see DESIGN.md). *)
  val agree_modulo : state -> state -> Pid.t -> bool

  (** Similarity [x ~s y] (Definition 3.1): [agree_modulo] for some [j]
      with some other process non-failed in both states. *)
  val similar : state -> state -> bool

  (** The similarity graph over [states]: node array (input order) plus
      adjacency under {!similar}.  Dispatches on [builder] (default: the
      process-wide {!Simgraph.default}) between the all-pairs reference
      and the signature-bucketed O(m·n) construction; both return the
      same canonical graph. *)
  val similarity_graph :
    ?builder:Simgraph.builder -> state list -> state array * Graph.t

  (** {1 Layerings} *)

  (** The environment actions generating [S_1(x)]: [(j, [k])] for
      [1 <= j <= n], [0 <= k <= n]. *)
  val s1_actions : state -> action list

  (** [S_1(x)] (Section 5): the states [x (j, [k])] for [1 <= j <= n],
      [0 <= k <= n], de-duplicated. *)
  val s1 : record_failures:bool -> state -> state list

  (** The environment actions generating [S^t(x)]: failure-free, and —
      while fewer than [t] processes are failed — one fresh prefix
      omission or declaration crash per non-failed sender. *)
  val st_actions : t:int -> state -> action list

  (** [S^t(x)] (Section 6): [S_1(x)] while fewer than [t] processes are
      failed, otherwise only the failure-free successor. *)
  val st : t:int -> state -> state list

  (** Render an action, e.g. ["(2,[1..3])"], ["(2,declare)"] or
      ["(clean)"]. *)
  val pp_action : Format.formatter -> action -> unit

  (** {1 Generalised mobile layering}

      Santoro-Widmayer's model allows the dynamic fault to move; the
      paper's [S_1] uses one mobile omitter per round.  [s_multi] allows
      up to [omitters] distinct senders to omit (prefix-blocked) in the
      same round — a strictly stronger mobile adversary, under which the
      impossibility analysis goes through a fortiori (experiment E17). *)

  val s_multi_actions : omitters:int -> state -> action list

  (** De-duplicated successors under {!s_multi_actions}, without failure
      recording (mobile semantics).  [s_multi ~omitters:1] coincides with
      [s1 ~record_failures:false]. *)
  val s_multi : omitters:int -> state -> state list

  (** {1 Adversary enumeration (for exhaustive protocol verification)} *)

  (** All actions with at most [max_new] fresh omitters, each blocking any
      subset of its destinations, subject to the budget of
      [remaining_failures]; silenced processes are implicit.  Includes the
      failure-free action. *)
  val all_actions : max_new:int -> remaining_failures:int -> state -> action list

  (** {1 Packed hot-path identity}

      The statevec path: the state's dense part-id vector hash-consed in
      a packed [Bytes] arena.  [vec_ident] is injective exactly like
      {!ident} (parts determine the key) but skips the full key render,
      and the [_tab] successor functions memoize through the precomputed
      successor table for small instances. *)

  val vec_ident : state -> int

  (** [st ~t], memoized by packed state id (t is the memo context). *)
  val st_tab : t:int -> state -> state list

  (** [s1 ~record_failures], memoized by packed state id. *)
  val s1_tab : record_failures:bool -> state -> state list

  (** {1 Symmetry}

      Orbit representative of the state under role-respecting process
      permutations ({!Intern.canon_meta}).  Sound for this engine
      whenever the protocol's local keys are process-id-free: part [i]
      is the failure bit + local key, the header is the round, so
      permuting the part array is exactly the renaming action. *)

  val canon : roles:int array -> state -> Intern.canon

  (** {1 Specs for the generic engines} *)

  val explore_spec : record_failures:bool -> state Explore.spec
  val valence_spec : succ:(state -> state list) -> state Valence.spec
  val pp : Format.formatter -> state -> unit
end
