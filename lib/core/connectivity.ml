let graph_of ~rel states =
  let arr = Array.of_list states in
  let g = Graph.of_pred ~size:(Array.length arr) (fun i j -> rel arr.(i) arr.(j)) in
  (arr, g)

let connected ~rel states =
  let _, g = graph_of ~rel states in
  Graph.is_connected g

let components ~rel states =
  let arr, g = graph_of ~rel states in
  List.map (List.map (fun i -> arr.(i))) (Graph.components g)

let index_of ~equal arr x =
  let n = Array.length arr in
  let rec go i = if i >= n then None else if equal arr.(i) x then Some i else go (i + 1) in
  go 0

let path ~rel ~equal states ~src ~dst =
  let arr, g = graph_of ~rel states in
  match (index_of ~equal arr src, index_of ~equal arr dst) with
  | Some i, Some j ->
      Option.map (List.map (fun k -> arr.(k))) (Graph.path g i j)
  | None, _ | _, None -> invalid_arg "Connectivity.path: endpoint not in state set"

let diameter ~rel states =
  let _, g = graph_of ~rel states in
  Graph.diameter g

(* Builder-based variants: the caller supplies the graph construction
   (typically an engine's [similarity_graph], which dispatches between
   the all-pairs and the bucketed builder), and connectivity questions
   reduce to the same {!Graph} algorithms. *)

type 'a graph_builder = ?builder:Simgraph.builder -> 'a list -> 'a array * Graph.t

let connected_via ~(graph : 'a graph_builder) states =
  let _, g = graph states in
  Graph.is_connected g

let components_via ~(graph : 'a graph_builder) states =
  let arr, g = graph states in
  List.map (List.map (fun i -> arr.(i))) (Graph.components g)

let diameter_via ~(graph : 'a graph_builder) states =
  let _, g = graph states in
  Graph.diameter g

let valence_connected ~vals states =
  let cached = List.map (fun x -> vals x) states in
  let arr = Array.of_list cached in
  let g =
    Graph.of_pred ~size:(Array.length arr) (fun i j -> Vset.intersects arr.(i) arr.(j))
  in
  Graph.is_connected g

let valence_connected_by_verdict ~classify states =
  match states with
  | [] -> true
  | _ :: _ ->
      let verdicts = List.map classify states in
      let exists_bivalent = List.exists (fun v -> v = Valence.Bivalent) verdicts in
      exists_bivalent
      ||
      (match verdicts with
      | Valence.Univalent v :: rest ->
          List.for_all (fun w -> Valence.verdict_equal w (Valence.Univalent v)) rest
      | Valence.Bivalent :: _ | Valence.Unknown :: _ | [] -> false)
