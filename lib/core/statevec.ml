module Stats = Layered_runtime.Stats

(* Packed-int state vectors, hash-consed in a Bytes arena.

   The hot explore/valence paths need a cheap injective identity for a
   state.  Rendering the full canonical key string and hashing it costs
   an allocation plus a byte-wise hash per visit; but every engine
   already decomposes a state into a handful of small non-negative ints
   (round, failure bitset, one dense part id per process).  Packing
   that vector into a fixed-width byte string and hash-consing the
   bytes gives the same injectivity for a fraction of the rendering
   work, and the packed bytes double as the arena storage whose size
   the bench records report. *)

type t = {
  lock : Mutex.t;
  table : (bytes, int) Hashtbl.t;
  mutable count : int;
  mutable bytes : int;
}

let create ?(slots = 1024) () =
  { lock = Mutex.create (); table = Hashtbl.create slots; count = 0; bytes = 0 }

(* Fixed-width little-endian slots; the width byte makes vectors of
   different magnitude ranges self-delimiting, and equal vectors always
   pack to equal bytes (the width is a function of the contents). *)
let pack v =
  let mx =
    Array.fold_left
      (fun acc x ->
        if x < 0 then invalid_arg "Statevec.pack: negative slot";
        max acc x)
      0 v
  in
  let w =
    if mx < 0x100 then 1 else if mx < 0x10000 then 2 else if mx < 0x4000_0000 then 4 else 8
  in
  let b = Bytes.create (1 + (w * Array.length v)) in
  Bytes.unsafe_set b 0 (Char.unsafe_chr w);
  Array.iteri
    (fun i x ->
      let off = 1 + (i * w) in
      for k = 0 to w - 1 do
        Bytes.unsafe_set b (off + k) (Char.unsafe_chr ((x lsr (8 * k)) land 0xff))
      done)
    v;
  b

let id t v =
  let b = pack v in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match Hashtbl.find_opt t.table b with
      | Some i -> i
      | None ->
          let i = t.count in
          t.count <- i + 1;
          t.bytes <- t.bytes + Bytes.length b;
          Hashtbl.add t.table b i;
          Stats.record_statevec ~bytes:(Bytes.length b);
          i)

let count t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> t.count)

let bytes t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> t.bytes)

(* Successor memoization keyed by packed-vector id: the precomputed
   successor tables for small (n, t).  Entries are only added below
   [cap] — big sweeps fall through to direct computation so the memo
   can never pin an out-of-core frontier in the heap.  [compute] runs
   outside the lock (it calls protocol code); racing domains may both
   compute, but the function is deterministic so the table converges. *)
module Memo = struct
  type 'a cache = {
    lock : Mutex.t;
    tbl : (int * int, 'a list) Hashtbl.t;
    cap : int;
  }

  let create ?(cap = 1 lsl 16) () =
    { lock = Mutex.create (); tbl = Hashtbl.create 1024; cap }

  let find c ~ctx ~id ~compute =
    let k = (ctx, id) in
    let cached =
      Mutex.lock c.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock c.lock)
        (fun () -> Hashtbl.find_opt c.tbl k)
    in
    match cached with
    | Some l -> l
    | None ->
        let l = compute () in
        Mutex.lock c.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock c.lock)
          (fun () -> if Hashtbl.length c.tbl < c.cap then Hashtbl.replace c.tbl k l);
        l
end
