module Stats = Layered_runtime.Stats

type builder = Pairwise | Bucketed

let builder_name = function Pairwise -> "pairwise" | Bucketed -> "bucketed"

(* The ablation flag: a process-wide default so the CLI can flip every
   similarity-graph construction at once without threading a parameter
   through each experiment. *)
let default_builder = Atomic.make Bucketed
let set_default b = Atomic.set default_builder b
let default () = Atomic.get default_builder

type 'a adapter = {
  parts : 'a -> int array;
  witness : 'a -> 'a -> int -> bool;
}

let pairwise ~rel states =
  let arr = Array.of_list states in
  (arr, Graph.of_pred ~size:(Array.length arr) (fun i j -> rel arr.(i) arr.(j)))

let masked_equal p q j =
  let len = Array.length p in
  len = Array.length q
  && begin
       let ok = ref true in
       for i = 0 to len - 1 do
         if i <> j && p.(i) <> q.(i) then ok := false
       done;
       !ok
     end

(* For each maskable position j, bucket the m states by a hash of their
   part ids with index j skipped: only states sharing a bucket can agree
   modulo j.  Candidates are then verified exactly (masked part-id
   equality, then the model's witness condition), so hash collisions
   cost a comparison but never an edge.  O(m·n) hashing replaces the
   O(m²·n) all-pairs probe; the verification work is output-sensitive.

   Edge-set equality with [pairwise ~rel:similar] holds because states
   that agree modulo j have identical masked signatures, hence identical
   bucket hashes.  The emitted edge *sequence* is also independent of
   the (interning-order-dependent) part-id values: buckets are scanned
   in input order and false bucket-mates are filtered by the exact
   check, so only the content-determined agree-modulo pairs survive, in
   input order. *)
(* Reusable scratch for the bucketed builder: one bucket table per
   maskable position plus the emitted-edge set.  A fresh build resets
   the tables in place ([Hashtbl.reset] keeps capacity), so a traversal
   that builds one graph per BFS level pays the table allocation once
   instead of once per layer. *)
type scratch = {
  mutable tables : (int, int list) Hashtbl.t array;
  scratch_emitted : (int, unit) Hashtbl.t;
}

let scratch () = { tables = [||]; scratch_emitted = Hashtbl.create 256 }

let scratch_table s j m =
  let have = Array.length s.tables in
  if j >= have then
    s.tables <-
      Array.init (j + 1) (fun i ->
          if i < have then s.tables.(i) else Hashtbl.create (2 * m));
  let tbl = s.tables.(j) in
  Hashtbl.reset tbl;
  tbl

let bucketed ?scratch:sc ad states =
  let arr = Array.of_list states in
  let m = Array.length arr in
  let parts = Array.map ad.parts arr in
  let nmask = Array.fold_left (fun acc p -> max acc (Array.length p - 1)) 0 parts in
  let edges = ref [] in
  let emitted =
    match sc with
    | None -> Hashtbl.create (4 * m)
    | Some s ->
        Hashtbl.reset s.scratch_emitted;
        s.scratch_emitted
  in
  let candidates = ref 0 in
  for j = 1 to nmask do
    let buckets =
      match sc with None -> Hashtbl.create (2 * m) | Some s -> scratch_table s j m
    in
    for i = 0 to m - 1 do
      let p = parts.(i) in
      if Array.length p > j then begin
        let h = ref (Array.length p) in
        Array.iteri (fun q v -> if q <> j then h := (!h * 486187739) + v) p;
        let earlier = Option.value (Hashtbl.find_opt buckets !h) ~default:[] in
        List.iter
          (fun i' ->
            incr candidates;
            if masked_equal parts.(i') p j && ad.witness arr.(i') arr.(i) j then begin
              let e = (i' * m) + i in
              if not (Hashtbl.mem emitted e) then begin
                Hashtbl.add emitted e ();
                edges := (i', i) :: !edges
              end
            end)
          earlier;
        Hashtbl.replace buckets !h (i :: earlier)
      end
    done
  done;
  Stats.add_simgraph_maskings (m * nmask);
  Stats.add_simgraph_candidates !candidates;
  (arr, Graph.of_edges ~size:m !edges)

let build ?builder ~rel ad states =
  match (match builder with Some b -> b | None -> default ()) with
  | Pairwise -> pairwise ~rel states
  | Bucketed -> bucketed ad states

(* A persistent builder instance: the engine holds one and routes every
   per-level graph construction through it, so consecutive levels reuse
   the same scratch tables instead of rebuilding them per layer.  The
   mutex makes concurrent builds safe (they serialize; builds from pool
   workers are rare and short). *)
module Incremental = struct
  type 'a t = {
    ad : 'a adapter;
    rel : 'a -> 'a -> bool;
    lock : Mutex.t;
    sc : scratch;
  }

  let create ~rel ad = { ad; rel; lock = Mutex.create (); sc = scratch () }

  let build ?builder t states =
    match (match builder with Some b -> b | None -> default ()) with
    | Pairwise -> pairwise ~rel:t.rel states
    | Bucketed ->
        Mutex.lock t.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.lock)
          (fun () -> bucketed ~scratch:t.sc t.ad states)
end
