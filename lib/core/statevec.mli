(** Packed-int state vectors, hash-consed in a [Bytes] arena.

    Engines decompose a state into a short vector of small non-negative
    ints — round, failure bitset, one dense part id per process — and
    [id] hash-conses the fixed-width packed encoding of that vector
    into a dense integer identity.  Compared with interning the full
    canonical key string, the packed path skips the per-visit string
    render and hashes a handful of bytes, which is what lets the
    valence/explore hot loops drop their per-successor allocation.

    Tables are domain-safe (mutex-guarded inserts) and feed the
    [statevec states] / [arena bytes] runtime counters. *)

type t

val create : ?slots:int -> unit -> t

(** [id t v] is the dense id of vector [v] (equal vectors share it,
    others never do).  All slots must be non-negative.  O(length v). *)
val id : t -> int array -> int

(** Distinct vectors packed so far. *)
val count : t -> int

(** Arena bytes consumed by the packed vectors. *)
val bytes : t -> int

(** [pack v] is the fixed-width encoding [id] keys on — exposed for
    tests. *)
val pack : int array -> bytes

(** Precomputed successor tables for small (n, t): memoize a successor
    list under a [(ctx, id)] key, where [ctx] disambiguates successor
    functions sharing a cache (e.g. the fault bound [t]).  Entries stop
    being added once the cache holds [cap] lists, so a big traversal
    degrades to direct computation instead of pinning its frontier. *)
module Memo : sig
  type 'a cache

  val create : ?cap:int -> unit -> 'a cache
  val find : 'a cache -> ctx:int -> id:int -> compute:(unit -> 'a list) -> 'a list
end
