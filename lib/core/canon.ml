(* Process-permutation canonicalization over intern part arrays.

   A state's part array (header at index 0, one part per process at
   indexes 1..) is canonicalized under the permutations that respect a
   caller-supplied role partition: positions sharing a role are
   interchangeable, positions of distinct roles are not, and the header
   never moves.  The canonical form sorts each role class's parts
   lexicographically *within the class's own positions* (a stable
   tie-break on the original index keeps the witness deterministic), so
   two states are in the same orbit exactly when their per-class part
   multisets coincide.

   Soundness is the caller's obligation: the quotient is exact only for
   engines whose part strings are process-id-free (permuting the array
   *is* the group action on states) and whose successor relation is
   equivariant under role-respecting renamings. *)

(* The ablation flag: a process-wide default so the CLI can flip every
   symmetry-aware traversal at once without threading a parameter
   through each call site (the [Simgraph.set_default] pattern). *)
let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type witness = int array

let uniform_roles ~len = Array.init len (fun i -> if i = 0 then -1 else 0)

let roles_of ~eq inputs =
  let n = Array.length inputs in
  let roles = Array.make (n + 1) (-1) in
  let reps = ref [] (* (value, role) in first-occurrence order *) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    match List.find_opt (fun (v, _) -> eq v inputs.(i)) !reps with
    | Some (_, r) -> roles.(i + 1) <- r
    | None ->
        roles.(i + 1) <- !next;
        reps := (inputs.(i), !next) :: !reps;
        incr next
  done;
  roles

(* Positions of each role class, ascending, header slot excluded. *)
let classes ~roles len =
  let by_role = Hashtbl.create 8 in
  for i = len - 1 downto 1 do
    let r = roles.(i) in
    Hashtbl.replace by_role r (i :: Option.value (Hashtbl.find_opt by_role r) ~default:[])
  done;
  (* first-position order makes the class list itself deterministic *)
  Hashtbl.fold (fun _ ps acc -> ps :: acc) by_role []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

let sort ~roles parts =
  let len = Array.length parts in
  if Array.length roles <> len then invalid_arg "Canon.sort: roles/parts length mismatch";
  let canon = Array.copy parts in
  let witness = Array.init len Fun.id in
  List.iter
    (fun positions ->
      let ranked =
        List.stable_sort
          (fun (p, i) (q, j) ->
            let c = String.compare p q in
            if c <> 0 then c else compare i j)
          (List.map (fun i -> (parts.(i), i)) positions)
      in
      List.iter2
        (fun pos (part, orig) ->
          canon.(pos) <- part;
          witness.(pos) <- orig)
        positions ranked)
    (classes ~roles len);
  (canon, witness)

(* Length-prefixed join: injective whatever bytes the engine's part
   strings contain. *)
let render parts =
  let b = Buffer.create 64 in
  Array.iter
    (fun p ->
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p;
      Buffer.add_char b '\x1e')
    parts;
  Buffer.contents b

let key ~roles parts = render (fst (sort ~roles parts))

let rec fact n = if n <= 1 then 1 else n * fact (n - 1)

(* Orbit size under the role-respecting permutation group: per class,
   |class|! arrangements divided by the repeats of equal parts.  Exact
   for orbit-closed reachable sets (see the soundness note above). *)
let weight ~roles parts =
  let len = Array.length parts in
  if Array.length roles <> len then invalid_arg "Canon.weight: roles/parts length mismatch";
  List.fold_left
    (fun acc positions ->
      let sorted = List.sort String.compare (List.map (fun i -> parts.(i)) positions) in
      let denom, run, _ =
        List.fold_left
          (fun (denom, run, prev) p ->
            match prev with
            | Some q when String.equal p q -> (denom / 1, run + 1, Some p)
            | _ -> (denom * fact run, 1, Some p))
          (1, 0, None) sorted
      in
      let denom = denom * fact run in
      acc * (fact (List.length positions) / denom))
    1
    (classes ~roles len)

let apply_witness ~witness parts =
  Array.init (Array.length parts) (fun i -> parts.(witness.(i)))
