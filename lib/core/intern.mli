(** Hash-consing of canonical state encodings (Filliâtre–Conchon style).

    Engines serialise a state to a canonical key string; interning maps
    each distinct key to a dense integer [id], so state equality becomes
    an integer compare and downstream caches can key on ints instead of
    rebuilt strings.  Alongside the id, the table precomputes the
    state's {e component signature}: one dense {e part id} per
    process-indexed component (plus a header part), the basis of the
    bucketed similarity-graph construction in {!Simgraph} — two states
    agree modulo process [j] exactly when their part arrays agree at
    every index except [j].

    Tables are domain-safe: inserts are mutex-guarded, so concurrent
    domains interning equal states receive the same meta, and output
    derived from interning is byte-identical across [--jobs] counts
    (ids depend on interning order, but nothing ordering-sensitive is
    ever printed). *)

type meta = {
  id : int;  (** dense intern id: [equal] states share it, others never do *)
  key : string;  (** the canonical key, exactly as the engine renders it *)
  khash : int;  (** hash of [key], precomputed once *)
  parts : int array;
      (** dense part ids: index [0] is the header (round, environment),
          index [i >= 1] is process [i]'s component *)
}

(** A per-state memo cell for the state's meta.  Slots survive
    [Marshal] round-trips (checkpoint/resume) safely: a revived slot is
    detected as foreign and the state is transparently re-interned. *)
type slot

val fresh_slot : unit -> slot

type 'a t

(** [create ~key ~parts ()] builds an interning table.  [key] renders
    the canonical encoding; [parts] splits the state into header +
    per-process component strings such that two states satisfy the
    model's [agree_modulo x y j] exactly when their parts agree
    everywhere except index [j].  [key] must be injective on states and
    determined by [parts] (same parts ⇒ same key). *)
val create : ?size:int -> key:('a -> string) -> parts:('a -> string array) -> unit -> 'a t

(** Intern a state: O(1) amortised on repeats (one hash of the key). *)
val intern : 'a t -> 'a -> meta

(** [memo t slot x] is [intern t x], cached in [x]'s own slot — the
    fast path is one atomic read. *)
val memo : 'a t -> slot -> 'a -> meta

(** A state's orbit representative under process-permutation symmetry:
    the canonical encoding interned as a meta of its own, the witness
    permutation mapping the state's parts onto the representative's,
    and the orbit size (see {!Canon}). *)
type canon = { cmeta : meta; witness : Canon.witness; weight : int }

(** [canon_meta t ~roles x] canonicalizes [x]'s part array under the
    role-respecting permutation group and interns the canonical
    encoding.  [cmeta.key] is the orbit's dedup key: two states map to
    the same [cmeta] exactly when a role-respecting process renaming
    carries one's parts onto the other's.  Soundness of quotienting a
    traversal by this key is the caller's obligation ({!Canon}). *)
val canon_meta : 'a t -> roles:int array -> 'a -> canon

(** [part_ids t x] is [x]'s dense part-id vector — the {!Statevec}
    basis — computed without rendering or interning the full key. *)
val part_ids : 'a t -> 'a -> int array

(** Number of distinct states interned so far. *)
val size : 'a t -> int
