(** Similarity-graph construction over interned states.

    The paper's similarity relation has the FLP "agree modulo one
    process" shape: [x ~s y] iff for some process [j] the states agree
    at every component other than [j] (and a model-specific witness
    condition holds).  Building the graph by querying the relation on
    all pairs costs O(m²·n) component compares for m states; this
    module instead buckets the states n times by their {!Intern} part
    signature with position [j] masked — only bucket-mates can be
    related — which is O(m·n) hashing plus output-sensitive exact
    verification.  The two builders produce identical graphs (asserted
    by the [simgraph-eq] oracles and a QCheck property). *)

type builder =
  | Pairwise  (** reference: query [rel] on every unordered pair *)
  | Bucketed  (** signature bucketing over interned part ids *)

val builder_name : builder -> string

(** Process-wide default builder used when [build] is called without an
    explicit [?builder] — the CLI's [--simgraph] ablation flag.
    Initially [Bucketed]. *)
val set_default : builder -> unit

val default : unit -> builder

(** How a model exposes its states to the bucketed builder. *)
type 'a adapter = {
  parts : 'a -> int array;
      (** the state's {!Intern.meta} part ids: header at index 0,
          process [i]'s component at index [i] *)
  witness : 'a -> 'a -> int -> bool;
      (** [witness x y j]: the model's extra similarity condition once
          [x] and [y] agree modulo [j] (e.g. "some other process is
          non-failed in both"); [fun _ _ _ -> true] when the agreement
          alone suffices *)
}

(** [masked_equal p q j] — parts arrays equal at every index except
    [j] (lengths must match).  Exposed so engines can define
    [agree_modulo] from their part signatures. *)
val masked_equal : int array -> int array -> int -> bool

(** The reference all-pairs construction ([Graph.of_pred] over [rel]).
    Returns the states as an array (graph nodes are its indices). *)
val pairwise : rel:('a -> 'a -> bool) -> 'a list -> 'a array * Graph.t

(** Reusable scratch tables for the bucketed builder (one bucket table
    per maskable position + the emitted-edge set), reset in place per
    build so per-layer constructions stop reallocating them. *)
type scratch

val scratch : unit -> scratch

(** The bucketed construction; requires [rel x y] ⟺ ∃j maskable,
    [masked_equal (parts x) (parts y) j && witness x y j].  With
    [?scratch], reuses the given tables instead of allocating. *)
val bucketed : ?scratch:scratch -> 'a adapter -> 'a list -> 'a array * Graph.t

(** Dispatch on [builder], defaulting to {!default}. *)
val build :
  ?builder:builder -> rel:('a -> 'a -> bool) -> 'a adapter -> 'a list -> 'a array * Graph.t

(** A persistent builder: an engine holds one instance and routes every
    per-level similarity graph through it, so a layered traversal
    reuses one set of scratch tables across BFS levels rather than
    rebuilding them per layer.  Identical output to {!build}
    (mutex-guarded, safe from pool workers). *)
module Incremental : sig
  type 'a t

  val create : rel:('a -> 'a -> bool) -> 'a adapter -> 'a t
  val build : ?builder:builder -> 'a t -> 'a list -> 'a array * Graph.t
end
