module Stats = Layered_runtime.Stats

type meta = { id : int; key : string; khash : int; parts : int array }

(* The slot caches the meta *together with a physical token of the table
   that produced it*.  Metas are only trusted when the token is
   physically the live table's own: a state revived by [Marshal] (the
   checkpoint/resume path) carries a *copy* of the token, so its cached
   meta — whose [id]/[parts] are relative to a dead table — is discarded
   and the state is re-interned into the live table.  The [key] string
   inside a stale meta is still self-contained, but nothing reads it. *)
type token = unit ref
type slot = (meta * token) option Atomic.t

let fresh_slot () = Atomic.make None

type 'a t = {
  key : 'a -> string;
  parts : 'a -> string array;
  token : token;
  lock : Mutex.t;
  table : (string, meta) Hashtbl.t;
  pool : (string, int) Hashtbl.t;  (* part string -> dense part id *)
  mutable next_part : int;
}

let create ?(size = 1024) ~key ~parts () =
  {
    key;
    parts;
    token = ref ();
    lock = Mutex.create ();
    table = Hashtbl.create size;
    pool = Hashtbl.create (4 * size);
    next_part = 0;
  }

let part_id t s =
  match Hashtbl.find_opt t.pool s with
  | Some i -> i
  | None ->
      let i = t.next_part in
      t.next_part <- i + 1;
      Hashtbl.add t.pool s i;
      i

(* The canonical key is built outside the lock (it calls protocol code);
   the table insert — including the part-string pool updates — happens
   under the mutex so concurrent domains interning equal states always
   receive the same meta. *)
let intern t x =
  let k = t.key x in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some m ->
          Stats.record_intern ~fresh:false;
          m
      | None ->
          let parts = Array.map (part_id t) (t.parts x) in
          let m = { id = Hashtbl.length t.table; key = k; khash = Hashtbl.hash k; parts } in
          Hashtbl.add t.table k m;
          Stats.record_intern ~fresh:true;
          m)

(* Intern a pre-rendered key/parts pair (the canonicalization path:
   the canonical encoding is derived from another state's parts, not
   rendered by [t.key]).  Caller holds the lock. *)
let intern_rendered_locked t k sparts =
  match Hashtbl.find_opt t.table k with
  | Some m ->
      Stats.record_intern ~fresh:false;
      m
  | None ->
      let parts = Array.map (part_id t) sparts in
      let m = { id = Hashtbl.length t.table; key = k; khash = Hashtbl.hash k; parts } in
      Hashtbl.add t.table k m;
      Stats.record_intern ~fresh:true;
      m

type canon = { cmeta : meta; witness : Canon.witness; weight : int }

let canon_meta t ~roles x =
  let sparts = t.parts x in
  let cparts, witness = Canon.sort ~roles sparts in
  let weight = Canon.weight ~roles sparts in
  let ckey = Canon.render cparts in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> { cmeta = intern_rendered_locked t ckey cparts; witness; weight })

let part_ids t x =
  let sparts = t.parts x in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> Array.map (part_id t) sparts)

let memo t slot x =
  match Atomic.get slot with
  | Some (m, tok) when tok == t.token -> m
  | Some _ | None ->
      let m = intern t x in
      (* Racing domains may both intern, but the mutex-guarded table
         hands both the same meta, so the slot converges regardless of
         write order. *)
      Atomic.set slot (Some (m, t.token));
      m

let size t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> Hashtbl.length t.table)
