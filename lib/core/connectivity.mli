(** Connectivity of finite sets of states under the paper's two relations
    (Definition 3.1):

    - {e similarity} [x ~s y]: some process [j] exists such that [x] and [y]
      agree modulo [j] and some other process is non-failed in both — the
      classical indistinguishability relation;
    - {e shared valence} [x ~v y]: some value [v] exists for which both
      states are [v]-valent — the relation the paper introduces.

    The relations are supplied by the caller (models define similarity; the
    {!Valence} engine defines reachable value sets), and this module reduces
    connectivity questions to {!Graph} algorithms, returning explicit
    witness paths where useful. *)

(** [connected ~rel states] — is the graph [(states, rel)] connected?
    [rel] is assumed symmetric and is queried once per unordered pair.
    The empty list and singletons are connected. *)
val connected : rel:('a -> 'a -> bool) -> 'a list -> bool

(** Connected components, as lists of states (each in input order). *)
val components : rel:('a -> 'a -> bool) -> 'a list -> 'a list list

(** [path ~rel states ~src ~dst] is a shortest chain
    [src = z0 ~rel z1 ~rel ... ~rel zk = dst] inside [states], if one
    exists.  [src] and [dst] are identified with elements of [states] by
    physical or structural equality of their indices: both must be members
    of [states] (compared with [equal]). *)
val path :
  rel:('a -> 'a -> bool) ->
  equal:('a -> 'a -> bool) ->
  'a list ->
  src:'a ->
  dst:'a ->
  'a list option

(** Diameter of [(states, rel)] — the [~s]-diameter of Section 7 when [rel]
    is similarity.  [None] if disconnected or empty. *)
val diameter : rel:('a -> 'a -> bool) -> 'a list -> int option

(** {1 Builder-based variants}

    The [~rel] functions above probe all O(m²) pairs.  The [_via]
    variants take the graph construction itself — typically an engine's
    [similarity_graph], which dispatches between the all-pairs reference
    and the {!Simgraph} bucketed builder — so experiments inherit the
    ablation flag and the O(m·n) construction without repeating the
    plumbing. *)

(** The shape of an engine's [similarity_graph]: states to (node array,
    graph), with an optional override of the process-wide builder. *)
type 'a graph_builder = ?builder:Simgraph.builder -> 'a list -> 'a array * Graph.t

val connected_via : graph:'a graph_builder -> 'a list -> bool
val components_via : graph:'a graph_builder -> 'a list -> 'a list list
val diameter_via : graph:'a graph_builder -> 'a list -> int option

(** [valence_connected ~vals states] — connectivity of [(states, ~v)] where
    [x ~v y] iff [vals x] and [vals y] intersect.  A state with an empty
    value set is isolated (conservative for depth-bounded valence). *)
val valence_connected : vals:('a -> Vset.t) -> 'a list -> bool

(** The paper's characterisation: a set is valence connected exactly if all
    states are univalent with a common value, or some state is bivalent.
    [valence_connected_by_verdict] checks it from verdicts alone and is
    used to cross-validate {!valence_connected} in tests; it requires every
    verdict to be exact ([Unknown] makes it return [false]). *)
val valence_connected_by_verdict : classify:('a -> Valence.verdict) -> 'a list -> bool
