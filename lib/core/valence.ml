type verdict = Univalent of Value.t | Bivalent | Unknown

let verdict_equal a b =
  match (a, b) with
  | Univalent v, Univalent w -> Value.equal v w
  | Bivalent, Bivalent | Unknown, Unknown -> true
  | (Univalent _ | Bivalent | Unknown), _ -> false

let pp_verdict ppf = function
  | Univalent v -> Format.fprintf ppf "%a-univalent" Value.pp v
  | Bivalent -> Format.pp_print_string ppf "bivalent"
  | Unknown -> Format.pp_print_string ppf "unknown"

type 'a spec = {
  succ : 'a -> 'a list;
  key : 'a -> string;
  decided : 'a -> Vset.t;
  terminal : 'a -> bool;
}

type outcome = { vals : Vset.t; complete : bool }

(* Entries are (depth explored, outcome at that depth).  A [complete]
   outcome is valid for every depth >= the cached one; an incomplete
   outcome is only reused for exactly the cached depth.  The cache is
   keyed by the canonical key string, or — when the engine supplies an
   intern identity — by the dense intern id, skipping key (re)builds on
   every probe. *)
type 'a cache =
  | By_key of (string, int * outcome) Hashtbl.t
  | By_ident of ('a -> int) * (int, int * outcome) Hashtbl.t

type 'a t = {
  spec : 'a spec;
  mutable budget : Layered_runtime.Budget.t option;
  cache : 'a cache;
  (* The spillbook: a canonical-key shadow of the memo, maintained only
     when the engine was created with [~spill:true].  Intern ids are
     process-local, so a [By_ident] memo cannot survive a restart; the
     spillbook records every computed entry under the stable [spec.key]
     encoding instead, making the memo exportable.  It is written on the
     cold path only (one [spec.key] per computed state) and probed only
     on a primary-cache miss, so the warm intern-id fast path is
     untouched. *)
  spillbook : (string, int * outcome) Hashtbl.t option;
}

let create ?budget ?ident ?(spill = false) spec =
  let cache =
    match ident with
    | None -> By_key (Hashtbl.create 4096)
    | Some ident -> By_ident (ident, Hashtbl.create 4096)
  in
  let spillbook = if spill then Some (Hashtbl.create 4096) else None in
  { spec; budget; cache; spillbook }

(* Swap the budget consulted by [compute].  Not synchronised: callers
   that share an engine across domains (the serve dispatcher) must hold
   their per-classifier lock around set/classify/reset.  Budget-cut
   outcomes are never cached, so a cancelled walk leaves the memo
   exactly as it found it. *)
let set_budget t budget = t.budget <- budget

let cache_find t x =
  let primary =
    match t.cache with
    | By_key h -> Hashtbl.find_opt h (t.spec.key x)
    | By_ident (ident, h) -> Hashtbl.find_opt h (ident x)
  in
  match (primary, t.spillbook) with
  | Some _, _ | None, None -> primary
  | None, Some book -> (
      (* imported-from-disk entries live only in the spillbook until
         their first probe promotes them under the fresh intern id *)
      match Hashtbl.find_opt book (t.spec.key x) with
      | Some entry as found ->
          (match t.cache with
          | By_key h -> Hashtbl.replace h (t.spec.key x) entry
          | By_ident (ident, h) -> Hashtbl.replace h (ident x) entry);
          found
      | None -> None)

let cache_store t x entry =
  (match t.cache with
  | By_key h -> Hashtbl.replace h (t.spec.key x) entry
  | By_ident (ident, h) -> Hashtbl.replace h (ident x) entry);
  match t.spillbook with
  | Some book -> Hashtbl.replace book (t.spec.key x) entry
  | None -> ()

(* Sorted, so spilled bytes do not depend on hash-bucket order and a
   spill written at --jobs 4 equals one written at --jobs 1. *)
let export t =
  match t.spillbook with
  | None -> []
  | Some book ->
      Hashtbl.fold (fun k e acc -> (k, e) :: acc) book []
      |> List.sort (fun (a, _) (b, _) -> compare a b)

let import t entries =
  match t.spillbook with
  | None -> ()
  | Some book ->
      List.iter (fun (k, e) -> Hashtbl.replace book k e) entries

let rec compute t ~depth x =
  let spec = t.spec in
  if spec.terminal x then { vals = spec.decided x; complete = true }
  else if depth = 0 then { vals = spec.decided x; complete = false }
  else if Layered_runtime.Budget.exceeded_opt t.budget <> None then
    (* Budget exhausted: stop expanding futures.  The unexplored branch
       degrades the outcome to incomplete (so verdicts become [Unknown]
       rather than wrong), and nothing is cached — incompleteness here is
       the budget's fault, not the depth's. *)
    { vals = spec.decided x; complete = false }
  else begin
    match cache_find t x with
    | Some (d, res) when (res.complete && d <= depth) || d = depth ->
        Layered_runtime.Stats.record_valence_lookup ~hit:true;
        res
    | Some _ | None ->
        Layered_runtime.Stats.record_valence_lookup ~hit:false;
        Layered_runtime.Budget.charge_opt t.budget 1;
        let children = spec.succ x in
        let res =
          List.fold_left
            (fun acc y ->
              let o = compute t ~depth:(depth - 1) y in
              { vals = Vset.union acc.vals o.vals; complete = acc.complete && o.complete })
            { vals = spec.decided x; complete = true }
            children
        in
        let res = if children = [] then { res with complete = spec.terminal x } else res in
        (* A budget trip mid-fold prunes futures arbitrarily, so [res]
           reflects this walk's interruption point, not the state.  All
           budget trips are monotone (deadlines stay passed, counters
           only grow, cancellation is permanent), so checking here
           catches any trip during the fold above — only budget-clean
           results may enter the memo, or one walk's cancellation would
           leak Unknown verdicts into every later walk at this depth. *)
        if Layered_runtime.Budget.exceeded_opt t.budget = None then
          cache_store t x (depth, res);
        res
  end

let outcome t ~depth x =
  if depth < 0 then invalid_arg "Valence.outcome: negative depth";
  compute t ~depth x

(* chaos site: corrupt a classification so that the answer is a
   *different* verdict — the permutation-invariance oracle compares
   classifications computed by independent engines, so any flipped
   verdict is observable there. *)
let flip_verdict o = function
  | Univalent _ | Unknown -> Bivalent
  | Bivalent -> (
      match Vset.elements o.vals with
      | v :: _ -> Univalent v
      | [] -> Unknown)

let classify t ~depth x =
  let o = outcome t ~depth x in
  let verdict =
    match Vset.elements o.vals with
    | [] -> Unknown
    | [ v ] -> if o.complete then Univalent v else Unknown
    | _ :: _ :: _ -> Bivalent
  in
  if Layered_runtime.Fault.point Layered_runtime.Fault.Flip_valence_bit then
    flip_verdict o verdict
  else verdict

let is_bivalent t ~depth x =
  match classify t ~depth x with
  | Bivalent -> true
  | Univalent _ | Unknown -> false

let vals t ~depth x = (outcome t ~depth x).vals

let cache_entries t =
  match t.cache with By_key h -> Hashtbl.length h | By_ident (_, h) -> Hashtbl.length h
