(** Process-permutation canonicalization of intern part arrays.

    States of a symmetric protocol come in orbits under process
    renaming: permuting the processes of a reachable state yields
    another reachable state with an isomorphic future.  [Canon] picks a
    deterministic orbit representative so frontiers can dedup whole
    orbits at the cost of one state — quotienting the explored space by
    up to n! — while the witness permutation and the orbit weight let
    reports reconstruct the unreduced figures byte-identically.

    The group acting is not all of S_n but the subgroup respecting a
    {e role partition}: positions sharing a role are interchangeable
    (same initial value, same fault treatment), positions of distinct
    roles never trade places, and the header slot (index 0) is fixed.

    {b Soundness requirements} (the caller's obligation, checked by the
    [sym/*] differential oracles, not by this module): the engine's part
    strings must be process-id-free, so that permuting the part array is
    exactly the renaming action on states; the successor relation must
    be equivariant under role-respecting renamings; and the role
    partition must refine every asymmetry of the initial state.  Under
    those conditions each BFS level of the unreduced traversal is a
    disjoint union of full orbits, and its size is the sum of the
    representatives' {!weight}s. *)

(** {1 The [--symmetry] ablation flag} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** {1 Canonical forms} *)

(** [witness.(i)] is the original index whose part the canonical form
    placed at position [i] — a role-respecting permutation certificate
    ([apply_witness] maps the original parts to the canonical parts). *)
type witness = int array

(** All positions interchangeable (one role), header fixed.  [len] is
    the part-array length including the header slot. *)
val uniform_roles : len:int -> int array

(** [roles_of ~eq inputs] derives a role array (length
    [Array.length inputs + 1], header slot first) from an initial input
    assignment: processes with [eq]-equal inputs share a role.  This is
    the finest sound partition for a sweep seeded at that assignment. *)
val roles_of : eq:('v -> 'v -> bool) -> 'v array -> int array

(** [sort ~roles parts] is the canonical part array (each role class's
    parts sorted lexicographically into the class's own positions) and
    its witness.  Invariant under role-respecting permutations of
    [parts]; idempotent. *)
val sort : roles:int array -> string array -> string array * witness

(** [render parts] is the self-delimiting (length-prefixed) string
    encoding of a part array — injective whatever bytes the parts
    contain. *)
val render : string array -> string

(** [key ~roles parts] is [render (fst (sort ~roles parts))] — the
    orbit's dedup key. *)
val key : roles:int array -> string array -> string

(** [weight ~roles parts] is the orbit size |G| / |Stab(parts)| of the
    state under the role-respecting group G: per class,
    |class|! / prod (multiplicity!). *)
val weight : roles:int array -> string array -> int

(** [apply_witness ~witness parts] permutes [parts] by the witness —
    [apply_witness ~witness:(snd (sort ~roles p)) p = fst (sort ~roles p)]. *)
val apply_witness : witness:witness -> string array -> string array
