type 'a spec = { succ : 'a -> 'a list; key : 'a -> string }

(* Generic bounded BFS.  [stop] may short-circuit the traversal by returning
   [Some _] for a state of interest. *)
let bfs spec ~depth ~visit ~stop x =
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  let found = ref None in
  let push d y =
    let k = spec.key y in
    if Hashtbl.mem seen k then Layered_runtime.Stats.add_dedup_hits 1
    else begin
      Hashtbl.add seen k ();
      Queue.add (d, y) queue
    end
  in
  push 0 x;
  (try
     while not (Queue.is_empty queue) do
       let d, y = Queue.pop queue in
       Layered_runtime.Stats.add_states_expanded 1;
       visit y;
       (match stop y with
       | Some _ as r ->
           found := r;
           raise Exit
       | None -> ());
       if d < depth then List.iter (push (d + 1)) (spec.succ y)
     done
   with Exit -> ());
  !found

let reachable spec ~depth x =
  let acc = ref [] in
  let (_ : 'a option) =
    bfs spec ~depth ~visit:(fun y -> acc := y :: !acc) ~stop:(fun _ -> None) x
  in
  List.rev !acc

let count_reachable spec ~depth x =
  let n = ref 0 in
  let (_ : 'a option) = bfs spec ~depth ~visit:(fun _ -> incr n) ~stop:(fun _ -> None) x in
  !n

let iter_runs spec ~depth x ~f =
  let rec go prefix d y =
    if d = 0 then f (List.rev (y :: prefix))
    else List.iter (go (y :: prefix) (d - 1)) (spec.succ y)
  in
  go [] depth x

let find_reachable spec ~depth ~pred x =
  bfs spec ~depth ~visit:ignore ~stop:(fun y -> if pred y then Some y else None) x

let exists_reachable spec ~depth ~pred x =
  Option.is_some (find_reachable spec ~depth ~pred x)
