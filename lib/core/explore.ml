type 'a spec = { succ : 'a -> 'a list; key : 'a -> string }

module Budget = Layered_runtime.Budget
module Fault = Layered_runtime.Fault

exception Cut of Budget.reason * int

(* Generic bounded BFS.  [stop] may short-circuit the traversal by returning
   [Some _] for a state of interest.  An exhausted [budget] stops the scan
   before the offending state is visited, so the visited sequence is always
   a prefix of the serial BFS order; the second component reports how far
   the scan got. *)
let bfs ?budget spec ~depth ~visit ~stop x =
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  let found = ref None in
  let status = ref Budget.Complete in
  let push d y =
    let k = spec.key y in
    if Hashtbl.mem seen k then Layered_runtime.Stats.add_dedup_hits 1
    else begin
      Hashtbl.add seen k ();
      (* chaos sites, placed after the dedup check on purpose: a state
         dropped here is marked seen yet never scanned (permanently
         lost), and a duplicate enqueued here is scanned twice — neither
         can be silently absorbed by the dedup table. *)
      if not (Fault.point Fault.Drop_successor) then begin
        Queue.add (d, y) queue;
        if Fault.point Fault.Duplicate_state then Queue.add (d, y) queue
      end
    end
  in
  push 0 x;
  (try
     while not (Queue.is_empty queue) do
       let d, y = Queue.pop queue in
       (match Budget.exceeded_opt budget with
       | Some reason -> raise_notrace (Cut (reason, d))
       | None -> ());
       Budget.charge_opt budget 1;
       Layered_runtime.Stats.add_states_expanded 1;
       (* soft-watermark relief: the serial explorer has no disk tier to
          spill to, but it still spends the budget's one compaction
          before the hard memory cap can trip *)
       ignore (Budget.relieve_opt budget : bool);
       visit y;
       (match stop y with
       | Some _ as r ->
           found := r;
           raise Exit
       | None -> ());
       if d < depth then List.iter (push (d + 1)) (spec.succ y)
     done
   with
  | Exit -> ()
  | Cut (reason, at_depth) ->
      status := (match budget with
        | Some b -> Budget.truncated b ~reason ~at_depth
        | None -> assert false));
  (!found, !status)

let reachable spec ~depth x =
  let acc = ref [] in
  let (_ : 'a option * _) =
    bfs spec ~depth ~visit:(fun y -> acc := y :: !acc) ~stop:(fun _ -> None) x
  in
  List.rev !acc

let count_reachable spec ~depth x =
  let n = ref 0 in
  let (_ : 'a option * _) =
    bfs spec ~depth ~visit:(fun _ -> incr n) ~stop:(fun _ -> None) x
  in
  !n

let reachable_outcome ?budget spec ~depth x =
  let acc = ref [] in
  let _, status =
    bfs ?budget spec ~depth ~visit:(fun y -> acc := y :: !acc) ~stop:(fun _ -> None) x
  in
  { Budget.value = List.rev !acc; status }

let count_reachable_outcome ?budget spec ~depth x =
  let n = ref 0 in
  let _, status =
    bfs ?budget spec ~depth ~visit:(fun _ -> incr n) ~stop:(fun _ -> None) x
  in
  { Budget.value = !n; status }

let exists_reachable_outcome ?budget spec ~depth ~pred x =
  let found, status =
    bfs ?budget spec ~depth ~visit:ignore
      ~stop:(fun y -> if pred y then Some y else None)
      x
  in
  match found with
  | Some _ -> { Budget.value = true; status = Budget.Complete }
  | None -> { Budget.value = false; status }

let iter_runs spec ~depth x ~f =
  let rec go prefix d y =
    if d = 0 then f (List.rev (y :: prefix))
    else List.iter (go (y :: prefix) (d - 1)) (spec.succ y)
  in
  go [] depth x

let find_reachable spec ~depth ~pred x =
  fst (bfs spec ~depth ~visit:ignore ~stop:(fun y -> if pred y then Some y else None) x)

let exists_reachable spec ~depth ~pred x =
  Option.is_some (find_reachable spec ~depth ~pred x)
