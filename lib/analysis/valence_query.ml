open Layered_core

type t = {
  model : string;
  n : int;
  t : int;
  depth : int;
  verdicts : (string * Valence.verdict) list;
}

let models = Sweep.models

(* A classifier owns one engine instantiation: its valence memo is the
   warm state worth keeping between calls.  Complete memo entries are
   depth-monotone (see Valence), so one classifier serves every depth.
   The export/import pair round-trips the engine's spillbook (empty
   unless the classifier was built spillable) so a daemon restart can
   rehydrate the memo from disk.

   Each classifier carries its own mutex (captured by the closures):
   the serve dispatcher runs requests on pool workers concurrently, and
   the engine's memo tables are plain [Hashtbl]s.  The lock also
   serialises the [set_budget]/classify/reset window, scoping one walk
   to the requesting client's per-request fault domain. *)
type classifier = {
  classify : ?budget:Layered_runtime.Budget.t -> depth:int -> unit ->
    (string * Valence.verdict) list;
  export_memo : unit -> (string * (int * Valence.outcome)) list;
  import_memo : (string * (int * Valence.outcome)) list -> unit;
}

let classifier (type a) (valence : a Valence.t) ~(key : a -> string)
    (initials : a list) =
  let lock = Mutex.create () in
  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  {
    classify =
      (fun ?budget ~depth () ->
        locked (fun () ->
            Valence.set_budget valence budget;
            Fun.protect
              ~finally:(fun () -> Valence.set_budget valence None)
              (fun () ->
                List.map
                  (fun x -> (key x, Valence.classify valence ~depth x))
                  initials)));
    export_memo = (fun () -> locked (fun () -> Valence.export valence));
    import_memo =
      (fun entries -> locked (fun () -> Valence.import valence entries));
  }

let make_classifier ?(spill = false) ~model ~n ~t () =
  let values = [ Value.zero; Value.one ] in
  match model with
  | "mobile" ->
      let module P = (val Layered_protocols.Sync_floodset.make ~t) in
      let module E = Layered_sync.Engine.Make (P) in
      let valence =
        Valence.create ~ident:E.ident ~spill
          (E.valence_spec ~succ:(E.s1 ~record_failures:false))
      in
      classifier valence ~key:E.key (E.initial_states ~n ~values)
  | "sync" ->
      let module P = (val Layered_protocols.Sync_floodset.make ~t) in
      let module E = Layered_sync.Engine.Make (P) in
      let valence =
        Valence.create ~ident:E.ident ~spill (E.valence_spec ~succ:(E.st ~t))
      in
      classifier valence ~key:E.key (E.initial_states ~n ~values)
  | "sm" ->
      let module P = (val Layered_protocols.Sm_voting.make ~horizon:(t + 1)) in
      let module E = Layered_async_sm.Engine.Make (P) in
      let valence =
        Valence.create ~ident:E.ident ~spill (E.valence_spec ~succ:E.srw)
      in
      classifier valence ~key:E.key (E.initial_states ~n ~values)
  | "mp" ->
      let module P = (val Layered_protocols.Mp_floodset.make ~horizon:(t + 1)) in
      let module E = Layered_async_mp.Engine.Make (P) in
      let valence =
        Valence.create ~ident:E.ident ~spill (E.valence_spec ~succ:E.sper)
      in
      classifier valence ~key:E.key (E.initial_states ~n ~values)
  | "smp" ->
      let module P = (val Layered_protocols.Sync_floodset.make ~t) in
      let module E = Layered_async_mp.Synchronic.Make (P) in
      let valence =
        Valence.create ~ident:E.ident ~spill (E.valence_spec ~succ:E.smp)
      in
      classifier valence ~key:E.key (E.initial_states ~n ~values)
  | "iis" ->
      let module P = (val Layered_protocols.Iis_voting.make ~horizon:(t + 1)) in
      let module E = Layered_iis.Engine.Make (P) in
      let valence =
        Valence.create ~ident:E.ident ~spill (E.valence_spec ~succ:E.layer)
      in
      classifier valence ~key:E.key (E.initial_states ~n ~values)
  | other -> invalid_arg (Printf.sprintf "Valence_query: unknown model %S" other)

type cache = {
  tbl : (string * int * int, classifier) Hashtbl.t;
  spill : bool;  (** build spillable classifiers, so the cache exports *)
  lock : Mutex.t;  (** guards [tbl]; per-classifier state has its own *)
}

let create_cache ?(spill = false) () : cache =
  { tbl = Hashtbl.create 16; spill; lock = Mutex.create () }

let with_cache_lock (c : cache) f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let cache_entries (c : cache) =
  with_cache_lock c (fun () -> Hashtbl.length c.tbl)

let find_classifier cache ~model ~n ~t =
  let k = (model, n, t) in
  with_cache_lock cache (fun () ->
      match Hashtbl.find_opt cache.tbl k with
      | Some cl -> cl
      | None ->
          let cl = make_classifier ~spill:cache.spill ~model ~n ~t () in
          Hashtbl.add cache.tbl k cl;
          cl)

let run ?budget ?cache ~model ~n ~t ~depth () =
  if depth < 0 then
    invalid_arg (Printf.sprintf "Valence_query: negative depth %d" depth);
  let cl =
    match cache with
    | None -> make_classifier ~model ~n ~t ()
    | Some cache -> find_classifier cache ~model ~n ~t
  in
  { model; n; t; depth; verdicts = cl.classify ?budget ~depth () }

(* ------------------------------------------------------------------ *)
(* Spill                                                              *)

type spill = ((string * int * int) * (string * (int * Valence.outcome)) list) list

let export_spill (c : cache) : spill =
  (* snapshot the classifier list under the cache lock, then export each
     under its own lock — never both at once, so a concurrent
     [find_classifier] cannot deadlock against an export *)
  let classifiers =
    with_cache_lock c (fun () ->
        Hashtbl.fold (fun k cl acc -> (k, cl) :: acc) c.tbl [])
  in
  List.map (fun (k, cl) -> (k, cl.export_memo ())) classifiers
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.filter (fun (_, entries) -> entries <> [])

let import_spill (c : cache) (s : spill) =
  List.iter
    (fun ((model, n, t), entries) ->
      match find_classifier c ~model ~n ~t with
      | cl -> cl.import_memo entries
      | exception Invalid_argument _ ->
          (* a spill written by a build that knew more models than this
             one: skip the stranger, keep the rest *)
          ())
    s

let spill_entries (s : spill) =
  List.fold_left (fun acc (_, entries) -> acc + List.length entries) 0 s

let tally t =
  List.fold_left
    (fun (b, u, k) (_, v) ->
      match v with
      | Valence.Bivalent -> (b + 1, u, k)
      | Valence.Univalent _ -> (b, u + 1, k)
      | Valence.Unknown -> (b, u, k + 1))
    (0, 0, 0) t.verdicts

let pp ppf t =
  Format.fprintf ppf "model=%s n=%d t=%d depth=%d@." t.model t.n t.t t.depth;
  let width =
    List.fold_left (fun w (k, _) -> max w (String.length k)) 5 t.verdicts
  in
  List.iter
    (fun (k, v) ->
      Format.fprintf ppf "%-*s  %a@." width k Valence.pp_verdict v)
    t.verdicts;
  let b, u, k = tally t in
  Format.fprintf ppf "%d states: %d bivalent, %d univalent, %d unknown@."
    (List.length t.verdicts) b u k
