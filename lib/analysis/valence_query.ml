open Layered_core

type t = {
  model : string;
  n : int;
  t : int;
  depth : int;
  verdicts : (string * Valence.verdict) list;
}

let models = Sweep.models

(* A classifier owns one engine instantiation: its valence memo is the
   warm state worth keeping between calls.  Complete memo entries are
   depth-monotone (see Valence), so one classifier serves every depth. *)
type classifier = { classify : depth:int -> (string * Valence.verdict) list }

let classifier (type a) (valence : a Valence.t) ~(key : a -> string)
    (initials : a list) =
  {
    classify =
      (fun ~depth ->
        List.map (fun x -> (key x, Valence.classify valence ~depth x)) initials);
  }

let make_classifier ~model ~n ~t =
  let values = [ Value.zero; Value.one ] in
  match model with
  | "mobile" ->
      let module P = (val Layered_protocols.Sync_floodset.make ~t) in
      let module E = Layered_sync.Engine.Make (P) in
      let valence =
        Valence.create ~ident:E.ident
          (E.valence_spec ~succ:(E.s1 ~record_failures:false))
      in
      classifier valence ~key:E.key (E.initial_states ~n ~values)
  | "sync" ->
      let module P = (val Layered_protocols.Sync_floodset.make ~t) in
      let module E = Layered_sync.Engine.Make (P) in
      let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ:(E.st ~t)) in
      classifier valence ~key:E.key (E.initial_states ~n ~values)
  | "sm" ->
      let module P = (val Layered_protocols.Sm_voting.make ~horizon:(t + 1)) in
      let module E = Layered_async_sm.Engine.Make (P) in
      let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.srw) in
      classifier valence ~key:E.key (E.initial_states ~n ~values)
  | "mp" ->
      let module P = (val Layered_protocols.Mp_floodset.make ~horizon:(t + 1)) in
      let module E = Layered_async_mp.Engine.Make (P) in
      let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.sper) in
      classifier valence ~key:E.key (E.initial_states ~n ~values)
  | "smp" ->
      let module P = (val Layered_protocols.Sync_floodset.make ~t) in
      let module E = Layered_async_mp.Synchronic.Make (P) in
      let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.smp) in
      classifier valence ~key:E.key (E.initial_states ~n ~values)
  | "iis" ->
      let module P = (val Layered_protocols.Iis_voting.make ~horizon:(t + 1)) in
      let module E = Layered_iis.Engine.Make (P) in
      let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.layer) in
      classifier valence ~key:E.key (E.initial_states ~n ~values)
  | other -> invalid_arg (Printf.sprintf "Valence_query: unknown model %S" other)

type cache = (string * int * int, classifier) Hashtbl.t

let create_cache () : cache = Hashtbl.create 16
let cache_entries (c : cache) = Hashtbl.length c

let run ?cache ~model ~n ~t ~depth () =
  if depth < 0 then
    invalid_arg (Printf.sprintf "Valence_query: negative depth %d" depth);
  let cl =
    match cache with
    | None -> make_classifier ~model ~n ~t
    | Some tbl -> (
        let k = (model, n, t) in
        match Hashtbl.find_opt tbl k with
        | Some cl -> cl
        | None ->
            let cl = make_classifier ~model ~n ~t in
            Hashtbl.add tbl k cl;
            cl)
  in
  { model; n; t; depth; verdicts = cl.classify ~depth }

let tally t =
  List.fold_left
    (fun (b, u, k) (_, v) ->
      match v with
      | Valence.Bivalent -> (b + 1, u, k)
      | Valence.Univalent _ -> (b, u + 1, k)
      | Valence.Unknown -> (b, u, k + 1))
    (0, 0, 0) t.verdicts

let pp ppf t =
  Format.fprintf ppf "model=%s n=%d t=%d depth=%d@." t.model t.n t.t t.depth;
  let width =
    List.fold_left (fun w (k, _) -> max w (String.length k)) 5 t.verdicts
  in
  List.iter
    (fun (k, v) ->
      Format.fprintf ppf "%-*s  %a@." width k Valence.pp_verdict v)
    t.verdicts;
  let b, u, k = tally t in
  Format.fprintf ppf "%d states: %d bivalent, %d univalent, %d unknown@."
    (List.length t.verdicts) b u k
