open Layered_core

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun sub -> x :: sub) s

let run_one ~n ~horizon =
  let module P = (val Layered_protocols.Sync_floodset.make ~t:(horizon - 1)) in
  let module E = Layered_sync.Engine.Make (P) in
  let record_failures = false in
  let succ = E.s1 ~record_failures in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let depth = horizon + 1 in
  let vals x = Valence.vals valence ~depth x in
  let classify x = Valence.classify valence ~depth x in
  (* The full micro-step relation of M^mf: one round under any action
     (j, G) with an arbitrary subset G. *)
  let micro x =
    let n = E.n_of x in
    let per_j j =
      List.map
        (fun blocked -> E.apply ~record_failures x [ { E.sender = j; blocked } ])
        (subsets (Pid.others n j))
    in
    E.apply ~record_failures x [] :: List.concat_map per_j (Pid.all n)
  in
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  let sample =
    List.concat_map
      (fun x0 -> Explore.reachable { Explore.succ; key = E.key } ~depth:2 x0)
      initials
  in
  (* (i) layering validity *)
  let violations = Layering.validate ~micro ~key:E.key ~bound:1 ~states:sample succ in
  let layering_ok = violations = [] in
  (* (ii) Lemma 3.3 consequence: similarity within a layer implies shared
     valence *)
  let lemma33_ok =
    List.for_all
      (fun x ->
        let layer = succ x in
        List.for_all
          (fun y ->
            List.for_all
              (fun z -> (not (E.similar y z)) || Vset.intersects (vals y) (vals z))
              layer)
          layer)
      sample
  in
  (* (iii) every layer valence connected *)
  let connected_ok =
    List.for_all (fun x -> Connectivity.valence_connected ~vals (succ x)) sample
  in
  (* ... including along a bivalent chain driven beyond the decision
     horizon *)
  let chain_connected_ok, chain_len =
    match Layering.find_bivalent ~classify initials with
    | None -> (false, 0)
    | Some x0 ->
        let chain = Layering.bivalent_chain ~classify ~succ ~length:(horizon + 4) x0 in
        ( List.for_all (fun x -> Connectivity.valence_connected ~vals (succ x)) chain.states,
          List.length chain.states )
  in
  let params = Printf.sprintf "n=%d horizon=%d" n horizon in
  [
    Report.check ~id:"E3" ~claim:"Lemma 5.1(i)" ~params
      ~expected:"S1 successors legal in M^mf"
      ~measured:
        (Printf.sprintf "%d states, %d violations" (List.length sample)
           (List.length violations))
      layering_ok;
    Report.check ~id:"E3" ~claim:"Lemma 5.1(ii)+3.3" ~params
      ~expected:"similar layer states share a valence"
      ~measured:(Printf.sprintf "checked %d layers" (List.length sample))
      lemma33_ok;
    Report.check ~id:"E3" ~claim:"Lemma 5.1(iii)" ~params
      ~expected:"every S1(x) valence connected"
      ~measured:
        (Printf.sprintf "layers of %d reachable + %d chain states" (List.length sample)
           chain_len)
      (connected_ok && chain_connected_ok);
  ]

let run () = run_one ~n:3 ~horizon:2 @ run_one ~n:4 ~horizon:2
