open Layered_core

type probe = {
  similarity : bool;
  valence : bool;
  bivalent : bool;
  anchors : bool;  (** all-zeros 0-univalent and all-ones 1-univalent *)
}

(* Anchors and bivalence are checked on the witnessed value sets: [vals]
   is exact for bivalence (two deciding futures were exhibited), and under
   Validity a unanimous-input state can only ever decide its input, so
   [vals = {v}] certifies v-univalence without needing every explored
   branch to terminate (which never happens in the asynchronous models,
   where one process may be excluded from every layer). *)
let probe (type a) ~(initials : a list) ~(graph : a Connectivity.graph_builder) ~vals =
  let similarity = Connectivity.connected_via ~graph initials in
  let valence = Connectivity.valence_connected ~vals initials in
  let bivalent = List.exists (fun x -> Vset.cardinal (vals x) >= 2) initials in
  let anchors =
    (* [initial_states] enumerates assignments with all-zeros first and
       all-ones last. *)
    match initials with
    | [] -> false
    | first :: _ ->
        let last = List.nth initials (List.length initials - 1) in
        Vset.equal (vals first) (Vset.singleton Value.zero)
        && Vset.equal (vals last) (Vset.singleton Value.one)
  in
  { similarity; valence; bivalent; anchors }

let row ~model ~n p =
  Report.check ~id:"E2" ~claim:"Lemma 3.6"
    ~params:(Printf.sprintf "%s n=%d" model n)
    ~expected:"Con_0 s-connected, v-connected, bivalent init, univalent corners"
    ~measured:
      (Printf.sprintf "s=%b v=%b bivalent=%b corners=%b" p.similarity p.valence p.bivalent
         p.anchors)
    (p.similarity && p.valence && p.bivalent && p.anchors)

let mobile ~n ~horizon =
  let module P = (val Layered_protocols.Sync_floodset.make ~t:(horizon - 1)) in
  let module E = Layered_sync.Engine.Make (P) in
  let succ = E.s1 ~record_failures:false in
  let v = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let depth = horizon + 1 in
  probe
    ~initials:(E.initial_states ~n ~values:[ Value.zero; Value.one ])
    ~graph:E.similarity_graph
    ~vals:(fun x -> Valence.vals v ~depth x)

let tresilient ~n ~t =
  let module P = (val Layered_protocols.Sync_floodset.make ~t) in
  let module E = Layered_sync.Engine.Make (P) in
  let succ = E.st ~t in
  let v = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let depth = t + 2 in
  probe
    ~initials:(E.initial_states ~n ~values:[ Value.zero; Value.one ])
    ~graph:E.similarity_graph
    ~vals:(fun x -> Valence.vals v ~depth x)

let shared_memory ~n ~horizon =
  let module P = (val Layered_protocols.Sm_voting.make ~horizon) in
  let module E = Layered_async_sm.Engine.Make (P) in
  let v = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.srw) in
  let depth = horizon + 1 in
  probe
    ~initials:(E.initial_states ~n ~values:[ Value.zero; Value.one ])
    ~graph:E.similarity_graph
    ~vals:(fun x -> Valence.vals v ~depth x)

let message_passing ~n ~horizon =
  let module P = (val Layered_protocols.Mp_floodset.make ~horizon) in
  let module E = Layered_async_mp.Engine.Make (P) in
  let v = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.sper) in
  let depth = horizon + 1 in
  probe
    ~initials:(E.initial_states ~n ~values:[ Value.zero; Value.one ])
    ~graph:E.similarity_graph
    ~vals:(fun x -> Valence.vals v ~depth x)

let synchronic_mp ~n ~horizon =
  let module P = (val Layered_protocols.Sync_floodset.make ~t:(horizon - 1)) in
  let module E = Layered_async_mp.Synchronic.Make (P) in
  let v = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.smp) in
  let depth = horizon + 2 in
  probe
    ~initials:(E.initial_states ~n ~values:[ Value.zero; Value.one ])
    ~graph:E.similarity_graph
    ~vals:(fun x -> Valence.vals v ~depth x)

let run () =
  [
    row ~model:"mobile" ~n:3 (mobile ~n:3 ~horizon:2);
    row ~model:"t-resilient" ~n:3 (tresilient ~n:3 ~t:1);
    row ~model:"t-resilient" ~n:4 (tresilient ~n:4 ~t:1);
    row ~model:"shared-memory" ~n:3 (shared_memory ~n:3 ~horizon:2);
    row ~model:"message-passing" ~n:3 (message_passing ~n:3 ~horizon:2);
    row ~model:"synchronic-mp" ~n:3 (synchronic_mp ~n:3 ~horizon:2);
  ]
