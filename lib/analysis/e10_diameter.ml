open Layered_core

let dedup_by key states =
  let seen = Hashtbl.create 256 in
  List.filter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    states

let run_one ~n ~t ~levels =
  let module P = (val Layered_protocols.Sync_floodset.make ~t) in
  let module E = Layered_sync.Engine.Make (P) in
  let succ = E.st ~t in
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  let rec go rows level xs dx =
    if level > levels then rows
    else begin
      let layers = List.map succ xs in
      let layer_diameters =
        List.map (fun layer -> Connectivity.diameter_via ~graph:E.similarity_graph layer) layers
      in
      let dy =
        List.fold_left
          (fun acc d -> match (acc, d) with Some a, Some b -> Some (max a b) | _ -> None)
          (Some 0) layer_diameters
      in
      let next = dedup_by E.ident (List.concat layers) in
      let dnext = Connectivity.diameter_via ~graph:E.similarity_graph next in
      let params = Printf.sprintf "floodset n=%d t=%d level=%d" n t level in
      let rows =
        match (dy, dnext) with
        | Some dy, Some dnext ->
            let bound = (dx * dy) + dx + dy in
            rows
            @ [
                Report.check ~id:"E10" ~claim:"Lemma 7.6" ~params
                  ~expected:
                    (Printf.sprintf "S(X) s-connected, diam <= dX*dY+dX+dY = %d" bound)
                  ~measured:
                    (Printf.sprintf "|X|=%d dX=%d dY=%d diam(S(X))=%d" (List.length next)
                       dx dy dnext)
                  (dnext <= bound);
                Report.row ~id:"E10" ~claim:"d_Y^m estimate" ~params
                  ~expected:(Printf.sprintf "paper: d_Y^m = 2(n-m) = %d" (2 * (n - level + 1)))
                  ~measured:(Printf.sprintf "max layer diameter %d" dy)
                  Report.Info;
              ]
        | _ ->
            rows
            @ [
                Report.check ~id:"E10" ~claim:"Lemma 7.6" ~params
                  ~expected:"S(X) and all layers s-connected"
                  ~measured:"a similarity graph is disconnected" false;
              ]
      in
      match dnext with
      | Some dnext -> go rows (level + 1) next dnext
      | None -> rows
    end
  in
  let d0 =
    match Connectivity.diameter_via ~graph:E.similarity_graph initials with
    | Some d -> d
    | None -> -1
  in
  let con0_row =
    Report.check ~id:"E10" ~claim:"Con_0 diameter"
      ~params:(Printf.sprintf "n=%d" n)
      ~expected:(Printf.sprintf "s-connected, diameter <= n = %d" n)
      ~measured:(Printf.sprintf "diameter %d" d0)
      (d0 >= 0 && d0 <= n)
  in
  con0_row :: go [] 1 initials d0

(* Section 6 assumes 1 <= t <= n - 2: with t = n - 1 a layer state can
   have n - 1 failures, leaving no similarity witness, so only instances
   within that range are meaningful. *)
let run () = run_one ~n:3 ~t:1 ~levels:1 @ run_one ~n:4 ~t:1 ~levels:1 @ run_one ~n:4 ~t:2 ~levels:2
