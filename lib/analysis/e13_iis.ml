open Layered_core
module Iis = Layered_iis

let run_one ~n ~horizon ~length =
  let module P = (val Layered_protocols.Iis_voting.make ~horizon) in
  let module E = Iis.Engine.Make (P) in
  let succ = E.layer in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let depth = horizon + 1 in
  let vals x = Valence.vals valence ~depth x in
  let classify x = Valence.classify valence ~depth x in
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  let sample =
    List.concat_map
      (fun x0 -> Explore.reachable { Explore.succ; key = E.key } ~depth:1 x0)
      initials
  in
  let params = Printf.sprintf "n=%d horizon=%d" n horizon in
  let fubini_ok =
    List.length (Iis.Engine.partitions ~n) = Iis.Engine.fubini n
  in
  let similarity_ok =
    List.for_all (fun x -> Connectivity.connected_via ~graph:E.similarity_graph (succ x)) sample
  in
  let valence_ok =
    List.for_all (fun x -> Connectivity.valence_connected ~vals (succ x)) sample
  in
  let chain =
    match Layering.find_bivalent ~classify initials with
    | None -> Layering.{ states = []; complete = false; stuck = None }
    | Some x0 -> Layering.bivalent_chain ~classify ~succ ~length x0
  in
  [
    Report.check ~id:"E13" ~claim:"partition count" ~params
      ~expected:(Printf.sprintf "Fubini(%d) = %d ordered partitions" n (Iis.Engine.fubini n))
      ~measured:(Printf.sprintf "%d enumerated" (List.length (Iis.Engine.partitions ~n)))
      fubini_ok;
    Report.check ~id:"E13" ~claim:"layer similarity" ~params
      ~expected:"every IIS layer similarity connected"
      ~measured:(Printf.sprintf "checked %d layers" (List.length sample))
      similarity_ok;
    Report.check ~id:"E13" ~claim:"layer valence" ~params
      ~expected:"every IIS layer valence connected"
      ~measured:(Printf.sprintf "checked %d layers" (List.length sample))
      valence_ok;
    Report.check ~id:"E13" ~claim:"wait-free FLP" ~params
      ~expected:(Printf.sprintf "bivalent chain of length %d" length)
      ~measured:(Printf.sprintf "length %d" (List.length chain.Layering.states))
      chain.Layering.complete;
  ]

let run () = run_one ~n:2 ~horizon:2 ~length:6 @ run_one ~n:3 ~horizon:2 ~length:6
