(** The chaos harness: seeded fault-injection trials asserting that the
    {!Oracle} checks detect every injected fault and pass every clean
    control.

    Each trial picks a (fault site, oracle) pair from a fixed pairing
    table (round-robin, so [trials >= ]number of pairs covers the whole
    matrix), runs the oracle once {e disarmed} (the control must pass),
    then once {e armed} with a trial-specific seed (the oracle must fail,
    and the fault must actually have fired — an armed run whose fault was
    never exercised proves nothing and is counted separately).

    The report is deterministic for a given [seed]/[trials]/[sites]
    selection: it contains no timings and no job counts, so its rendering
    is byte-identical across [--jobs] values as long as every cell is
    clean (anomaly notes may quote exception text). *)

type cell = {
  site : Layered_runtime.Fault.site;
  oracle : string;
  mutable armed_trials : int;
  mutable detected : int;  (** armed runs the oracle failed, fault fired *)
  mutable unexercised : int;  (** armed runs whose fault never fired *)
  mutable control_failures : int;  (** disarmed runs the oracle failed *)
  mutable notes : string list;  (** anomaly diagnoses, newest first *)
}

type report = { seed : int; trials : int; cells : cell list }

(** The pairing table: for each site, the oracles required to detect it
    (three each). *)
val pairings : (Layered_runtime.Fault.site * string list) list

(** [run ~seed ~trials ()] executes the trials.  [jobs] (clamped to at
    least 2 so worker sites can fire) sizes the pools inside the
    oracles; [sites] restricts the matrix to a subset of fault sites.
    Arms and disarms the process-global injector; never leaves it
    armed. *)
val run :
  ?jobs:int ->
  ?sites:Layered_runtime.Fault.site list ->
  seed:int ->
  trials:int ->
  unit ->
  report

(** Full marks: every cell of the selected matrix was exercised at least
    once, every armed run was detected, and every control passed. *)
val ok : report -> bool

val pp : Format.formatter -> report -> unit

(** One JSON object; schema documented in README.md. *)
val to_json : report -> string
