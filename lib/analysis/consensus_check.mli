(** Exhaustive verification of synchronous consensus protocols against
    every crash-adversary strategy of the Section 6 model.

    The checker explores all runs of a protocol under all adversary actions
    with at most [max_new] fresh crashes per round (each crash losing an
    arbitrary subset of that round's messages, including none — a
    "declaration" crash at the round boundary) and at most [t] crashes in
    total, for [rounds] rounds.  It reports whether Agreement, Validity and
    Decision-by-[rounds] hold among non-failed processes, and the
    worst-case decision round. *)

type result = {
  agreement_ok : bool;  (** among non-failed processes (plain consensus) *)
  uniform_agreement_ok : bool;
      (** among {e all} deciders, failed ones included (uniform
          consensus).  The classical (t+1)-round protocols achieve plain
          but not uniform agreement: a process that crashes mid-delivery
          may have decided on a value the survivors never see.  Reported
          for comparison; no experiment expects it to hold. *)
  validity_ok : bool;
  termination_ok : bool;  (** all non-failed decided by [rounds] everywhere *)
  worst_decision_round : int;
      (** smallest [r] such that every reachable state at round [r] is
          terminal (equals [rounds + 1] if termination failed) *)
  states_explored : int;
  status : Layered_runtime.Budget.status;
      (** [Complete], or [Truncated] — the boolean verdicts then cover
          only the states explored before the budget tripped: a reported
          violation is definitive, a clean result is not. *)
}

val check :
  protocol:(module Layered_sync.Protocol.S) ->
  n:int ->
  t:int ->
  rounds:int ->
  ?max_new:int ->
  ?budget:Layered_runtime.Budget.t ->
  unit ->
  result

val pp_result : Format.formatter -> result -> unit
