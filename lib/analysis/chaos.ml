module Fault = Layered_runtime.Fault

type cell = {
  site : Fault.site;
  oracle : string;
  mutable armed_trials : int;
  mutable detected : int;
  mutable unexercised : int;
  mutable control_failures : int;
  mutable notes : string list;
}

type report = { seed : int; trials : int; cells : cell list }

(* Which oracles must catch which fault.  At least three detectors per
   site; the workloads are sized so any armed run visits the site at
   least three times, covering every seed-derived firing index (< 3). *)
let pairings =
  [
    ( Fault.Drop_successor,
      [
        "serial-parallel/sync";
        "serial-parallel/mobile";
        "serial-parallel/tree";
        "sym/orbit-eq";
        "sym/report-eq";
      ] );
    ( Fault.Duplicate_state,
      [
        "serial-parallel/sync";
        "serial-parallel/mobile";
        "serial-parallel/tree";
        "sym/orbit-eq";
        "sym/report-eq";
      ] );
    ( Fault.Corrupt_dedup_shard,
      [
        "serial-parallel/sync";
        "serial-parallel/mobile";
        "conservation/sync";
        "sym/orbit-eq";
        "sym/report-eq";
      ] );
    ( Fault.Worker_raise,
      [ "containment/map"; "containment/frontier"; "containment/registry" ] );
    (Fault.Worker_stall, [ "timing/map"; "timing/frontier"; "timing/iter" ]);
    ( Fault.Spurious_cancel,
      [ "complete/frontier"; "complete/consensus"; "complete/omission" ] );
    ( Fault.Flip_valence_bit,
      [ "valence-perm/floodset"; "valence-perm/early"; "valence-perm/mobile" ] );
    ( Fault.Torn_checkpoint_write,
      [ "recovery/rollback"; "resume-eq/frontier"; "resume-eq/registry" ] );
    ( Fault.Corrupt_checkpoint_crc,
      [ "recovery/rollback"; "resume-eq/frontier"; "resume-eq/registry" ] );
    ( Fault.Serve_handler_raise,
      [
        "serve/oneshot-eq";
        "serve/interleave-eq";
        "serve/jobs-eq";
        "serve/cancel-clean";
        "serve/singleflight-eq";
        "serve/fair-share";
      ] );
    ( Fault.Serve_cancel_midflight,
      [ "serve/cancel-clean"; "serve/singleflight-eq"; "serve/fair-share" ] );
    ( Fault.Serve_singleflight_leader_crash,
      [ "serve/singleflight-eq"; "serve/cancel-clean"; "serve/fair-share" ] );
    ( Fault.Serve_corrupt_response,
      [ "serve/oneshot-eq"; "serve/interleave-eq"; "serve/jobs-eq" ] );
    ( Fault.Serve_torn_frame,
      [ "serve/crash-recover-eq"; "serve/warm-restart"; "serve/replay-idempotent" ] );
    ( Fault.Serve_stalled_client,
      [ "serve/crash-recover-eq"; "serve/warm-restart"; "serve/replay-idempotent" ] );
    ( Fault.Serve_crash_before_reply,
      [ "serve/crash-recover-eq"; "serve/warm-restart"; "serve/replay-idempotent" ] );
    ( Fault.Frontier_spill_torn,
      [ "spill/in-core-eq"; "spill/torn-fallback"; "spill/resume-compose" ] );
    ( Fault.Frontier_spill_enospc,
      [ "spill/in-core-eq"; "spill/torn-fallback"; "spill/resume-compose" ] );
    ( Fault.Frontier_reload_corrupt,
      [ "spill/in-core-eq"; "spill/torn-fallback"; "spill/resume-compose" ] );
  ]

(* Any exception out of an oracle counts as the oracle failing — under
   injection that is a detection (the fault surfaced), and in a control
   run it is a genuine anomaly either way. *)
let run_check (o : Oracle.t) ~jobs =
  try o.Oracle.check ~jobs
  with e -> { Oracle.ok = false; detail = "raised " ^ Printexc.to_string e }

let run ?(jobs = 2) ?(sites = Fault.all) ~seed ~trials () =
  let jobs = max 2 jobs in
  let pairs = List.filter (fun (s, _) -> List.mem s sites) pairings in
  let flat = List.concat_map (fun (s, os) -> List.map (fun o -> (s, o)) os) pairs in
  if flat = [] then invalid_arg "Chaos.run: no fault sites selected";
  let cells =
    List.map
      (fun (site, oracle) ->
        {
          site;
          oracle;
          armed_trials = 0;
          detected = 0;
          unexercised = 0;
          control_failures = 0;
          notes = [];
        })
      flat
  in
  let cell_of site oracle =
    List.find (fun c -> c.site = site && c.oracle = oracle) cells
  in
  let npairs = List.length flat in
  for i = 0 to trials - 1 do
    let site, oname = List.nth flat (i mod npairs) in
    let oracle =
      match Oracle.find oname with
      | Some o -> o
      | None -> invalid_arg ("Chaos.run: unknown oracle " ^ oname)
    in
    let c = cell_of site oname in
    Fault.disarm ();
    let control = run_check oracle ~jobs in
    if not control.Oracle.ok then begin
      c.control_failures <- c.control_failures + 1;
      c.notes <- Printf.sprintf "trial %d control: %s" i control.Oracle.detail :: c.notes
    end;
    Fault.arm ~seed:(seed + i) site;
    let armed =
      Fun.protect ~finally:Fault.disarm (fun () -> run_check oracle ~jobs)
    in
    let fired = Fault.fired () > 0 in
    c.armed_trials <- c.armed_trials + 1;
    if not fired then begin
      c.unexercised <- c.unexercised + 1;
      c.notes <-
        Printf.sprintf "trial %d armed: fault never fired (%d site visits)" i
          (Fault.hits ())
        :: c.notes
    end
    else if armed.Oracle.ok then
      c.notes <- Printf.sprintf "trial %d armed: fault fired but went undetected" i :: c.notes
    else c.detected <- c.detected + 1
  done;
  { seed; trials; cells }

let cell_ok c =
  c.armed_trials > 0 && c.detected = c.armed_trials && c.unexercised = 0
  && c.control_failures = 0

let ok r = List.for_all cell_ok r.cells

let pp ppf r =
  Format.fprintf ppf "chaos: seed=%d trials=%d cells=%d@," r.seed r.trials
    (List.length r.cells);
  Format.fprintf ppf "%-22s %-26s %6s %9s %12s %9s@," "site" "oracle" "armed"
    "detected" "unexercised" "controls";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-22s %-26s %6d %9d %12d %9s@," (Fault.site_name c.site)
        c.oracle c.armed_trials c.detected c.unexercised
        (if c.control_failures = 0 then "clean"
         else Printf.sprintf "%d failed" c.control_failures))
    r.cells;
  List.iter
    (fun c ->
      List.iter
        (fun n ->
          Format.fprintf ppf "note [%s x %s]: %s@," (Fault.site_name c.site) c.oracle n)
        (List.rev c.notes))
    r.cells;
  let full = List.length (List.filter cell_ok r.cells) in
  Format.fprintf ppf "detection: %d/%d cells fully detected with clean controls@," full
    (List.length r.cells);
  Format.fprintf ppf "verdict: %s" (if ok r then "PASS" else "FAIL")

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"seed\":%d,\"trials\":%d,\"ok\":%b,\"cells\":[" r.seed r.trials
       (ok r));
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"site\":\"%s\",\"oracle\":\"%s\",\"armed\":%d,\"detected\":%d,\"unexercised\":%d,\"control_failures\":%d,\"notes\":[%s]}"
           (Fault.site_name c.site) (json_escape c.oracle) c.armed_trials c.detected
           c.unexercised c.control_failures
           (String.concat ","
              (List.rev_map (fun n -> "\"" ^ json_escape n ^ "\"") c.notes))))
    r.cells;
  Buffer.add_string b "]}\n";
  Buffer.contents b
