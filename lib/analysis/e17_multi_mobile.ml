open Layered_core

let run_one ~n ~horizon ~length =
  let module P = (val Layered_protocols.Sync_floodset.make ~t:(horizon - 1)) in
  let module E = Layered_sync.Engine.Make (P) in
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  let single = E.s1 ~record_failures:false in
  let keyset succ x = List.map E.key (succ x) |> List.sort_uniq compare in
  let first_violation_round succ classify x0 =
    let chain = Layering.bivalent_chain ~classify ~succ ~length x0 in
    ( chain.Layering.complete,
      List.find_map
        (fun x ->
          if Vset.cardinal (E.decided_vset x) >= 2 then Some x.E.round else None)
        chain.Layering.states )
  in
  List.concat_map
    (fun k ->
      let succ = E.s_multi ~omitters:k in
      let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
      let depth = horizon + 1 in
      let vals x = Valence.vals valence ~depth x in
      let classify x = Valence.classify valence ~depth x in
      let params = Printf.sprintf "n=%d horizon=%d omitters=%d" n horizon k in
      let inclusion_ok =
        List.for_all
          (fun x ->
            let multi = keyset succ x in
            List.for_all (fun key -> List.mem key multi) (keyset single x))
          initials
      in
      let layers_ok =
        List.for_all (fun x -> Connectivity.valence_connected ~vals (succ x)) initials
      in
      let chain_ok, violation =
        match Layering.find_bivalent ~classify initials with
        | None -> (false, None)
        | Some x0 -> first_violation_round succ classify x0
      in
      [
        Report.check ~id:"E17" ~claim:"submodel monotonicity" ~params
          ~expected:"1-omitter layer contained in k-omitter layer"
          ~measured:(Printf.sprintf "checked %d states" (List.length initials))
          inclusion_ok;
        Report.check ~id:"E17" ~claim:"layer valence" ~params
          ~expected:"k-omitter layers valence connected"
          ~measured:(Printf.sprintf "checked %d layers" (List.length initials))
          layers_ok;
        Report.check ~id:"E17" ~claim:"Cor 5.2 (a fortiori)" ~params
          ~expected:(Printf.sprintf "bivalent chain of length %d with forced violation" length)
          ~measured:
            (match violation with
            | Some r -> Printf.sprintf "chain complete, violation at round %d" r
            | None -> "no violation")
          (chain_ok && violation <> None);
      ])
    [ 1; 2 ]

let run () = run_one ~n:3 ~horizon:2 ~length:6
