open Layered_core
module Budget = Layered_runtime.Budget
module Pool = Layered_runtime.Pool
module Frontier = Layered_runtime.Frontier
module Ckpt = Layered_runtime.Checkpoint

type verdict = { ok : bool; detail : string }
type t = { name : string; what : string; check : jobs:int -> verdict }

let pass_ = { ok = true; detail = "ok" }
let fail detail = { ok = false; detail }

(* Parallel legs always get at least two jobs: an oracle run with
   [~jobs:1] would never dispatch to a worker domain and the worker
   fault sites could not fire. *)
let clamp jobs = max 2 jobs
let mixed_inputs n = Array.init n (fun i -> if i = 0 then Value.zero else Value.one)

(* Clean runs of the timed workloads finish in a few milliseconds; a
   stalled worker adds [Fault.stall_seconds] = 0.25 s.  The threshold is
   absolute so the oracle needs no paired reference run. *)
let fast_threshold_s = 0.1

let timed f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* ------------------------------------------------------------------ *)
(* Differential: serial BFS vs parallel frontier BFS, byte-for-byte.   *)

let serial_parallel (type a) ~(succ : a -> a list) ~(key : a -> string) ~depth
    (x0 : a) ~jobs =
  Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
      let serial = List.map key (Explore.reachable { Explore.succ; key } ~depth x0) in
      let par =
        List.map key (Frontier.reachable pool ~succ ~key ~depth x0).Budget.value
      in
      if serial = par then pass_
      else
        fail
          (Printf.sprintf "serial BFS visited %d states, parallel %d (or orders differ)"
             (List.length serial) (List.length par)))

(* The engine's state type is existential once the protocol module is
   opened locally, so continuations over a workload must be explicitly
   polymorphic. *)
type workload_user = {
  use : 'a. succ:('a -> 'a list) -> key:('a -> string) -> x0:'a -> verdict;
}

let with_floodset_st ~n ~t { use } =
  let module P = (val Layered_protocols.Sync_floodset.make ~t) in
  let module E = Layered_sync.Engine.Make (P) in
  use ~succ:(E.st ~t) ~key:E.key ~x0:(E.initial ~inputs:(mixed_inputs n))

let with_floodset_s1 ~n ~t { use } =
  let module P = (val Layered_protocols.Sync_floodset.make ~t) in
  let module E = Layered_sync.Engine.Make (P) in
  use ~succ:(E.s1 ~record_failures:false) ~key:E.key
    ~x0:(E.initial ~inputs:(mixed_inputs n))

(* A synthetic binary tree: no dedup pressure, every state fresh, so a
   dropped or duplicated state can never be papered over. *)
let tree_succ x = if x < 255 then [ (2 * x) + 1; (2 * x) + 2 ] else []
let tree_key = string_of_int

let sp_sync ~jobs =
  with_floodset_st ~n:3 ~t:1 { use = (fun ~succ ~key ~x0 ->
      serial_parallel ~succ ~key ~depth:3 x0 ~jobs) }

let sp_mobile ~jobs =
  with_floodset_s1 ~n:3 ~t:1 { use = (fun ~succ ~key ~x0 ->
      serial_parallel ~succ ~key ~depth:2 x0 ~jobs) }

let sp_tree ~jobs = serial_parallel ~succ:tree_succ ~key:tree_key ~depth:8 0 ~jobs

(* ------------------------------------------------------------------ *)
(* Conservation: levels are disjoint, their union is the serial        *)
(* reachable set, and the counting traversal agrees.                   *)

let conservation_sync ~jobs =
  with_floodset_st ~n:4 ~t:1 { use = (fun ~succ ~key ~x0 ->
      Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
          let o = Frontier.levels pool ~succ ~key ~depth:2 x0 in
          let flat = List.map key (List.concat o.Budget.value) in
          let serial =
            List.map key (Explore.reachable { Explore.succ; key } ~depth:2 x0)
          in
          let count =
            (Frontier.count_reachable pool ~succ ~key ~depth:2 x0).Budget.value
          in
          let distinct = List.sort_uniq compare flat in
          if o.Budget.status <> Budget.Complete then fail "unbudgeted run not Complete"
          else if List.length distinct <> List.length flat then
            fail "levels are not disjoint"
          else if flat <> serial then fail "flattened levels differ from serial BFS"
          else if count <> List.length serial then
            fail
              (Printf.sprintf "count_reachable says %d, serial BFS visited %d" count
                 (List.length serial))
          else pass_)) }

(* ------------------------------------------------------------------ *)
(* Metamorphic: a states-capped run is a prefix of the full run.       *)

let prefix_sync ~jobs =
  with_floodset_st ~n:4 ~t:1 { use = (fun ~succ ~key ~x0 ->
      Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
          let full = Frontier.levels pool ~succ ~key ~depth:3 x0 in
          let budget = Budget.create ~max_states:5 () in
          let capped = Frontier.levels ~budget pool ~succ ~key ~depth:3 x0 in
          let keys o = List.map (List.map key) o.Budget.value in
          let rec is_prefix a b =
            match (a, b) with
            | [], _ -> true
            | x :: a', y :: b' -> x = y && is_prefix a' b'
            | _ :: _, [] -> false
          in
          match capped.Budget.status with
          | Budget.Truncated { Budget.reason = Budget.States; _ } ->
              if is_prefix (keys capped) (keys full) then pass_
              else fail "capped levels are not a prefix of the full run"
          | Budget.Truncated { Budget.reason; _ } ->
              fail
                (Format.asprintf "truncated for the wrong reason: %a" Budget.pp_reason
                   reason)
          | Budget.Complete -> fail "max_states=5 failed to truncate")) }

(* ------------------------------------------------------------------ *)
(* Metamorphic: valence classification is order-invariant — two        *)
(* independent engines fed the same states in opposite orders agree.   *)

let perm_invariant (type a) ~(spec : a Valence.spec) ~depth (states : a list) =
  let classify order =
    let v = Valence.create spec in
    List.map (fun x -> Valence.classify v ~depth x) order
  in
  let forward = classify states in
  let backward = List.rev (classify (List.rev states)) in
  if List.for_all2 Valence.verdict_equal forward backward then pass_
  else fail "classification differs between traversal orders"

let vp_floodset ~jobs:_ =
  let module P = (val Layered_protocols.Sync_floodset.make ~t:1) in
  let module E = Layered_sync.Engine.Make (P) in
  let succ = E.st ~t:1 in
  perm_invariant ~spec:(E.valence_spec ~succ) ~depth:3
    (E.initial_states ~n:3 ~values:[ Value.zero; Value.one ])

let vp_early ~jobs:_ =
  let module P = (val Layered_protocols.Sync_early.make ~t:1) in
  let module E = Layered_sync.Engine.Make (P) in
  let succ = E.st ~t:1 in
  perm_invariant ~spec:(E.valence_spec ~succ) ~depth:2
    (E.initial_states ~n:3 ~values:[ Value.zero; Value.one ])

let vp_mobile ~jobs:_ =
  let module P = (val Layered_protocols.Sync_floodset.make ~t:1) in
  let module E = Layered_sync.Engine.Make (P) in
  let succ = E.s1 ~record_failures:false in
  perm_invariant ~spec:(E.valence_spec ~succ) ~depth:2
    (E.initial_states ~n:3 ~values:[ Value.zero; Value.one ])

(* ------------------------------------------------------------------ *)
(* Containment: a worker crash must surface as an exception (or not at *)
(* all), never corrupt results, and must leave the pool usable.        *)

let contained troubles alive =
  match (troubles, alive) with
  | [], true -> pass_
  | ts, true -> fail ("contained: " ^ String.concat "; " (List.rev ts))
  | _, false -> fail "pool unusable afterwards"

let containment_map ~jobs =
  Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
      let xs = List.init 256 Fun.id in
      let expect = List.map (fun x -> (x * x) + 1) xs in
      let troubles = ref [] in
      for pass = 1 to 4 do
        match Pool.parallel_map pool (fun x -> (x * x) + 1) xs with
        | got ->
            if got <> expect then
              troubles := Printf.sprintf "pass %d: wrong result" pass :: !troubles
        | exception e ->
            troubles :=
              Printf.sprintf "pass %d: raised %s" pass (Printexc.to_string e)
              :: !troubles
      done;
      let alive =
        try Pool.parallel_map pool (fun x -> x + 1) [ 1; 2; 3 ] = [ 2; 3; 4 ]
        with _ -> false
      in
      contained !troubles alive)

let containment_frontier ~jobs =
  Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
      let expect =
        List.map tree_key
          (Explore.reachable { Explore.succ = tree_succ; key = tree_key } ~depth:8 0)
      in
      let troubles = ref [] in
      for pass = 1 to 4 do
        match
          (Frontier.reachable pool ~succ:tree_succ ~key:tree_key ~depth:8 0)
            .Budget.value
        with
        | got ->
            if List.map tree_key got <> expect then
              troubles := Printf.sprintf "pass %d: wrong result" pass :: !troubles
        | exception e ->
            troubles :=
              Printf.sprintf "pass %d: raised %s" pass (Printexc.to_string e)
              :: !troubles
      done;
      let alive =
        try Pool.parallel_map pool (fun x -> x + 1) [ 1; 2; 3 ] = [ 2; 3; 4 ]
        with _ -> false
      in
      contained !troubles alive)

let probe_experiments =
  List.init 4 (fun i ->
      let id = Printf.sprintf "probe%d" (i + 1) in
      {
        Registry.id;
        title = "chaos probe";
        run =
          (fun () ->
            [
              Report.check ~id ~claim:"probe" ~params:"" ~expected:"runs"
                ~measured:"ran" true;
            ]);
      })

let containment_registry ~jobs =
  Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
      let troubles = ref [] in
      for pass = 1 to 4 do
        let results = Registry.run_all ~pool probe_experiments in
        let rows = List.concat_map snd results in
        if
          List.exists
            (fun (r : Report.row) -> r.Report.id = "registry")
            rows
        then troubles := Printf.sprintf "pass %d: serial fallback" pass :: !troubles;
        if List.length results <> List.length probe_experiments then
          troubles := Printf.sprintf "pass %d: experiments lost" pass :: !troubles
        else if not (Report.all_pass rows) then
          troubles := Printf.sprintf "pass %d: probe rows failed" pass :: !troubles
      done;
      let alive =
        try Pool.parallel_map pool (fun x -> x + 1) [ 1; 2; 3 ] = [ 2; 3; 4 ]
        with _ -> false
      in
      contained !troubles alive)

(* ------------------------------------------------------------------ *)
(* Completeness: under a budget far larger than the workload, every    *)
(* run must report [Complete] — a truncation can only mean a phantom   *)
(* deadline, cap, or cancellation.                                     *)

let generous () = Budget.create ~max_states:1_000_000 ()

let complete_frontier ~jobs =
  with_floodset_st ~n:3 ~t:1 { use = (fun ~succ ~key ~x0 ->
      Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
          let o = Frontier.reachable ~budget:(generous ()) pool ~succ ~key ~depth:3 x0 in
          match o.Budget.status with
          | Budget.Complete ->
              if o.Budget.value = [] then fail "empty reachable set" else pass_
          | Budget.Truncated tr ->
              fail
                (Format.asprintf "generous budget truncated: %a" Budget.pp_truncation
                   tr))) }

let complete_consensus ~jobs:_ =
  let r =
    Consensus_check.check
      ~protocol:(Layered_protocols.Sync_floodset.make ~t:1)
      ~n:3 ~t:1 ~rounds:2 ~budget:(generous ()) ()
  in
  match r.Consensus_check.status with
  | Budget.Complete ->
      if r.agreement_ok && r.validity_ok && r.termination_ok then pass_
      else fail "floodset verdicts regressed under a generous budget"
  | Budget.Truncated tr ->
      fail (Format.asprintf "generous budget truncated: %a" Budget.pp_truncation tr)

let complete_omission ~jobs:_ =
  let r =
    Omission_check.check
      ~protocol:(Layered_protocols.Sync_coordinator.make ~t:1)
      ~n:3 ~t:1 ~rounds:6 ~budget:(generous ()) ()
  in
  match r.Omission_check.status with
  | Budget.Complete ->
      if r.agreement_ok && r.validity_ok && r.termination_ok then pass_
      else fail "coordinator verdicts regressed under a generous budget"
  | Budget.Truncated tr ->
      fail (Format.asprintf "generous budget truncated: %a" Budget.pp_truncation tr)

(* ------------------------------------------------------------------ *)
(* Timing: small fixed workloads against an absolute wall-clock bound. *)

let timing verdict elapsed =
  if elapsed < fast_threshold_s then verdict
  else fail (Printf.sprintf "took %.3f s (threshold %.2f s)" elapsed fast_threshold_s)

let timing_map ~jobs =
  Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
      let xs = List.init 64 Fun.id in
      let bad = ref false in
      let elapsed =
        timed (fun () ->
            for _ = 1 to 4 do
              if Pool.parallel_map pool (fun x -> x + 1) xs <> List.map succ xs then
                bad := true
            done)
      in
      timing (if !bad then fail "wrong result" else pass_) elapsed)

let timing_frontier ~jobs =
  with_floodset_st ~n:3 ~t:1 { use = (fun ~succ ~key ~x0 ->
      Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
          let n = ref 0 in
          let elapsed =
            timed (fun () ->
                n := (Frontier.count_reachable pool ~succ ~key ~depth:3 x0).Budget.value)
          in
          timing (if !n > 0 then pass_ else fail "empty reachable set") elapsed)) }

let timing_iter ~jobs =
  Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
      let xs = List.init 64 Fun.id in
      let hits = Atomic.make 0 in
      let elapsed =
        timed (fun () ->
            for _ = 1 to 4 do
              Pool.parallel_iter pool
                (fun _ -> ignore (Atomic.fetch_and_add hits 1))
                xs
            done)
      in
      timing
        (if Atomic.get hits = 4 * List.length xs then pass_
         else fail "parallel_iter lost elements")
        elapsed)

(* ------------------------------------------------------------------ *)
(* Cross-engine: the one 2-set algorithm verified on three substrates. *)

let cross_engine_kset ~jobs:_ =
  let rows = E19_equivalence.run () in
  if Report.all_pass rows then pass_
  else fail "the three substrates disagree on the 2-set algorithm"

(* ------------------------------------------------------------------ *)
(* Durability: checkpoint/resume equivalence and torn-write recovery.  *)
(* Each oracle runs its workload in a private temp directory, then     *)
(* scans *every* generation left on disk: a torn or corrupt one —      *)
(* whatever rollback absorbed it — is a detection.  Details mention    *)
(* counts, never paths or which file, so output stays byte-identical   *)
(* across job counts.                                                  *)

let tmp_counter = Atomic.make 0

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let with_tmp_dir f =
  let base = Filename.get_temp_dir_name () in
  let rec fresh () =
    let dir =
      Filename.concat base
        (Printf.sprintf "layered-oracle-%d-%d" (Unix.getpid ())
           (Atomic.fetch_and_add tmp_counter 1))
    in
    match Unix.mkdir dir 0o700 with
    | () -> dir
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> fresh ()
  in
  let dir = fresh () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let corrupt_generations ~dir names =
  List.concat_map
    (fun name ->
      List.filter (fun (_, intact) -> not intact) (Ckpt.scan ~dir ~name))
    names

(* Kill a frontier BFS with a states cap, resume from the newest intact
   snapshot, and demand the resumed levels equal an uninterrupted run's
   — then audit every generation (>= 7 saves, so an armed checkpoint
   fault is certain to fire). *)
let resume_frontier ~jobs =
  Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
      with_tmp_dir (fun dir ->
          let name = "frontier" in
          let depth = 8 in
          let keys o = List.map (List.map tree_key) o.Budget.value in
          let full = Frontier.levels pool ~succ:tree_succ ~key:tree_key ~depth 0 in
          let save (snap : int Frontier.snapshot) =
            ignore
              (Ckpt.save ~dir ~name
                 ~meta:
                   (Ckpt.make_meta ~progress:(List.length snap.Frontier.levels) ())
                 ~payload:(Marshal.to_string snap []))
          in
          let budget = Budget.create ~max_states:80 () in
          let interrupted =
            Frontier.levels ~budget
              ~checkpoint:{ Frontier.every = 1; save }
              pool ~succ:tree_succ ~key:tree_key ~depth 0
          in
          match interrupted.Budget.status with
          | Budget.Complete -> fail "max_states=80 failed to interrupt the run"
          | Budget.Truncated _ -> (
              match Ckpt.load_latest ~dir ~name with
              | None -> fail "no intact generation to resume from"
              | Some loaded -> (
                  match
                    (Marshal.from_string loaded.Ckpt.payload 0
                      : int Frontier.snapshot)
                  with
                  | exception _ -> fail "intact generation failed to decode"
                  | snap -> (
                      let resumed =
                        Frontier.levels ~resume:snap pool ~succ:tree_succ
                          ~key:tree_key ~depth 0
                      in
                      let corrupt = corrupt_generations ~dir [ name ] in
                      match resumed.Budget.status with
                      | Budget.Truncated _ -> fail "resumed run did not complete"
                      | Budget.Complete ->
                          if keys resumed <> keys full then
                            fail "resumed levels differ from the uninterrupted run"
                          else if corrupt <> [] then
                            fail
                              (Printf.sprintf
                                 "detected %d torn/corrupt generation(s); \
                                  rollback still reproduced the run"
                                 (List.length corrupt))
                          else pass_)))))

(* Kill a registry run mid-flight (a probe cancels the budget), resume,
   and demand the resumed report equal an uninterrupted one — then audit
   every per-experiment generation (6 probes = 6 saves across the
   interrupted + resumed runs). *)
let resume_registry ~jobs =
  Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
      with_tmp_dir (fun dir ->
          let cancel_target = ref None in
          let probes =
            List.init 6 (fun i ->
                let id = Printf.sprintf "RP%d" (i + 1) in
                {
                  Registry.id;
                  title = "resume probe";
                  run =
                    (fun () ->
                      if i = 3 then Option.iter Budget.cancel !cancel_target;
                      [
                        Report.check ~id ~claim:"probe" ~params:""
                          ~expected:"runs" ~measured:"ran" true;
                      ]);
                })
          in
          let render results =
            Report.to_markdown (List.concat_map snd results)
          in
          let reference = render (Registry.run_all ~pool probes) in
          let budget = Budget.create () in
          cancel_target := Some budget;
          let _interrupted : (Registry.experiment * Report.row list) list =
            Registry.run_all ~pool ~budget
              ~checkpoint:{ Registry.dir; resume = false }
              probes
          in
          cancel_target := None;
          let resumed =
            render
              (Registry.run_all ~pool
                 ~checkpoint:{ Registry.dir; resume = true }
                 probes)
          in
          let corrupt =
            corrupt_generations ~dir (List.map Registry.checkpoint_name probes)
          in
          if resumed <> reference then
            fail "resumed report differs from the uninterrupted run"
          else if corrupt <> [] then
            fail
              (Printf.sprintf
                 "detected %d torn/corrupt generation(s); resume rolled back \
                  and still matched"
                 (List.length corrupt))
          else pass_))

(* Write three generations, then demand the newest *intact* one load
   with the exact payload it was saved with: a torn or corrupt latest
   generation must roll back to the previous good one — never crash,
   never hand back garbage.  Three saves exactly cover the injector's
   firing window, so an armed checkpoint fault is certain to fire and
   may land on any generation, including the latest. *)
let recovery_rollback ~jobs:_ =
  with_tmp_dir (fun dir ->
      let name = "roll" in
      let payloads =
        List.init 3 (fun i -> Printf.sprintf "generation-%d-payload" (i + 1))
      in
      List.iter
        (fun payload ->
          ignore
            (Ckpt.save ~dir ~name ~meta:(Ckpt.make_meta ~progress:0 ()) ~payload))
        payloads;
      let corrupt = corrupt_generations ~dir [ name ] in
      match Ckpt.load_latest ~dir ~name with
      | None -> fail "every generation rejected: nothing to roll back to"
      | Some loaded ->
          if
            loaded.Ckpt.generation < 1
            || loaded.Ckpt.generation > List.length payloads
            || loaded.Ckpt.payload
               <> List.nth payloads (loaded.Ckpt.generation - 1)
          then
            fail
              (Printf.sprintf
                 "generation %d loaded the wrong payload (corruption accepted?)"
                 loaded.Ckpt.generation)
          else if corrupt <> [] then
            fail
              (Printf.sprintf
                 "detected %d torn/corrupt generation(s); rolled back to \
                  generation %d intact"
                 (List.length corrupt) loaded.Ckpt.generation)
          else if loaded.Ckpt.generation <> List.length payloads then
            fail "newest generation intact but not the one loaded"
          else pass_)

(* ------------------------------------------------------------------ *)
(* Differential: the bucketed similarity-graph builder must produce    *)
(* exactly the reference all-pairs graph — same node order, same edge  *)
(* set — on every model.  States mix rounds and schedules so masked    *)
(* signatures collide and differ in both directions.                   *)

let graphs_equal (g : Graph.t) (h : Graph.t) =
  Graph.size g = Graph.size h
  && List.for_all
       (fun i -> Graph.neighbours g i = Graph.neighbours h i)
       (List.init (Graph.size g) Fun.id)

let simgraph_eq ~similarity_graph states =
  let _, reference = similarity_graph ~builder:Simgraph.Pairwise states in
  let _, bucketed = similarity_graph ~builder:Simgraph.Bucketed states in
  if graphs_equal reference bucketed then pass_
  else
    fail
      (Printf.sprintf "builders disagree on %d states: pairwise %d edges, bucketed %d"
         (List.length states) (Graph.edge_count reference) (Graph.edge_count bucketed))

let two_values = [ Value.zero; Value.one ]

let dedup_by ident states =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun x ->
      let k = ident x in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    states

let sg_sync ~jobs:_ =
  let module P = (val Layered_protocols.Sync_floodset.make ~t:1) in
  let module E = Layered_sync.Engine.Make (P) in
  let initials = E.initial_states ~n:3 ~values:two_values in
  let layer1 = List.concat_map (E.st ~t:1) initials in
  simgraph_eq ~similarity_graph:(fun ~builder states -> E.similarity_graph ~builder states)
    (initials @ dedup_by E.ident layer1)

let sg_iis ~jobs:_ =
  let module P = (val Layered_protocols.Iis_voting.make ~horizon:2) in
  let module E = Layered_iis.Engine.Make (P) in
  let initials = E.initial_states ~n:3 ~values:two_values in
  simgraph_eq ~similarity_graph:(fun ~builder states -> E.similarity_graph ~builder states)
    (initials @ dedup_by E.ident (List.concat_map E.layer initials))

let sg_sm ~jobs:_ =
  let module P = (val Layered_protocols.Sm_voting.make ~horizon:2) in
  let module E = Layered_async_sm.Engine.Make (P) in
  let initials = E.initial_states ~n:3 ~values:two_values in
  simgraph_eq ~similarity_graph:(fun ~builder states -> E.similarity_graph ~builder states)
    (initials @ dedup_by E.ident (List.concat_map E.srw initials))

let sg_mp ~jobs:_ =
  let module P = (val Layered_protocols.Mp_floodset.make ~horizon:2) in
  let module E = Layered_async_mp.Engine.Make (P) in
  let initials = E.initial_states ~n:3 ~values:two_values in
  simgraph_eq ~similarity_graph:(fun ~builder states -> E.similarity_graph ~builder states)
    (initials @ dedup_by E.ident (List.concat_map E.sper initials))

let sg_smp ~jobs:_ =
  let module P = (val Layered_protocols.Sync_floodset.make ~t:1) in
  let module E = Layered_async_mp.Synchronic.Make (P) in
  let initials = E.initial_states ~n:3 ~values:two_values in
  simgraph_eq ~similarity_graph:(fun ~builder states -> E.similarity_graph ~builder states)
    (initials @ dedup_by E.ident (List.concat_map E.smp initials))

(* ------------------------------------------------------------------ *)
(* Out-of-core spill: the disk tier must never change the traversal's  *)
(* bytes, whatever the injector does to its segment files.  Faults at  *)
(* the write sites degrade to keeping data in core (counted as spill   *)
(* write failures); a fault at the reload site costs an in-core        *)
(* restart (counted) — both leave the output byte-identical, so the    *)
(* oracles detect through the counters and the on-disk debris, and an  *)
(* output mismatch is a hard failure in any leg.                       *)

module RStats = Layered_runtime.Stats

(* A dup-heavy bounded DAG: every state has three successors and up to
   three predecessors, so each level's candidates probe keys the
   previous level just spilled — the membership pressure a tree (zero
   dedup) cannot apply.  121 states over ~41 levels gives every spill
   fault site far more than the three visits an armed run needs. *)
let dag_bound = 120
let dag_succ x = if x >= dag_bound then [] else [ x + 1; x + 2; x + 3 ]
let dag_key = string_of_int
let dag_depth = 60
let forced_spill dir = { Frontier.spill_dir = dir; spill_mode = Frontier.Always }
let dag_levels o = List.map (List.map dag_key) o.Budget.value

(* Count detections from the counter deltas of one or more spilled legs:
   a degraded write or an in-core restart is invisible in the output by
   design, so the counters are where an injected fault surfaces. *)
let spill_disturbances (d : RStats.snapshot) =
  d.RStats.spill_write_failures + d.RStats.spill_restarts

let spill_in_core_eq ~jobs =
  Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
      with_tmp_dir (fun dir ->
          let reference =
            Frontier.levels pool ~succ:dag_succ ~key:dag_key ~depth:dag_depth 0
          in
          let before = RStats.snapshot () in
          let spilled =
            Frontier.levels ~spill:(forced_spill dir) pool ~succ:dag_succ
              ~key:dag_key ~depth:dag_depth 0
          in
          let d = RStats.diff (RStats.snapshot ()) before in
          if dag_levels spilled <> dag_levels reference then
            fail "spilled levels differ from the in-core run"
          else if spill_disturbances d > 0 then
            fail
              (Printf.sprintf
                 "detected %d degraded segment write(s) and %d in-core \
                  restart(s); output still matched"
                 d.RStats.spill_write_failures d.RStats.spill_restarts)
          else if d.RStats.spill_segments = 0 then
            fail "forced spill mode wrote no segments"
          else pass_))

(* Same differential, but through a checkpoint sink so the undelivered
   prefix spills too — and with a debris scan: a torn segment may stay
   on disk, but it must never be *registered* (validated read-back), so
   any non-intact file in the spill directory proves a write was torn
   and correctly rejected. *)
let spill_torn_fallback ~jobs =
  Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
      with_tmp_dir (fun dir ->
          let reference =
            Frontier.levels pool ~succ:dag_succ ~key:dag_key ~depth:dag_depth 0
          in
          let before = RStats.snapshot () in
          let save (snap : int Frontier.snapshot) = ignore (Sys.opaque_identity snap) in
          let spilled =
            Frontier.levels ~spill:(forced_spill dir)
              ~checkpoint:{ Frontier.every = 5; save }
              pool ~succ:dag_succ ~key:dag_key ~depth:dag_depth 0
          in
          let d = RStats.diff (RStats.snapshot ()) before in
          let debris =
            List.filter (fun (_, intact) -> not intact) (Ckpt.scan_dir ~dir)
          in
          if dag_levels spilled <> dag_levels reference then
            fail "spilled levels differ from the in-core run"
          else if debris <> [] || spill_disturbances d > 0 then
            fail
              (Printf.sprintf
                 "detected %d torn file(s) on disk, %d degraded write(s), %d \
                  in-core restart(s); none was resumed from and output matched"
                 (List.length debris) d.RStats.spill_write_failures
                 d.RStats.spill_restarts)
          else if d.RStats.spill_segments = 0 then
            fail "forced spill mode wrote no segments"
          else pass_))

(* Resume composes with live spill segments: interrupt a spilled +
   checkpointed run with a states cap, resume it — spill still on — and
   demand the resumed levels equal an uninterrupted in-core run's. *)
let spill_resume_compose ~jobs =
  Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
      with_tmp_dir (fun dir ->
          let name = "oocore" in
          let reference =
            Frontier.levels pool ~succ:dag_succ ~key:dag_key ~depth:dag_depth 0
          in
          let save (snap : int Frontier.snapshot) =
            ignore
              (Ckpt.save ~dir ~name
                 ~meta:
                   (Ckpt.make_meta ~progress:(List.length snap.Frontier.levels) ())
                 ~payload:(Marshal.to_string snap []))
          in
          let before = RStats.snapshot () in
          let budget = Budget.create ~max_states:60 () in
          let interrupted =
            Frontier.levels ~budget ~spill:(forced_spill dir)
              ~checkpoint:{ Frontier.every = 1; save }
              pool ~succ:dag_succ ~key:dag_key ~depth:dag_depth 0
          in
          match interrupted.Budget.status with
          | Budget.Complete -> fail "max_states=60 failed to interrupt the run"
          | Budget.Truncated _ -> (
              match Ckpt.load_latest ~dir ~name with
              | None -> fail "no intact generation to resume from"
              | Some loaded -> (
                  match
                    (Marshal.from_string loaded.Ckpt.payload 0
                      : int Frontier.snapshot)
                  with
                  | exception _ -> fail "intact generation failed to decode"
                  | snap -> (
                      let resumed =
                        Frontier.levels ~resume:snap ~spill:(forced_spill dir)
                          pool ~succ:dag_succ ~key:dag_key ~depth:dag_depth 0
                      in
                      let d = RStats.diff (RStats.snapshot ()) before in
                      let corrupt = corrupt_generations ~dir [ name ] in
                      match resumed.Budget.status with
                      | Budget.Truncated _ -> fail "resumed run did not complete"
                      | Budget.Complete ->
                          if dag_levels resumed <> dag_levels reference then
                            fail
                              "resumed spilled levels differ from the \
                               uninterrupted in-core run"
                          else if corrupt <> [] || spill_disturbances d > 0 then
                            fail
                              (Printf.sprintf
                                 "detected %d corrupt generation(s), %d \
                                  degraded write(s), %d in-core restart(s); \
                                  resume still reproduced the run"
                                 (List.length corrupt)
                                 d.RStats.spill_write_failures
                                 d.RStats.spill_restarts)
                          else if d.RStats.spill_segments = 0 then
                            fail "forced spill mode wrote no segments"
                          else pass_)))))

(* ------------------------------------------------------------------ *)
(* Symmetry: the orbit quotient must reconstruct the unreduced run.    *)
(* Both oracles keep a serial [Explore] leg as ground truth — that is  *)
(* where the Drop_successor/Duplicate_state sites live — while the     *)
(* quotient leg runs through the pooled frontier, where the dedup      *)
(* shard site lives, so every paired fault surfaces as a weighted      *)
(* count or orbit-set mismatch.                                        *)

module type SYM_INSTANCE = sig
  type state

  val depth : int
  val x0 : state
  val succ : state -> state list
  val key : state -> string
  val ckey : state -> string
  val weight : state -> int
end

let sym_instance () =
  let module P = (val Layered_protocols.Iis_voting.make ~horizon:2) in
  let module E = Layered_iis.Engine.Make (P) in
  let inputs = mixed_inputs 4 in
  (module struct
    type state = E.state

    let depth = 2
    let x0 = E.initial ~inputs
    let succ = E.layer
    let key = E.key
    let roles = Canon.roles_of ~eq:Value.equal inputs
    let ckey x = (E.canon ~roles x).Intern.cmeta.Intern.key
    let weight x = (E.canon ~roles x).Intern.weight
  end : SYM_INSTANCE)

let sym_orbit_eq ~jobs =
  let module I = (val sym_instance ()) in
  let serial =
    Explore.reachable { Explore.succ = I.succ; key = I.key } ~depth:I.depth I.x0
  in
  Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
      let quotient =
        (Frontier.reachable pool ~succ:I.succ ~key:I.key ~canon:I.ckey
           ~depth:I.depth I.x0)
          .Budget.value
      in
      let weighted = List.fold_left (fun a x -> a + I.weight x) 0 quotient in
      let serial_orbits = List.sort_uniq compare (List.map I.ckey serial) in
      let quotient_orbits = List.sort compare (List.map I.ckey quotient) in
      if List.length quotient >= List.length serial then
        fail
          (Printf.sprintf "no reduction: %d representatives vs %d raw states"
             (List.length quotient) (List.length serial))
      else if weighted <> List.length serial then
        fail
          (Printf.sprintf "orbit weights sum to %d, serial BFS visited %d"
             weighted (List.length serial))
      else if serial_orbits <> quotient_orbits then
        fail "representative orbits differ from the serial set's orbits"
      else pass_)

let sym_report_eq ~jobs =
  Pool.with_pool ~jobs:(clamp jobs) (fun pool ->
      let leg sym =
        Canon.set_enabled sym;
        Fun.protect
          ~finally:(fun () -> Canon.set_enabled false)
          (fun () ->
            let before = RStats.snapshot () in
            let sweep = Sweep.run ~pool ~model:"iis" ~n:4 ~t:1 ~depth:2 () in
            let d = RStats.diff (RStats.snapshot ()) before in
            (Format.asprintf "%a" Sweep.pp sweep, sweep, d.RStats.states_expanded))
      in
      let off_render, _, off_states = leg false in
      let on_render, on_sweep, on_states = leg true in
      let module I = (val sym_instance ()) in
      let serial =
        Explore.count_reachable { Explore.succ = I.succ; key = I.key }
          ~depth:I.depth I.x0
      in
      let final_reachable =
        match List.rev on_sweep.Sweep.levels with
        | l :: _ -> l.Sweep.reachable
        | [] -> -1
      in
      if on_render <> off_render then
        fail "symmetry-on report differs from the unreduced report"
      else if on_states >= off_states then
        fail
          (Printf.sprintf "symmetry expanded %d states, unreduced %d" on_states
             off_states)
      else if final_reachable <> serial then
        fail
          (Printf.sprintf "report says %d reachable, serial BFS visited %d"
             final_reachable serial)
      else pass_)

let builtin =
  [
    {
      name = "serial-parallel/sync";
      what = "serial and frontier BFS agree byte-for-byte (floodset S^t, n=3 t=1 d=3)";
      check = sp_sync;
    };
    {
      name = "serial-parallel/mobile";
      what = "serial and frontier BFS agree byte-for-byte (floodset S_1, n=3 t=1 d=2)";
      check = sp_mobile;
    };
    {
      name = "serial-parallel/tree";
      what = "serial and frontier BFS agree byte-for-byte (binary tree, 511 states)";
      check = sp_tree;
    };
    {
      name = "conservation/sync";
      what = "levels disjoint, union = serial reachable set, counts agree (n=4 t=1 d=2)";
      check = conservation_sync;
    };
    {
      name = "prefix/sync";
      what = "a states-capped frontier run is a prefix of the full run (n=4 t=1 d=3)";
      check = prefix_sync;
    };
    {
      name = "valence-perm/floodset";
      what = "valence classification of Con_0 is traversal-order invariant (S^t)";
      check = vp_floodset;
    };
    {
      name = "valence-perm/early";
      what = "valence classification of Con_0 is traversal-order invariant (early)";
      check = vp_early;
    };
    {
      name = "valence-perm/mobile";
      what = "valence classification of Con_0 is traversal-order invariant (S_1)";
      check = vp_mobile;
    };
    {
      name = "containment/map";
      what = "parallel_map never wedges or corrupts results; pool survives crashes";
      check = containment_map;
    };
    {
      name = "containment/frontier";
      what = "frontier BFS never wedges or corrupts results; pool survives crashes";
      check = containment_frontier;
    };
    {
      name = "containment/registry";
      what = "run_all yields every experiment's rows without a serial fallback";
      check = containment_registry;
    };
    {
      name = "complete/frontier";
      what = "a generous budget reports Complete on the frontier BFS";
      check = complete_frontier;
    };
    {
      name = "complete/consensus";
      what = "a generous budget reports Complete on the consensus checker";
      check = complete_consensus;
    };
    {
      name = "complete/omission";
      what = "a generous budget reports Complete on the omission checker";
      check = complete_omission;
    };
    {
      name = "timing/map";
      what = "four parallel_map passes finish under the wall-clock threshold";
      check = timing_map;
    };
    {
      name = "timing/frontier";
      what = "a frontier BFS finishes under the wall-clock threshold";
      check = timing_frontier;
    };
    {
      name = "timing/iter";
      what = "four parallel_iter passes finish under the wall-clock threshold";
      check = timing_iter;
    };
    {
      name = "cross-engine/kset";
      what = "one 2-set algorithm, three substrates: E19 invariants all pass";
      check = cross_engine_kset;
    };
    {
      name = "simgraph-eq/sync";
      what = "bucketed and pairwise similarity graphs identical (floodset S^t, n=3)";
      check = sg_sync;
    };
    {
      name = "simgraph-eq/iis";
      what = "bucketed and pairwise similarity graphs identical (IIS voting, n=3)";
      check = sg_iis;
    };
    {
      name = "simgraph-eq/sm";
      what = "bucketed and pairwise similarity graphs identical (S^rw voting, n=3)";
      check = sg_sm;
    };
    {
      name = "simgraph-eq/mp";
      what = "bucketed and pairwise similarity graphs identical (S^per floodset, n=3)";
      check = sg_mp;
    };
    {
      name = "simgraph-eq/smp";
      what = "bucketed and pairwise similarity graphs identical (synchronic MP, n=3)";
      check = sg_smp;
    };
    {
      name = "resume-eq/frontier";
      what =
        "a states-capped BFS resumed from its checkpoint equals the uninterrupted run; every generation intact";
      check = resume_frontier;
    };
    {
      name = "resume-eq/registry";
      what =
        "a cancelled registry run resumed from per-experiment snapshots reports identically; every generation intact";
      check = resume_registry;
    };
    {
      name = "recovery/rollback";
      what =
        "the newest intact generation loads with its exact payload; torn/corrupt ones are rejected, never resumed from";
      check = recovery_rollback;
    };
    {
      name = "spill/in-core-eq";
      what =
        "a forced-spill BFS equals the in-core run byte-for-byte; degraded writes and restarts are surfaced";
      check = spill_in_core_eq;
    };
    {
      name = "spill/torn-fallback";
      what =
        "torn spill segments are never registered or resumed from; the run degrades to in-core and matches";
      check = spill_torn_fallback;
    };
    {
      name = "spill/resume-compose";
      what =
        "a checkpoint resume composes with live spill segments and reproduces the uninterrupted in-core run";
      check = spill_resume_compose;
    };
    {
      name = "sym/orbit-eq";
      what =
        "orbit weights of the quotiented frontier reconstruct the serial unreduced reachable set (IIS, n=4 d=2)";
      check = sym_orbit_eq;
    };
    {
      name = "sym/report-eq";
      what =
        "--symmetry sweep reports byte-identical to unreduced with strictly fewer states expanded (IIS, n=4 d=2)";
      check = sym_report_eq;
    };
  ]

(* Registered extensions live after the builtins so report ordering is
   stable: builtins first, then registration order.  The analysis layer
   cannot depend on the serve library, so serve's oracles arrive here at
   program start via [register]. *)
let extra : t list ref = ref []

let register o =
  if
    (not (List.exists (fun b -> b.name = o.name) builtin))
    && not (List.exists (fun e -> e.name = o.name) !extra)
  then extra := !extra @ [ o ]

let all () = builtin @ !extra
let find name = List.find_opt (fun o -> o.name = name) (all ())

let rows ?(jobs = 2) ?names () =
  let selected =
    match names with
    | None -> all ()
    | Some ns -> List.filter (fun o -> List.mem o.name ns) (all ())
  in
  List.map
    (fun o ->
      let v = o.check ~jobs in
      Report.check ~id:"ORACLE" ~claim:o.name ~params:"" ~expected:o.what
        ~measured:v.detail v.ok)
    selected
