open Layered_core

(* [decision_round] is the protocol's worst-case decision round: t+1 for
   plain consensus, t+2 for the uniform protocol (one echo round more).
   [uniform] switches the expectation on the uniform-agreement flag. *)
let run_one ?(decision_round = 0) ?(uniform = false) ~pname ~protocol ~n ~t ~max_new () =
  let decision_round = if decision_round = 0 then t + 1 else decision_round in
  let params = Printf.sprintf "%s n=%d t=%d" pname n t in
  let verified =
    Consensus_check.check ~protocol ~n ~t ~rounds:(decision_round + 1) ~max_new ()
  in
  let module P = (val (protocol : (module Layered_sync.Protocol.S))) in
  let module E = Layered_sync.Engine.Make (P) in
  let succ = E.st ~t in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let depth = decision_round + 1 in
  let classify x = Valence.classify valence ~depth x in
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  (* Lemma 6.1: a bivalent chain x^0 ... x^{t-1} (bivalence is guaranteed
     only through the end of round t-1; the paper notes there need not be
     a bivalent state at the end of round t). *)
  let chain =
    match Layering.find_bivalent ~classify initials with
    | None -> Layering.{ states = []; complete = false; stuck = None }
    | Some x0 -> Layering.bivalent_chain ~classify ~succ ~length:t x0
  in
  let failures_bounded =
    List.for_all (fun x -> E.failed_count x <= x.E.round) chain.Layering.states
  in
  (* Lemma 6.2: from the bivalent state at the end of round t-1, some
     layer successor (a round-t state) still has a non-failed undecided
     process — so some run decides only in round t+1 or later. *)
  let undecided_at_t =
    match List.rev chain.Layering.states with
    | last :: _ when chain.Layering.complete && last.E.round = t - 1 ->
        let undecided y =
          let decs = E.decisions y in
          List.length (List.filter (fun i -> decs.(i - 1) = None) (E.nonfailed y))
        in
        List.fold_left (fun acc y -> max acc (undecided y)) 0 (succ last)
    | _ -> -1
  in
  [
    Report.check ~id:"E7" ~claim:"protocol verified" ~params
      ~expected:"agreement+validity+decision vs all crash adversaries"
      ~measured:(Format.asprintf "%a" Consensus_check.pp_result verified)
      (verified.agreement_ok && verified.validity_ok && verified.termination_ok);
    Report.check ~id:"E7" ~claim:"Lemma 6.1" ~params
      ~expected:(Printf.sprintf "bivalent chain through round %d, <=m failed at x^m" (t - 1))
      ~measured:
        (Printf.sprintf "chain length %d%s" (List.length chain.Layering.states)
           (if failures_bounded then "" else ", failure bound violated"))
      (chain.Layering.complete && failures_bounded);
    Report.check ~id:"E7" ~claim:"Lemma 6.2 / Cor 6.3" ~params
      ~expected:
        (Printf.sprintf "a round-%d successor with a non-failed undecided process" t)
      ~measured:
        (if undecided_at_t < 0 then "no bivalent round-(t-1) state"
         else Printf.sprintf "up to %d undecided" undecided_at_t)
      (undecided_at_t >= 1);
    Report.check ~id:"E7" ~claim:"Cor 6.3 (tight)" ~params
      ~expected:(Printf.sprintf "worst-case decision round = %d" decision_round)
      ~measured:(Printf.sprintf "measured %d" verified.worst_decision_round)
      (verified.worst_decision_round = decision_round);
    Report.check ~id:"E7" ~claim:"uniform agreement" ~params
      ~expected:
        (if uniform then "uniform (echo round pays for it)"
         else "non-uniform (classical for t+1-round protocols)")
      ~measured:(Printf.sprintf "uniform=%b" verified.uniform_agreement_ok)
      (Bool.equal verified.uniform_agreement_ok uniform);
  ]

let run () =
  let floodset ~t = Layered_protocols.Sync_floodset.make ~t in
  let eig ~t = Layered_protocols.Sync_eig.make ~t in
  let early ~t = Layered_protocols.Sync_early.make ~t in
  let clean ~t = Layered_protocols.Sync_clean.make ~t in
  let uniform ~t = Layered_protocols.Sync_uniform.make ~t in
  run_one ~pname:"floodset" ~protocol:(floodset ~t:1) ~n:3 ~t:1 ~max_new:2 ()
  @ run_one ~pname:"floodset" ~protocol:(floodset ~t:1) ~n:4 ~t:1 ~max_new:2 ()
  @ run_one ~pname:"floodset" ~protocol:(floodset ~t:2) ~n:4 ~t:2 ~max_new:2 ()
  @ run_one ~pname:"floodset" ~protocol:(floodset ~t:2) ~n:5 ~t:2 ~max_new:2 ()
  @ run_one ~pname:"eig" ~protocol:(eig ~t:1) ~n:3 ~t:1 ~max_new:2 ()
  @ run_one ~pname:"early" ~protocol:(early ~t:1) ~n:3 ~t:1 ~max_new:2 ()
  @ run_one ~pname:"early" ~protocol:(early ~t:2) ~n:4 ~t:2 ~max_new:2 ()
  @ run_one ~pname:"clean" ~protocol:(clean ~t:1) ~n:3 ~t:1 ~max_new:2 ()
  @ run_one ~pname:"clean" ~protocol:(clean ~t:2) ~n:4 ~t:2 ~max_new:2 ()
  @ run_one ~pname:"uniform" ~protocol:(uniform ~t:1) ~n:3 ~t:1 ~max_new:2
      ~decision_round:3 ~uniform:true ()
  @ run_one ~pname:"uniform" ~protocol:(uniform ~t:2) ~n:4 ~t:2 ~max_new:2
      ~decision_round:4 ~uniform:true ()
