open Layered_core

let values = [ Value.zero; Value.one ]

let mobile ~n ~horizon ~length =
  let module P = (val Layered_protocols.Full_info.sync ~horizon) in
  let module E = Layered_sync.Engine.Make (P) in
  let succ = E.s1 ~record_failures:false in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let depth = horizon + 1 in
  let vals x = Valence.vals valence ~depth x in
  let classify x = Valence.classify valence ~depth x in
  let initials = E.initial_states ~n ~values in
  let layers_ok =
    List.for_all (fun x -> Connectivity.valence_connected ~vals (succ x)) initials
  in
  let chain =
    match Layering.find_bivalent ~classify initials with
    | None -> Layering.{ states = []; complete = false; stuck = None }
    | Some x0 -> Layering.bivalent_chain ~classify ~succ ~length x0
  in
  let params = Printf.sprintf "full-info mobile n=%d h=%d" n horizon in
  [
    Report.check ~id:"E14" ~claim:"Lemma 5.1(iii)" ~params
      ~expected:"layers valence connected under full information"
      ~measured:(Printf.sprintf "checked %d layers" (List.length initials))
      layers_ok;
    Report.check ~id:"E14" ~claim:"Cor 5.2" ~params
      ~expected:(Printf.sprintf "bivalent chain of length %d" length)
      ~measured:(Printf.sprintf "length %d" (List.length chain.Layering.states))
      chain.Layering.complete;
  ]

let shared_memory ~n ~horizon =
  let module P = (val Layered_protocols.Full_info.shared_memory ~horizon) in
  let module E = Layered_async_sm.Engine.Make (P) in
  let open Layered_async_sm.Engine in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.srw) in
  let depth = horizon + 1 in
  let vals x = Valence.vals valence ~depth x in
  let initials = E.initial_states ~n ~values in
  let bridge_ok =
    List.for_all
      (fun x ->
        List.for_all
          (fun j ->
            let y =
              E.apply (E.apply x { slow = j; mode = Read_late n }) { slow = j; mode = Absent }
            in
            let y' =
              E.apply (E.apply x { slow = j; mode = Absent }) { slow = j; mode = Read_late 0 }
            in
            E.agree_modulo y y' j)
          (Pid.all n))
      initials
  in
  let layers_ok =
    List.for_all (fun x -> Connectivity.valence_connected ~vals (E.srw x)) initials
  in
  let params = Printf.sprintf "full-info sm n=%d h=%d" n horizon in
  [
    Report.check ~id:"E14" ~claim:"Lemma 5.3 bridge" ~params
      ~expected:"x(j,n)(j,A) = x(j,A)(j,0) modulo j under full information"
      ~measured:(Printf.sprintf "checked %d states" (List.length initials))
      bridge_ok;
    Report.check ~id:"E14" ~claim:"Lemma 5.3 (iii)" ~params
      ~expected:"S^rw layers valence connected"
      ~measured:(Printf.sprintf "checked %d layers" (List.length initials))
      layers_ok;
  ]

let message_passing ~n ~horizon =
  let module P = (val Layered_protocols.Full_info.message_passing ~horizon) in
  let module E = Layered_async_mp.Engine.Make (P) in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.sper) in
  let depth = horizon + 1 in
  let vals x = Valence.vals valence ~depth x in
  let initials = E.initial_states ~n ~values in
  let solo p = List.map (fun i -> Layered_async_mp.Engine.Solo i) p in
  let diamond_ok =
    List.for_all
      (fun x ->
        List.for_all
          (fun p ->
            let front = List.filteri (fun i _ -> i < n - 1) p in
            let last = List.nth p (n - 1) in
            let lhs = E.apply (E.apply x (solo p)) (solo front) in
            let rhs = E.apply (E.apply x (solo front)) (solo (last :: front)) in
            E.equal lhs rhs)
          (Layered_async_mp.Engine.permutations (Pid.all n)))
      initials
  in
  let layers_ok =
    List.for_all (fun x -> Connectivity.valence_connected ~vals (E.sper x)) initials
  in
  let params = Printf.sprintf "full-info mp n=%d h=%d" n horizon in
  [
    Report.check ~id:"E14" ~claim:"FLP diamond" ~params
      ~expected:"diamond equality under full information"
      ~measured:(Printf.sprintf "checked %d states" (List.length initials))
      diamond_ok;
    Report.check ~id:"E14" ~claim:"layer valence" ~params
      ~expected:"S^per layers valence connected"
      ~measured:(Printf.sprintf "checked %d layers" (List.length initials))
      layers_ok;
  ]

let iis ~n ~horizon =
  let module P = (val Layered_protocols.Full_info.iis ~horizon) in
  let module E = Layered_iis.Engine.Make (P) in
  let initials = E.initial_states ~n ~values in
  let similarity_ok =
    List.for_all (fun x -> Connectivity.connected_via ~graph:E.similarity_graph (E.layer x)) initials
  in
  let params = Printf.sprintf "full-info iis n=%d h=%d" n horizon in
  [
    Report.check ~id:"E14" ~claim:"IIS layers" ~params
      ~expected:"layers similarity connected under full information"
      ~measured:(Printf.sprintf "checked %d layers" (List.length initials))
      similarity_ok;
  ]

let run () =
  mobile ~n:3 ~horizon:2 ~length:4
  @ shared_memory ~n:3 ~horizon:2
  @ message_passing ~n:3 ~horizon:2
  @ iis ~n:3 ~horizon:2
