open Layered_core

let run_one ?(check_clean = true) ~pname ~protocol ~n ~horizon ~length () =
  let module P = (val (protocol : (module Layered_sync.Protocol.S))) in
  let module E = Layered_sync.Engine.Make (P) in
  let succ = E.s1 ~record_failures:false in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let depth = horizon + 1 in
  let classify x = Valence.classify valence ~depth x in
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  let params = Printf.sprintf "%s n=%d horizon=%d L=%d" pname n horizon length in
  match Layering.find_bivalent ~classify initials with
  | None ->
      [
        Report.check ~id:"E4" ~claim:"Cor 5.2" ~params
          ~expected:"bivalent initial state" ~measured:"none found" false;
      ]
  | Some x0 ->
      let chain = Layering.bivalent_chain ~classify ~succ ~length x0 in
      let first_violation =
        List.find_map
          (fun x ->
            if Vset.cardinal (E.decided_vset x) >= 2 then Some x.E.round else None)
          chain.states
      in
      let pre_violation_clean =
        List.for_all
          (fun x ->
            (match first_violation with Some r -> x.E.round >= r | None -> false)
            || Vset.is_empty (E.decided_vset x))
          chain.states
      in
      [
        Report.check ~id:"E4" ~claim:"Cor 5.2" ~params
          ~expected:(Printf.sprintf "bivalent chain of length %d" length)
          ~measured:
            (Printf.sprintf "length %d%s" (List.length chain.states)
               (if chain.complete then "" else " (stuck)"))
          chain.complete;
        Report.check ~id:"E4" ~claim:"Cor 5.2 (agreement)" ~params
          ~expected:
            (Printf.sprintf "agreement violated once decisions are forced (round >= %d)"
               horizon)
          ~measured:
            (match first_violation with
            | Some r -> Printf.sprintf "first violation at round %d" r
            | None -> "no violation (chain too short?)")
          (match first_violation with Some r -> r >= horizon | None -> false);
      ]
      @
      if check_clean then
        [
          Report.check ~id:"E4" ~claim:"Lemma 3.2" ~params
            ~expected:"no decided process at bivalent states before the violation"
            ~measured:(Printf.sprintf "checked %d chain states" (List.length chain.states))
            pre_violation_clean;
        ]
      else []

let run () =
  run_one ~pname:"floodset"
    ~protocol:(Layered_protocols.Sync_floodset.make ~t:1)
    ~n:3 ~horizon:2 ~length:8 ()
  @ run_one ~pname:"floodset"
      ~protocol:(Layered_protocols.Sync_floodset.make ~t:2)
      ~n:3 ~horizon:3 ~length:8 ()
  (* The early-deciding protocol legitimately has pre-deadline deciders at
     bivalent states (it has already given up Agreement there), so the
     Lemma 3.2 shadow check applies only to FloodSet. *)
  @ run_one ~check_clean:false ~pname:"early"
      ~protocol:(Layered_protocols.Sync_early.make ~t:1)
      ~n:4 ~horizon:2 ~length:6 ()
