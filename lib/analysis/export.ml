open Layered_core
open Layered_topology

let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let dot_of_rel ~name ~label ~rel states =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n  node [shape=box];\n" (escape name));
  let arr = Array.of_list states in
  Array.iteri
    (fun i x ->
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" i (escape (label x))))
    arr;
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y -> if i < j && rel x y then
            Buffer.add_string buf (Printf.sprintf "  n%d -- n%d;\n" i j))
        arr)
    arr;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let con0_similarity ~n ~t =
  let module P = (val Layered_protocols.Sync_floodset.make ~t) in
  let module E = Layered_sync.Engine.Make (P) in
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  (* Reconstruct the input bits from the enumeration order. *)
  let label_of idx =
    String.init n (fun i -> if (idx lsr (n - 1 - i)) land 1 = 1 then '1' else '0')
  in
  let labelled = List.mapi (fun i x -> (label_of i, x)) initials in
  dot_of_rel
    ~name:(Printf.sprintf "Con0 similarity, n=%d" n)
    ~label:fst
    ~rel:(fun (_, x) (_, y) -> E.similar x y)
    labelled

let st_layer ~n ~t =
  let module P = (val Layered_protocols.Sync_floodset.make ~t) in
  let module E = Layered_sync.Engine.Make (P) in
  let succ = E.st ~t in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let classify x = Valence.classify valence ~depth:(t + 2) x in
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  let x0 =
    match Layering.find_bivalent ~classify initials with
    | Some x -> x
    | None -> List.hd initials
  in
  let label x =
    Format.asprintf "%a / %d failed" Valence.pp_verdict (classify x) (E.failed_count x)
  in
  dot_of_rel
    ~name:(Printf.sprintf "S^t layer at a bivalent initial state, n=%d t=%d" n t)
    ~label ~rel:E.similar (succ x0)

let task_of_name ~n = function
  | "consensus" -> Task.consensus ~n ~values:[ Value.zero; Value.one ]
  | "election" -> Task.election ~n
  | "weak-consensus" -> Task.weak_consensus ~n
  | "identity" -> Task.identity ~n ~values:[ Value.zero; Value.one ]
  | "kset2" -> Task.k_set_agreement ~n ~k:2 ~values:[ 0; 1; 2 ]
  | other -> invalid_arg (Printf.sprintf "Export: unknown task %S" other)

let task_thickness ~name ~n =
  let task = task_of_name ~n name in
  let c = Task.c_delta task (Task.input_assignments task) in
  let simplexes = Complex.simplexes_of_size c n in
  dot_of_rel
    ~name:(Printf.sprintf "1-thickness of C_Delta(I), %s n=%d" task.Task.name n)
    ~label:(Format.asprintf "%a" Simplex.pp)
    ~rel:(fun a b -> Simplex.size (Simplex.inter a b) >= n - 1)
    simplexes
