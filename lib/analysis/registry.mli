(** Registry of experiments: id, one-line description, and driver. *)

type experiment = {
  id : string;
  title : string;
  run : unit -> Layered_core.Report.row list;
}

val all : experiment list
val find : string -> experiment option

(** [run_all ?pool experiments] runs each experiment and pairs it with
    its report rows, preserving list order.  With a [pool] of more than
    one job the experiments execute in parallel across the pool's
    domains (each driver builds its own engines and caches, so they are
    mutually independent); results are stitched back deterministically,
    so output is identical to the serial run. *)
val run_all :
  ?pool:Layered_runtime.Pool.t ->
  experiment list ->
  (experiment * Layered_core.Report.row list) list
