(** Registry of experiments: id, one-line description, and driver. *)

type experiment = {
  id : string;
  title : string;
  run : unit -> Layered_core.Report.row list;
}

val all : experiment list
val find : string -> experiment option

(** [run_all ?pool ?budget experiments] runs each experiment and pairs
    it with its report rows, preserving list order.  With a [pool] of
    more than one job the experiments execute in parallel across the
    pool's domains (each driver builds its own engines and caches, so
    they are mutually independent); results are stitched back
    deterministically, so output is identical to the serial run.

    A raising experiment is retried once, serially: if the retry
    succeeds its rows are kept and an [Info] row notes the recovery; if
    it raises again the experiment contributes a single [Fail] row
    carrying both exception texts.  An exception out of the parallel map
    itself (pool infrastructure failing, e.g. a crashed worker) triggers
    a full serial rerun, noted by an [Info] row on the first experiment —
    the report survives any single fault.  With a [budget], experiments
    starting after it has tripped contribute an [Info] "skipped" row;
    the budget is deliberately {e not} passed to the parallel map, so
    already-running experiments finish and every experiment gets a
    row. *)
val run_all :
  ?pool:Layered_runtime.Pool.t ->
  ?budget:Layered_runtime.Budget.t ->
  experiment list ->
  (experiment * Layered_core.Report.row list) list
