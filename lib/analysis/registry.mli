(** Registry of experiments: id, one-line description, and driver. *)

type experiment = {
  id : string;
  title : string;
  run : unit -> Layered_core.Report.row list;
}

val all : experiment list
val find : string -> experiment option

(** Per-experiment durable checkpointing: each experiment that completes
    cleanly has its rows snapshotted into [dir] under
    {!checkpoint_name}; with [resume], experiments whose snapshot loads
    intact are not re-run.  Only clean first-attempt rows are
    snapshotted (not budget skips, failures or recovered retries), so a
    resumed report is byte-identical to an uninterrupted one. *)
type checkpoint = { dir : string; resume : bool }

(** The snapshot base name used for an experiment ([exp-<id>]). *)
val checkpoint_name : experiment -> string

(** [run_all ?pool ?budget ?checkpoint experiments] runs each experiment
    and pairs it with its report rows, preserving list order.  With a
    [pool] of more than one job the experiments execute in parallel
    across the pool's domains (each driver builds its own engines and
    caches, so they are mutually independent); results are stitched back
    deterministically, so output is identical to the serial run.

    A raising experiment is retried once {e on the caller domain,
    outside the pool} — a poisoned or crashed worker cannot fail it a
    second time.  If the retry succeeds its rows are kept and an [Info]
    row notes the recovery; if it raises again the experiment
    contributes a single [Fail] row carrying both exception texts.
    Either way the failed attempt's counter delta is rolled back, so the
    final {!Layered_runtime.Stats} snapshot reflects the run that
    produced the reported rows.  An exception out of the parallel map
    itself (pool infrastructure failing, e.g. a crashed worker) triggers
    a full serial rerun — with the aborted map's counter contribution
    rolled back — noted by an [Info] row on the first experiment; the
    report survives any single fault.  With a [budget], experiments
    starting after it has tripped contribute an [Info] "skipped" row;
    the budget is deliberately {e not} passed to the parallel map, so
    already-running experiments finish and every experiment gets a
    row. *)
val run_all :
  ?pool:Layered_runtime.Pool.t ->
  ?budget:Layered_runtime.Budget.t ->
  ?checkpoint:checkpoint ->
  experiment list ->
  (experiment * Layered_core.Report.row list) list
