(** The classify-valence entry point: one call answering "what is the
    valence of every initial state of substrate [model] at (n, t,
    depth)?" — the query the paper's layered analysis keeps re-asking
    and the serve daemon amortises across requests.

    Each invocation classifies the full set of binary initial states of
    the chosen substrate with the {!Layered_core.Valence} engine.  With
    a {!cache}, the engine (and therefore its valence memo table) is
    shared across calls that agree on (model, n, t): a warm repeat of
    the same query is answered almost entirely from the memo — the
    cross-request cache the serve daemon keeps, with hit/miss counters
    in {!Layered_runtime.Stats}.  Verdicts are identical warm or cold;
    only the cost differs (see the [serve/warm-valence] vs
    [serve/cold-valence] bench kernels). *)

type t = {
  model : string;
  n : int;
  t : int;
  depth : int;
  verdicts : (string * Layered_core.Valence.verdict) list;
      (** canonical initial-state key, in the engine's generation order *)
}

(** Available model names: exactly {!Sweep.models}. *)
val models : string list

(** A cross-call classifier cache keyed by (model, n, t).  Thread-safe:
    the table is mutex-guarded and every classifier serialises its own
    engine (memo probes, spill export, budget scoping) under a
    per-classifier lock, so the serve dispatcher can run requests
    against a shared cache from concurrent pool workers.  Distinct
    (model, n, t) classifiers proceed in parallel; identical ones
    serialise — the dispatcher's single-flight layer coalesces those
    before they ever contend. *)
type cache

(** [create_cache ?spill ()] — with [spill], classifiers shadow their
    valence memo under stable canonical keys so the whole cache can be
    {!export_spill}ed across a process restart (the serve daemon's
    warm-cache durability).  Costs one key render per computed state;
    warm probes are unaffected. *)
val create_cache : ?spill:bool -> unit -> cache

(** Number of distinct (model, n, t) classifiers the cache holds. *)
val cache_entries : cache -> int

(** [run ?budget ?cache ~model ~n ~t ~depth ()] classifies every binary
    initial state of [model].  [t] is the resilience for
    ["sync"]/["mobile"] and the decision horizon elsewhere (as in
    {!Sweep.run}).  With [budget], the walk consults it for the duration
    of this call only (the per-request fault domain): a tripped budget
    degrades verdicts to [Unknown] and caches nothing, so a cancelled
    request leaves the shared memo untouched.  Raises [Invalid_argument]
    on an unknown model name or a negative depth. *)
val run :
  ?budget:Layered_runtime.Budget.t ->
  ?cache:cache -> model:string -> n:int -> t:int -> depth:int -> unit -> t

(** {1 Spill}

    A [Marshal]-safe image of every classifier's valence memo, keyed by
    (model, n, t) and sorted, so spilled bytes are identical across
    jobs counts.  [export_spill] is empty for a cache created without
    [~spill:true]; [import_spill] lazily rehydrates — entries are
    promoted into the live memo on first probe, so importing is cheap
    and verdicts stay identical to a cold computation. *)

type spill =
  ((string * int * int)
  * (string * (int * Layered_core.Valence.outcome)) list)
  list

val export_spill : cache -> spill
val import_spill : cache -> spill -> unit

(** Total memo entries across the spill, for logs and counters. *)
val spill_entries : spill -> int

(** Counts of (bivalent, univalent, unknown) verdicts. *)
val tally : t -> int * int * int

val pp : Format.formatter -> t -> unit
