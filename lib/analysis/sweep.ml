open Layered_core

type level = { depth : int; reachable : int; layer_min : int; layer_max : int }
type t = { model : string; n : int; levels : level list }

let models = [ "mobile"; "sync"; "sm"; "mp"; "smp"; "iis" ]

(* A mixed input vector: process 1 gets 0, the rest 1. *)
let mixed_inputs n = Array.init n (fun i -> if i = 0 then Value.zero else Value.one)

(* A single level-synchronous BFS yields every per-depth figure at once:
   the boundary at depth d is exactly level d, and the reachable count at
   depth d is the cumulative level size.  (The seed recomputed a full
   [Explore.reachable] per depth — O(depth) redundant sweeps.) *)
let sweep_generic (type a) ~pool ~(succ : a -> a list) ~(key : a -> string) ~(x0 : a)
    ~depth =
  let levels = Layered_runtime.Frontier.levels pool ~succ ~key ~depth x0 in
  let level d = match List.nth_opt levels d with Some l -> l | None -> [] in
  let reachable = ref 0 in
  List.map
    (fun d ->
      let boundary = level d in
      reachable := !reachable + List.length boundary;
      let sizes =
        Layered_runtime.Pool.parallel_map pool (fun x -> List.length (succ x)) boundary
      in
      let layer_min = List.fold_left min max_int sizes in
      let layer_max = List.fold_left max 0 sizes in
      {
        depth = d;
        reachable = !reachable;
        layer_min = (if sizes = [] then 0 else layer_min);
        layer_max;
      })
    (List.init (depth + 1) Fun.id)

(* Serial pool for call sites that don't thread one through; spawns no
   domains. *)
let serial_pool = lazy (Layered_runtime.Pool.create ~jobs:1 ())

let run ?pool ~model ~n ~t ~depth () =
  let pool = match pool with Some p -> p | None -> Lazy.force serial_pool in
  let sweep_generic ~succ ~key ~x0 ~depth = sweep_generic ~pool ~succ ~key ~x0 ~depth in
  let levels =
    match model with
    | "mobile" ->
        let module P = (val Layered_protocols.Sync_floodset.make ~t) in
        let module E = Layered_sync.Engine.Make (P) in
        sweep_generic ~succ:(E.s1 ~record_failures:false) ~key:E.key
          ~x0:(E.initial ~inputs:(mixed_inputs n)) ~depth
    | "sync" ->
        let module P = (val Layered_protocols.Sync_floodset.make ~t) in
        let module E = Layered_sync.Engine.Make (P) in
        sweep_generic ~succ:(E.st ~t) ~key:E.key
          ~x0:(E.initial ~inputs:(mixed_inputs n)) ~depth
    | "sm" ->
        let module P = (val Layered_protocols.Sm_voting.make ~horizon:(t + 1)) in
        let module E = Layered_async_sm.Engine.Make (P) in
        sweep_generic ~succ:E.srw ~key:E.key ~x0:(E.initial ~inputs:(mixed_inputs n))
          ~depth
    | "mp" ->
        let module P = (val Layered_protocols.Mp_floodset.make ~horizon:(t + 1)) in
        let module E = Layered_async_mp.Engine.Make (P) in
        sweep_generic ~succ:E.sper ~key:E.key ~x0:(E.initial ~inputs:(mixed_inputs n))
          ~depth
    | "smp" ->
        let module P = (val Layered_protocols.Sync_floodset.make ~t) in
        let module E = Layered_async_mp.Synchronic.Make (P) in
        sweep_generic ~succ:E.smp ~key:E.key ~x0:(E.initial ~inputs:(mixed_inputs n))
          ~depth
    | "iis" ->
        let module P = (val Layered_protocols.Iis_voting.make ~horizon:(t + 1)) in
        let module E = Layered_iis.Engine.Make (P) in
        sweep_generic ~succ:E.layer ~key:E.key ~x0:(E.initial ~inputs:(mixed_inputs n))
          ~depth
    | other -> invalid_arg (Printf.sprintf "Sweep.run: unknown model %S" other)
  in
  { model; n; levels }

let pp ppf t =
  Format.fprintf ppf "model=%s n=%d@." t.model t.n;
  Format.fprintf ppf "%8s  %10s  %10s  %10s@." "depth" "reachable" "layer-min" "layer-max";
  List.iter
    (fun l ->
      Format.fprintf ppf "%8d  %10d  %10d  %10d@." l.depth l.reachable l.layer_min
        l.layer_max)
    t.levels
