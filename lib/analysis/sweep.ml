open Layered_core

module Budget = Layered_runtime.Budget
module Ckpt = Layered_runtime.Checkpoint
module Stats = Layered_runtime.Stats
module Frontier = Layered_runtime.Frontier

type level = { depth : int; reachable : int; layer_min : int; layer_max : int }
type t = { model : string; n : int; levels : level list; status : Budget.status }
type checkpoint = { dir : string; every : int; resume : bool }

let models = [ "mobile"; "sync"; "sm"; "mp"; "smp"; "iis" ]

let checkpoint_name ~model ~n ~t ~depth =
  Printf.sprintf "sweep-%s-n%d-t%d-d%d" model n t depth

(* A mixed input vector: process 1 gets 0, the rest 1. *)
let mixed_inputs n = Array.init n (fun i -> if i = 0 then Value.zero else Value.one)

(* A single level-synchronous BFS yields every per-depth figure at once:
   the boundary at depth d is exactly level d, and the reachable count at
   depth d is the cumulative level size.  (The seed recomputed a full
   [Explore.reachable] per depth — O(depth) redundant sweeps.) *)
(* Per-level layer-size statistics are accumulated while the BFS itself
   expands each level (an instrumented [succ]), not by a second sweep
   over the states: a truncated run therefore never re-pays for work the
   budget already cut off.  Min/max are order-independent, so the
   accumulation is deterministic across job counts. *)
(* Under [?canon] (symmetry reduction) the BFS explores one state per
   orbit, so the raw level lists shrink — but every reported figure is
   recovered exactly: [?size] sums orbit weights (|orbit| per
   representative) instead of counting states, and layer min/max are
   unchanged because |succ| is constant on orbits (the renaming action
   is a bijection commuting with [succ]).  [~symmetry] is stamped into
   checkpoint meta; resuming across a different setting raises
   {!Ckpt.Symmetry_mismatch} — the committed keys of one discipline are
   meaningless to the other. *)
let sweep_generic (type a) ~pool ?budget ?ckpt ?spill ~name ?canon
    ?(size = List.length) ?(symmetry = false)
    ~(succ : a -> a list) ~(key : a -> string) ~(x0 : a) ~depth () =
  let cur_min = Atomic.make max_int and cur_max = Atomic.make 0 in
  let rec fold_atomic better a v =
    let c = Atomic.get a in
    if better v c && not (Atomic.compare_and_set a c v) then fold_atomic better a v
  in
  let succ_counted x =
    let l = succ x in
    let n = List.length l in
    fold_atomic ( < ) cur_min n;
    fold_atomic ( > ) cur_max n;
    l
  in
  let harvest () =
    let mn = Atomic.get cur_min and mx = Atomic.get cur_max in
    Atomic.set cur_min max_int;
    Atomic.set cur_max 0;
    ((if mn = max_int then 0 else mn), mx)
  in
  (* [f] sees level d+1 only after level d was fully expanded, so the
     accumulator harvested at that point holds level d's stats. *)
  let sizes = ref [] and stats = ref [] and last_level = ref [] in
  let f level =
    if !sizes <> [] then stats := harvest () :: !stats;
    sizes := size level :: !sizes;
    last_level := level
  in
  (* The snapshot payload carries the frontier's own resume state plus
     this sweep's harvested per-level stats (oldest first), so a resumed
     run reports the same rows without re-expanding the prefix. *)
  let resume : a Frontier.snapshot option =
    match ckpt with
    | Some { dir; resume = true; _ } -> (
        match Ckpt.load_latest ~dir ~name with
        | None -> None
        | Some loaded -> (
            if loaded.Ckpt.meta.Ckpt.symmetry <> symmetry then
              raise
                (Ckpt.Symmetry_mismatch
                   { saved = loaded.Ckpt.meta.Ckpt.symmetry; requested = symmetry });
            if loaded.Ckpt.rejected > 0 then
              Printf.eprintf
                "warning: %s: rolled back past %d corrupt checkpoint \
                 generation%s\n\
                 %!"
                name loaded.Ckpt.rejected
                (if loaded.Ckpt.rejected = 1 then "" else "s");
            match
              (Marshal.from_string loaded.Ckpt.payload 0
                : a Frontier.snapshot * (int * int) list)
            with
            | exception _ -> None
            | snap, harvested ->
                sizes := List.rev_map size snap.Frontier.levels;
                stats := List.rev harvested;
                (match List.rev snap.Frontier.levels with
                | last :: _ -> last_level := last
                | [] -> ());
                (* Re-impose the interrupted run's consumption: caps trip
                   at the same boundary, and a resume cannot buy wall
                   time the original run had already spent.  The prefix's
                   counters merge in exactly (the restart level's
                   expansion was not yet counted at save time). *)
                (match budget with
                | Some b ->
                    Budget.charge b loaded.Ckpt.meta.Ckpt.states_charged;
                    Option.iter
                      (fun remaining_s ->
                        Budget.restrict_deadline b ~remaining_s)
                      loaded.Ckpt.meta.Ckpt.deadline_remaining_s
                | None -> ());
                Stats.merge loaded.Ckpt.meta.Ckpt.stats;
                Some snap))
    | _ -> None
  in
  let checkpoint =
    Option.map
      (fun { dir; every; _ } ->
        {
          Frontier.every;
          save =
            (fun (snap : a Frontier.snapshot) ->
              let payload = Marshal.to_string (snap, List.rev !stats) [] in
              ignore
                (Ckpt.save ~dir ~name
                   ~meta:
                     (Ckpt.make_meta ?budget ~symmetry
                        ~progress:(List.length snap.Frontier.levels)
                        ())
                   ~payload));
        })
      ckpt
  in
  (* The post-resume seed values double as the restart baseline: a lost
     spill segment makes the frontier rerun in-core from the resume
     point, re-delivering every level, so the accumulators must rewind
     to exactly what the resume block left them at. *)
  let seed_sizes = !sizes and seed_stats = !stats and seed_last = !last_level in
  let on_restart () =
    sizes := seed_sizes;
    stats := seed_stats;
    last_level := seed_last;
    Atomic.set cur_min max_int;
    Atomic.set cur_max 0
  in
  let status =
    Frontier.iter_levels ?budget ?checkpoint ?resume ?spill ~on_restart ?canon
      pool ~succ:succ_counted ~key ~depth ~f x0
  in
  let sizes = Array.of_list (List.rev !sizes) in
  let harvested = Array.of_list (List.rev !stats) in
  let delivered = Array.length sizes in
  (* Stats for the deepest delivered level: a died-out BFS expanded it
     (the accumulator holds its counts); a depth-capped one never did, so
     compute them directly — the one place a successor is recomputed, and
     only on a complete sweep. *)
  let final_stats =
    match status with
    | Budget.Truncated _ -> (0, 0)
    | Budget.Complete when delivered < depth + 1 -> harvest ()
    | Budget.Complete ->
        let counts =
          Layered_runtime.Pool.parallel_map pool
            (fun x -> List.length (succ x))
            !last_level
        in
        ( List.fold_left min max_int counts |> (fun m -> if counts = [] then 0 else m),
          List.fold_left max 0 counts )
  in
  (* A complete sweep reports one row per requested depth (trailing empty
     levels included, exactly as before budgets existed); a truncated one
     reports only the levels whose expansion completed in-budget. *)
  let rows_n =
    match status with
    | Budget.Complete -> depth + 1
    | Budget.Truncated { Budget.at_depth; _ } -> min at_depth (max 0 (delivered - 1))
  in
  let reachable = ref 0 in
  let rows =
    List.map
      (fun d ->
        let size = if d < delivered then sizes.(d) else 0 in
        reachable := !reachable + size;
        let layer_min, layer_max =
          if d < Array.length harvested then harvested.(d)
          else if d = delivered - 1 then final_stats
          else (0, 0)
        in
        { depth = d; reachable = !reachable; layer_min; layer_max })
      (List.init rows_n Fun.id)
  in
  (rows, status)

(* Serial pool for call sites that don't thread one through; spawns no
   domains. *)
let serial_pool = lazy (Layered_runtime.Pool.create ~jobs:1 ())

let run ?pool ?budget ?checkpoint ?spill ~model ~n ~t ~depth () =
  let pool = match pool with Some p -> p | None -> Lazy.force serial_pool in
  let name = checkpoint_name ~model ~n ~t ~depth in
  let sweep_generic ?canon ?size ?symmetry ~succ ~key ~x0 ~depth () =
    sweep_generic ~pool ?budget ?ckpt:checkpoint ?spill ~name ?canon ?size
      ?symmetry ~succ ~key ~x0 ~depth ()
  in
  (* Symmetry reduction is sound exactly where (a) the interning parts
     are pid-free AND (b) the action set is closed under role-respecting
     process renamings, so that the raw reachable set is a disjoint
     union of full orbits.  Only the IIS substrate satisfies both: its
     actions are ALL ordered partitions of {1..n} (a renaming-closed
     set) and its voting locals fold snapshot values only.  The sync
     layerings parametrise omissions by receiver {e prefixes} {1..k} —
     an asymmetric subset of the renaming closure — so their reachable
     sets contain {e partial} orbits (e.g. "only receiver 2 missed v" is
     reachable where "only receiver 3 missed v" is not) and orbit
     weights would overcount; the mailbox/shared-memory/transit models
     embed pids in their parts, where the part permutation is not even
     the renaming action.  [--symmetry] is a documented no-op for all of
     them (see Canon's docs and DESIGN §6). *)
  let sym_for_model = Canon.enabled () && model = "iis" in
  let orbit_canon (type s) ~(ident : s -> int)
      ~(canon : roles:int array -> s -> Intern.canon) ~inputs =
    if not sym_for_model then (None, None, false)
    else begin
      let roles = Canon.roles_of ~eq:Value.equal inputs in
      let ckey x =
        let c = canon ~roles x in
        if c.Intern.cmeta.Intern.id <> ident x then Stats.add_orbit_hits 1;
        c.Intern.cmeta.Intern.key
      in
      let level_weight level =
        List.fold_left (fun a x -> a + (canon ~roles x).Intern.weight) 0 level
      in
      (Some ckey, Some level_weight, true)
    end
  in
  let levels, status =
    match model with
    | "mobile" ->
        let module P = (val Layered_protocols.Sync_floodset.make ~t) in
        let module E = Layered_sync.Engine.Make (P) in
        sweep_generic ~succ:(E.s1 ~record_failures:false) ~key:E.key
          ~x0:(E.initial ~inputs:(mixed_inputs n)) ~depth ()
    | "sync" ->
        let module P = (val Layered_protocols.Sync_floodset.make ~t) in
        let module E = Layered_sync.Engine.Make (P) in
        sweep_generic ~succ:(E.st ~t) ~key:E.key
          ~x0:(E.initial ~inputs:(mixed_inputs n)) ~depth ()
    | "sm" ->
        let module P = (val Layered_protocols.Sm_voting.make ~horizon:(t + 1)) in
        let module E = Layered_async_sm.Engine.Make (P) in
        sweep_generic ~succ:E.srw ~key:E.key ~x0:(E.initial ~inputs:(mixed_inputs n))
          ~depth ()
    | "mp" ->
        let module P = (val Layered_protocols.Mp_floodset.make ~horizon:(t + 1)) in
        let module E = Layered_async_mp.Engine.Make (P) in
        sweep_generic ~succ:E.sper ~key:E.key ~x0:(E.initial ~inputs:(mixed_inputs n))
          ~depth ()
    | "smp" ->
        let module P = (val Layered_protocols.Sync_floodset.make ~t) in
        let module E = Layered_async_mp.Synchronic.Make (P) in
        sweep_generic ~succ:E.smp ~key:E.key ~x0:(E.initial ~inputs:(mixed_inputs n))
          ~depth ()
    | "iis" ->
        let module P = (val Layered_protocols.Iis_voting.make ~horizon:(t + 1)) in
        let module E = Layered_iis.Engine.Make (P) in
        let inputs = mixed_inputs n in
        let canon, size, symmetry =
          orbit_canon ~ident:E.ident ~canon:E.canon ~inputs
        in
        sweep_generic ?canon ?size ~symmetry ~succ:E.layer ~key:E.key
          ~x0:(E.initial ~inputs) ~depth ()
    | other -> invalid_arg (Printf.sprintf "Sweep.run: unknown model %S" other)
  in
  { model; n; levels; status }

let pp ppf t =
  Format.fprintf ppf "model=%s n=%d@." t.model t.n;
  Format.fprintf ppf "%8s  %10s  %10s  %10s@." "depth" "reachable" "layer-min" "layer-max";
  List.iter
    (fun l ->
      Format.fprintf ppf "%8d  %10d  %10d  %10d@." l.depth l.reachable l.layer_min
        l.layer_max)
    t.levels;
  match t.status with
  | Budget.Complete -> ()
  | Budget.Truncated tr ->
      Format.fprintf ppf "TRUNCATED: %a; rows above are the completed prefix.@."
        Budget.pp_truncation tr
