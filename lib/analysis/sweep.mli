(** State-space shape sweeps: how fast each substrate's layered submodel
    grows, and how big its layers are.  Backs the CLI [layers] command and
    the growth ablation benches. *)

type level = {
  depth : int;
  reachable : int;  (** distinct states reachable within [depth] layers *)
  layer_min : int;  (** smallest layer among depth-boundary states *)
  layer_max : int;  (** largest layer *)
}

type t = {
  model : string;
  n : int;
  levels : level list;
  status : Layered_runtime.Budget.status;
      (** [Complete], or [Truncated] with [levels] the completed prefix *)
}

(** Durable-checkpoint configuration: snapshots go to [dir] every
    [every] completed BFS levels; with [resume] the sweep first loads
    the newest intact generation (if any) and continues from it instead
    of re-expanding the prefix.  A resumed budgeted sweep re-charges the
    snapshot's recorded state count and re-imposes its remaining
    deadline, so budget trips land at the same boundary as an
    uninterrupted run. *)
type checkpoint = { dir : string; every : int; resume : bool }

(** Available model names: ["mobile"], ["sync"] (t-resilient, takes [t]),
    ["sm"], ["mp"], ["smp"] (synchronic message passing), ["iis"]. *)
val models : string list

(** The snapshot base name [run] uses for a given sweep — one checkpoint
    lineage per (model, n, t, depth) so unrelated sweeps sharing a
    directory never cross-resume. *)
val checkpoint_name : model:string -> n:int -> t:int -> depth:int -> string

(** [run ?pool ?budget ~model ~n ~t ~depth ()] sweeps the given substrate
    from one mixed initial state.  [t] is used by ["sync"] (resilience)
    and as the decision horizon elsewhere.  With a [pool] of more than
    one job, each level's frontier is expanded in parallel
    ({!Layered_runtime.Frontier}); results are deterministic and
    independent of the job count.  With a [budget], an infeasible sweep
    stops at the budget and reports the levels whose expansion completed
    (layer statistics are gathered during expansion, so truncation never
    re-pays for cut-off work).  With a [spill] configuration, memory
    pressure walks the out-of-core ladder (compact, spill to validated
    segments, backpressure) before [--max-mem] can trip — output bytes
    are unchanged (see {!Layered_runtime.Frontier}); a lost spill
    segment restarts the sweep in-core with its accumulators rewound to
    the resume point.  Raises [Invalid_argument] on an unknown model
    name. *)
val run :
  ?pool:Layered_runtime.Pool.t ->
  ?budget:Layered_runtime.Budget.t ->
  ?checkpoint:checkpoint ->
  ?spill:Layered_runtime.Frontier.spill ->
  model:string ->
  n:int ->
  t:int ->
  depth:int ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
