open Layered_core
open Layered_topology

let zoo_row ~task ~solvable =
  let cond = Solvability.passes_necessary_condition task in
  let frag = Solvability.forced_fragmentation task in
  let ok = if solvable then cond.Solvability.ok else frag.Solvability.ok in
  Report.check ~id:"E9" ~claim:"Thm 7.2/Cor 7.3"
    ~params:(Printf.sprintf "%s n=%d" task.Task.name task.Task.n)
    ~expected:(if solvable then "passes 1-thick condition" else "forced fragmentation")
    ~measured:
      (Printf.sprintf "condition=%b fragmentation=%b" cond.Solvability.ok
         frag.Solvability.ok)
    ok

let kset_sweep ~n ~values =
  List.map
    (fun k ->
      let task = Task.k_set_agreement ~n ~k ~values in
      let cond = Solvability.passes_necessary_condition task in
      let frag = Solvability.forced_fragmentation task in
      let solvable_expected = k >= 2 in
      Report.check ~id:"E9" ~claim:"k-set crossover"
        ~params:(Printf.sprintf "n=%d k=%d |V|=%d" n k (List.length values))
        ~expected:(if solvable_expected then "solvable (k>=2)" else "unsolvable (k=1)")
        ~measured:
          (Printf.sprintf "condition=%b fragmentation=%b" cond.Solvability.ok
             frag.Solvability.ok)
        (if solvable_expected then cond.Solvability.ok && not frag.Solvability.ok
         else frag.Solvability.ok))
    [ 1; 2; 3 ]

(* Generalized valence (Section 7): with the covering (O0, O1) given by the
   all-zeros / all-ones output complexes, a run's decided output simplex
   lies in O_v exactly when every decided process chose v.  For the
   min-deciding flooding protocol, the all-decided unanimous runs reachable
   from an initial state decide precisely the minimum input, so the
   generalized valence of every initial state must be the singleton
   {min of inputs}, and must refine binary decision valence. *)
let covering_agreement ~n ~horizon =
  let module P = (val Layered_protocols.Mp_floodset.make ~horizon) in
  let module E = Layered_async_mp.Engine.Make (P) in
  let all = Pid.all n in
  let unanimous v = Simplex.of_assoc (List.map (fun p -> (p, v)) all) in
  let cover =
    Covering.of_complexes
      (Complex.of_simplexes [ unanimous Value.zero ])
      (Complex.of_simplexes [ unanimous Value.one ])
  in
  let output x =
    let decs = E.decisions x in
    Simplex.of_assoc
      (List.filter_map
         (fun i -> match decs.(i - 1) with Some v -> Some (i, v) | None -> None)
         all)
  in
  let engine =
    Covering.create
      { Covering.succ = E.sper; key = E.key; terminal = E.terminal; output }
      cover
  in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.sper) in
  let depth = horizon + 1 in
  let ok = ref true and checked = ref 0 in
  let rec vectors acc i =
    if i = n then [ List.rev acc ]
    else
      List.concat_map (fun v -> vectors (v :: acc) (i + 1)) [ Value.zero; Value.one ]
  in
  List.iter
    (fun inputs ->
      incr checked;
      let x0 = E.initial ~inputs:(Array.of_list inputs) in
      let generalized = (Covering.outcome engine ~depth x0).Covering.vals in
      let binary = Valence.vals valence ~depth x0 in
      let expected = Vset.singleton (List.fold_left min (List.hd inputs) inputs) in
      if not (Vset.equal generalized expected) then ok := false;
      if not (Vset.subset generalized binary) then ok := false)
    (vectors [] 0);
  [
    Report.check ~id:"E9" ~claim:"Sec 7 coverings"
      ~params:(Printf.sprintf "mp-floodset n=%d h=%d" n horizon)
      ~expected:"covering valence = {min input}, refines binary valence"
      ~measured:(Printf.sprintf "checked %d initial states" !checked)
      !ok;
  ]

let run () =
  let values3 = [ Value.zero; Value.one; Value.of_int 2 ] in
  [
    zoo_row ~task:(Task.consensus ~n:3 ~values:[ Value.zero; Value.one ]) ~solvable:false;
    zoo_row ~task:(Task.consensus ~n:4 ~values:[ Value.zero; Value.one ]) ~solvable:false;
    zoo_row ~task:(Task.consensus ~n:3 ~values:values3) ~solvable:false;
    zoo_row ~task:(Task.election ~n:3) ~solvable:false;
    zoo_row ~task:(Task.weak_consensus ~n:3) ~solvable:true;
    zoo_row ~task:(Task.identity ~n:3 ~values:[ Value.zero; Value.one ]) ~solvable:true;
    zoo_row ~task:(Task.fixed_value ~n:3) ~solvable:true;
  ]
  @ kset_sweep ~n:3 ~values:values3
  @ kset_sweep ~n:4 ~values:values3
  @ covering_agreement ~n:3 ~horizon:2
