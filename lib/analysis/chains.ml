open Layered_core

type line = { round : int; action : string; decided : string; violation : bool }
type t = { model : string; n : int; horizon : int; complete : bool; lines : line list }

let build (type a) ~model ~n ~horizon ~length ~(initials : a list)
    ~(classify : a -> Valence.verdict) ~(succ_labelled : a -> (string * a) list)
    ~(decided : a -> Vset.t) ~(round : a -> int) =
  match Layering.find_bivalent ~classify initials with
  | None -> { model; n; horizon; complete = false; lines = [] }
  | Some x0 ->
      let chain =
        Layering.bivalent_chain_labelled ~classify ~succ:succ_labelled ~length x0
      in
      let line_of action x =
        let d = decided x in
        {
          round = round x;
          action;
          decided = Format.asprintf "%a" Vset.pp d;
          violation = Vset.cardinal d >= 2;
        }
      in
      {
        model;
        n;
        horizon;
        complete = chain.Layering.complete_l;
        lines =
          line_of "(start)" x0
          :: List.map (fun (a, x) -> line_of a x) chain.Layering.steps;
      }

let run ~model ~n ~t ~length =
  let horizon = t + 1 in
  let values = [ Value.zero; Value.one ] in
  match model with
  | "mobile" ->
      let module P = (val Layered_protocols.Sync_floodset.make ~t) in
      let module E = Layered_sync.Engine.Make (P) in
      let valence =
        Valence.create ~ident:E.ident (E.valence_spec ~succ:(E.s1 ~record_failures:false))
      in
      let succ_labelled x =
        List.map
          (fun a ->
            let label =
              List.filter (fun o -> o.E.blocked <> []) a
              |> Format.asprintf "%a" E.pp_action
            in
            (label, E.apply ~record_failures:false x a))
          (E.s1_actions x)
      in
      build ~model ~n ~horizon ~length
        ~initials:(E.initial_states ~n ~values)
        ~classify:(Valence.classify valence ~depth:(horizon + 1))
        ~succ_labelled ~decided:E.decided_vset
        ~round:(fun x -> x.E.round)
  | "sync" ->
      let module P = (val Layered_protocols.Sync_floodset.make ~t) in
      let module E = Layered_sync.Engine.Make (P) in
      let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ:(E.st ~t)) in
      let succ_labelled x =
        List.map
          (fun a -> (Format.asprintf "%a" E.pp_action a, E.apply ~record_failures:true x a))
          (E.st_actions ~t x)
      in
      (* Bivalence survives only through round t - 1 in this model. *)
      build ~model ~n ~horizon ~length:(min length t)
        ~initials:(E.initial_states ~n ~values)
        ~classify:(Valence.classify valence ~depth:(horizon + 1))
        ~succ_labelled ~decided:E.decided_vset
        ~round:(fun x -> x.E.round)
  | "sm" ->
      let module P = (val Layered_protocols.Sm_voting.make ~horizon) in
      let module E = Layered_async_sm.Engine.Make (P) in
      let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.srw) in
      let succ_labelled x =
        List.map
          (fun a -> (Format.asprintf "%a" Layered_async_sm.Engine.pp_action a, E.apply x a))
          (E.actions ~n)
      in
      build ~model ~n ~horizon ~length
        ~initials:(E.initial_states ~n ~values)
        ~classify:(Valence.classify valence ~depth:(horizon + 1))
        ~succ_labelled ~decided:E.decided_vset
        ~round:(fun x -> x.E.phase)
  | "mp" ->
      let module P = (val Layered_protocols.Mp_floodset.make ~horizon) in
      let module E = Layered_async_mp.Engine.Make (P) in
      let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.sper) in
      let succ_labelled x =
        List.map
          (fun s -> (Format.asprintf "%a" Layered_async_mp.Engine.pp_schedule s, E.apply x s))
          (E.schedules ~n)
      in
      build ~model ~n ~horizon ~length
        ~initials:(E.initial_states ~n ~values)
        ~classify:(Valence.classify valence ~depth:(horizon + 1))
        ~succ_labelled ~decided:E.decided_vset
        ~round:(fun x -> x.E.round)
  | "smp" ->
      let module P = (val Layered_protocols.Sync_floodset.make ~t) in
      let module E = Layered_async_mp.Synchronic.Make (P) in
      let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.smp) in
      let succ_labelled x =
        List.map
          (fun a ->
            (Format.asprintf "%a" Layered_async_mp.Synchronic.pp_action a, E.apply x a))
          (E.actions ~n)
      in
      build ~model ~n ~horizon ~length
        ~initials:(E.initial_states ~n ~values)
        ~classify:(Valence.classify valence ~depth:(horizon + 2))
        ~succ_labelled ~decided:E.decided_vset
        ~round:(fun x -> x.E.round)
  | "iis" ->
      let module P = (val Layered_protocols.Iis_voting.make ~horizon) in
      let module E = Layered_iis.Engine.Make (P) in
      let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ:E.layer) in
      let succ_labelled x =
        List.map
          (fun p -> (Format.asprintf "%a" Layered_iis.Engine.pp_partition p, E.apply x p))
          (Layered_iis.Engine.partitions ~n)
      in
      build ~model ~n ~horizon ~length
        ~initials:(E.initial_states ~n ~values)
        ~classify:(Valence.classify valence ~depth:(horizon + 1))
        ~succ_labelled ~decided:E.decided_vset
        ~round:(fun x -> x.E.round)
  | other -> invalid_arg (Printf.sprintf "Chains.run: unknown model %S" other)

let pp ppf t =
  Format.fprintf ppf "model=%s n=%d (protocol decides by its round %d)@." t.model t.n
    t.horizon;
  if t.lines = [] then Format.fprintf ppf "no bivalent initial state found@."
  else begin
    List.iter
      (fun l ->
        Format.fprintf ppf "round %d: %-14s bivalent  decided=%s%s@." l.round l.action
          l.decided
          (if l.violation then "  <-- AGREEMENT VIOLATED" else ""))
      t.lines;
    if not t.complete then
      Format.fprintf ppf "(chain stopped: no bivalent successor -- expected in the crash model at round t-1)@."
  end
