open Layered_core

let run_one ~pname ~protocol ~n ~t =
  let module P = (val (protocol : (module Layered_sync.Protocol.S))) in
  let module E = Layered_sync.Engine.Make (P) in
  let succ = E.st ~t in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let depth = t + 2 in
  let classify x = Valence.classify valence ~depth x in
  let spec = { Explore.succ; key = E.key } in
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  let ok = ref true and checked = ref 0 in
  List.iter
    (fun x0 ->
      List.iter
        (fun x ->
          if x.E.round <= t then begin
            let y = E.apply ~record_failures:true x [] in
            incr checked;
            match classify y with
            | Valence.Univalent _ -> ()
            | Valence.Bivalent | Valence.Unknown -> ok := false
          end)
        (Explore.reachable spec ~depth:t x0))
    initials;
  [
    Report.check ~id:"E8" ~claim:"Lemma 6.4"
      ~params:(Printf.sprintf "%s n=%d t=%d" pname n t)
      ~expected:"failure-free round after k failures gives a univalent state"
      ~measured:(Printf.sprintf "univalent for all %d states" !checked)
      !ok;
  ]

let run () =
  let floodset ~t = Layered_protocols.Sync_floodset.make ~t in
  let early ~t = Layered_protocols.Sync_early.make ~t in
  run_one ~pname:"floodset" ~protocol:(floodset ~t:1) ~n:3 ~t:1
  @ run_one ~pname:"floodset" ~protocol:(floodset ~t:2) ~n:4 ~t:2
  @ run_one ~pname:"early" ~protocol:(early ~t:1) ~n:3 ~t:1
  @ run_one ~pname:"early" ~protocol:(early ~t:2) ~n:4 ~t:2
