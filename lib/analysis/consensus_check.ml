open Layered_core
module Budget = Layered_runtime.Budget

type result = {
  agreement_ok : bool;
  uniform_agreement_ok : bool;
  validity_ok : bool;
  termination_ok : bool;
  worst_decision_round : int;
  states_explored : int;
  status : Budget.status;
}

exception Cut of Budget.reason * int

let check ~protocol:(module P : Layered_sync.Protocol.S) ~n ~t ~rounds ?(max_new = 2)
    ?budget () =
  let module E = Layered_sync.Engine.Make (P) in
  let agreement_ok = ref true
  and uniform_ok = ref true
  and validity_ok = ref true
  and termination_ok = ref true
  and worst = ref 0
  and explored = ref 0 in
  let check_state allowed x =
    incr explored;
    Layered_runtime.Stats.add_states_expanded 1;
    let decided = E.decided_vset x in
    if Vset.cardinal decided > 1 then agreement_ok := false;
    let all_decided =
      Array.fold_left
        (fun acc d -> match d with Some v -> Vset.add v acc | None -> acc)
        Vset.empty (E.decisions x)
    in
    if Vset.cardinal all_decided > 1 then uniform_ok := false;
    if not (Vset.subset decided allowed) then validity_ok := false;
    if not (E.terminal x) then begin
      if x.E.round >= rounds then termination_ok := false
      else worst := max !worst (x.E.round + 1)
    end
  in
  let explore_from allowed x0 =
    let seen = Hashtbl.create 4096 in
    let rec explore x =
      let k = E.key x in
      if not (Hashtbl.mem seen k) then begin
        (match Budget.exceeded_opt budget with
        | Some reason -> raise_notrace (Cut (reason, x.E.round))
        | None -> ());
        Budget.charge_opt budget 1;
        Hashtbl.add seen k ();
        check_state allowed x;
        if x.E.round < rounds then
          List.iter
            (fun a -> explore (E.apply ~record_failures:true x a))
            (E.all_actions ~max_new ~remaining_failures:(t - E.failed_count x) x)
      end
    in
    explore x0
  in
  let status =
    try
      List.iter
        (fun inputs ->
          let allowed = Vset.of_list (Array.to_list inputs) in
          explore_from allowed (E.initial ~inputs))
        (Inputs.vectors ~n ~values:[ Value.zero; Value.one ]);
      Budget.Complete
    with Cut (reason, at_depth) ->
      (match budget with
      | Some b -> Budget.truncated b ~reason ~at_depth
      | None -> assert false)
  in
  {
    agreement_ok = !agreement_ok;
    uniform_agreement_ok = !uniform_ok;
    validity_ok = !validity_ok;
    termination_ok = !termination_ok;
    worst_decision_round = (if !termination_ok then !worst else rounds + 1);
    states_explored = !explored;
    status;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "agreement=%b uniform=%b validity=%b termination=%b worst-round=%d states=%d"
    r.agreement_ok r.uniform_agreement_ok r.validity_ok r.termination_ok
    r.worst_decision_round r.states_explored;
  match r.status with
  | Budget.Complete -> ()
  | Budget.Truncated tr ->
      Format.fprintf ppf " TRUNCATED(%a)" Budget.pp_truncation tr
