open Layered_core
module Sm = Layered_async_sm

let run_one ~n ~horizon ~length =
  let module P = (val Layered_protocols.Sm_voting.make ~horizon) in
  let module E = Sm.Engine.Make (P) in
  let succ = E.srw in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let depth = horizon + 1 in
  let vals x = Valence.vals valence ~depth x in
  let classify x = Valence.classify valence ~depth x in
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  let sample =
    List.concat_map
      (fun x0 -> Explore.reachable { Explore.succ; key = E.key } ~depth:1 x0)
      initials
  in
  let params = Printf.sprintf "n=%d horizon=%d" n horizon in
  (* (a) legality of every compiled layer *)
  let schedules_ok =
    List.for_all
      (fun x ->
        List.for_all
          (fun a -> E.schedule_legal (E.compile x a))
          (E.actions ~n))
      sample
  in
  (* (b) the Lemma 5.3 bridge *)
  let bridge_ok =
    List.for_all
      (fun x ->
        List.for_all
          (fun j ->
            let y =
              E.apply
                (E.apply x { Sm.Engine.slow = j; mode = Sm.Engine.Read_late n })
                { Sm.Engine.slow = j; mode = Sm.Engine.Absent }
            in
            let y' =
              E.apply
                (E.apply x { Sm.Engine.slow = j; mode = Sm.Engine.Absent })
                { Sm.Engine.slow = j; mode = Sm.Engine.Read_late 0 }
            in
            E.agree_modulo y y' j)
          (Pid.all n))
      sample
  in
  (* proper part of each layer is similarity connected *)
  let proper_connected_ok =
    List.for_all
      (fun x ->
        let y_part =
          List.concat_map
            (fun j ->
              List.map
                (fun k -> E.apply x { Sm.Engine.slow = j; mode = Sm.Engine.Read_late k })
                (0 :: Pid.all n))
            (Pid.all n)
        in
        Connectivity.connected_via ~graph:E.similarity_graph y_part)
      sample
  in
  (* (c) valence connectivity of layers + the ever-bivalent chain *)
  let layers_ok =
    List.for_all (fun x -> Connectivity.valence_connected ~vals (succ x)) sample
  in
  let chain =
    match Layering.find_bivalent ~classify initials with
    | None -> Layering.{ states = []; complete = false; stuck = None }
    | Some x0 -> Layering.bivalent_chain ~classify ~succ ~length x0
  in
  [
    Report.check ~id:"E5" ~claim:"S^rw legality" ~params
      ~expected:"every layer a legal phase interleaving"
      ~measured:(Printf.sprintf "checked %d states x %d actions" (List.length sample)
           (List.length (E.actions ~n)))
      schedules_ok;
    Report.check ~id:"E5" ~claim:"Lemma 5.3 bridge" ~params
      ~expected:"x(j,n)(j,A) = x(j,A)(j,0) modulo j"
      ~measured:(Printf.sprintf "checked %d states x %d slow choices" (List.length sample) n)
      bridge_ok;
    Report.check ~id:"E5" ~claim:"Lemma 5.3 (Y part)" ~params
      ~expected:"proper layer part similarity connected"
      ~measured:(Printf.sprintf "checked %d layers" (List.length sample))
      proper_connected_ok;
    Report.check ~id:"E5" ~claim:"Lemma 5.3 (iii)" ~params
      ~expected:"every S^rw(x) valence connected"
      ~measured:(Printf.sprintf "checked %d layers" (List.length sample))
      layers_ok;
    Report.check ~id:"E5" ~claim:"Cor 5.4" ~params
      ~expected:(Printf.sprintf "bivalent chain of length %d" length)
      ~measured:(Printf.sprintf "length %d" (List.length chain.Layering.states))
      chain.Layering.complete;
  ]

let run () = run_one ~n:3 ~horizon:2 ~length:7
