(** Differential and metamorphic oracles over the engines.

    Each oracle is a self-contained invariant check: it builds its own
    engines, runs a workload two ways (or once against an absolute
    expectation) and answers whether the invariant held.  The checks are
    useful twice over:

    - {b standalone} ([layered oracles], {!rows}): cheap cross-checks of
      the runtime — serial and parallel BFS agree byte-for-byte, budgeted
      runs are prefixes of unbudgeted ones, valence classification is
      order-invariant, crashed workers are contained;
    - {b as chaos detectors} ({!Chaos}): an armed fault site must make at
      least one paired oracle fail, and a disarmed control run must pass.

    Every oracle is deterministic for a given [jobs] in its verdict; the
    [detail] string of a {e failing} verdict may carry timings or
    exception texts (failures abort byte-identical output anyway). *)

type verdict = { ok : bool; detail : string }
(** [detail] is ["ok"] when [ok], else a one-line diagnosis. *)

type t = {
  name : string;  (** e.g. ["serial-parallel/sync"]; unique in {!all} *)
  what : string;  (** one-line statement of the invariant *)
  check : jobs:int -> verdict;
      (** runs the workload; [jobs] sizes the pools used by parallel
          legs (clamped to at least 2 so worker code paths are always
          exercised).  Must not leak exceptions in a fault-free run;
          under injection any escaping exception counts as a detection
          and is caught by the caller. *)
}

(** The built-in oracles plus everything {!register}ed so far, builtins
    first, then registration order. *)
val all : unit -> t list

(** [register o] appends an oracle defined outside this library (the
    serve daemon's differential oracles live in [layered_serve], which
    depends on this library and not vice versa).  Idempotent: a name
    already present — builtin or registered — is ignored. *)
val register : t -> unit

val find : string -> t option

(** Run every oracle (or those in [names]) and render the verdicts as
    report rows, [id]s ["ORACLE"]. *)
val rows : ?jobs:int -> ?names:string list -> unit -> Layered_core.Report.row list
