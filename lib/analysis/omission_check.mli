(** Exhaustive verification against the send-omission adversary
    ({!Layered_sync.Omission}): up to [t] processes marked faulty
    (adaptively, at most [max_new] fresh per round), each dropping an
    arbitrary subset of its outgoing messages every round.

    Properties are judged on the non-faulty processes, as in the paper's
    treatment ("a faulty processor can fail to send messages altogether
    ... and thus behave as if it has crashed"). *)

type result = {
  agreement_ok : bool;
  validity_ok : bool;
  termination_ok : bool;
  worst_decision_round : int;
  states_explored : int;
  status : Layered_runtime.Budget.status;
      (** [Complete], or [Truncated] — verdicts then cover only the
          states explored before the budget tripped. *)
}

val check :
  protocol:(module Layered_sync.Protocol.S) ->
  n:int ->
  t:int ->
  rounds:int ->
  ?max_new:int ->
  ?general:bool ->
  ?budget:Layered_runtime.Budget.t ->
  unit ->
  result

val pp_result : Format.formatter -> result -> unit
