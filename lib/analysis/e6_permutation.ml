open Layered_core
module Mp = Layered_async_mp

let split_last l =
  match List.rev l with
  | last :: rev_front -> (List.rev rev_front, last)
  | [] -> invalid_arg "split_last"

let run_one ~n ~horizon ~length =
  let module P = (val Layered_protocols.Mp_floodset.make ~horizon) in
  let module E = Mp.Engine.Make (P) in
  let succ = E.sper in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let depth = horizon + 1 in
  let vals x = Valence.vals valence ~depth x in
  let classify x = Valence.classify valence ~depth x in
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  let sample =
    List.concat_map
      (fun x0 -> Explore.reachable { Explore.succ; key = E.key } ~depth:1 x0)
      initials
  in
  let perms = Mp.Engine.permutations (Pid.all n) in
  let solo p = List.map (fun i -> Mp.Engine.Solo i) p in
  let params = Printf.sprintf "n=%d horizon=%d" n horizon in
  (* FLP diamond as state equality *)
  let diamond_ok =
    List.for_all
      (fun x ->
        List.for_all
          (fun p ->
            let front, last = split_last p in
            let lhs = E.apply (E.apply x (solo p)) (solo front) in
            let rhs = E.apply (E.apply x (solo front)) (solo (last :: front)) in
            E.equal lhs rhs)
          perms)
      sample
  in
  (* transposition bridges *)
  let transposition_ok =
    List.for_all
      (fun x ->
        List.for_all
          (fun p ->
            List.for_all
              (fun k ->
                let a = List.nth p k and b = List.nth p (k + 1) in
                let swapped =
                  List.mapi (fun i q -> if i = k then b else if i = k + 1 then a else q) p
                in
                let with_pair =
                  List.filteri (fun i _ -> i <> k + 1) p
                  |> List.mapi (fun i q ->
                         if i = k then Mp.Engine.Pair (min a b, max a b)
                         else Mp.Engine.Solo q)
                in
                let y = E.apply x (solo p) in
                let y_pair = E.apply x with_pair in
                let y_swapped = E.apply x (solo swapped) in
                E.similar y y_pair && E.similar y_pair y_swapped)
              (List.init (n - 1) Fun.id))
          perms)
      sample
  in
  let layers_ok =
    List.for_all (fun x -> Connectivity.valence_connected ~vals (succ x)) sample
  in
  let chain =
    match Layering.find_bivalent ~classify initials with
    | None -> Layering.{ states = []; complete = false; stuck = None }
    | Some x0 -> Layering.bivalent_chain ~classify ~succ ~length x0
  in
  [
    Report.check ~id:"E6" ~claim:"FLP diamond" ~params
      ~expected:"x[p][front] = x[front][pn::front]"
      ~measured:
        (Printf.sprintf "checked %d states x %d permutations" (List.length sample)
           (List.length perms))
      diamond_ok;
    Report.check ~id:"E6" ~claim:"transpositions" ~params
      ~expected:"perm ~s concurrent-pair ~s transposed perm"
      ~measured:(Printf.sprintf "checked %d states" (List.length sample))
      transposition_ok;
    Report.check ~id:"E6" ~claim:"layer valence" ~params
      ~expected:"every S^per(x) valence connected"
      ~measured:(Printf.sprintf "checked %d layers" (List.length sample))
      layers_ok;
    Report.check ~id:"E6" ~claim:"FLP (submodel)" ~params
      ~expected:(Printf.sprintf "bivalent chain of length %d" length)
      ~measured:(Printf.sprintf "length %d" (List.length chain.Layering.states))
      chain.Layering.complete;
  ]

let run () = run_one ~n:3 ~horizon:2 ~length:6
