type experiment = {
  id : string;
  title : string;
  run : unit -> Layered_core.Report.row list;
}

let all =
  [
    {
      id = "E1";
      title = "Lemma 3.1/3.2: bivalent states have >= n-t non-failed undecided";
      run = E1_bivalent_undecided.run;
    };
    {
      id = "E2";
      title = "Lemma 3.6: Con_0 connectivity and the bivalent initial state";
      run = E2_initial_states.run;
    };
    {
      id = "E3";
      title = "Lemma 5.1: the S1 layering of the mobile-failure model";
      run = E3_s1_layer.run;
    };
    {
      id = "E4";
      title = "Cor 5.2: consensus impossible with one mobile failure";
      run = E4_mobile_impossibility.run;
    };
    {
      id = "E5";
      title = "Lemma 5.3/Cor 5.4: the synchronic layering of shared memory";
      run = E5_shared_memory.run;
    };
    {
      id = "E6";
      title = "Sec 5.1: the permutation layering of message passing";
      run = E6_permutation.run;
    };
    {
      id = "E7";
      title = "Cor 6.3: the (t+1)-round synchronous lower bound, and tightness";
      run = E7_lower_bound.run;
    };
    {
      id = "E8";
      title = "Lemma 6.4: fast protocols are univalent after a clean round";
      run = E8_fast_univalence.run;
    };
    {
      id = "E9";
      title = "Thm 7.2/Cor 7.3: 1-thick connectivity and task solvability";
      run = E9_task_solvability.run;
    };
    {
      id = "E10";
      title = "Lemma 7.6: similarity-diameter composition bound";
      run = E10_diameter.run;
    };
    {
      id = "E11";
      title = "Cor 7.3 constructive: a 1-resilient 2-set agreement protocol";
      run = E11_kset_protocol.run;
    };
    {
      id = "E12";
      title = "Lemma 7.1/7.4: covering valence drives the same chains";
      run = E12_covering_chain.run;
    };
    {
      id = "E13";
      title = "Sec 7 extensions: the iterated immediate-snapshot model";
      run = E13_iis.run;
    };
    {
      id = "E14";
      title = "Protocol independence: layer structure under full information";
      run = E14_full_info.run;
    };
    {
      id = "E15";
      title = "Dwork-Moses: knowledge, belief and simultaneity in the crash model";
      run = E15_knowledge.run;
    };
    {
      id = "E16";
      title = "Sec 6 coda: wasted faults buy decision rounds (clean-round protocol)";
      run = E16_wasted_faults.run;
    };
    {
      id = "E17";
      title = "Santoro-Widmayer generalised: several mobile omitters per round";
      run = E17_multi_mobile.run;
    };
    {
      id = "E18";
      title = "Send-omission failures: min-flooding breaks, coordinators survive";
      run = E18_omission.run;
    };
    {
      id = "E19";
      title = "Cor 7.3 operationally: one 2-set algorithm, three substrates";
      run = E19_equivalence.run;
    };
    {
      id = "E20";
      title = "Sec 7: always-valence-connected layers (every covering)";
      run = E20_always_valence.run;
    };
  ]

let find id =
  List.find_opt (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id) all

type checkpoint = { dir : string; resume : bool }

let checkpoint_name e = "exp-" ^ String.lowercase_ascii e.id

(* One experiment raising (or running out of budget) must not cost the
   others their rows: failures become Fail rows, budget exhaustion
   becomes an Info "skipped" row, and the map itself is never budgeted
   (a budgeted map would abort wholesale and lose the partial report). *)
let run_all ?pool ?budget ?checkpoint experiments =
  let module Budget = Layered_runtime.Budget in
  let module Stats = Layered_runtime.Stats in
  let module Ckpt = Layered_runtime.Checkpoint in
  let info_row e measured =
    Layered_core.Report.row ~id:e.id ~claim:e.title ~params:""
      ~expected:"run to completion" ~measured Layered_core.Report.Info
  in
  (* Per-experiment durability: an experiment that ran to completion on
     its first attempt has its rows snapshotted under its own name, so a
     killed run resumes by loading finished experiments and re-running
     only the rest.  Skips, failures and recovered retries are not
     snapshotted — their rows describe this process's mishaps, and a
     resumed report must be byte-identical to an uninterrupted one. *)
  let load e =
    match checkpoint with
    | Some { dir; resume = true } -> (
        match Ckpt.load_latest ~dir ~name:(checkpoint_name e) with
        | None -> None
        | Some loaded -> (
            if loaded.Ckpt.rejected > 0 then
              Printf.eprintf
                "warning: %s: rolled back past %d corrupt checkpoint \
                 generation%s\n\
                 %!"
                (checkpoint_name e) loaded.Ckpt.rejected
                (if loaded.Ckpt.rejected = 1 then "" else "s");
            match
              (Marshal.from_string loaded.Ckpt.payload 0
                : Layered_core.Report.row list)
            with
            | rows -> Some rows
            | exception _ -> None))
    | _ -> None
  in
  let store e rows =
    match checkpoint with
    | Some { dir; _ } ->
        ignore
          (Ckpt.save ~dir ~name:(checkpoint_name e)
             ~meta:(Ckpt.make_meta ?budget ~progress:1 ())
             ~payload:(Marshal.to_string (rows : Layered_core.Report.row list) []))
    | None -> ()
  in
  (* Phase 1, possibly on a pool worker: one attempt, no retry.  The
     counter delta of a failed attempt is measured here so the caller
     can subtract work that produced no rows.  (Under a parallel map the
     delta may include concurrent experiments' counts; [Stats.diff]
     clamps, so the subtraction errs toward keeping counts.) *)
  let attempt e =
    match load e with
    | Some rows -> (e, `Loaded rows)
    | None -> (
        match Budget.exceeded_opt budget with
        | Some reason ->
            ( e,
              `Skipped
                (Format.asprintf "skipped: budget exhausted (%a)"
                   Budget.pp_reason reason) )
        | None -> (
            let before = Stats.snapshot () in
            match e.run () with
            | rows ->
                store e rows;
                (e, `Ran rows)
            | exception exn ->
                (e, `Raised (exn, Stats.diff (Stats.snapshot ()) before))))
  in
  (* Phase 2, always on the caller domain: a raising experiment gets its
     one retry here, outside the pool, where a poisoned or crashed
     worker cannot fail it a second time. *)
  let finish (e, outcome) =
    match outcome with
    | `Loaded rows | `Ran rows -> (e, rows)
    | `Skipped measured -> (e, [ info_row e measured ])
    | `Raised (exn1, delta) -> (
        Stats.restore (Stats.diff (Stats.snapshot ()) delta);
        match e.run () with
        | rows ->
            store e rows;
            ( e,
              rows
              @ [
                  info_row e
                    (Printf.sprintf
                       "recovered: first attempt raised %s; rerun outside the \
                        pool succeeded"
                       (Printexc.to_string exn1));
                ] )
        | exception exn2 ->
            ( e,
              [
                Layered_core.Report.row ~id:e.id ~claim:e.title ~params:""
                  ~expected:"run to completion"
                  ~measured:
                    (Printf.sprintf
                       "raised: %s (rerun outside the pool raised: %s)"
                       (Printexc.to_string exn1) (Printexc.to_string exn2))
                  Layered_core.Report.Fail;
              ] ))
  in
  let serial () = List.map (fun e -> finish (attempt e)) experiments in
  match pool with
  | Some pool when Layered_runtime.Pool.jobs pool > 1 -> (
      (* Experiment-level exceptions are contained inside [attempt]; an
         exception out of the map itself is pool infrastructure failing
         (e.g. an injected worker crash killed a chunk before [attempt]
         started).  Fall back to a full serial rerun so the report
         survives, and leave an Info row saying so.  The aborted map's
         partial counter contribution is rolled back first, so the final
         snapshot reflects the run that produced the rows. *)
      let before_map = Stats.snapshot () in
      match Layered_runtime.Pool.parallel_map pool attempt experiments with
      | attempts -> List.map finish attempts
      | exception infra -> (
          Stats.restore before_map;
          match serial () with
          | [] -> []
          | (e, rows) :: rest ->
              ( e,
                rows
                @ [
                    Layered_core.Report.row ~id:"registry"
                      ~claim:"parallel execution fell back to serial" ~params:""
                      ~expected:"parallel map completes"
                      ~measured:
                        (Printf.sprintf "parallel run raised %s; reran serially"
                           (Printexc.to_string infra))
                      Layered_core.Report.Info;
                  ] )
              :: rest))
  | Some _ | None -> serial ()
