type experiment = {
  id : string;
  title : string;
  run : unit -> Layered_core.Report.row list;
}

let all =
  [
    {
      id = "E1";
      title = "Lemma 3.1/3.2: bivalent states have >= n-t non-failed undecided";
      run = E1_bivalent_undecided.run;
    };
    {
      id = "E2";
      title = "Lemma 3.6: Con_0 connectivity and the bivalent initial state";
      run = E2_initial_states.run;
    };
    {
      id = "E3";
      title = "Lemma 5.1: the S1 layering of the mobile-failure model";
      run = E3_s1_layer.run;
    };
    {
      id = "E4";
      title = "Cor 5.2: consensus impossible with one mobile failure";
      run = E4_mobile_impossibility.run;
    };
    {
      id = "E5";
      title = "Lemma 5.3/Cor 5.4: the synchronic layering of shared memory";
      run = E5_shared_memory.run;
    };
    {
      id = "E6";
      title = "Sec 5.1: the permutation layering of message passing";
      run = E6_permutation.run;
    };
    {
      id = "E7";
      title = "Cor 6.3: the (t+1)-round synchronous lower bound, and tightness";
      run = E7_lower_bound.run;
    };
    {
      id = "E8";
      title = "Lemma 6.4: fast protocols are univalent after a clean round";
      run = E8_fast_univalence.run;
    };
    {
      id = "E9";
      title = "Thm 7.2/Cor 7.3: 1-thick connectivity and task solvability";
      run = E9_task_solvability.run;
    };
    {
      id = "E10";
      title = "Lemma 7.6: similarity-diameter composition bound";
      run = E10_diameter.run;
    };
    {
      id = "E11";
      title = "Cor 7.3 constructive: a 1-resilient 2-set agreement protocol";
      run = E11_kset_protocol.run;
    };
    {
      id = "E12";
      title = "Lemma 7.1/7.4: covering valence drives the same chains";
      run = E12_covering_chain.run;
    };
    {
      id = "E13";
      title = "Sec 7 extensions: the iterated immediate-snapshot model";
      run = E13_iis.run;
    };
    {
      id = "E14";
      title = "Protocol independence: layer structure under full information";
      run = E14_full_info.run;
    };
    {
      id = "E15";
      title = "Dwork-Moses: knowledge, belief and simultaneity in the crash model";
      run = E15_knowledge.run;
    };
    {
      id = "E16";
      title = "Sec 6 coda: wasted faults buy decision rounds (clean-round protocol)";
      run = E16_wasted_faults.run;
    };
    {
      id = "E17";
      title = "Santoro-Widmayer generalised: several mobile omitters per round";
      run = E17_multi_mobile.run;
    };
    {
      id = "E18";
      title = "Send-omission failures: min-flooding breaks, coordinators survive";
      run = E18_omission.run;
    };
    {
      id = "E19";
      title = "Cor 7.3 operationally: one 2-set algorithm, three substrates";
      run = E19_equivalence.run;
    };
    {
      id = "E20";
      title = "Sec 7: always-valence-connected layers (every covering)";
      run = E20_always_valence.run;
    };
  ]

let find id =
  List.find_opt (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id) all

(* One experiment raising (or running out of budget) must not cost the
   others their rows: failures become Fail rows, budget exhaustion
   becomes an Info "skipped" row, and the map itself is never budgeted
   (a budgeted map would abort wholesale and lose the partial report). *)
let run_all ?pool ?budget experiments =
  let module Budget = Layered_runtime.Budget in
  let info_row e measured =
    Layered_core.Report.row ~id:e.id ~claim:e.title ~params:""
      ~expected:"run to completion" ~measured Layered_core.Report.Info
  in
  let run e =
    match Budget.exceeded_opt budget with
    | Some reason ->
        ( e,
          [
            info_row e
              (Format.asprintf "skipped: budget exhausted (%a)" Budget.pp_reason
                 reason);
          ] )
    | None -> (
        match e.run () with
        | rows -> (e, rows)
        | exception exn1 -> (
            (* A first failure gets one serial retry: a transient fault
               (a crashed worker, an injected chaos exception) should not
               cost the experiment its rows.  Either way the row says
               what happened. *)
            match e.run () with
            | rows ->
                ( e,
                  rows
                  @ [
                      info_row e
                        (Printf.sprintf
                           "recovered: first attempt raised %s; serial retry \
                            succeeded"
                           (Printexc.to_string exn1));
                    ] )
            | exception exn2 ->
                ( e,
                  [
                    Layered_core.Report.row ~id:e.id ~claim:e.title ~params:""
                      ~expected:"run to completion"
                      ~measured:
                        (Printf.sprintf "raised: %s (serial retry raised: %s)"
                           (Printexc.to_string exn1) (Printexc.to_string exn2))
                      Layered_core.Report.Fail;
                  ] )))
  in
  let serial () = List.map run experiments in
  match pool with
  | Some pool when Layered_runtime.Pool.jobs pool > 1 -> (
      (* Experiment-level exceptions are contained inside [run]; an
         exception out of the map itself is pool infrastructure failing
         (e.g. an injected worker crash killed a chunk before [run]
         started).  Fall back to a full serial rerun so the report
         survives, and leave an Info row saying so. *)
      match Layered_runtime.Pool.parallel_map pool run experiments with
      | results -> results
      | exception infra -> (
          match serial () with
          | [] -> []
          | (e, rows) :: rest ->
              ( e,
                rows
                @ [
                    Layered_core.Report.row ~id:"registry"
                      ~claim:"parallel execution fell back to serial" ~params:""
                      ~expected:"parallel map completes"
                      ~measured:
                        (Printf.sprintf "parallel run raised %s; reran serially"
                           (Printexc.to_string infra))
                      Layered_core.Report.Info;
                  ] )
              :: rest))
  | Some _ | None -> serial ()
