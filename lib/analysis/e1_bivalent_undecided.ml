open Layered_core

(* Lemma 3.1 over a verified-agreement synchronous protocol: every
   reachable bivalent state of the S^t submodel has at least [n - t]
   non-failed undecided processes. *)
let check_sync ~protocol ~n ~t =
  let module P = (val (protocol : (module Layered_sync.Protocol.S))) in
  let module E = Layered_sync.Engine.Make (P) in
  let succ = E.st ~t in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let depth = t + 3 in
  let spec = { Explore.succ; key = E.key } in
  let ok = ref true and bivalent_states = ref 0 in
  List.iter
    (fun x0 ->
      List.iter
        (fun x ->
          match Valence.classify valence ~depth x with
          | Valence.Bivalent ->
              incr bivalent_states;
              let decs = E.decisions x in
              let undecided =
                List.length (List.filter (fun i -> decs.(i - 1) = None) (E.nonfailed x))
              in
              if undecided < n - t then ok := false
          | Valence.Univalent _ | Valence.Unknown -> ())
        (Explore.reachable spec ~depth:(t + 1) x0))
    (E.initial_states ~n ~values:[ Value.zero; Value.one ]);
  (!ok, !bivalent_states)

(* Lemma 3.2's shadow in the asynchronous model: the model displays no
   finite failure, so under Agreement a bivalent state has no decided
   process.  Our deciding protocols necessarily break Agreement; we verify
   that every bivalent state that does have a decided process certifiably
   leads to an Agreement violation (both values decided). *)
let check_async ~horizon ~n =
  let module P = (val Layered_protocols.Mp_floodset.make ~horizon) in
  let module E = Layered_async_mp.Engine.Make (P) in
  let succ = E.sper in
  let valence = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let spec = { Explore.succ; key = E.key } in
  let depth = horizon + 1 in
  let ok = ref true and witnesses = ref 0 in
  List.iter
    (fun x0 ->
      List.iter
        (fun x ->
          match Valence.classify valence ~depth x with
          | Valence.Bivalent when not (Vset.is_empty (E.decided_vset x)) ->
              incr witnesses;
              let violates y = Vset.cardinal (E.decided_vset y) >= 2 in
              if not (Explore.exists_reachable spec ~depth ~pred:violates x) then
                ok := false
          | Valence.Bivalent | Valence.Univalent _ | Valence.Unknown -> ())
        (Explore.reachable spec ~depth:2 x0))
    (E.initial_states ~n ~values:[ Value.zero; Value.one ]);
  (!ok, !witnesses)

let run () =
  let sync_rows =
    List.concat_map
      (fun (pname, make) ->
        List.map
          (fun (n, t) ->
            let ok, bivalent = check_sync ~protocol:(make ~t) ~n ~t in
            Report.check ~id:"E1" ~claim:"Lemma 3.1"
              ~params:(Printf.sprintf "%s n=%d t=%d" pname n t)
              ~expected:(Printf.sprintf ">=%d non-failed undecided at bivalent states" (n - t))
              ~measured:(Printf.sprintf "holds at all %d bivalent states" bivalent)
              ok)
          [ (3, 1); (4, 2) ])
      [
        ("floodset", fun ~t -> Layered_protocols.Sync_floodset.make ~t);
        ("early", fun ~t -> Layered_protocols.Sync_early.make ~t);
      ]
  in
  let ok, witnesses = check_async ~horizon:2 ~n:3 in
  let async_row =
    Report.check ~id:"E1" ~claim:"Lemma 3.2"
      ~params:"mp-floodset n=3 h=2"
      ~expected:"bivalent+decided implies future agreement violation"
      ~measured:(Printf.sprintf "verified for %d witness states" witnesses)
      ok
  in
  sync_rows @ [ async_row ]
