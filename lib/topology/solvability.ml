open Layered_core

type verdict = { ok : bool; detail : string }

(* Enumerate every non-empty connected subset of a graph.  The graphs here
   have at most [cap] nodes, so the sweep visits every mask; the
   connectivity check is a bit-parallel BFS over precomputed neighbour
   bitmasks — no per-mask allocation, each round ORs whole adjacency
   rows — which is what keeps the 2^m walk cheap on the E9 kernels. *)
let connected_subsets g =
  let n = Graph.size g in
  assert (n <= 24);
  let nbr =
    Array.init n (fun i ->
        List.fold_left (fun acc j -> acc lor (1 lsl j)) 0 (Graph.neighbours g i))
  in
  let connected mask =
    let reach = ref (mask land -mask) in
    let frontier = ref !reach in
    while !frontier <> 0 do
      let next = ref 0 in
      for i = 0 to n - 1 do
        if !frontier land (1 lsl i) <> 0 then next := !next lor nbr.(i)
      done;
      frontier := !next land mask land lnot !reach;
      reach := !reach lor !frontier
    done;
    !reach = mask
  in
  let members mask = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id) in
  let rec sweep acc mask =
    if mask = 0 then acc
    else sweep (if connected mask then members mask :: acc else acc) (mask - 1)
  in
  sweep [] ((1 lsl n) - 1)

let check_subsets task subsets describe =
  let bad =
    List.find_opt
      (fun inputs ->
        let c = Task.c_delta task inputs in
        not (Thick.k_thick_connected ~n:task.Task.n ~k:1 c))
      subsets
  in
  match bad with
  | Some inputs ->
      {
        ok = false;
        detail =
          Format.asprintf "C_Delta(I) not 1-thick connected for I = %a (%s)"
            (Format.pp_print_list ~pp_sep:Format.pp_print_space Simplex.pp)
            inputs describe;
      }
  | None ->
      { ok = true; detail = Printf.sprintf "all %d input sets pass (%s)" (List.length subsets) describe }

let passes_necessary_condition ?(cap = 16) task =
  let assignments = Array.of_list (Task.input_assignments task) in
  let m = Array.length assignments in
  let sim =
    Graph.of_pred ~size:m (fun i j ->
        Simplex.size (Simplex.inter assignments.(i) assignments.(j)) >= task.Task.n - 1)
  in
  let to_simplexes idxs = List.map (fun i -> assignments.(i)) idxs in
  if m <= cap then begin
    let subsets = List.map to_simplexes (connected_subsets sim) in
    check_subsets task subsets (Printf.sprintf "exhaustive over %d assignments" m)
  end
  else begin
    (* Exhaustion is infeasible; check the full set, singletons, and all
       radius-1 similarity balls. *)
    let full = Array.to_list assignments in
    let singletons = List.map (fun s -> [ s ]) full in
    let balls =
      List.init m (fun i ->
          to_simplexes (i :: Graph.neighbours sim i))
    in
    check_subsets task (full :: (singletons @ balls))
      (Printf.sprintf "sampled (full set, singletons, balls) over %d assignments" m)
  end

let forced_outputs task =
  List.filter_map
    (fun s ->
      match Complex.simplexes_of_size (task.Task.delta s) task.Task.n with
      | [ out ] -> Some (s, out)
      | [] | _ :: _ :: _ -> None)
    (Task.input_assignments task)

let forced_fragmentation task =
  let n = task.Task.n in
  let inputs = Task.input_assignments task in
  let c = Task.c_delta task inputs in
  let simplexes, g = Thick.graph ~n ~k:1 c in
  let index_of s =
    let rec go i =
      if i >= Array.length simplexes then None
      else if Simplex.equal simplexes.(i) s then Some i
      else go (i + 1)
    in
    go 0
  in
  let uf = Union_find.create (Array.length simplexes) in
  Array.iteri
    (fun i _ -> List.iter (fun j -> ignore (Union_find.union uf i j)) (Graph.neighbours g i))
    simplexes;
  let forced = forced_outputs task in
  let split =
    List.find_opt
      (fun ((_, out1), (_, out2)) ->
        match (index_of out1, index_of out2) with
        | Some i, Some j -> not (Union_find.same uf i j)
        | None, _ | _, None -> false)
      (List.concat_map (fun a -> List.map (fun b -> (a, b)) forced) forced)
  in
  match split with
  | Some ((in1, out1), (in2, out2)) ->
      {
        ok = true;
        detail =
          Format.asprintf
            "forced outputs %a (from input %a) and %a (from input %a) lie in distinct 1-thickness components"
            Simplex.pp out1 Simplex.pp in1 Simplex.pp out2 Simplex.pp in2;
      }
  | None -> { ok = false; detail = "no forced fragmentation found" }
