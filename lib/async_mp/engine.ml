open Layered_core

type entry = Solo of Pid.t | Pair of Pid.t * Pid.t
type schedule = entry list

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

module Make (P : Protocol.S) = struct
  type state = {
    round : int;
    locals : P.local array;
    mail : (Pid.t * P.msg) list array;
    interned : Intern.slot;
  }

  let n_of x = Array.length x.locals

  let initial ~inputs =
    let n = Array.length inputs in
    {
      round = 0;
      locals = Array.init n (fun i -> P.init ~n ~pid:(i + 1) ~input:inputs.(i));
      mail = Array.make n [];
      interned = Intern.fresh_slot ();
    }

  let initial_states ~n ~values =
    List.map (fun inputs -> initial ~inputs) (Inputs.vectors ~n ~values)

  let check_outgoing n pid outgoing =
    let dests = List.map fst outgoing in
    if List.exists (fun d -> d = pid || d < 1 || d > n) dests then
      invalid_arg "Engine: bad message destination";
    if List.length (List.sort_uniq compare dests) <> List.length dests then
      invalid_arg "Engine: duplicate message destination"

  (* Compute process [i]'s phase against the current state: outgoing
     messages (from the phase-start local state), then the new local state
     after draining the inbox.  Does not mutate. *)
  let phase_of x i =
    let n = n_of x in
    let outgoing = P.send ~n ~pid:i x.locals.(i - 1) in
    check_outgoing n i outgoing;
    let inbox = x.mail.(i - 1) in
    let local' = P.step ~n ~pid:i x.locals.(i - 1) ~inbox in
    (match (P.decision x.locals.(i - 1), P.decision local') with
    | Some v, Some w when not (Value.equal v w) ->
        invalid_arg "Engine: protocol violated write-once decision"
    | Some _, None -> invalid_arg "Engine: protocol erased a decision"
    | (Some _ | None), _ -> ());
    (local', outgoing)

  (* Mailboxes are kept in canonical order: sorted by source pid, FIFO
     within a source (channels are FIFO; the cross-source interleaving of
     concurrently-sent messages is semantically arbitrary, so a canonical
     order keeps state equality independent of it). *)
  let enqueue mail src outgoing =
    List.iter
      (fun (dst, m) ->
        mail.(dst - 1) <-
          List.stable_sort
            (fun (s, _) (s', _) -> compare s s')
            (mail.(dst - 1) @ [ (src, m) ]))
      outgoing

  let apply_entry x entry =
    let locals = Array.copy x.locals and mail = Array.copy x.mail in
    (match entry with
    | Solo i ->
        let local', outgoing =
          phase_of { x with locals; mail; interned = Intern.fresh_slot () } i
        in
        locals.(i - 1) <- local';
        mail.(i - 1) <- [];
        enqueue mail i outgoing
    | Pair (a, b) ->
        if a = b then invalid_arg "Engine: concurrent pair of one process";
        (* Both phases run against the pre-state: neither sees the other's
           fresh messages. *)
        let la, out_a = phase_of x a in
        let lb, out_b = phase_of x b in
        locals.(a - 1) <- la;
        locals.(b - 1) <- lb;
        mail.(a - 1) <- [];
        mail.(b - 1) <- [];
        enqueue mail a out_a;
        enqueue mail b out_b);
    { x with locals; mail; interned = Intern.fresh_slot () }

  let pids_of_entry = function Solo i -> [ i ] | Pair (a, b) -> [ a; b ]

  let validate_schedule n s =
    let pids = List.concat_map pids_of_entry s in
    let distinct = List.sort_uniq compare pids in
    if List.length distinct <> List.length pids then
      invalid_arg "Engine: schedule repeats a process";
    let pairs = List.length (List.filter (function Pair _ -> true | Solo _ -> false) s) in
    if pairs > 1 then invalid_arg "Engine: more than one concurrent pair";
    let count = List.length pids in
    if count <> n && count <> n - 1 then
      invalid_arg "Engine: schedule must involve n or n-1 processes";
    if pairs = 1 && count <> n then
      invalid_arg "Engine: concurrent pair only allowed in full schedules"

  let apply x s =
    validate_schedule (n_of x) s;
    let x' = List.fold_left apply_entry x s in
    { x' with round = x.round + 1; interned = Intern.fresh_slot () }

  let schedules ~n =
    let all = Pid.all n in
    let full = List.map (fun p -> List.map (fun i -> Solo i) p) (permutations all) in
    let drop_last =
      List.map
        (fun p -> List.map (fun i -> Solo i) (List.filteri (fun i _ -> i < n - 1) p))
        (permutations all)
    in
    let with_pair =
      List.concat_map
        (fun p ->
          List.init (n - 1) (fun k ->
              List.mapi (fun i x -> (i, x)) p
              |> List.filter_map (fun (i, x) ->
                     if i = k then
                       let a = List.nth p k and b = List.nth p (k + 1) in
                       Some (Pair (min a b, max a b))
                     else if i = k + 1 then None
                     else Some (Solo x))))
        (permutations all)
    in
    (* Distinct schedules only (drop-last arrangements coincide across
       permutations of the dropped element; pairs are canonicalised). *)
    List.sort_uniq compare (full @ drop_last @ with_pair)

  let key x =
    let buf = Buffer.create 64 in
    Buffer.add_string buf (string_of_int x.round);
    Array.iter
      (fun box ->
        Buffer.add_char buf '|';
        List.iter
          (fun (src, m) ->
            Buffer.add_string buf (string_of_int src);
            Buffer.add_char buf ':';
            Buffer.add_string buf (P.msg_key m);
            Buffer.add_char buf ';')
          box)
      x.mail;
    Array.iter
      (fun l ->
        Buffer.add_char buf '!';
        Buffer.add_string buf (P.key l))
      x.locals;
    Buffer.contents buf

  (* Interning signature: header = round; part i bundles process i's
     mailbox and local key, which [agree_modulo] masks together.  Each
     mailbox entry is length-prefixed so a msg_key containing the
     separators cannot alias across entry boundaries. *)
  let raw_parts x =
    let n = n_of x in
    Array.init (n + 1) (fun i ->
        if i = 0 then string_of_int x.round
        else begin
          let buf = Buffer.create 32 in
          List.iter
            (fun (src, m) ->
              let mk = P.msg_key m in
              Buffer.add_string buf (string_of_int src);
              Buffer.add_char buf ':';
              Buffer.add_string buf (string_of_int (String.length mk));
              Buffer.add_char buf ':';
              Buffer.add_string buf mk;
              Buffer.add_char buf ';')
            x.mail.(i - 1);
          Buffer.add_char buf '!';
          Buffer.add_string buf (P.key x.locals.(i - 1));
          Buffer.contents buf
        end)

  let intern_table = Intern.create ~key ~parts:raw_parts ()
  let meta x = Intern.memo intern_table x.interned x
  let key x = (meta x).Intern.key
  let ident x = (meta x).Intern.id
  let equal x y = ident x = ident y

  let sper =
    let table = Hashtbl.create 4 in
    fun x ->
      let n = n_of x in
      let ss =
        match Hashtbl.find_opt table n with
        | Some ss -> ss
        | None ->
            let ss = schedules ~n in
            Hashtbl.add table n ss;
            ss
      in
      let seen = Hashtbl.create 64 in
      List.filter_map
        (fun s ->
          let y = apply x s in
          let k = ident y in
          if Hashtbl.mem seen k then None
          else begin
            Hashtbl.add seen k ();
            Some y
          end)
        ss

  let decisions x = Array.map P.decision x.locals

  let decided_vset x =
    Array.fold_left
      (fun acc l -> match P.decision l with Some v -> Vset.add v acc | None -> acc)
      Vset.empty x.locals

  let terminal x = Array.for_all (fun l -> P.decision l <> None) x.locals
  let in_transit x = Array.fold_left (fun acc box -> acc + List.length box) 0 x.mail

  (* Messages addressed to [j] are part of [j]'s interface with the
     environment: if [j] crashes they are never observed, so "agree modulo
     j" compares the mailboxes of every process except [j].  Part [i]
     bundles mailbox and local of process [i], so the masked part-id
     comparison is exactly the old field-by-field check. *)
  let agree_modulo x y j =
    Simgraph.masked_equal (meta x).Intern.parts (meta y).Intern.parts j

  let similar x y = List.exists (agree_modulo x y) (Pid.all (n_of x))

  let sim_adapter =
    { Simgraph.parts = (fun x -> (meta x).Intern.parts); witness = (fun _ _ _ -> true) }

  let sim_inc = Simgraph.Incremental.create ~rel:similar sim_adapter

  let similarity_graph ?builder states =
    Simgraph.Incremental.build ?builder sim_inc states

  (* Packed hot-path identity + precomputed successor table (small n). *)
  let vec_table = Statevec.create ()
  let vec_ident x = Statevec.id vec_table (meta x).Intern.parts
  let succ_cache : state Statevec.Memo.cache = Statevec.Memo.create ()

  let sper_tab x =
    Statevec.Memo.find succ_cache ~ctx:0 ~id:(vec_ident x) ~compute:(fun () -> sper x)

  (* Symmetry: the mailbox entries inside the parts carry sender pids,
     so permuting the part array is *not* the renaming action on states
     in this model — [canon] is exposed for uniformity but quotienting
     a traversal by it is unsound here (see {!Layered_core.Canon}). *)
  let canon ~roles x = Intern.canon_meta intern_table ~roles x

  let explore_spec = { Explore.succ = sper; key }
  let valence_spec ~succ = { Valence.succ; key; decided = decided_vset; terminal }

  let pp ppf x =
    Format.fprintf ppf "@[<v>round %d@," x.round;
    Array.iteri
      (fun idx box ->
        Format.fprintf ppf "  mail->%d: %s@," (idx + 1)
          (String.concat ", "
             (List.map (fun (s, m) -> Printf.sprintf "%d:%s" s (P.msg_key m)) box)))
      x.mail;
    Array.iteri
      (fun idx l ->
        Format.fprintf ppf "  p%d: %a%s@," (idx + 1) P.pp l
          (match P.decision l with
          | Some v -> Printf.sprintf "  [decided %s]" (Value.to_string v)
          | None -> ""))
      x.locals;
    Format.fprintf ppf "@]"
end

let pp_schedule ppf s =
  let entry = function
    | Solo i -> string_of_int i
    | Pair (a, b) -> Printf.sprintf "{%d,%d}" a b
  in
  Format.fprintf ppf "[%s]" (String.concat "," (List.map entry s))
