open Layered_core

type slowness = Absent | Late of int
type action = { slow : Pid.t; mode : slowness }

module Make (P : Layered_sync.Protocol.S) = struct
  type packet = { src : Pid.t; dst : Pid.t; msg : P.msg; sent : int }

  type state = {
    round : int;
    locals : P.local array;
    transit : packet list;
    interned : Intern.slot;
  }

  let n_of x = Array.length x.locals

  let initial ~inputs =
    let n = Array.length inputs in
    {
      round = 0;
      locals = Array.init n (fun i -> P.init ~n ~pid:(i + 1) ~input:inputs.(i));
      transit = [];
      interned = Intern.fresh_slot ();
    }

  let initial_states ~n ~values =
    List.map (fun inputs -> initial ~inputs) (Inputs.vectors ~n ~values)

  let actions ~n =
    List.concat_map
      (fun j ->
        { slow = j; mode = Absent }
        :: List.map (fun k -> { slow = j; mode = Late k }) (0 :: Pid.all n))
      (Pid.all n)

  let apply x { slow = j; mode } =
    let n = n_of x in
    let round = x.round + 1 in
    let sends i = not (i = j && mode = Absent) in
    let fresh =
      List.concat_map
        (fun i ->
          if not (sends i) then []
          else
            List.filter_map
              (fun d ->
                match P.send ~n ~round ~pid:i x.locals.(i - 1) ~dest:d with
                | Some msg -> Some { src = i; dst = d; msg; sent = round }
                | None -> None)
              (Pid.others n i))
        (Pid.all n)
    in
    let transit = x.transit @ fresh in
    let receives i = not (i = j && mode = Absent) in
    (* Early proper readers miss the slow process's fresh message. *)
    let eligible i p =
      p.dst = i
      &&
      match mode with
      | Late k when i <> j && i <= k -> not (p.src = j && p.sent = round)
      | Late _ | Absent -> true
    in
    (* FIFO: deliver the oldest eligible packet per source. *)
    let indexed = List.mapi (fun idx p -> (idx, p)) transit in
    let delivered = Hashtbl.create 16 in
    let received_by i =
      let inbox = Array.make n None in
      List.iter
        (fun (idx, p) ->
          if eligible i p && inbox.(p.src - 1) = None then begin
            inbox.(p.src - 1) <- Some p.msg;
            Hashtbl.replace delivered idx ()
          end)
        indexed;
      inbox
    in
    let locals =
      Array.init n (fun idx ->
          let i = idx + 1 in
          if receives i then P.step ~n ~round ~pid:i x.locals.(idx) ~received:(received_by i)
          else x.locals.(idx))
    in
    let transit =
      List.filter_map
        (fun (idx, p) -> if Hashtbl.mem delivered idx then None else Some p)
        indexed
    in
    { round; locals; transit; interned = Intern.fresh_slot () }

  let packet_key p = Printf.sprintf "%d>%d@%d:%s" p.src p.dst p.sent (P.msg_key p.msg)

  let key x =
    let buf = Buffer.create 64 in
    Buffer.add_string buf (string_of_int x.round);
    List.iter
      (fun p ->
        Buffer.add_char buf '|';
        Buffer.add_string buf (packet_key p))
      x.transit;
    Array.iter
      (fun l ->
        Buffer.add_char buf '!';
        Buffer.add_string buf (P.key l))
      x.locals;
    Buffer.contents buf

  (* Interning signature: [agree_modulo] compares round + the whole
     transit list unmasked, so they form the header part; part i is
     process i's local key.  Packet renders are length-prefixed so a
     msg_key containing the separators cannot alias. *)
  let raw_parts x =
    let n = n_of x in
    Array.init (n + 1) (fun i ->
        if i = 0 then begin
          let buf = Buffer.create 32 in
          Buffer.add_string buf (string_of_int x.round);
          List.iter
            (fun p ->
              let pk = packet_key p in
              Buffer.add_char buf '|';
              Buffer.add_string buf (string_of_int (String.length pk));
              Buffer.add_char buf ':';
              Buffer.add_string buf pk)
            x.transit;
          Buffer.contents buf
        end
        else P.key x.locals.(i - 1))

  let intern_table = Intern.create ~key ~parts:raw_parts ()
  let meta x = Intern.memo intern_table x.interned x
  let key x = (meta x).Intern.key
  let ident x = (meta x).Intern.id
  let equal x y = ident x = ident y

  let smp x =
    let seen = Hashtbl.create 64 in
    List.filter_map
      (fun a ->
        let y = apply x a in
        let k = ident y in
        if Hashtbl.mem seen k then None
        else begin
          Hashtbl.add seen k ();
          Some y
        end)
      (actions ~n:(n_of x))

  let decisions x = Array.map P.decision x.locals

  let decided_vset x =
    Array.fold_left
      (fun acc l -> match P.decision l with Some v -> Vset.add v acc | None -> acc)
      Vset.empty x.locals

  let terminal x = Array.for_all (fun l -> P.decision l <> None) x.locals
  let in_transit x = List.length x.transit

  (* Masked part-id equality: round and the transit list live in the
     header part (compared unmasked), locals of every [i <> j] in the
     remaining parts. *)
  let agree_modulo x y j =
    Simgraph.masked_equal (meta x).Intern.parts (meta y).Intern.parts j

  let similar x y = List.exists (agree_modulo x y) (Pid.all (n_of x))

  let sim_adapter =
    { Simgraph.parts = (fun x -> (meta x).Intern.parts); witness = (fun _ _ _ -> true) }

  let sim_inc = Simgraph.Incremental.create ~rel:similar sim_adapter

  let similarity_graph ?builder states =
    Simgraph.Incremental.build ?builder sim_inc states

  (* Packed hot-path identity + precomputed successor table (small n). *)
  let vec_table = Statevec.create ()
  let vec_ident x = Statevec.id vec_table (meta x).Intern.parts
  let succ_cache : state Statevec.Memo.cache = Statevec.Memo.create ()

  let smp_tab x =
    Statevec.Memo.find succ_cache ~ctx:0 ~id:(vec_ident x) ~compute:(fun () -> smp x)

  (* Symmetry: transit packets in the header carry src/dst pids, so
     quotienting by the part permutation is unsound in this model —
     exposed for uniformity only. *)
  let canon ~roles x = Intern.canon_meta intern_table ~roles x

  let explore_spec = { Explore.succ = smp; key }
  let valence_spec ~succ = { Valence.succ; key; decided = decided_vset; terminal }

  let pp ppf x =
    Format.fprintf ppf "@[<v>round %d, %d in transit@," x.round (in_transit x);
    Array.iteri
      (fun idx l ->
        Format.fprintf ppf "  p%d: %a%s@," (idx + 1) P.pp l
          (match P.decision l with
          | Some v -> Printf.sprintf "  [decided %s]" (Value.to_string v)
          | None -> ""))
      x.locals;
    Format.fprintf ppf "@]"
end

let pp_action ppf { slow; mode } =
  match mode with
  | Absent -> Format.fprintf ppf "(%d,A)" slow
  | Late k -> Format.fprintf ppf "(%d,k=%d)" slow k
