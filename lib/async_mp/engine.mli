(** Asynchronous message passing and the permutation layering [S^per]
    (Section 5.1).

    The environment state is the multiset of in-transit messages.  A local
    phase of process [i] sends at most one message per destination — with
    content determined by [i]'s phase-start state, mirroring the
    write-then-snapshot structure of immediate-snapshot executions — and
    delivers every outstanding message addressed to [i] (in arrival
    order).  Environment actions are schedules:

    - [Full [p1; ...; pn]] — each process performs a phase, in order;
    - [Drop_last [p1; ...; p_{n-1}]] — same, with one process left out;
    - a schedule containing one [Pair (pk, pk')] — the two processes
      perform their phases concurrently against the pre-pair state, so
      neither sees the other's fresh messages.

    This is the paper's message-passing analogue of immediate-snapshot
    executions; the FLP diamond is literally
    [apply (apply x (Full [...; pn])) (Drop_last [...]) =
     apply (apply x (Drop_last [...])) (Full [pn; ...])]
    — checked as state equality in tests and experiment E6. *)

open Layered_core

type entry =
  | Solo of Pid.t
  | Pair of Pid.t * Pid.t  (** concurrent adjacent pair *)

type schedule = entry list

module Make (P : Protocol.S) : sig
  type state = private {
    round : int;  (** applied schedules *)
    locals : P.local array;
    mail : (Pid.t * P.msg) list array;
        (** [mail.(d - 1)]: messages in transit to [d], as [(src, msg)],
            sorted by source and FIFO within a source (the canonical
            delivery order; cross-source interleaving of concurrent sends
            is semantically arbitrary) *)
    interned : Intern.slot;  (** memo cell for the state's {!Intern.meta} *)
  }

  val n_of : state -> int
  val initial : inputs:Value.t array -> state
  val initial_states : n:int -> values:Value.t list -> state list

  (** One phase (or concurrent pair of phases) — the micro-step. *)
  val apply_entry : state -> entry -> state

  (** [apply x s] validates [s] (distinct pids; [n] or [n - 1] of them; at
      most one pair, only in full schedules) and runs its entries,
      incrementing [round]. *)
  val apply : state -> schedule -> state

  (** All [S^per] schedules for [n] processes (full permutations, drop-last
      arrangements, adjacent-concurrent variants). *)
  val schedules : n:int -> schedule list

  (** The permutation layering: de-duplicated [apply x] over {!schedules}. *)
  val sper : state -> state list

  val key : state -> string

  (** Dense intern id of the canonical encoding (O(1) equality). *)
  val ident : state -> int

  val equal : state -> state -> bool
  val decisions : state -> Value.t option array
  val decided_vset : state -> Vset.t
  val terminal : state -> bool

  (** Total number of in-transit messages (conservation checks). *)
  val in_transit : state -> int

  (** [agree_modulo x y j]: rounds equal, and for every [i <> j] both
      [i]'s local state and [i]'s mailbox equal.  Messages addressed to
      [j] may differ: if [j] crashes they are never observed, so the
      crash-indistinguishability argument of Lemma 3.3 is unaffected. *)
  val agree_modulo : state -> state -> Pid.t -> bool

  val similar : state -> state -> bool

  (** Similarity graph over [states]; see {!Simgraph.build}. *)
  val similarity_graph :
    ?builder:Simgraph.builder -> state list -> state array * Graph.t

  (** Packed identity: the part-id vector hash-consed in the statevec
      arena.  Injective like {!ident}. *)
  val vec_ident : state -> int

  (** {!sper} answered from a precomputed successor table keyed on
      {!vec_ident} (small instances only; falls back to computing). *)
  val sper_tab : state -> state list

  (** Orbit data for the canonical-form machinery.  {b Unsound to
      quotient traversals by in this model}: mailbox entries carry
      sender pids, so the part permutation is not the renaming action.
      Exposed for uniformity and testing only. *)
  val canon : roles:int array -> state -> Intern.canon

  val explore_spec : state Explore.spec
  val valence_spec : succ:(state -> state list) -> state Valence.spec
  val pp : Format.formatter -> state -> unit
end

(** All permutations of a list (used by schedule enumeration and tests). *)
val permutations : 'a list -> 'a list list

(** Render a schedule, e.g. ["[1,{2,3}]"] or ["[2,1]"]. *)
val pp_schedule : Format.formatter -> schedule -> unit
