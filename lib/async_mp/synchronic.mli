(** The synchronic layering for asynchronous {e message passing}.

    Section 5.1 proves the shared-memory impossibility via the synchronic
    layering [S^rw] and remarks that "a completely analogous impossibility
    proof can be given for asynchronous message passing as well", with the
    same layering structure.  This module realises that analogue: virtual
    rounds in which all but at most one process send and receive, with the
    slow process [j] either absent or late — its fresh round-[r] message
    is missed by the [k] "early" readers and stays in transit, to be
    delivered in a later round (asynchrony: unlike the mobile-failure
    model, nothing is ever lost).

    Delivery is FIFO per (source, destination): each receiving process gets
    the oldest eligible in-transit message from every source, so the
    {!Layered_sync.Protocol.S} one-message-per-sender interface fits.

    The Lemma 5.3 bridge [x(j,n)(j,A) = x(j,A)(j,0) modulo j] requires
    round-oblivious message content (the analogue of writes depending only
    on the local state); the bundled protocols satisfy this. *)

open Layered_core

type slowness =
  | Absent  (** [(j, A)]: [j] neither sends nor receives this round *)
  | Late of int
      (** [(j, k)]: [j] sends late; early readers [i <= k] miss [j]'s fresh
          message this round *)

type action = { slow : Pid.t; mode : slowness }

module Make (P : Layered_sync.Protocol.S) : sig
  type packet = private { src : Pid.t; dst : Pid.t; msg : P.msg; sent : int }

  type state = private {
    round : int;
    locals : P.local array;
    transit : packet list;  (** in-transit messages, oldest first *)
    interned : Intern.slot;  (** memo cell for the state's {!Intern.meta} *)
  }

  val n_of : state -> int
  val initial : inputs:Value.t array -> state
  val initial_states : n:int -> values:Value.t list -> state list
  val actions : n:int -> action list
  val apply : state -> action -> state

  (** The synchronic layering: de-duplicated [apply x] over {!actions}. *)
  val smp : state -> state list

  val key : state -> string

  (** Dense intern id of the canonical encoding (O(1) equality). *)
  val ident : state -> int

  val equal : state -> state -> bool
  val decisions : state -> Value.t option array
  val decided_vset : state -> Vset.t
  val terminal : state -> bool
  val in_transit : state -> int
  val agree_modulo : state -> state -> Pid.t -> bool
  val similar : state -> state -> bool

  (** Similarity graph over [states]; see {!Simgraph.build}. *)
  val similarity_graph :
    ?builder:Simgraph.builder -> state list -> state array * Graph.t

  (** Packed identity: the part-id vector hash-consed in the statevec
      arena.  Injective like {!ident}. *)
  val vec_ident : state -> int

  (** {!smp} answered from a precomputed successor table keyed on
      {!vec_ident} (small instances only; falls back to computing). *)
  val smp_tab : state -> state list

  (** Orbit data for the canonical-form machinery.  {b Unsound to
      quotient traversals by in this model}: transit packets in the
      header part carry src/dst pids.  Exposed for uniformity and
      testing only. *)
  val canon : roles:int array -> state -> Intern.canon

  val explore_spec : state Explore.spec
  val valence_spec : succ:(state -> state list) -> state Valence.spec
  val pp : Format.formatter -> state -> unit
end

(** Render an action, e.g. ["(2,A)"] or ["(2,k=1)"]. *)
val pp_action : Format.formatter -> action -> unit
