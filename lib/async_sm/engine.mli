(** The asynchronous read/write shared-memory model [M^rw] and its
    synchronic layering [S^rw] (Section 5.1).

    A virtual round has four stages [W1 R1 W2 R2] and is driven by an
    environment action:

    - [(j, Absent)]: the proper processes (all but [j]) write in [W1] and
      scan in [R1]; [j] does nothing this round.
    - [(j, Read_late k)] (written [(j, k)] in the paper, [0 <= k <= n]):
      proper processes write in [W1], [j] writes in [W2]; proper processes
      [i <= k] scan in [R1] (missing [j]'s fresh write), [j] and proper
      processes [i > k] scan in [R2].

    Every [S^rw]-run is fair — all processes but at most one take
    infinitely many local phases — which is why [S^rw] generates a
    layering of [M^rw] for deciding protocols.

    The model displays no finite failure: no process is ever failed at a
    (finite) state, so all processes' decisions witness valence. *)

open Layered_core

type slowness =
  | Absent  (** the action [(j, A)] *)
  | Read_late of int  (** the action [(j, k)]; [k] proper processes scan early *)

type action = { slow : Pid.t; mode : slowness }

(** Fine-grained schedule events, for validating that a layer is a legal
    interleaving of local phases. *)
type event =
  | Write of Pid.t  (** perform the phase's (optional) write *)
  | Scan of Pid.t  (** scan all registers and apply the protocol step *)

module Make (P : Protocol.S) : sig
  type state = private {
    phase : int;  (** completed virtual rounds *)
    locals : P.local array;
    regs : P.reg option array;  (** environment: register [V_i] at [i - 1] *)
    interned : Intern.slot;  (** memo cell for the state's {!Intern.meta} *)
  }

  val n_of : state -> int
  val initial : inputs:Value.t array -> state
  val initial_states : n:int -> values:Value.t list -> state list

  (** All actions available at a state with [n] processes:
      [(j, Absent)] and [(j, Read_late k)] for [j in 1..n], [k in 0..n]. *)
  val actions : n:int -> action list

  val apply : state -> action -> state

  (** [compile x a] is the [W1 R1 W2 R2] event schedule realising [a]. *)
  val compile : state -> action -> event list

  (** Apply raw events — the micro-step semantics of [M^rw] (restricted to
      whole phases).  [apply x a = apply_events x (compile x a)]. *)
  val apply_events : state -> event list -> state

  (** Each pid has at most one [Write] and at most one [Scan], with the
      [Write] first — i.e. the schedule is one legal local phase per
      participating process. *)
  val schedule_legal : event list -> bool

  val key : state -> string

  (** Dense intern id of the canonical encoding (O(1) equality). *)
  val ident : state -> int

  val equal : state -> state -> bool
  val decisions : state -> Value.t option array
  val decided_vset : state -> Vset.t
  val terminal : state -> bool

  (** [agree_modulo x y j]: phases equal, all registers equal, and locals
      of every [i <> j] equal. *)
  val agree_modulo : state -> state -> Pid.t -> bool

  val similar : state -> state -> bool

  (** Similarity graph over [states]; see {!Simgraph.build}. *)
  val similarity_graph :
    ?builder:Simgraph.builder -> state list -> state array * Graph.t

  (** The synchronic layering: [S^rw x] is the de-duplicated set of
      [apply x a] over all actions. *)
  val srw : state -> state list

  (** Packed identity: the part-id vector hash-consed in the statevec
      arena.  Injective like {!ident}. *)
  val vec_ident : state -> int

  (** {!srw} answered from a precomputed successor table keyed on
      {!vec_ident} (small instances only; falls back to computing). *)
  val srw_tab : state -> state list

  (** Orbit data for the canonical-form machinery.  {b Unsound to
      quotient traversals by in this model}: the register vector in the
      header part is indexed by process.  Exposed for uniformity and
      testing only. *)
  val canon : roles:int array -> state -> Intern.canon

  val explore_spec : state Explore.spec
  val valence_spec : succ:(state -> state list) -> state Valence.spec
  val pp : Format.formatter -> state -> unit
end

(** Render an action, e.g. ["(2,A)"] or ["(2,k=1)"]. *)
val pp_action : Format.formatter -> action -> unit
