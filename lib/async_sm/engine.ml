open Layered_core

type slowness = Absent | Read_late of int
type action = { slow : Pid.t; mode : slowness }
type event = Write of Pid.t | Scan of Pid.t

module Make (P : Protocol.S) = struct
  type state = {
    phase : int;
    locals : P.local array;
    regs : P.reg option array;
    interned : Intern.slot;
  }

  let n_of x = Array.length x.locals

  let initial ~inputs =
    let n = Array.length inputs in
    {
      phase = 0;
      locals = Array.init n (fun i -> P.init ~n ~pid:(i + 1) ~input:inputs.(i));
      regs = Array.make n None;
      interned = Intern.fresh_slot ();
    }

  let initial_states ~n ~values =
    List.map (fun inputs -> initial ~inputs) (Inputs.vectors ~n ~values)

  let actions ~n =
    List.concat_map
      (fun j ->
        { slow = j; mode = Absent }
        :: List.map (fun k -> { slow = j; mode = Read_late k }) (0 :: Pid.all n))
      (Pid.all n)

  let compile x { slow = j; mode } =
    let proper = Pid.others (n_of x) j in
    match mode with
    | Absent -> List.map (fun i -> Write i) proper @ List.map (fun i -> Scan i) proper
    | Read_late k ->
        let early, late = List.partition (fun i -> i <= k) proper in
        List.map (fun i -> Write i) proper
        @ List.map (fun i -> Scan i) early
        @ [ Write j; Scan j ]
        @ List.map (fun i -> Scan i) late

  let apply_event x = function
    | Write i ->
        let regs = Array.copy x.regs in
        (match P.write ~n:(n_of x) ~pid:i x.locals.(i - 1) with
        | Some r -> regs.(i - 1) <- Some r
        | None -> ());
        { x with regs; interned = Intern.fresh_slot () }
    | Scan i ->
        let locals = Array.copy x.locals in
        let before = P.decision locals.(i - 1) in
        locals.(i - 1) <- P.step ~n:(n_of x) ~pid:i locals.(i - 1) ~reads:(Array.copy x.regs);
        (match (before, P.decision locals.(i - 1)) with
        | Some v, Some w when not (Value.equal v w) ->
            invalid_arg "Engine: protocol violated write-once decision"
        | Some _, None -> invalid_arg "Engine: protocol erased a decision"
        | (Some _ | None), _ -> ());
        { x with locals; interned = Intern.fresh_slot () }

  let apply_events x events =
    let x' = List.fold_left apply_event x events in
    { x' with phase = x.phase + 1; interned = Intern.fresh_slot () }

  let apply x a = apply_events x (compile x a)

  let schedule_legal events =
    let wrote = Hashtbl.create 8 and scanned = Hashtbl.create 8 in
    List.for_all
      (fun ev ->
        match ev with
        | Write i ->
            if Hashtbl.mem wrote i || Hashtbl.mem scanned i then false
            else begin
              Hashtbl.add wrote i ();
              true
            end
        | Scan i ->
            if Hashtbl.mem scanned i then false
            else begin
              Hashtbl.add scanned i ();
              true
            end)
      events

  let key x =
    let buf = Buffer.create 64 in
    Buffer.add_string buf (string_of_int x.phase);
    Array.iter
      (fun r ->
        Buffer.add_char buf '|';
        match r with
        | Some r -> Buffer.add_string buf (P.reg_key r)
        | None -> Buffer.add_char buf '_')
      x.regs;
    Array.iter
      (fun l ->
        Buffer.add_char buf '!';
        Buffer.add_string buf (P.key l))
      x.locals;
    Buffer.contents buf

  (* Interning signature: [agree_modulo] compares phase + the whole
     register vector unmasked, so they form the header part; part i is
     process i's local key.  Register renders are length-prefixed so a
     reg_key containing the separators cannot alias. *)
  let raw_parts x =
    let n = n_of x in
    Array.init (n + 1) (fun i ->
        if i = 0 then begin
          let buf = Buffer.create 32 in
          Buffer.add_string buf (string_of_int x.phase);
          Array.iter
            (fun r ->
              match r with
              | Some r ->
                  let rk = P.reg_key r in
                  Buffer.add_char buf '|';
                  Buffer.add_string buf (string_of_int (String.length rk));
                  Buffer.add_char buf ':';
                  Buffer.add_string buf rk
              | None -> Buffer.add_string buf "|_")
            x.regs;
          Buffer.contents buf
        end
        else P.key x.locals.(i - 1))

  let intern_table = Intern.create ~key ~parts:raw_parts ()
  let meta x = Intern.memo intern_table x.interned x
  let key x = (meta x).Intern.key
  let ident x = (meta x).Intern.id
  let equal x y = ident x = ident y
  let decisions x = Array.map P.decision x.locals

  let decided_vset x =
    Array.fold_left
      (fun acc l -> match P.decision l with Some v -> Vset.add v acc | None -> acc)
      Vset.empty x.locals

  let terminal x = Array.for_all (fun l -> P.decision l <> None) x.locals

  (* Masked part-id equality: phase and the register vector live in the
     header part (compared unmasked), locals of every [i <> j] in the
     remaining parts — the old field-by-field comparison as O(n) int
     compares on interned ids. *)
  let agree_modulo x y j =
    Simgraph.masked_equal (meta x).Intern.parts (meta y).Intern.parts j

  (* No finite failure in this model, so the "other non-failed process"
     condition of Definition 3.1 is automatic (n >= 2). *)
  let similar x y = List.exists (agree_modulo x y) (Pid.all (n_of x))

  let sim_adapter =
    { Simgraph.parts = (fun x -> (meta x).Intern.parts); witness = (fun _ _ _ -> true) }

  let sim_inc = Simgraph.Incremental.create ~rel:similar sim_adapter

  let similarity_graph ?builder states =
    Simgraph.Incremental.build ?builder sim_inc states

  (* Packed hot-path identity + precomputed successor table (small n). *)
  let vec_table = Statevec.create ()
  let vec_ident x = Statevec.id vec_table (meta x).Intern.parts
  let succ_cache : state Statevec.Memo.cache = Statevec.Memo.create ()

  (* Symmetry: the register vector in the header part is indexed by
     process, so permuting the per-process parts alone is not the
     renaming action — exposed for uniformity, unsound to quotient by. *)
  let canon ~roles x = Intern.canon_meta intern_table ~roles x

  let dedup states =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun x ->
        let k = ident x in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      states

  let srw x = dedup (List.map (apply x) (actions ~n:(n_of x)))

  let srw_tab x =
    Statevec.Memo.find succ_cache ~ctx:0 ~id:(vec_ident x) ~compute:(fun () -> srw x)

  let explore_spec = { Explore.succ = srw; key }
  let valence_spec ~succ = { Valence.succ; key; decided = decided_vset; terminal }

  let pp ppf x =
    Format.fprintf ppf "@[<v>phase %d@," x.phase;
    Array.iteri
      (fun idx r ->
        Format.fprintf ppf "  V%d = %s@," (idx + 1)
          (match r with Some r -> P.reg_key r | None -> "_"))
      x.regs;
    Array.iteri
      (fun idx l ->
        Format.fprintf ppf "  p%d: %a%s@," (idx + 1) P.pp l
          (match P.decision l with
          | Some v -> Printf.sprintf "  [decided %s]" (Value.to_string v)
          | None -> ""))
      x.locals;
    Format.fprintf ppf "@]"
end

let pp_action ppf { slow; mode } =
  match mode with
  | Absent -> Format.fprintf ppf "(%d,A)" slow
  | Read_late k -> Format.fprintf ppf "(%d,k=%d)" slow k
