# Convenience targets; the source of truth is dune.

.PHONY: build test bench-smoke fmt

build:
	dune build

test:
	dune runtest

# Run every bench kernel exactly once (no Bechamel measurement) so bench
# code cannot bit-rot unexercised.
bench-smoke:
	dune exec bench/main.exe -- --smoke

fmt:
	@dune fmt || echo "fmt skipped (ocamlformat not available)"
