# Convenience targets; the source of truth is dune.

.PHONY: build test bench-smoke bench-compare bench-baseline chaos-smoke resume-smoke oom-spill-smoke serve-smoke serve-crash-smoke serve-saturation-smoke fmt

build:
	dune build

test:
	dune runtest

# Run every bench kernel exactly once (no Bechamel measurement) so bench
# code cannot bit-rot unexercised.
bench-smoke:
	dune exec bench/main.exe -- --smoke

# Snapshot the current kernels and diff them against the committed
# baseline, kernel by kernel (current/baseline wall-time ratio).
bench-compare:
	dune exec bench/main.exe -- --json > BENCH_current.json
	bash scripts/bench_compare.sh BENCH_baseline.json BENCH_current.json

# Refresh the committed baseline after a deliberate perf change.
bench-baseline:
	dune exec bench/main.exe -- --json > BENCH_baseline.json

# One full round of the fault-injection matrix at a fixed seed: every
# (site, oracle) cell must detect its armed fault and pass its control.
chaos-smoke:
	dune exec bin/main.exe -- chaos --seed 42 --trials 66

# SIGKILL an `all --checkpoint-dir` run mid-flight, resume it, and
# require the resumed report to be byte-identical to an uninterrupted
# one at --jobs 1 and --jobs 4.
resume-smoke:
	bash scripts/resume_smoke.sh

# Force the frontier's spill-to-disk tier with a tight soft memory
# watermark and require the spilled report to be byte-identical to the
# in-core one at --jobs 1 and 4, with ENOSPC fallback and the --max-mem
# hard-trip exit code along for the ride.
oom-spill-smoke:
	bash scripts/oom_spill_smoke.sh

# Start the verification daemon, replay mixed queries from concurrent
# clients at --jobs 1 and 4, diff everything against the one-shot CLI,
# and require clean exits via both the shutdown op and SIGTERM.
serve-smoke:
	bash scripts/serve_smoke.sh

# SIGKILL the supervised daemon mid-batch and require the respawned
# incarnation + replaying client to reproduce the crash-free bytes at
# --jobs 1 and 4.
serve-crash-smoke:
	bash scripts/serve_crash_smoke.sh

# Flood one connection past its per-client cap while a well-behaved
# client works a mixed batch: the flood must shed with structured
# per-client responses, the polite client must complete with one-shot
# bytes, and the daemon must exit clean.
serve-saturation-smoke:
	bash scripts/serve_saturation_smoke.sh

fmt:
	@dune fmt || echo "fmt skipped (ocamlformat not available)"
