#!/usr/bin/env bash
# Crash smoke: the supervised daemon must be indistinguishable, byte
# for byte, from one that never crashed.  A supervised daemon is
# started with a spill dir and a pid file; mid-batch, the live daemon
# incarnation (the pid in the pid file, never the supervisor) is
# SIGKILLed.  The supervisor must respawn it on the same socket, the
# resilient client must reconnect and replay, and the surviving
# response stream must diff clean against a crash-free reference run
# -- at --jobs 1 and --jobs 4, with the two jobs counts also diffing
# clean against each other.
set -euo pipefail

cd "$(dirname "$0")/.."
dune build bin/main.exe
BIN=_build/default/bin/main.exe

WORK="$(mktemp -d "${TMPDIR:-/tmp}/lsrv-crash.XXXXXX")"
cleanup() {
  # the supervisor forwards TERM to the live incarnation
  [ -n "${sup:-}" ] && kill -TERM "$sup" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# A batch long enough that a mid-batch kill leaves work on both sides
# of the crash.  Repeats (ids 6-10 = ids 1-5) exercise replay through
# the reloaded result cache.
cat > "$WORK/requests.jsonl" <<'EOF'
{"id":1,"op":"classify-valence","model":"sync","n":3,"t":1,"depth":3}
{"id":2,"op":"sweep","model":"iis","n":3,"t":1,"depth":2}
{"id":3,"op":"classify-valence","model":"mobile","n":3,"t":1,"depth":2}
{"id":4,"op":"run-experiment","experiment":"E1"}
{"id":5,"op":"sweep","model":"sync","n":3,"t":1,"depth":2}
{"id":6,"op":"classify-valence","model":"sync","n":3,"t":1,"depth":3}
{"id":7,"op":"sweep","model":"iis","n":3,"t":1,"depth":2}
{"id":8,"op":"classify-valence","model":"mobile","n":3,"t":1,"depth":2}
{"id":9,"op":"run-experiment","experiment":"E1"}
{"id":10,"op":"sweep","model":"sync","n":3,"t":1,"depth":2}
EOF

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "serve-crash-smoke: socket $1 never appeared" >&2
  return 1
}

# the supervisor writes the pid file just after forking the child; the
# socket can win that race, so wait for both
wait_for_file() {
  for _ in $(seq 1 100); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  echo "serve-crash-smoke: file $1 never appeared" >&2
  return 1
}

# Crash-free reference: a plain (unsupervised) daemon answering the
# same batch.  Raw response lines are what the recovered runs must
# reproduce exactly.
ref_sock="$WORK/ref.sock"
"$BIN" serve --socket "$ref_sock" --request-timeout 0 &
ref=$!
wait_for_socket "$ref_sock"
"$BIN" serve-client --socket "$ref_sock" < "$WORK/requests.jsonl" > "$WORK/reference.txt"
echo '{"op":"shutdown"}' | "$BIN" serve-client --socket "$ref_sock" > /dev/null
wait "$ref"

for jobs in 1 4; do
  sock="$WORK/j$jobs.sock"
  pidfile="$WORK/j$jobs.pid"
  spill="$WORK/spill-j$jobs"

  "$BIN" serve --socket "$sock" --jobs "$jobs" --request-timeout 0 \
    --supervise --pid-file "$pidfile" --spill-dir "$spill" --spill-every 1 &
  sup=$!
  wait_for_socket "$sock"
  wait_for_file "$pidfile"
  first_pid="$(cat "$pidfile")"

  # the client replays the batch; give it a generous per-request
  # deadline so a respawn window is never mistaken for a dead daemon
  "$BIN" serve-client --socket "$sock" --timeout 60 \
    < "$WORK/requests.jsonl" > "$WORK/recovered-j$jobs.txt" &
  client=$!

  # SIGKILL the daemon incarnation mid-batch (the pid file always
  # names the live child, never the supervisor)
  sleep 0.2
  kill -KILL "$first_pid" 2>/dev/null || true

  if ! wait "$client"; then
    echo "serve-crash-smoke: jobs=$jobs client did not survive the crash" >&2
    exit 1
  fi

  # the supervisor respawned: a new incarnation pid took the pid file
  second_pid="$(cat "$pidfile")"
  if [ "$first_pid" = "$second_pid" ]; then
    echo "serve-crash-smoke: jobs=$jobs daemon was never respawned" >&2
    exit 1
  fi

  # recovered responses are byte-identical to the crash-free reference
  diff "$WORK/reference.txt" "$WORK/recovered-j$jobs.txt"

  # drain cleanly through the supervisor (TERM is forwarded)
  kill -TERM "$sup"
  code=0
  wait "$sup" || code=$?
  sup=
  if [ "$code" -ne 0 ]; then
    echo "serve-crash-smoke: jobs=$jobs supervisor exited $code" >&2
    exit 1
  fi
  echo "serve-crash-smoke: jobs=$jobs OK (killed $first_pid, respawned $second_pid)"
done

# recovery is independent of the worker count
diff "$WORK/recovered-j1.txt" "$WORK/recovered-j4.txt"

echo "serve-crash-smoke: PASS"
