#!/usr/bin/env bash
# Compare two `bench --json` snapshots kernel by kernel.
#
#   bench_compare.sh BASELINE.json CURRENT.json [max_ratio]
#
# Prints one row per kernel with the current/baseline wall-time ratio
# (kernels present in only one snapshot are skipped by the join).  With
# a third argument, exits 1 if any kernel's ratio exceeds it -- the
# kernels are timed single-shot, so a gate tighter than ~2x will flap.
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 BASELINE.json CURRENT.json [max_ratio]" >&2
  exit 2
fi

base=$1
cur=$2
max=${3:-}

extract() {
  sed -n 's/.*"kernel": "\([^"]*\)".*"wall_ns": \([0-9]*\).*/\1 \2/p' "$1" | sort
}

join -j 1 <(extract "$base") <(extract "$cur") |
  awk -v max="$max" '
    BEGIN { printf "%-34s %12s %12s %8s\n", "kernel", "base_ns", "cur_ns", "ratio"; bad = 0 }
    {
      ratio = ($2 > 0) ? $3 / $2 : 0
      # %.0f, not %d: wall times past 2^31 ns (the saturation kernels)
      # would clamp under 32-bit awk integer formatting
      printf "%-34s %12.0f %12.0f %8.2f\n", $1, $2, $3, ratio
      if (max != "" && ratio > max + 0) bad++
    }
    END {
      if (bad > 0) {
        printf "%d kernel(s) regressed beyond %sx\n", bad, max | "cat >&2"
        exit 1
      }
    }'

# Crossover assertion on the CURRENT snapshot: the packed-id valence
# cache must beat the string-keyed one.  Single-core runners time too
# noisily for a strict inequality, so the gate only arms on >= 2 cores.
if [ "$(nproc 2>/dev/null || echo 1)" -ge 2 ]; then
  extract "$cur" | awk '
    $1 == "valence/string-key" { str = $2 }
    $1 == "valence/interned"   { intern = $2 }
    END {
      if (str == "" || intern == "") {
        print "bench_compare: valence kernels missing from current snapshot" | "cat >&2"
        exit 1
      }
      if (intern >= str) {
        printf "bench_compare: valence/interned (%d ns) did not beat valence/string-key (%d ns)\n", intern, str | "cat >&2"
        exit 1
      }
      printf "valence crossover ok: interned %d ns < string-key %d ns\n", intern, str
    }'
fi
