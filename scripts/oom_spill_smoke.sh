#!/usr/bin/env bash
# Out-of-core smoke: run one (6,1) synchronic-MP sweep under a soft
# memory watermark tight enough to force the frontier's spill tier, and
# require the spilled run's report to be byte-identical to an
# unconstrained in-core reference -- at --jobs 1 and --jobs 4.
#
# Three further legs harden the contract:
#   - the spilled runs must actually have spilled ("spill segments
#     written" > 0 in --stats) and seen pressure ("memory soft events"
#     > 0), or the watermark silently stopped biting and the smoke
#     proves nothing;
#   - an ENOSPC leg re-runs the spilled sweep under a file-size rlimit
#     small enough that every segment write fails (SIGXFSZ ignored so
#     writes fail with a catchable error instead of killing the
#     process): the run must fall back to in-core, still complete with
#     an identical report, and count "spill write failures";
#   - a hard-trip leg runs with --max-mem 1 and no spill directory and
#     must exit 3 (the truncation exit code): the spill tier degrades
#     the *soft* watermark gracefully but never overrides the hard cap.
set -euo pipefail

cd "$(dirname "$0")/.."
dune build bin/main.exe
BIN=_build/default/bin/main.exe

WORK="$(mktemp -d "${TMPDIR:-/tmp}/layered-oom-spill-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

INSTANCE=(layers -m smp -n 6 -t 1 -d 2)
SOFT_MB="${OOM_SPILL_SOFT_MB:-1}"

count() { # count <file> <label>  -- integer value of a --stats counter
  awk -v lbl="$2" '
    { line = $0; sub(/^[ \t]+/, "", line) }
    index(line, lbl) == 1 { print $NF; found = 1; exit }
    END { if (!found) print 0 }' "$1"
}

for jobs in 1 4; do
  ref="$WORK/ref-j$jobs.txt"
  out="$WORK/out-j$jobs.txt"
  err="$WORK/out-j$jobs.err"
  spill="$WORK/spill-j$jobs"

  # Unconstrained in-core reference.
  "$BIN" "${INSTANCE[@]}" --jobs "$jobs" > "$ref" 2>/dev/null

  # Spilled run: soft watermark low enough that the first pressure
  # probe trips, pushing cold dedup shards and the undelivered prefix
  # to disk.  Stats go to stderr; stdout must not change at all.
  "$BIN" "${INSTANCE[@]}" --jobs "$jobs" --mem-soft "$SOFT_MB" \
    --spill-dir "$spill" --stats > "$out" 2> "$err"
  if ! diff -u "$ref" "$out"; then
    echo "oom-spill-smoke: jobs=$jobs spilled report differs from in-core" >&2
    exit 1
  fi

  segments=$(count "$err" "spill segments written")
  soft=$(count "$err" "memory soft events")
  if [ "$segments" -le 0 ] || [ "$soft" -le 0 ]; then
    echo "oom-spill-smoke: jobs=$jobs watermark never bit (segments=$segments, soft events=$soft)" >&2
    exit 1
  fi
  echo "oom-spill-smoke: jobs=$jobs OK ($segments segment(s) spilled, $soft soft event(s), report identical)"
done

# ENOSPC leg: an 8-block file-size limit makes every segment write
# fail mid-stream.  SIGXFSZ must be ignored *before* the limit applies
# (the disposition survives exec) so the write surfaces as an error the
# spill tier can absorb.  Run the prebuilt binary directly -- a dune
# wrapper would trip the limit itself.
enospc_out="$WORK/enospc.txt"
enospc_err="$WORK/enospc.err"
(
  trap '' XFSZ
  ulimit -f 8
  "$BIN" "${INSTANCE[@]}" --jobs 1 --mem-soft "$SOFT_MB" \
    --spill-dir "$WORK/spill-enospc" --stats > "$enospc_out" 2> "$enospc_err"
)
if ! diff -u "$WORK/ref-j1.txt" "$enospc_out"; then
  echo "oom-spill-smoke: ENOSPC run report differs from in-core" >&2
  exit 1
fi
failures=$(count "$enospc_err" "spill write failures")
if [ "$failures" -le 0 ]; then
  echo "oom-spill-smoke: ENOSPC leg saw no spill write failures -- limit never bit" >&2
  exit 1
fi
echo "oom-spill-smoke: ENOSPC OK ($failures failed write(s), fell back in-core, report identical)"

# Symmetry leg: the orbit-quotiented IIS sweep composed with the spill
# tier.  The --symmetry report must stay byte-identical to the
# unreduced in-core reference while expanding strictly fewer states,
# and the quotient must actually engage (orbit hits > 0).  IIS is the
# renaming-closed substrate, so (5,1) is the large-instance analogue of
# the smp leg above (fubini growth rules out n >= 7 entirely).
SYM_INSTANCE=(layers -m iis -n 5 -t 1 -d 2)
sym_ref="$WORK/sym-ref.txt"
sym_ref_err="$WORK/sym-ref.err"
sym_out="$WORK/sym-out.txt"
sym_err="$WORK/sym-out.err"
"$BIN" "${SYM_INSTANCE[@]}" --jobs 1 --stats > "$sym_ref" 2> "$sym_ref_err"
"$BIN" "${SYM_INSTANCE[@]}" --jobs 4 --symmetry --mem-soft "$SOFT_MB" \
  --spill-dir "$WORK/spill-sym" --stats > "$sym_out" 2> "$sym_err"
if ! diff -u "$sym_ref" "$sym_out"; then
  echo "oom-spill-smoke: --symmetry report differs from the unreduced run" >&2
  exit 1
fi
ref_states=$(count "$sym_ref_err" "states expanded")
sym_states=$(count "$sym_err" "states expanded")
orbit_hits=$(count "$sym_err" "orbit hits")
if [ "$sym_states" -ge "$ref_states" ]; then
  echo "oom-spill-smoke: --symmetry expanded $sym_states states, unreduced $ref_states -- no reduction" >&2
  exit 1
fi
if [ "$orbit_hits" -le 0 ]; then
  echo "oom-spill-smoke: --symmetry run recorded no orbit hits" >&2
  exit 1
fi
echo "oom-spill-smoke: symmetry OK ($sym_states < $ref_states states, $orbit_hits orbit hit(s), report identical)"

# Hard-trip leg: the hard cap is not negotiable.  With --max-mem 1 and
# no spill tier the sweep must truncate and exit 3.
set +e
"$BIN" "${INSTANCE[@]}" --jobs 1 --max-mem 1 > /dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 3 ]; then
  echo "oom-spill-smoke: --max-mem 1 exited $code, expected 3 (truncated)" >&2
  exit 1
fi
echo "oom-spill-smoke: hard-trip OK (exit 3 under --max-mem 1)"

echo "oom-spill-smoke: PASS"
