#!/usr/bin/env bash
# Resume smoke: SIGKILL an `all --checkpoint-dir` run mid-flight, resume
# it from its snapshots, and require the resumed report to be
# byte-identical to an uninterrupted one -- at --jobs 1 and --jobs 4.
#
# The kill is racy by design and every outcome must converge: a kill
# that lands after the run completed resumes from a complete snapshot
# set; one that lands before the first checkpoint resumes from scratch;
# one that tears a snapshot mid-write is rolled back to the previous
# intact generation by the loader.  In all cases the resumed report
# must equal the reference.
set -euo pipefail

cd "$(dirname "$0")/.."
dune build bin/main.exe
BIN=_build/default/bin/main.exe

WORK="$(mktemp -d "${TMPDIR:-/tmp}/layered-resume-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

for jobs in 1 4; do
  ref="$WORK/ref-j$jobs.md"
  out="$WORK/out-j$jobs.md"
  ckpt="$WORK/ckpt-j$jobs"

  # Uninterrupted reference.
  "$BIN" all --markdown --jobs "$jobs" > "$ref"

  # Interrupted run: a short head start, then SIGKILL -- no signal
  # handler gets a say, exactly the crash the checkpoint layer is for.
  "$BIN" all --markdown --jobs "$jobs" --checkpoint-dir "$ckpt" > /dev/null 2>&1 &
  pid=$!
  sleep "${RESUME_SMOKE_DELAY:-3}"
  kill -KILL "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  snapshots=0
  if [ -d "$ckpt" ]; then
    snapshots=$(find "$ckpt" -type f | wc -l | tr -d ' ')
  fi

  # Resume and compare.
  "$BIN" all --markdown --jobs "$jobs" --checkpoint-dir "$ckpt" --resume > "$out"
  if ! diff -u "$ref" "$out"; then
    echo "resume-smoke: jobs=$jobs report differs after resume" >&2
    exit 1
  fi
  echo "resume-smoke: jobs=$jobs OK ($snapshots snapshot(s) survived the kill)"
done

echo "resume-smoke: PASS"
