#!/usr/bin/env bash
# Serve smoke: start the daemon, replay a mixed query batch from two
# concurrent clients, and require (a) both clients' raw response lines
# to be byte-identical, (b) the same bytes again at --jobs 1 and
# --jobs 4, (c) the decoded outputs to diff clean against the one-shot
# CLI, and (d) a clean exit 0 both via the shutdown op (jobs=1) and via
# SIGTERM (jobs=4), with the socket unlinked afterwards.
#
# The batch deliberately repeats its first query (id 5 == id 1): the
# replay is served from the result cache and must still produce the
# same bytes.  Stats responses are exercised but never diffed -- their
# counters legitimately depend on interleaving.
set -euo pipefail

cd "$(dirname "$0")/.."
dune build bin/main.exe
BIN=_build/default/bin/main.exe

WORK="$(mktemp -d "${TMPDIR:-/tmp}/lsrv-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

cat > "$WORK/requests.jsonl" <<'EOF'
{"id":1,"op":"classify-valence","model":"sync","n":3,"t":1,"depth":3}
{"id":2,"op":"sweep","model":"iis","n":3,"t":1,"depth":2}
{"id":3,"op":"run-experiment","experiment":"E1"}
{"id":4,"op":"classify-valence","model":"mobile","n":3,"t":1,"depth":2}
{"id":5,"op":"classify-valence","model":"sync","n":3,"t":1,"depth":3}
EOF

# One-shot CLI reference for the decoded outputs, in request order.
{
  "$BIN" classify -m sync -n 3 -t 1 -d 3
  "$BIN" layers -m iis -n 3 -t 1 -d 2
  "$BIN" run E1
  "$BIN" classify -m mobile -n 3 -t 1 -d 2
  "$BIN" classify -m sync -n 3 -t 1 -d 3
} > "$WORK/oneshot.txt"

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "serve-smoke: socket $1 never appeared" >&2
  return 1
}

for jobs in 1 4; do
  sock="$WORK/j$jobs.sock"
  # --request-timeout 0: the smoke diffs must not depend on whether a
  # loaded CI box crosses a wall-clock deadline.
  "$BIN" serve --socket "$sock" --jobs "$jobs" --request-timeout 0 &
  srv=$!
  wait_for_socket "$sock"

  # Two concurrent clients replay the same batch; each connection's
  # responses must come back in request order with identical bytes.
  "$BIN" serve-client --socket "$sock" < "$WORK/requests.jsonl" > "$WORK/a-j$jobs.txt" &
  ca=$!
  "$BIN" serve-client --socket "$sock" < "$WORK/requests.jsonl" > "$WORK/b-j$jobs.txt" &
  cb=$!
  wait "$ca"
  wait "$cb"
  diff "$WORK/a-j$jobs.txt" "$WORK/b-j$jobs.txt"

  # The daemon's decoded outputs are the one-shot CLI's stdout, byte
  # for byte.
  "$BIN" serve-client --socket "$sock" --output-only < "$WORK/requests.jsonl" \
    > "$WORK/decoded-j$jobs.txt"
  diff "$WORK/oneshot.txt" "$WORK/decoded-j$jobs.txt"

  # Stats answers ok (contents not diffed).
  echo '{"id":99,"op":"stats"}' | "$BIN" serve-client --socket "$sock" \
    | grep -q '"status":"ok"'

  if [ "$jobs" -eq 1 ]; then
    echo '{"op":"shutdown"}' | "$BIN" serve-client --socket "$sock" > /dev/null
  else
    kill -TERM "$srv"
  fi
  code=0
  wait "$srv" || code=$?
  if [ "$code" -ne 0 ]; then
    echo "serve-smoke: jobs=$jobs daemon exited $code" >&2
    exit 1
  fi
  if [ -e "$sock" ]; then
    echo "serve-smoke: jobs=$jobs socket left behind" >&2
    exit 1
  fi
  echo "serve-smoke: jobs=$jobs OK"
done

# Responses are independent of the worker count.
diff "$WORK/a-j1.txt" "$WORK/a-j4.txt"

echo "serve-smoke: PASS"
