#!/usr/bin/env bash
# Saturation smoke: overload isolation under a multi-client burst.
#
# One aggressive client pipelines a 24-deep flood of the same compute
# query on a single connection against a daemon running with
# --client-cap 4; a concurrent well-behaved client works through a
# mixed batch.  Gates:
#
#   (a) the aggressive connection is shed deterministically -- its
#       over-cap requests come back as structured overloaded responses
#       with reason "per-client" (never a dropped connection, never a
#       starved daemon);
#   (b) the well-behaved client completes every request, and its
#       decoded outputs diff clean against the one-shot CLI;
#   (c) the daemon exits 0 via the shutdown op with its socket
#       unlinked.
#
# The per-client cap is the isolation boundary: a flood must only eat
# its own connection's budget, so (b) holding while (a) fires is the
# entire point of the test.
set -euo pipefail

cd "$(dirname "$0")/.."
dune build bin/main.exe
BIN=_build/default/bin/main.exe

WORK="$(mktemp -d "${TMPDIR:-/tmp}/lsrv-sat-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

# The flood: one moderately heavy query, 24 ids deep on one connection.
# With --client-cap 4 the first four are admitted (coalescing into one
# single-flight computation) and the rest must shed per-client.
: > "$WORK/flood.jsonl"
for id in $(seq 1 24); do
  echo "{\"id\":$id,\"op\":\"classify-valence\",\"model\":\"mp\",\"n\":3,\"t\":1,\"depth\":3}" \
    >> "$WORK/flood.jsonl"
done

cat > "$WORK/polite.jsonl" <<'EOF'
{"id":101,"op":"classify-valence","model":"sync","n":4,"t":1,"depth":5}
{"id":102,"op":"classify-valence","model":"mobile","n":4,"t":1,"depth":4}
{"id":103,"op":"classify-valence","model":"sm","n":3,"t":1,"depth":4}
{"id":104,"op":"classify-valence","model":"iis","n":3,"t":1,"depth":3}
{"id":105,"op":"classify-valence","model":"smp","n":3,"t":1,"depth":3}
EOF

# One-shot CLI reference for the polite client's decoded outputs.
{
  "$BIN" classify -m sync -n 4 -t 1 -d 5
  "$BIN" classify -m mobile -n 4 -t 1 -d 4
  "$BIN" classify -m sm -n 3 -t 1 -d 4
  "$BIN" classify -m iis -n 3 -t 1 -d 3
  "$BIN" classify -m smp -n 3 -t 1 -d 3
} > "$WORK/oneshot.txt"

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "serve-saturation-smoke: socket $1 never appeared" >&2
  return 1
}

sock="$WORK/sat.sock"
"$BIN" serve --socket "$sock" --jobs 4 --client-cap 4 --request-timeout 0 &
srv=$!
wait_for_socket "$sock"

# Flood and polite batch race each other on separate connections.  The
# flood pipelines (all 24 requests in flight on one connection) -- the
# per-client cap is invisible to a one-at-a-time exchange.
"$BIN" serve-client --socket "$sock" --pipeline --timeout 120 \
  < "$WORK/flood.jsonl" > "$WORK/flood-out.txt" &
flood=$!
"$BIN" serve-client --socket "$sock" --output-only --timeout 120 \
  < "$WORK/polite.jsonl" > "$WORK/polite-out.txt" &
polite=$!

# (b) the well-behaved client must complete -- this wait gates the run.
if ! wait "$polite"; then
  echo "serve-saturation-smoke: well-behaved client failed under flood" >&2
  exit 1
fi
wait "$flood"

diff "$WORK/oneshot.txt" "$WORK/polite-out.txt"

# (a) the flood was shed with structured per-client responses.
if ! grep -q '"reason":"per-client"' "$WORK/flood-out.txt"; then
  echo "serve-saturation-smoke: flood was never shed per-client" >&2
  exit 1
fi
# ...but its in-cap requests were still answered ok.
if ! grep -q '"status":"ok"' "$WORK/flood-out.txt"; then
  echo "serve-saturation-smoke: flood got no ok answers at all" >&2
  exit 1
fi

# (c) clean shutdown over the wire, socket unlinked.
echo '{"op":"shutdown"}' | "$BIN" serve-client --socket "$sock" > /dev/null
code=0
wait "$srv" || code=$?
if [ "$code" -ne 0 ]; then
  echo "serve-saturation-smoke: daemon exited $code" >&2
  exit 1
fi
if [ -e "$sock" ]; then
  echo "serve-saturation-smoke: socket left behind" >&2
  exit 1
fi

echo "serve-saturation-smoke: PASS"
