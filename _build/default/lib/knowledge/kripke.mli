(** Finite Kripke structures over explored state spaces, for the
    knowledge-theoretic reading of the synchronous results (the paper's
    Section 6 discussion follows Dwork-Moses [11], where decision times in
    the crash model are characterised by states of knowledge).

    Worlds are the distinct global states of an explored system; process
    [i] considers [u] possible at [w] when its local state is the same in
    both (the standard synchronous interpreted-systems view — local states
    include the round, so knowledge never crosses rounds).

    Propositions are extensional (bit-vectors over worlds); [K i], [E G]
    and the greatest-fixpoint [C G] are computed by set operations. *)

open Layered_core

type 'a t

(** [create ~n ~key ~local_key worlds] de-duplicates [worlds] by [key] and
    indexes process views by [local_key]. *)
val create :
  n:int -> key:('a -> string) -> local_key:(Pid.t -> 'a -> string) -> 'a list -> 'a t

val world_count : 'a t -> int
val worlds : 'a t -> 'a list

(** A proposition, as its extension. *)
type prop

val prop_of : 'a t -> ('a -> bool) -> prop
val holds_at : 'a t -> prop -> 'a -> bool

(** Number of worlds satisfying the proposition. *)
val extension_size : prop -> int

val negate : 'a t -> prop -> prop
val conj : prop -> prop -> prop

(** [knows t i p]: the worlds where process [i] knows [p] — all worlds
    [i]-indistinguishable from them satisfy [p]. *)
val knows : 'a t -> Pid.t -> prop -> prop

(** Worlds process [i] considers possible at [w] (its equivalence class,
    [w] included) — for exhibiting epistemic witnesses. *)
val indistinguishable : 'a t -> Pid.t -> 'a -> 'a list

(** [everyone t members p]: worlds [w] where every process in
    [members w] knows [p].  The membership function supports the
    Dwork-Moses "non-faulty" indexical groups (e.g. the processes not
    failed at [w]). *)
val everyone : 'a t -> members:('a -> Pid.t list) -> prop -> prop

(** Greatest fixpoint of {!everyone}: common knowledge among the
    (indexical) group. *)
val common : 'a t -> members:('a -> Pid.t list) -> prop -> prop

(** {1 Nonfaulty-relativized belief (Dwork-Moses)}

    In the crash model a process cannot distinguish worlds in which it has
    itself been failed by the environment, so plain [K i] is too strong:
    a correctly deciding process does not {e know} its decision is safe,
    it knows it {e conditional on its own correctness}.  [believes] is
    knowledge relativized to a world/process predicate (typically "[i] is
    not failed"): [B_i p] holds at [w] iff [p] holds at every
    [i]-indistinguishable world where [alive i] holds. *)

val believes : 'a t -> Pid.t -> alive:(Pid.t -> 'a -> bool) -> prop -> prop

(** [everyone_believes t ~members ~alive p]: every member believes. *)
val everyone_believes :
  'a t -> members:('a -> Pid.t list) -> alive:(Pid.t -> 'a -> bool) -> prop -> prop

(** Greatest fixpoint of {!everyone_believes}: the Dwork-Moses style
    common belief among the non-faulty. *)
val common_belief :
  'a t -> members:('a -> Pid.t list) -> alive:(Pid.t -> 'a -> bool) -> prop -> prop
