lib/knowledge/kripke.mli: Layered_core Pid
