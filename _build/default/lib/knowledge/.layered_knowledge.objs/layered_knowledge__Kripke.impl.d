lib/knowledge/kripke.ml: Array Hashtbl List
