

type 'a t = {
  n : int;
  worlds : 'a array;
  index : (string, int) Hashtbl.t;
  key : 'a -> string;
  (* classes.(i - 1): map from process i's local key to the worlds
     sharing it. *)
  classes : (string, int list) Hashtbl.t array;
}

let create ~n ~key ~local_key worlds =
  let index = Hashtbl.create 1024 in
  let distinct =
    List.filter
      (fun w ->
        let k = key w in
        if Hashtbl.mem index k then false
        else begin
          Hashtbl.add index k (Hashtbl.length index);
          true
        end)
      worlds
  in
  let worlds = Array.of_list distinct in
  let classes =
    Array.init n (fun idx ->
        let tbl = Hashtbl.create 256 in
        Array.iteri
          (fun wi w ->
            let lk = local_key (idx + 1) w in
            let existing = try Hashtbl.find tbl lk with Not_found -> [] in
            Hashtbl.replace tbl lk (wi :: existing))
          worlds;
        tbl)
  in
  (* Rebuild the index so it maps keys to array positions. *)
  Hashtbl.reset index;
  Array.iteri (fun wi w -> Hashtbl.replace index (key w) wi) worlds;
  { n; worlds; index; key; classes }

let world_count t = Array.length t.worlds
let worlds t = Array.to_list t.worlds

type prop = bool array

let prop_of t pred = Array.map pred t.worlds

let holds_at t prop w =
  match Hashtbl.find_opt t.index (t.key w) with
  | Some wi -> prop.(wi)
  | None -> invalid_arg "Kripke.holds_at: unknown world"

let extension_size prop = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 prop

let negate _t prop = Array.map not prop
let conj a b = Array.map2 ( && ) a b

let local_classes t i = t.classes.(i - 1)

let knows t i prop =
  let result = Array.make (Array.length t.worlds) false in
  Hashtbl.iter
    (fun _ members ->
      let all = List.for_all (fun wi -> prop.(wi)) members in
      if all then List.iter (fun wi -> result.(wi) <- true) members)
    (local_classes t i);
  result

let everyone t ~members prop =
  let per_process = Array.init t.n (fun idx -> knows t (idx + 1) prop) in
  Array.mapi
    (fun wi w -> List.for_all (fun i -> per_process.(i - 1).(wi)) (members w))
    t.worlds

let common t ~members prop =
  let rec fix current =
    let next = conj current (everyone t ~members current) in
    if next = current then current else fix next
  in
  fix (conj prop (everyone t ~members prop))

let indistinguishable t i w =
  match Hashtbl.find_opt t.index (t.key w) with
  | None -> invalid_arg "Kripke.indistinguishable: unknown world"
  | Some wi ->
      let result = ref [] in
      Hashtbl.iter
        (fun _ members ->
          if List.mem wi members then
            result := List.map (fun j -> t.worlds.(j)) members)
        (local_classes t i);
      !result

let believes t i ~alive prop =
  let result = Array.make (Array.length t.worlds) false in
  Hashtbl.iter
    (fun _ members ->
      let all =
        List.for_all (fun wi -> (not (alive i t.worlds.(wi))) || prop.(wi)) members
      in
      if all then List.iter (fun wi -> result.(wi) <- true) members)
    (local_classes t i);
  result

let everyone_believes t ~members ~alive prop =
  let per_process = Array.init t.n (fun idx -> believes t (idx + 1) ~alive prop) in
  Array.mapi
    (fun wi w -> List.for_all (fun i -> per_process.(i - 1).(wi)) (members w))
    t.worlds

let common_belief t ~members ~alive prop =
  let rec fix current =
    let next = conj current (everyone_believes t ~members ~alive current) in
    if next = current then current else fix next
  in
  fix (conj prop (everyone_believes t ~members ~alive prop))
