open Layered_core

type slowness = Absent | Late of int
type action = { slow : Pid.t; mode : slowness }

module Make (P : Layered_sync.Protocol.S) = struct
  type packet = { src : Pid.t; dst : Pid.t; msg : P.msg; sent : int }
  type state = { round : int; locals : P.local array; transit : packet list }

  let n_of x = Array.length x.locals

  let initial ~inputs =
    let n = Array.length inputs in
    {
      round = 0;
      locals = Array.init n (fun i -> P.init ~n ~pid:(i + 1) ~input:inputs.(i));
      transit = [];
    }

  let initial_states ~n ~values =
    List.map (fun inputs -> initial ~inputs) (Inputs.vectors ~n ~values)

  let actions ~n =
    List.concat_map
      (fun j ->
        { slow = j; mode = Absent }
        :: List.map (fun k -> { slow = j; mode = Late k }) (0 :: Pid.all n))
      (Pid.all n)

  let apply x { slow = j; mode } =
    let n = n_of x in
    let round = x.round + 1 in
    let sends i = not (i = j && mode = Absent) in
    let fresh =
      List.concat_map
        (fun i ->
          if not (sends i) then []
          else
            List.filter_map
              (fun d ->
                match P.send ~n ~round ~pid:i x.locals.(i - 1) ~dest:d with
                | Some msg -> Some { src = i; dst = d; msg; sent = round }
                | None -> None)
              (Pid.others n i))
        (Pid.all n)
    in
    let transit = x.transit @ fresh in
    let receives i = not (i = j && mode = Absent) in
    (* Early proper readers miss the slow process's fresh message. *)
    let eligible i p =
      p.dst = i
      &&
      match mode with
      | Late k when i <> j && i <= k -> not (p.src = j && p.sent = round)
      | Late _ | Absent -> true
    in
    (* FIFO: deliver the oldest eligible packet per source. *)
    let indexed = List.mapi (fun idx p -> (idx, p)) transit in
    let delivered = Hashtbl.create 16 in
    let received_by i =
      let inbox = Array.make n None in
      List.iter
        (fun (idx, p) ->
          if eligible i p && inbox.(p.src - 1) = None then begin
            inbox.(p.src - 1) <- Some p.msg;
            Hashtbl.replace delivered idx ()
          end)
        indexed;
      inbox
    in
    let locals =
      Array.init n (fun idx ->
          let i = idx + 1 in
          if receives i then P.step ~n ~round ~pid:i x.locals.(idx) ~received:(received_by i)
          else x.locals.(idx))
    in
    let transit =
      List.filter_map
        (fun (idx, p) -> if Hashtbl.mem delivered idx then None else Some p)
        indexed
    in
    { round; locals; transit }

  let key x =
    let buf = Buffer.create 64 in
    Buffer.add_string buf (string_of_int x.round);
    List.iter
      (fun p ->
        Buffer.add_char buf '|';
        Buffer.add_string buf
          (Printf.sprintf "%d>%d@%d:%s" p.src p.dst p.sent (P.msg_key p.msg)))
      x.transit;
    Array.iter
      (fun l ->
        Buffer.add_char buf '!';
        Buffer.add_string buf (P.key l))
      x.locals;
    Buffer.contents buf

  let equal x y = String.equal (key x) (key y)

  let smp x =
    let seen = Hashtbl.create 64 in
    List.filter_map
      (fun a ->
        let y = apply x a in
        let k = key y in
        if Hashtbl.mem seen k then None
        else begin
          Hashtbl.add seen k ();
          Some y
        end)
      (actions ~n:(n_of x))

  let decisions x = Array.map P.decision x.locals

  let decided_vset x =
    Array.fold_left
      (fun acc l -> match P.decision l with Some v -> Vset.add v acc | None -> acc)
      Vset.empty x.locals

  let terminal x = Array.for_all (fun l -> P.decision l <> None) x.locals
  let in_transit x = List.length x.transit

  let packet_key p = Printf.sprintf "%d>%d@%d:%s" p.src p.dst p.sent (P.msg_key p.msg)

  let agree_modulo x y j =
    let n = n_of x in
    x.round = y.round
    && n = n_of y
    && List.equal (fun p q -> String.equal (packet_key p) (packet_key q)) x.transit y.transit
    && List.for_all
         (fun i ->
           i = j || String.equal (P.key x.locals.(i - 1)) (P.key y.locals.(i - 1)))
         (Pid.all n)

  let similar x y = List.exists (agree_modulo x y) (Pid.all (n_of x))
  let explore_spec = { Explore.succ = smp; key }
  let valence_spec ~succ = { Valence.succ; key; decided = decided_vset; terminal }

  let pp ppf x =
    Format.fprintf ppf "@[<v>round %d, %d in transit@," x.round (in_transit x);
    Array.iteri
      (fun idx l ->
        Format.fprintf ppf "  p%d: %a%s@," (idx + 1) P.pp l
          (match P.decision l with
          | Some v -> Printf.sprintf "  [decided %s]" (Value.to_string v)
          | None -> ""))
      x.locals;
    Format.fprintf ppf "@]"
end

let pp_action ppf { slow; mode } =
  match mode with
  | Absent -> Format.fprintf ppf "(%d,A)" slow
  | Late k -> Format.fprintf ppf "(%d,k=%d)" slow k
