lib/async_mp/protocol.ml: Format Layered_core Pid Value
