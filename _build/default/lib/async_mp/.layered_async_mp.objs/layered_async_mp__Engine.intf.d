lib/async_mp/engine.mli: Explore Format Layered_core Pid Protocol Valence Value Vset
