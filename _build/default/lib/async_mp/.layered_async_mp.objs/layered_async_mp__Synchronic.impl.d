lib/async_mp/synchronic.ml: Array Buffer Explore Format Hashtbl Inputs Layered_core Layered_sync List Pid Printf String Valence Value Vset
