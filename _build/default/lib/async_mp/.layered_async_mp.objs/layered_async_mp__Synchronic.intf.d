lib/async_mp/synchronic.mli: Explore Format Layered_core Layered_sync Pid Valence Value Vset
