(** Deterministic protocols for the asynchronous message-passing model
    (Section 5.1, permutation layering).

    A {e local phase} of process [i] sends at most one message to each
    other process — with content determined by [i]'s state at the {e start}
    of the phase — and delivers every outstanding message addressed to [i].
    Determining the message content before the phase's deliveries is the
    message-passing counterpart of the write-then-snapshot structure of
    immediate-snapshot executions, and is what makes a layer's states that
    differ in one process's schedule position agree modulo that process
    (the paper's transposition argument). *)

open Layered_core

module type S = sig
  type local
  type msg

  val name : string
  val init : n:int -> pid:Pid.t -> input:Value.t -> local

  (** Messages to send this phase, computed from the phase-start state: at
      most one per destination, destinations distinct from [pid]. *)
  val send : n:int -> pid:Pid.t -> local -> (Pid.t * msg) list

  (** Consume the drained inbox (in arrival order). *)
  val step : n:int -> pid:Pid.t -> local -> inbox:(Pid.t * msg) list -> local

  val decision : local -> Value.t option
  val key : local -> string
  val msg_key : msg -> string
  val pp : Format.formatter -> local -> unit
end
