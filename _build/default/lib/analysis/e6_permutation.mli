(** Experiment E6 — Section 5.1, the permutation layering [S^per] for
    asynchronous message passing (the message-passing analogue of
    immediate-snapshot executions).

    Checks:
    - the FLP diamond collapsed to state equality:
      [x[p1..pn][p1..p_{n-1}] = x[p1..p_{n-1}][pn, p1..p_{n-1}]];
    - the transposition bridge: the state reached by a full permutation is
      similar to the one with an adjacent pair made concurrent, which is
      similar to the transposed permutation — whence the full-action part
      of every layer is similarity connected;
    - every layer [S^per(x)] is valence connected, and the ever-bivalent
      chain (the FLP impossibility in this submodel). *)

val run : unit -> Layered_core.Report.row list
