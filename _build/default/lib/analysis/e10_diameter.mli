(** Experiment E10 — Lemma 7.6 / Theorem 7.7: similarity-diameter
    composition.

    If [X] is similarity connected and every layer [S(x)] is similarity
    connected (with an arbitrary crash failure displayed on [X]), then
    [S(X)] is similarity connected with
    [diam(S(X)) <= dX * dY + dX + dY].

    We iterate the [S^t] layering of the t-resilient synchronous model
    level by level from [Con_0] (levels [m <= t], where one more crash is
    still affordable and the lemma's display condition holds), measuring
    the exact similarity diameters of the level sets and of every layer,
    and checking connectivity and the composed bound.  The per-level
    maximum layer diameter (the paper's [d_Y^m = 2(n - m)] estimate) is
    reported alongside. *)

val run : unit -> Layered_core.Report.row list
