open Layered_core

type outcome = {
  states : int;
  bound_ok : bool;
  validity_ok : bool;
  liveness_ok : bool;
  two_witnessed : bool;
}

(* Shared measurement: explore the layered submodel from every initial
   assignment, checking the 2-set bound and validity; run the fair
   schedule for liveness. *)
let measure (type a) ~(initials : (Vset.t * a) list) ~(succ : a -> a list)
    ~(key : a -> string) ~(decided : a -> Vset.t) ~(fair : a -> a)
    ~(terminal : a -> bool) ~depth =
  let spec = { Explore.succ; key } in
  let states = ref 0
  and bound_ok = ref true
  and validity_ok = ref true
  and liveness_ok = ref true
  and two_witnessed = ref false in
  List.iter
    (fun (allowed, x0) ->
      if not (terminal (fair (fair x0))) then liveness_ok := false;
      List.iter
        (fun x ->
          incr states;
          let d = decided x in
          if Vset.cardinal d > 2 then bound_ok := false;
          if Vset.cardinal d = 2 then two_witnessed := true;
          if not (Vset.subset d allowed) then validity_ok := false)
        (Explore.reachable spec ~depth x0))
    initials;
  {
    states = !states;
    bound_ok = !bound_ok;
    validity_ok = !validity_ok;
    liveness_ok = !liveness_ok;
    two_witnessed = !two_witnessed;
  }

let values = [ Value.zero; Value.one; Value.of_int 2 ]

let mp ~n ~depth =
  let module P = (val Layered_protocols.Mp_kset.make ~n) in
  let module E = Layered_async_mp.Engine.Make (P) in
  let full = List.map (fun i -> Layered_async_mp.Engine.Solo i) (Pid.all n) in
  measure
    ~initials:
      (List.map
         (fun inputs -> (Vset.of_list (Array.to_list inputs), E.initial ~inputs))
         (Inputs.vectors ~n ~values))
    ~succ:E.sper ~key:E.key ~decided:E.decided_vset
    ~fair:(fun x -> E.apply x full)
    ~terminal:E.terminal ~depth

let sm ~n ~depth =
  let module P = (val Layered_protocols.Sm_kset.make ()) in
  let module E = Layered_async_sm.Engine.Make (P) in
  let clean = { Layered_async_sm.Engine.slow = 1; mode = Layered_async_sm.Engine.Read_late 0 } in
  measure
    ~initials:
      (List.map
         (fun inputs -> (Vset.of_list (Array.to_list inputs), E.initial ~inputs))
         (Inputs.vectors ~n ~values))
    ~succ:E.srw ~key:E.key ~decided:E.decided_vset
    ~fair:(fun x -> E.apply x clean)
    ~terminal:E.terminal ~depth

let iis ~n ~depth =
  let module P = (val Layered_protocols.Iis_kset.make ()) in
  let module E = Layered_iis.Engine.Make (P) in
  measure
    ~initials:
      (List.map
         (fun inputs -> (Vset.of_list (Array.to_list inputs), E.initial ~inputs))
         (Inputs.vectors ~n ~values))
    ~succ:E.layer ~key:E.key ~decided:E.decided_vset
    ~fair:(fun x -> E.apply x [ Pid.all n ])
    ~terminal:E.terminal ~depth

let rows_of ~substrate ~n ~depth o =
  let params = Printf.sprintf "%s n=%d |V|=3 depth=%d" substrate n depth in
  [
    Report.check ~id:"E19" ~claim:"Cor 7.3 equivalence" ~params
      ~expected:"<=2 distinct decisions at every reachable state"
      ~measured:(Printf.sprintf "holds over %d states" o.states)
      (o.bound_ok && o.validity_ok);
    Report.check ~id:"E19" ~claim:"liveness + crossover" ~params
      ~expected:"fair schedules decide; some schedule splits into 2 values"
      ~measured:
        (Printf.sprintf "liveness=%b two-decision-run=%b" o.liveness_ok o.two_witnessed)
      (o.liveness_ok && o.two_witnessed);
  ]

let run () =
  rows_of ~substrate:"message-passing" ~n:3 ~depth:3 (mp ~n:3 ~depth:3)
  @ rows_of ~substrate:"shared-memory" ~n:3 ~depth:3 (sm ~n:3 ~depth:3)
  @ rows_of ~substrate:"iis" ~n:3 ~depth:3 (iis ~n:3 ~depth:3)
