(** Graphviz (DOT) export of the structures the analysis computes, for
    inspection with [dot -Tsvg].  Backs the CLI [graph] command. *)

(** [dot_of_rel ~name ~label ~rel states] renders the undirected graph
    [(states, rel)]; nodes carry [label]. *)
val dot_of_rel :
  name:string -> label:('a -> string) -> rel:('a -> 'a -> bool) -> 'a list -> string

(** Similarity graph of [Con_0] in the t-resilient synchronous model. *)
val con0_similarity : n:int -> t:int -> string

(** Similarity graph of one [S^t] layer at a bivalent initial state, with
    valence verdicts in the labels. *)
val st_layer : n:int -> t:int -> string

(** The 1-thickness graph of [C_Delta(I)] for a named task over the full
    input set.  Known names: ["consensus"], ["election"],
    ["weak-consensus"], ["identity"], ["kset2"]. *)
val task_thickness : name:string -> n:int -> string
