(** Experiment E18 — the send-omission failure model (the second failure
    type named in the paper's introduction: "sending omissions ... a
    faulty processor can fail to send messages altogether from some point
    on, and thus behave as if it has crashed").

    Crash runs are the omission runs that drop everything from the first
    drop onward, so the model strictly contains Section 6's and all lower
    bounds transfer a fortiori.  The new content is on the upper-bound
    side:

    - min-flooding (FloodSet), exhaustively correct in the crash model
      (E7), {e breaks} under send-omission — the checker finds a
      last-round-injection witness;
    - a rotating-coordinator protocol with locked votes and a claim round
      ({!Layered_protocols.Sync_coordinator}) is exhaustively correct for
      [n > 2t], deciding in exactly [3(t+1)] rounds;
    - at the boundary [n = 2t] its guarantee genuinely fails, and the
      checker exhibits it. *)

val run : unit -> Layered_core.Report.row list
