(** Experiment E5 — Lemma 5.3 / Corollary 5.4.

    The synchronic layering [S^rw] of the asynchronous read/write model:

    - every compiled layer is a legal interleaving of local phases (one
      write then one scan per participating process);
    - the proper part [Y = {x(j,k)}] of each layer is similarity
      connected, and the bridge of Lemma 5.3 holds: [x(j,n)(j,A)] and
      [x(j,A)(j,0)] agree modulo [j] — checked as state equality outside
      [j];
    - every layer [S^rw(x)] is valence connected, and a deciding protocol
      can be kept bivalent for arbitrarily many layers (the FLP-style
      impossibility, Corollary 5.4, in a submodel with only "a small
      degree of asynchrony"). *)

val run : unit -> Layered_core.Report.row list
