(** Experiment E1 — Lemma 3.1 / Lemma 3.2.

    Lemma 3.1: in a system where at most [t < n] processes fail and
    Agreement holds, every bivalent state has at least [n - t] non-failed
    processes that have not decided.  Lemma 3.2: with no finite failure,
    {e no} process has decided at a bivalent state.

    We check the implication over every reachable state of the [S^t]
    submodel for protocols whose Agreement was verified exhaustively
    (FloodSet, EIG, early-deciding FloodSet), and the Lemma 3.2 form over
    the asynchronous message-passing model before its decision horizon. *)

val run : unit -> Layered_core.Report.row list
