lib/analysis/e19_equivalence.ml: Array Explore Inputs Layered_async_mp Layered_async_sm Layered_core Layered_iis Layered_protocols List Pid Printf Report Value Vset
