lib/analysis/e19_equivalence.mli: Layered_core
