lib/analysis/sweep.mli: Format
