lib/analysis/e15_knowledge.mli: Layered_core
