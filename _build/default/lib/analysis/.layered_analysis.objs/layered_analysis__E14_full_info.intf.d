lib/analysis/e14_full_info.mli: Layered_core
