lib/analysis/e2_initial_states.mli: Layered_core
