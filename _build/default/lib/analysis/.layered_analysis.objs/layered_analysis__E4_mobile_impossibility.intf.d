lib/analysis/e4_mobile_impossibility.mli: Layered_core
