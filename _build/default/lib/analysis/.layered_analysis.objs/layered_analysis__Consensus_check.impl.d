lib/analysis/consensus_check.ml: Array Format Hashtbl Inputs Layered_core Layered_sync List Value Vset
