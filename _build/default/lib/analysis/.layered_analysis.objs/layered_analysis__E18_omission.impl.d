lib/analysis/e18_omission.ml: Format Layered_core Layered_protocols Omission_check Printf Report
