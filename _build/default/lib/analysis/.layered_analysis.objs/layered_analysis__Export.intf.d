lib/analysis/export.mli:
