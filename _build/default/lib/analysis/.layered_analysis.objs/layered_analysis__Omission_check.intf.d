lib/analysis/omission_check.mli: Format Layered_sync
