lib/analysis/e5_shared_memory.ml: Connectivity Explore Layered_async_sm Layered_core Layered_protocols Layering List Pid Printf Report Valence Value
