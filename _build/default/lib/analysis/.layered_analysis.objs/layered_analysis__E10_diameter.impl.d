lib/analysis/e10_diameter.ml: Connectivity Hashtbl Layered_core Layered_protocols Layered_sync List Printf Report Value
