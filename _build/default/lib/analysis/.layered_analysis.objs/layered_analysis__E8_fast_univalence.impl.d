lib/analysis/e8_fast_univalence.ml: Explore Layered_core Layered_protocols Layered_sync List Printf Report Valence Value
