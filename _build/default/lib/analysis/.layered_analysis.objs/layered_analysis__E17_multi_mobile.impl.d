lib/analysis/e17_multi_mobile.ml: Connectivity Layered_core Layered_protocols Layered_sync Layering List Printf Report Valence Value Vset
