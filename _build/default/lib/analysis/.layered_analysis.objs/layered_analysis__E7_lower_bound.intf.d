lib/analysis/e7_lower_bound.mli: Layered_core
