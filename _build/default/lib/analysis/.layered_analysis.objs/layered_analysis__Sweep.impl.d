lib/analysis/sweep.ml: Array Explore Format Fun Hashtbl Layered_async_mp Layered_async_sm Layered_core Layered_iis Layered_protocols Layered_sync List Printf Value
