lib/analysis/export.ml: Array Buffer Complex Format Layered_core Layered_protocols Layered_sync Layered_topology Layering List Printf Simplex String Task Valence Value
