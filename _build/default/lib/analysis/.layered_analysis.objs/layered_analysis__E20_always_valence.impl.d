lib/analysis/e20_always_valence.ml: Array Complex Connectivity Covering Layered_core Layered_protocols Layered_sync Layered_topology Layering List Option Pid Printf Report Simplex Valence Value Vset
