lib/analysis/consensus_check.mli: Format Layered_sync
