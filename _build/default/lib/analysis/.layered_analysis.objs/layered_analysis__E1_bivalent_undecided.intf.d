lib/analysis/e1_bivalent_undecided.mli: Layered_core
