lib/analysis/e6_permutation.mli: Layered_core
