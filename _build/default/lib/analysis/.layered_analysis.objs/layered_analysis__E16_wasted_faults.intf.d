lib/analysis/e16_wasted_faults.mli: Layered_core
