lib/analysis/e1_bivalent_undecided.ml: Array Explore Layered_async_mp Layered_core Layered_protocols Layered_sync List Printf Report Valence Value Vset
