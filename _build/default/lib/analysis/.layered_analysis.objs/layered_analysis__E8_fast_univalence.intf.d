lib/analysis/e8_fast_univalence.mli: Layered_core
