lib/analysis/e9_task_solvability.ml: Array Complex Covering Layered_async_mp Layered_core Layered_protocols Layered_topology List Pid Printf Report Simplex Solvability Task Valence Value Vset
