lib/analysis/e9_task_solvability.mli: Layered_core
