lib/analysis/e5_shared_memory.mli: Layered_core
