lib/analysis/e15_knowledge.ml: Array Hashtbl Layered_core Layered_knowledge Layered_protocols Layered_sync List Printf Report Value Vset
