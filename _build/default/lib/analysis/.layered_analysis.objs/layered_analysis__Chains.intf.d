lib/analysis/chains.mli: Format
