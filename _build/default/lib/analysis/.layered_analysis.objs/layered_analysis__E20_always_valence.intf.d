lib/analysis/e20_always_valence.mli: Layered_core
