lib/analysis/e10_diameter.mli: Layered_core
