lib/analysis/omission_check.ml: Array Format Hashtbl Inputs Layered_core Layered_sync List Value Vset
