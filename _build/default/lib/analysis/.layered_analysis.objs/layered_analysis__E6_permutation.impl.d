lib/analysis/e6_permutation.ml: Connectivity Explore Fun Layered_async_mp Layered_core Layered_protocols Layering List Pid Printf Report Valence Value
