lib/analysis/e18_omission.mli: Layered_core
