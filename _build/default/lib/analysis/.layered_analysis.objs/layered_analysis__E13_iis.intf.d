lib/analysis/e13_iis.mli: Layered_core
