lib/analysis/e12_covering_chain.ml: Array Complex Connectivity Covering Format Layered_core Layered_protocols Layered_sync Layered_topology Layering List Pid Printf Report Simplex Value Vset
