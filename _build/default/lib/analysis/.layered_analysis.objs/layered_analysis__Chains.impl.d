lib/analysis/chains.ml: Format Layered_async_mp Layered_async_sm Layered_core Layered_iis Layered_protocols Layered_sync Layering List Printf Valence Value Vset
