lib/analysis/e7_lower_bound.ml: Array Bool Consensus_check Format Layered_core Layered_protocols Layered_sync Layering List Printf Report Valence Value
