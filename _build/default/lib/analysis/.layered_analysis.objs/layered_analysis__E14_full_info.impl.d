lib/analysis/e14_full_info.ml: Connectivity Layered_async_mp Layered_async_sm Layered_core Layered_iis Layered_protocols Layered_sync Layering List Pid Printf Report Valence Value
