lib/analysis/e11_kset_protocol.ml: Array Explore Inputs Layered_async_mp Layered_core Layered_protocols List Pid Printf Report Value Vset
