lib/analysis/registry.mli: Layered_core
