lib/analysis/e3_s1_layer.mli: Layered_core
