lib/analysis/e17_multi_mobile.mli: Layered_core
