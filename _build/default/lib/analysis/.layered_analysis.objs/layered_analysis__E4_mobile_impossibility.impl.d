lib/analysis/e4_mobile_impossibility.ml: Layered_core Layered_protocols Layered_sync Layering List Printf Report Valence Value Vset
