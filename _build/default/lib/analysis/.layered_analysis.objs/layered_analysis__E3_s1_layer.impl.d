lib/analysis/e3_s1_layer.ml: Connectivity Explore Layered_core Layered_protocols Layered_sync Layering List Pid Printf Report Valence Value Vset
