lib/analysis/e16_wasted_faults.ml: Consensus_check Format Fun Hashtbl Inputs Layered_core Layered_protocols Layered_sync List Pid Printf Report Value
