lib/analysis/e2_initial_states.ml: Connectivity Layered_async_mp Layered_async_sm Layered_core Layered_protocols Layered_sync List Printf Report Valence Value Vset
