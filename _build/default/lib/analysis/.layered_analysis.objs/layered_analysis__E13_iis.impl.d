lib/analysis/e13_iis.ml: Connectivity Explore Layered_core Layered_iis Layered_protocols Layering List Printf Report Valence Value
