lib/analysis/e12_covering_chain.mli: Layered_core
