lib/analysis/e11_kset_protocol.mli: Layered_core
