(** Experiment E3 — Lemma 5.1.

    In the single-mobile-failure synchronous model [M^mf]:
    (i) [S_1] is a layering of [R(A, M^mf)] — every [S_1]-successor is a
    legal one-round successor under some environment action [(j, G)];
    (ii) the model displays an arbitrary crash failure — checked through
    its operative consequence, Lemma 3.3: similar states in a layer share
    a valence;
    (iii) every layer [S_1(x)] is valence connected.

    All three are checked over the states reachable in a few layers from
    every initial state, and along a bivalent chain. *)

val run : unit -> Layered_core.Report.row list
