(** Experiment E4 — Corollary 5.2 (Santoro-Widmayer): consensus is
    impossible with a single mobile failure per round.

    The executable form: take a protocol that satisfies Decision (it
    always decides by a horizon) and Validity; construct, layer by layer,
    a run all of whose states are bivalent (Theorem 4.2's construction).
    The chain never gets stuck — and once the protocol's decision deadline
    passes, its bivalent states are literal Agreement violations (both
    values decided), exhibiting {e why} no protocol can satisfy all three
    requirements.  Before the deadline, bivalent states have no decided
    process (Lemma 3.2: the model displays no finite failure). *)

val run : unit -> Layered_core.Report.row list
