(** Experiment E7 — Lemmas 6.1, 6.2 and Corollary 6.3: the (t+1)-round
    lower bound for t-resilient synchronous consensus.

    For each protocol and instance (n, t):

    - the protocol is first verified {e exhaustively} against every crash
      adversary of the Section 6 model (Agreement, Validity, Decision);
    - Lemma 6.1: starting from a bivalent initial state, a bivalent
      [S^t]-chain [x^0, ..., x^{t-1}] exists with at most [m] processes
      failed at [x^m] (bivalence need not survive to round [t], as the
      paper notes);
    - Lemma 6.2 / Corollary 6.3: some layer successor of the bivalent
      round-[t-1] state — a round-[t] state — still has a non-failed
      undecided process, so some run decides only after round [t];
    - tightness: the measured worst-case decision round equals [t + 1]
      exactly. *)

val run : unit -> Layered_core.Report.row list
