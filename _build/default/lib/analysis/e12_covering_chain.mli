(** Experiment E12 — Lemma 7.1 / Lemma 7.4: generalized valence drives the
    same round-by-round constructions as binary valence.

    Over three-valued inputs in the t-resilient synchronous model, the
    covering (O0, O1) = ("everyone decides a value <= 1", "everyone
    decides 2") is a genuine non-binary covering of the runs of FloodSet.
    We verify that

    - some initial state is bivalent with respect to the covering;
    - the generalized Lemma 6.1/7.4 chain exists: covering-bivalent
      states through round t-1 with at most m failures at round m;
    - each layer along the chain is valence connected with respect to the
      covering;
    - a round-t successor still has a non-failed undecided process
      (the generalized Lemma 6.2 step of Lemma 7.4's t-round analysis). *)

val run : unit -> Layered_core.Report.row list
