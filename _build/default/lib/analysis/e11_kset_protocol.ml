open Layered_core

let run_one ~n ~values ~depth =
  let module P = (val Layered_protocols.Mp_kset.make ~n) in
  let module E = Layered_async_mp.Engine.Make (P) in
  let spec = { Explore.succ = E.sper; key = E.key } in
  let bound_ok = ref true
  and validity_ok = ref true
  and liveness_ok = ref true
  and two_decisions_witnessed = ref false
  and states = ref 0 in
  let full = List.map (fun i -> Layered_async_mp.Engine.Solo i) (Pid.all n) in
  List.iter
    (fun inputs ->
      let allowed = Vset.of_list (Array.to_list inputs) in
      let x0 = E.initial ~inputs in
      (* Liveness on the fair schedule: two full layers decide everyone. *)
      let fair = E.apply (E.apply x0 full) full in
      if not (E.terminal fair) then liveness_ok := false;
      List.iter
        (fun x ->
          incr states;
          let decided = E.decided_vset x in
          if Vset.cardinal decided > 2 then bound_ok := false;
          if Vset.cardinal decided = 2 then two_decisions_witnessed := true;
          if not (Vset.subset decided allowed) then validity_ok := false)
        (Explore.reachable spec ~depth x0))
    (Inputs.vectors ~n ~values);
  let params = Printf.sprintf "n=%d |V|=%d depth=%d" n (List.length values) depth in
  [
    Report.check ~id:"E11" ~claim:"Cor 7.3 (constructive)" ~params
      ~expected:"<=2 distinct decisions at every reachable state"
      ~measured:(Printf.sprintf "holds over %d states" !states)
      !bound_ok;
    Report.check ~id:"E11" ~claim:"validity" ~params ~expected:"decisions are inputs"
      ~measured:(Printf.sprintf "holds over %d states" !states)
      !validity_ok;
    Report.check ~id:"E11" ~claim:"liveness" ~params
      ~expected:"two full layers decide everyone"
      ~measured:"all fair runs terminal" !liveness_ok;
    Report.check ~id:"E11" ~claim:"k-set crossover (k=1 side)" ~params
      ~expected:"the same protocol does not solve consensus"
      ~measured:
        (if !two_decisions_witnessed then "a 2-decision run was found"
         else "no disagreement found")
      !two_decisions_witnessed;
  ]

let run () = run_one ~n:3 ~values:[ Value.zero; Value.one; Value.of_int 2 ] ~depth:3
