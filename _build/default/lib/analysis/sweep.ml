open Layered_core

type level = { depth : int; reachable : int; layer_min : int; layer_max : int }
type t = { model : string; n : int; levels : level list }

let models = [ "mobile"; "sync"; "sm"; "mp"; "smp"; "iis" ]

(* A mixed input vector: process 1 gets 0, the rest 1. *)
let mixed_inputs n = Array.init n (fun i -> if i = 0 then Value.zero else Value.one)

let sweep_generic (type a) ~(succ : a -> a list) ~(key : a -> string) ~(x0 : a) ~depth =
  let spec = { Explore.succ; key } in
  List.map
    (fun d ->
      let states = Explore.reachable spec ~depth:d x0 in
      let boundary =
        (* States first reached at depth d: approximate by all reachable
           states at depth d minus depth d-1. *)
        if d = 0 then states
        else begin
          let prev = Hashtbl.create 64 in
          List.iter (fun x -> Hashtbl.replace prev (key x) ())
            (Explore.reachable spec ~depth:(d - 1) x0);
          List.filter (fun x -> not (Hashtbl.mem prev (key x))) states
        end
      in
      let sizes = List.map (fun x -> List.length (succ x)) boundary in
      let layer_min = List.fold_left min max_int sizes in
      let layer_max = List.fold_left max 0 sizes in
      {
        depth = d;
        reachable = List.length states;
        layer_min = (if sizes = [] then 0 else layer_min);
        layer_max;
      })
    (List.init (depth + 1) Fun.id)

let run ~model ~n ~t ~depth =
  let levels =
    match model with
    | "mobile" ->
        let module P = (val Layered_protocols.Sync_floodset.make ~t) in
        let module E = Layered_sync.Engine.Make (P) in
        sweep_generic ~succ:(E.s1 ~record_failures:false) ~key:E.key
          ~x0:(E.initial ~inputs:(mixed_inputs n)) ~depth
    | "sync" ->
        let module P = (val Layered_protocols.Sync_floodset.make ~t) in
        let module E = Layered_sync.Engine.Make (P) in
        sweep_generic ~succ:(E.st ~t) ~key:E.key
          ~x0:(E.initial ~inputs:(mixed_inputs n)) ~depth
    | "sm" ->
        let module P = (val Layered_protocols.Sm_voting.make ~horizon:(t + 1)) in
        let module E = Layered_async_sm.Engine.Make (P) in
        sweep_generic ~succ:E.srw ~key:E.key ~x0:(E.initial ~inputs:(mixed_inputs n))
          ~depth
    | "mp" ->
        let module P = (val Layered_protocols.Mp_floodset.make ~horizon:(t + 1)) in
        let module E = Layered_async_mp.Engine.Make (P) in
        sweep_generic ~succ:E.sper ~key:E.key ~x0:(E.initial ~inputs:(mixed_inputs n))
          ~depth
    | "smp" ->
        let module P = (val Layered_protocols.Sync_floodset.make ~t) in
        let module E = Layered_async_mp.Synchronic.Make (P) in
        sweep_generic ~succ:E.smp ~key:E.key ~x0:(E.initial ~inputs:(mixed_inputs n))
          ~depth
    | "iis" ->
        let module P = (val Layered_protocols.Iis_voting.make ~horizon:(t + 1)) in
        let module E = Layered_iis.Engine.Make (P) in
        sweep_generic ~succ:E.layer ~key:E.key ~x0:(E.initial ~inputs:(mixed_inputs n))
          ~depth
    | other -> invalid_arg (Printf.sprintf "Sweep.run: unknown model %S" other)
  in
  { model; n; levels }

let pp ppf t =
  Format.fprintf ppf "model=%s n=%d@." t.model t.n;
  Format.fprintf ppf "%8s  %10s  %10s  %10s@." "depth" "reachable" "layer-min" "layer-max";
  List.iter
    (fun l ->
      Format.fprintf ppf "%8d  %10d  %10d  %10d@." l.depth l.reachable l.layer_min
        l.layer_max)
    t.levels
