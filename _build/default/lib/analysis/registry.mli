(** Registry of experiments: id, one-line description, and driver. *)

type experiment = {
  id : string;
  title : string;
  run : unit -> Layered_core.Report.row list;
}

val all : experiment list
val find : string -> experiment option
