(** Parametric bivalent-chain construction with the adversary's strategy
    rendered per round — the Theorem 4.2 construction as a CLI-visible
    artifact, for any substrate. *)

type line = {
  round : int;
  action : string;  (** the environment action chosen at this layer *)
  decided : string;  (** the set of decided values at the state *)
  violation : bool;  (** at least two distinct values decided *)
}

type t = {
  model : string;
  n : int;
  horizon : int;  (** the driving protocol's decision deadline *)
  complete : bool;  (** the chain reached the requested length *)
  lines : line list;
}

(** Model names as in {!Sweep.models}: ["mobile"], ["sync"] (with [t] the
    resilience), ["sm"], ["mp"], ["smp"], ["iis"].  For ["sync"] the chain
    is the Lemma 6.1 one (length capped at [t] states, bivalence dying at
    round t-1); for all others the ever-bivalent Theorem 4.2 chain. *)
val run : model:string -> n:int -> t:int -> length:int -> t

val pp : Format.formatter -> t -> unit
