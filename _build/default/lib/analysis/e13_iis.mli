(** Experiment E13 — the layering machinery on the iterated
    immediate-snapshot model (Borowsky-Gafni), to which Section 7 notes
    the paper's equivalences extend and which inspired the permutation
    layering.

    One layer = one ordered partition of the processes (Fubini-number
    many).  Checks:

    - partition enumeration matches the Fubini numbers (3, 13, 75);
    - every layer is similarity connected — merging or splitting adjacent
      concurrency classes changes the view of a single process — hence
      valence connected;
    - the ever-bivalent chain exists (the wait-free impossibility of
      consensus, in exactly the paper's Theorem 4.2 form);
    - the block structure behaves: the all-singletons partition in pid
      order equals sequential execution, and the one-block partition
      gives every process the full view. *)

val run : unit -> Layered_core.Report.row list
