open Layered_core

let run () =
  let floodset =
    Omission_check.check ~protocol:(Layered_protocols.Sync_floodset.make ~t:1) ~n:3 ~t:1
      ~rounds:3 ()
  in
  let coordinator ~n ~t =
    Omission_check.check
      ~protocol:(Layered_protocols.Sync_coordinator.make ~t)
      ~n ~t
      ~rounds:((3 * (t + 1)) + 1)
      ()
  in
  let c31 = coordinator ~n:3 ~t:1 in
  let c41 = coordinator ~n:4 ~t:1 in
  let general =
    Omission_check.check
      ~protocol:(Layered_protocols.Sync_coordinator.make ~t:1)
      ~n:3 ~t:1 ~rounds:7 ~general:true ()
  in
  let boundary = coordinator ~n:4 ~t:2 in
  [
    Report.check ~id:"E18" ~claim:"min-flooding breaks" ~params:"floodset n=3 t=1"
      ~expected:"agreement fails under send-omission (last-round injection)"
      ~measured:(Format.asprintf "%a" Omission_check.pp_result floodset)
      ((not floodset.agreement_ok) && floodset.validity_ok && floodset.termination_ok);
    Report.check ~id:"E18" ~claim:"coordinator verified" ~params:"coordinator n=3 t=1"
      ~expected:"agreement+validity+decision for n > 2t"
      ~measured:(Format.asprintf "%a" Omission_check.pp_result c31)
      (c31.agreement_ok && c31.validity_ok && c31.termination_ok);
    Report.check ~id:"E18" ~claim:"decision round" ~params:"coordinator n=3 t=1"
      ~expected:"decides in exactly 3(t+1) = 6 rounds"
      ~measured:(Printf.sprintf "worst %d" c31.worst_decision_round)
      (c31.worst_decision_round = 6);
    Report.check ~id:"E18" ~claim:"coordinator verified" ~params:"coordinator n=4 t=1"
      ~expected:"agreement+validity+decision for n > 2t"
      ~measured:(Format.asprintf "%a" Omission_check.pp_result c41)
      (c41.agreement_ok && c41.validity_ok && c41.termination_ok);
    Report.check ~id:"E18" ~claim:"general omission" ~params:"coordinator n=3 t=1"
      ~expected:"also correct when faulty processes drop received messages"
      ~measured:(Format.asprintf "%a" Omission_check.pp_result general)
      (general.agreement_ok && general.validity_ok && general.termination_ok);
    Report.check ~id:"E18" ~claim:"n = 2t boundary" ~params:"coordinator n=4 t=2"
      ~expected:"the n > 2t requirement is tight: agreement fails"
      ~measured:(Format.asprintf "%a" Omission_check.pp_result boundary)
      (not boundary.agreement_ok);
  ]
