(** Experiment E19 — Corollary 7.3's equivalence, operationally: "in all
    these models, the same problems are solvable 1-resiliently".

    One algorithm — collect (pid, input) pairs, decide the minimum once
    [n - 1] inputs are known — is run on three substrates (asynchronous
    message passing, read/write shared memory, iterated immediate
    snapshot) and verified by exhaustive depth-bounded exploration to
    satisfy, at every reachable state of the respective layered submodel:

    - k-agreement: at most two distinct decided values;
    - validity: decisions are inputs;
    - liveness on the fair schedules of each substrate;

    while in each substrate some schedule exhibits two decisions (it does
    not solve consensus — the k = 1 crossover, uniformly across
    models). *)

val run : unit -> Layered_core.Report.row list
