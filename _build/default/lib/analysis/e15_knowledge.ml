open Layered_core
module Kripke = Layered_knowledge.Kripke

type measurements = {
  worlds : int;
  deciding_pairs : int;
  belief_failures : int;  (** deciding pairs lacking B_p(value-safety) *)
  knowledge_failures : int;  (** deciding pairs lacking K_p(value-safety) *)
  decision_worlds : int;  (** terminal worlds at the decision round *)
  cb_failures : int;  (** decision worlds lacking common belief of the value *)
  ck_failures : int;  (** decision worlds lacking plain common knowledge *)
}

let measure ~protocol ~n ~t ~decision_round =
  let module P = (val (protocol : (module Layered_sync.Protocol.S))) in
  let module E = Layered_sync.Engine.Make (P) in
  let rounds = t + 2 in
  let acc = ref [] in
  let seen = Hashtbl.create 4096 in
  let rec explore x =
    let k = E.key x in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      acc := x :: !acc;
      if x.E.round < rounds then
        List.iter
          (fun a -> explore (E.apply ~record_failures:true x a))
          (E.all_actions ~max_new:2 ~remaining_failures:(t - E.failed_count x) x)
    end
  in
  List.iter explore (E.initial_states ~n ~values:[ Value.zero; Value.one ]);
  let worlds = !acc in
  let local_key i (x : E.state) = P.key x.E.locals.(i - 1) in
  let kr = Kripke.create ~n ~key:E.key ~local_key worlds in
  let alive i (x : E.state) = not x.E.failed.(i - 1) in
  (* phi v: every non-failed decided process decided v. *)
  let phi v =
    Kripke.prop_of kr (fun x ->
        let decs = E.decisions x in
        List.for_all
          (fun i -> match decs.(i - 1) with Some w -> Value.equal w v | None -> true)
          (E.nonfailed x))
  in
  let phis = [| phi Value.zero; phi Value.one |] in
  let deciding_pairs = ref 0
  and belief_failures = ref 0
  and knowledge_failures = ref 0 in
  let believes_cache =
    Array.init n (fun idx ->
        [| Kripke.believes kr (idx + 1) ~alive phis.(0);
           Kripke.believes kr (idx + 1) ~alive phis.(1) |])
  in
  let knows_cache =
    Array.init n (fun idx ->
        [| Kripke.knows kr (idx + 1) phis.(0); Kripke.knows kr (idx + 1) phis.(1) |])
  in
  List.iter
    (fun x ->
      let decs = E.decisions x in
      List.iter
        (fun p ->
          match decs.(p - 1) with
          | Some v ->
              incr deciding_pairs;
              if not (Kripke.holds_at kr believes_cache.(p - 1).(v) x) then
                incr belief_failures;
              if not (Kripke.holds_at kr knows_cache.(p - 1).(v) x) then
                incr knowledge_failures
          | None -> ())
        (E.nonfailed x))
    worlds;
  let cb = [| Kripke.common_belief kr ~members:E.nonfailed ~alive phis.(0);
              Kripke.common_belief kr ~members:E.nonfailed ~alive phis.(1) |] in
  let ck = [| Kripke.common kr ~members:E.nonfailed phis.(0);
              Kripke.common kr ~members:E.nonfailed phis.(1) |] in
  let decision_worlds = ref 0 and cb_failures = ref 0 and ck_failures = ref 0 in
  List.iter
    (fun x ->
      if E.terminal x && x.E.round = decision_round then
        match Vset.elements (E.decided_vset x) with
        | [ v ] ->
            incr decision_worlds;
            if not (Kripke.holds_at kr cb.(v) x) then incr cb_failures;
            if not (Kripke.holds_at kr ck.(v) x) then incr ck_failures
        | [] | _ :: _ :: _ -> ())
    worlds;
  {
    worlds = Kripke.world_count kr;
    deciding_pairs = !deciding_pairs;
    belief_failures = !belief_failures;
    knowledge_failures = !knowledge_failures;
    decision_worlds = !decision_worlds;
    cb_failures = !cb_failures;
    ck_failures = !ck_failures;
  }

let floodset_rows ~n ~t =
  let m =
    measure ~protocol:(Layered_protocols.Sync_floodset.make ~t) ~n ~t
      ~decision_round:(t + 1)
  in
  let params = Printf.sprintf "floodset n=%d t=%d (%d worlds)" n t m.worlds in
  [
    Report.check ~id:"E15" ~claim:"belief at decision" ~params
      ~expected:"every deciding process believes value-safety"
      ~measured:(Printf.sprintf "%d/%d failures" m.belief_failures m.deciding_pairs)
      (m.belief_failures = 0 && m.deciding_pairs > 0);
    Report.check ~id:"E15" ~claim:"knowledge gap" ~params
      ~expected:"some deciding process lacks knowledge (non-uniformity)"
      ~measured:(Printf.sprintf "%d/%d lack K" m.knowledge_failures m.deciding_pairs)
      (m.knowledge_failures > 0);
    Report.check ~id:"E15" ~claim:"common belief (DM)" ~params
      ~expected:"value is common belief at the simultaneous decision round"
      ~measured:(Printf.sprintf "%d/%d failures" m.cb_failures m.decision_worlds)
      (m.cb_failures = 0 && m.decision_worlds > 0);
    Report.check ~id:"E15" ~claim:"plain C too strong" ~params
      ~expected:"plain common knowledge fails at some decision world"
      ~measured:(Printf.sprintf "%d/%d lack C" m.ck_failures m.decision_worlds)
      (m.ck_failures > 0);
  ]

let early_rows ~n ~t =
  (* The early decider is not simultaneous: measure common belief at the
     worlds where everyone has decided as early as possible (round 1 is
     failure-free decision time). *)
  let m =
    measure ~protocol:(Layered_protocols.Sync_early.make ~t) ~n ~t ~decision_round:1
  in
  let params = Printf.sprintf "early n=%d t=%d (%d worlds)" n t m.worlds in
  [
    Report.check ~id:"E15" ~claim:"belief at decision" ~params
      ~expected:"every deciding process believes value-safety"
      ~measured:(Printf.sprintf "%d/%d failures" m.belief_failures m.deciding_pairs)
      (m.belief_failures = 0 && m.deciding_pairs > 0);
    Report.row ~id:"E15" ~claim:"staggered decisions" ~params
      ~expected:"non-simultaneous protocols need not attain common belief"
      ~measured:
        (Printf.sprintf "%d/%d round-1 decision worlds lack CB" m.cb_failures
           m.decision_worlds)
      Report.Info;
  ]

let run () = floodset_rows ~n:3 ~t:1 @ floodset_rows ~n:4 ~t:1 @ early_rows ~n:3 ~t:1
