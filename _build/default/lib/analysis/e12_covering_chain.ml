open Layered_core
open Layered_topology

let run_one ~n ~t =
  let values = [ Value.zero; Value.one; Value.of_int 2 ] in
  let module P = (val Layered_protocols.Sync_floodset.make ~t) in
  let module E = Layered_sync.Engine.Make (P) in
  let succ = E.st ~t in
  let all = Pid.all n in
  let unanimous v = Simplex.of_assoc (List.map (fun p -> (p, v)) all) in
  (* O0: everyone decides 0 or everyone decides 1; O1: everyone decides
     2.  FloodSet's runs decide unanimously among non-failed processes,
     so this covers all decided outputs and both sides are reachable. *)
  let cover =
    Covering.of_complexes ~label:"min<=1 vs min=2"
      (Complex.of_simplexes [ unanimous Value.zero; unanimous Value.one ])
      (Complex.of_simplexes [ unanimous (Value.of_int 2) ])
  in
  let output x =
    let decs = E.decisions x in
    Simplex.of_assoc
      (List.filter_map
         (fun i ->
           if x.E.failed.(i - 1) then None
           else match decs.(i - 1) with Some v -> Some (i, v) | None -> None)
         all)
  in
  let engine =
    Covering.create { Covering.succ; key = E.key; terminal = E.terminal; output } cover
  in
  let depth = t + 2 in
  let classify x = Covering.classify engine ~depth x in
  let cvals x = (Covering.outcome engine ~depth x).Covering.vals in
  let initials = E.initial_states ~n ~values in
  let params = Printf.sprintf "floodset n=%d t=%d |V|=3" n t in
  match Layering.find_bivalent ~classify initials with
  | None ->
      [
        Report.check ~id:"E12" ~claim:"Lemma 7.4" ~params
          ~expected:"a covering-bivalent initial state" ~measured:"none found" false;
      ]
  | Some x0 ->
      let chain = Layering.bivalent_chain ~classify ~succ ~length:t x0 in
      let failures_bounded =
        List.for_all (fun x -> E.failed_count x <= x.E.round) chain.Layering.states
      in
      let layers_connected =
        List.for_all
          (fun x -> Connectivity.valence_connected ~vals:cvals (succ x))
          (* Lemma 3.3's display condition needs a crash in reserve past
             the layer: it applies to states with fewer than t - 1
             failures (for t = 1 the check is vacuous, exactly as in the
             binary case — see quickstart.ml). *)
          (List.filter (fun x -> E.failed_count x < t - 1) chain.Layering.states)
      in
      let undecided_at_t =
        match List.rev chain.Layering.states with
        | last :: _ when chain.Layering.complete ->
            let undecided y =
              let decs = E.decisions y in
              List.length (List.filter (fun i -> decs.(i - 1) = None) (E.nonfailed y))
            in
            List.fold_left (fun acc y -> max acc (undecided y)) 0 (succ last)
        | _ -> -1
      in
      [
        Report.check ~id:"E12" ~claim:"covering is genuine" ~params
          ~expected:"both covering sides reachable from x0"
          ~measured:(Format.asprintf "vals = %a" Vset.pp (cvals x0))
          (Vset.cardinal (cvals x0) = 2);
        Report.check ~id:"E12" ~claim:"Lemma 7.4 chain" ~params
          ~expected:
            (Printf.sprintf "covering-bivalent chain through round %d, <=m failed" (t - 1))
          ~measured:
            (Printf.sprintf "chain length %d%s" (List.length chain.Layering.states)
               (if failures_bounded then "" else ", failure bound violated"))
          (chain.Layering.complete && failures_bounded);
        Report.check ~id:"E12" ~claim:"Lemma 7.1 layers" ~params
          ~expected:"chain layers valence connected w.r.t. the covering"
          ~measured:(Printf.sprintf "checked %d layers" (List.length chain.Layering.states))
          layers_connected;
        Report.check ~id:"E12" ~claim:"generalized Lemma 6.2" ~params
          ~expected:"a round-t successor with a non-failed undecided process"
          ~measured:
            (if undecided_at_t < 0 then "chain incomplete"
             else Printf.sprintf "up to %d undecided" undecided_at_t)
          (undecided_at_t >= 1);
      ]

let run () = run_one ~n:3 ~t:1 @ run_one ~n:4 ~t:2
