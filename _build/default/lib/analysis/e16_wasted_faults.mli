(** Experiment E16 — "the environment has wasted w faults": the paper's
    closing discussion of Section 6 (after Lemma 6.4, citing
    Dwork-Moses [11]): if [k + w] crashes are detected by the end of round
    [k], agreement can be secured by round [t + 1 - w]; Lemma 6.1
    guarantees the adversary loses no more than those [w] rounds.

    We run the clean-round protocol ({!Layered_protocols.Sync_clean}) —
    first verifying it exhaustively against every crash adversary — and
    then measure the worst-case decision round over adversaries forced to
    spend [c] crashes silently (fully visibly) in round 1:

    - [c = t]: every fault wasted at once — decision by round 2
      ([t + 1 - (t - 1)]);
    - [c < t]: the remaining budget still buys the adversary delay —
      decision only by round [t + 1 - max(0, c - 1)]. *)

val run : unit -> Layered_core.Report.row list
