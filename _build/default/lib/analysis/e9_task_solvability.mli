(** Experiment E9 — Theorem 7.2 / Corollary 7.3: 1-thick connectivity
    characterises 1-resilient solvability.

    Over the task zoo ({!Layered_topology.Task}):
    - solvable tasks (weak consensus, identity, fixed value, k-set
      agreement for k >= 2) pass the necessary condition — [C_Delta(I)] is
      1-thick connected for {e every} similarity-connected input set [I];
    - unsolvable tasks (consensus, volunteer election, 1-set agreement)
      exhibit {e forced fragmentation}: output simplexes forced by
      unanimous-style inputs lie in distinct 1-thickness components, so no
      subproblem of [Delta] can pass — a sound unsolvability certificate;
    - the k-set agreement sweep locates the solvability crossover at
      k = 2, matching the known 1-resilient asynchronous landscape;
    - generalized (covering) valence over the message-passing model agrees
      with binary valence on consensus coverings (Section 7's machinery). *)

val run : unit -> Layered_core.Report.row list
