(** Experiment E14 — protocol independence: the layer structure survives
    full information.

    The paper's results quantify over all deterministic protocols, and its
    pictures are usually drawn for full-information ones.  E14 replays the
    structural checks of E3, E5, E6 and E13 against the full-information
    protocols of {!Layered_protocols.Full_info} — where nothing is ever
    forgotten, so every indistinguishability found is intrinsic to the
    model rather than an artifact of the protocol discarding state:

    - mobile synchronous: every [S_1] layer valence connected; the
      ever-bivalent chain extends;
    - shared memory: the Lemma 5.3 bridge and layer valence connectivity;
    - message passing: the FLP diamond (state equality) and layer valence
      connectivity;
    - IIS: layer similarity connectivity. *)

val run : unit -> Layered_core.Report.row list
