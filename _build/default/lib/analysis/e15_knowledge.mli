(** Experiment E15 — the knowledge-theoretic reading of Section 6
    (following Dwork-Moses [11], which the paper's lower-bound discussion
    builds on).

    Over the full crash-adversary state space of the verified protocols:

    - a non-failed process that has decided [v] always {e believes}
      (knows, relativized to its own correctness) that every non-failed
      decision is [v] — the epistemic form of Agreement;
    - yet it does not {e know} it: worlds where the process itself has
      been failed and others decide differently are indistinguishable to
      it — the epistemic form of the measured uniform-agreement failure
      (E7's [uniform=false]);
    - FloodSet decides simultaneously (everyone at round t+1), and at
      decision time the decided value is {e common belief} among the
      non-failed — while plain common knowledge fails at some worlds, so
      the non-faulty relativization is essential;
    - the early-deciding protocol decides non-simultaneously, and common
      belief of the value at its first decisions fails, matching the
      classical simultaneity/common-knowledge correspondence. *)

val run : unit -> Layered_core.Report.row list
