open Layered_core

(* Worst-case decision round over runs whose first round crashes exactly
   the processes [1 .. c], silently, and whose continuation is an
   arbitrary crash adversary within the remaining budget. *)
let worst_decision_with_waste ~protocol ~n ~t ~c =
  let module P = (val (protocol : (module Layered_sync.Protocol.S))) in
  let module E = Layered_sync.Engine.Make (P) in
  let rounds = t + 2 in
  let worst = ref 0 and ok = ref true in
  let first_action =
    List.map
      (fun j -> { E.sender = j; blocked = Pid.others n j })
      (List.init c (fun i -> i + 1))
  in
  let explore_from x0 =
    let seen = Hashtbl.create 1024 in
    let rec explore x =
      let k = E.key x in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        if not (E.terminal x) then begin
          if x.E.round >= rounds then ok := false
          else worst := max !worst (x.E.round + 1)
        end;
        if x.E.round < rounds then
          List.iter
            (fun a -> explore (E.apply ~record_failures:true x a))
            (E.all_actions ~max_new:2 ~remaining_failures:(t - E.failed_count x) x)
      end
    in
    explore x0
  in
  List.iter
    (fun inputs ->
      let x0 = E.initial ~inputs in
      (* The undecided initial state itself shows decision takes >= 1
         round. *)
      if not (E.terminal x0) then worst := max !worst 1;
      explore_from (E.apply ~record_failures:true x0 first_action))
    (Inputs.vectors ~n ~values:[ Value.zero; Value.one ]);
  if !ok then !worst else rounds + 1

let run_one ~n ~t =
  let protocol = Layered_protocols.Sync_clean.make ~t in
  let verified = Consensus_check.check ~protocol ~n ~t ~rounds:(t + 2) () in
  let params = Printf.sprintf "clean-floodset n=%d t=%d" n t in
  let verify_row =
    Report.check ~id:"E16" ~claim:"protocol verified" ~params
      ~expected:"agreement+validity+decision vs all crash adversaries"
      ~measured:(Format.asprintf "%a" Consensus_check.pp_result verified)
      (verified.agreement_ok && verified.validity_ok && verified.termination_ok)
  in
  (* Expected worst decision round when c crashes are spent silently in
     round 1 (Dwork-Moses: k + w detected by round k => decide by
     t + 1 - w; an idle adversary concedes a clean first round). *)
  let expected_worst c = if c = 0 then 1 else if c = t then 2 else t + 1 in
  let waste_rows =
    List.map
      (fun c ->
        let measured = worst_decision_with_waste ~protocol ~n ~t ~c in
        Report.check ~id:"E16" ~claim:"wasted faults" ~params
          ~expected:
            (Printf.sprintf "%d silent round-1 crashes: decide by round %d" c
               (expected_worst c))
          ~measured:(Printf.sprintf "worst decision round %d" measured)
          (measured = expected_worst c))
      (List.init (t + 1) Fun.id)
  in
  verify_row :: waste_rows

let run () = run_one ~n:3 ~t:1 @ run_one ~n:4 ~t:2
