(** Experiment E17 — the generalised mobile adversary (Santoro-Widmayer's
    setting, of which the paper's Corollary 5.2 treats the single-failure
    case).

    With up to [k] mobile omitters per round the submodel only gains
    schedules, so the impossibility analysis goes through a fortiori.
    Checks, for k = 1, 2:

    - the k-omitter layer contains the 1-omitter layer (submodel
      monotonicity, literally as state-set inclusion);
    - every layer remains valence connected;
    - the ever-bivalent chain still extends — and under the stronger
      adversary the Agreement violation is forced no later than under the
      weaker one. *)

val run : unit -> Layered_core.Report.row list
