(** Experiment E8 — Lemma 6.4: in a fast (always <= t+1 rounds) consensus
    protocol, any state reached after [k] failures and a subsequent
    failure-free round is univalent.

    We enumerate every [S^t]-reachable state at the end of each round
    [k <= t] (all have at most [k] failures), apply the failure-free
    action, and verify the result classifies as univalent.  Checked for
    both fast protocols in the suite: FloodSet (decides in exactly [t+1]
    rounds) and early-deciding FloodSet (decides by round [f+2]). *)

val run : unit -> Layered_core.Report.row list
