(** Experiment E11 — the constructive side of Corollary 7.3.

    E9 establishes by geometry that 2-set agreement passes the 1-thick
    connectivity condition (hence is 1-resiliently solvable) while
    consensus fails it.  E11 closes the loop operationally: a concrete
    wait-for-(n-1) protocol ({!Layered_protocols.Mp_kset}) is explored
    over the permutation submodel and verified to satisfy, at every
    reachable state,

    - {e k-agreement}: at most two distinct decided values;
    - {e validity}: decisions are input values;
    - {e liveness}: full schedules decide everyone within two layers, and
      in every explored state at least [n - 1] processes can still reach
      a decision;

    and — matching the k = 1 side of the crossover — some run does
    exhibit two distinct decisions, so the same protocol does {e not}
    solve consensus. *)

val run : unit -> Layered_core.Report.row list
