(** Experiment E2 — Lemma 3.6.

    The set [Con_0] of initial states for binary consensus is similarity
    connected in every model; given the decision requirement and an
    arbitrary crash failure display it is valence connected; and with
    Validity there is a bivalent initial state.  We additionally confirm
    the two Validity anchors: the all-zeros initial state is 0-univalent
    and the all-ones state is 1-univalent.

    Checked in all five substrates: mobile-failure synchronous,
    t-resilient synchronous, asynchronous read/write shared memory,
    asynchronous message passing (permutation layering), and the
    message-passing synchronic submodel. *)

val run : unit -> Layered_core.Report.row list
