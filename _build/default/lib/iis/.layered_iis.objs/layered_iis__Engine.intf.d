lib/iis/engine.mli: Explore Format Layered_core Pid Protocol Valence Value Vset
