lib/iis/protocol.ml: Format Layered_core Pid Value
