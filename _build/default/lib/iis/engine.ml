open Layered_core

type partition = Pid.t list list

let nonempty_subsets l =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = go rest in
        s @ List.map (fun sub -> x :: sub) s
  in
  List.filter (fun s -> s <> []) (go l)

let partitions ~n =
  let rec go remaining =
    match remaining with
    | [] -> [ [] ]
    | _ :: _ ->
        List.concat_map
          (fun block ->
            let rest = List.filter (fun i -> not (List.mem i block)) remaining in
            List.map (fun tail -> block :: tail) (go rest))
          (nonempty_subsets remaining)
  in
  go (Pid.all n)

let rec binomial n k =
  if k = 0 || k = n then 1
  else if k < 0 || k > n then 0
  else binomial (n - 1) (k - 1) + binomial (n - 1) k

let fubini n =
  let memo = Array.make (n + 1) 0 in
  memo.(0) <- 1;
  for m = 1 to n do
    let total = ref 0 in
    for k = 1 to m do
      total := !total + (binomial m k * memo.(m - k))
    done;
    memo.(m) <- !total
  done;
  memo.(n)

module Make (P : Protocol.S) = struct
  type state = { round : int; locals : P.local array }

  let n_of x = Array.length x.locals

  let initial ~inputs =
    let n = Array.length inputs in
    {
      round = 0;
      locals = Array.init n (fun i -> P.init ~n ~pid:(i + 1) ~input:inputs.(i));
    }

  let initial_states ~n ~values =
    List.map (fun inputs -> initial ~inputs) (Inputs.vectors ~n ~values)

  let validate_partition n blocks =
    let members = List.concat blocks in
    if List.exists (fun b -> b = []) blocks then invalid_arg "Iis: empty block";
    if List.sort compare members <> Pid.all n then
      invalid_arg "Iis: blocks must partition {1..n}"

  let apply x blocks =
    let n = n_of x in
    validate_partition n blocks;
    let round = x.round + 1 in
    let write i = P.write ~n ~pid:i x.locals.(i - 1) in
    let writes = Array.init n (fun idx -> write (idx + 1)) in
    (* Prefix-union views: a process in block k sees blocks 1..k. *)
    let locals = Array.copy x.locals in
    let rec run_blocks seen = function
      | [] -> ()
      | block :: rest ->
          let seen = List.sort compare (seen @ block) in
          let snapshot = List.map (fun i -> (i, writes.(i - 1))) seen in
          List.iter
            (fun i ->
              let before = P.decision locals.(i - 1) in
              locals.(i - 1) <- P.step ~n ~pid:i x.locals.(i - 1) ~snapshot;
              match (before, P.decision locals.(i - 1)) with
              | Some v, Some w when not (Value.equal v w) ->
                  invalid_arg "Iis: protocol violated write-once decision"
              | Some _, None -> invalid_arg "Iis: protocol erased a decision"
              | (Some _ | None), _ -> ())
            block;
          run_blocks seen rest
    in
    run_blocks [] blocks;
    { round; locals }

  let key x =
    let buf = Buffer.create 64 in
    Buffer.add_string buf (string_of_int x.round);
    Array.iter
      (fun l ->
        Buffer.add_char buf '|';
        Buffer.add_string buf (P.key l))
      x.locals;
    Buffer.contents buf

  let equal x y = String.equal (key x) (key y)

  let layer =
    let table = Hashtbl.create 4 in
    fun x ->
      let n = n_of x in
      let parts =
        match Hashtbl.find_opt table n with
        | Some ps -> ps
        | None ->
            let ps = partitions ~n in
            Hashtbl.add table n ps;
            ps
      in
      let seen = Hashtbl.create 64 in
      List.filter_map
        (fun p ->
          let y = apply x p in
          let k = key y in
          if Hashtbl.mem seen k then None
          else begin
            Hashtbl.add seen k ();
            Some y
          end)
        parts

  let decisions x = Array.map P.decision x.locals

  let decided_vset x =
    Array.fold_left
      (fun acc l -> match P.decision l with Some v -> Vset.add v acc | None -> acc)
      Vset.empty x.locals

  let terminal x = Array.for_all (fun l -> P.decision l <> None) x.locals

  let agree_modulo x y j =
    let n = n_of x in
    x.round = y.round
    && n = n_of y
    && List.for_all
         (fun i ->
           i = j || String.equal (P.key x.locals.(i - 1)) (P.key y.locals.(i - 1)))
         (Pid.all n)

  let similar x y = List.exists (agree_modulo x y) (Pid.all (n_of x))
  let explore_spec = { Explore.succ = layer; key }
  let valence_spec ~succ = { Valence.succ; key; decided = decided_vset; terminal }

  let pp ppf x =
    Format.fprintf ppf "@[<v>round %d@," x.round;
    Array.iteri
      (fun idx l ->
        Format.fprintf ppf "  p%d: %a%s@," (idx + 1) P.pp l
          (match P.decision l with
          | Some v -> Printf.sprintf "  [decided %s]" (Value.to_string v)
          | None -> ""))
      x.locals;
    Format.fprintf ppf "@]"
end

let pp_partition ppf blocks =
  List.iter
    (fun b ->
      Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int b)))
    blocks
