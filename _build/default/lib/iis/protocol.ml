(** Deterministic protocols for the iterated immediate-snapshot model
    (Borowsky-Gafni [6], one of the models to which Section 7 notes the
    paper's equivalences extend; it also inspired the permutation
    layering of Section 5.1).

    In round [r] every process writes a value into the one-shot memory
    [M_r] — computed from its state at the start of the round, the
    write-then-snapshot discipline — and receives an immediate snapshot:
    the writes of every process scheduled in its own concurrency class or
    earlier. *)

open Layered_core

module type S = sig
  type local
  type reg

  val name : string
  val init : n:int -> pid:Pid.t -> input:Value.t -> local

  (** Value written into this round's memory, from the round-start
      state. *)
  val write : n:int -> pid:Pid.t -> local -> reg

  (** Consume the immediate snapshot: the [(pid, value)] pairs visible to
      this process, sorted by pid (always including its own write). *)
  val step : n:int -> pid:Pid.t -> local -> snapshot:(Pid.t * reg) list -> local

  val decision : local -> Value.t option
  val key : local -> string
  val reg_key : reg -> string
  val pp : Format.formatter -> local -> unit
end
