open Layered_core

module Make (P : Protocol.S) = struct
  type state = { round : int; locals : P.local array; faulty : bool array }
  type action = {
    corrupt : Pid.t list;
    drops : (Pid.t * Pid.t list) list;
    rdrops : (Pid.t * Pid.t list) list;
  }

  let n_of x = Array.length x.locals

  let initial ~inputs =
    let n = Array.length inputs in
    {
      round = 0;
      locals = Array.init n (fun i -> P.init ~n ~pid:(i + 1) ~input:inputs.(i));
      faulty = Array.make n false;
    }

  let initial_states ~n ~values =
    List.map (fun inputs -> initial ~inputs) (Inputs.vectors ~n ~values)

  let apply x { corrupt; drops; rdrops } =
    let n = n_of x in
    let round = x.round + 1 in
    if List.length (List.sort_uniq compare corrupt) <> List.length corrupt then
      invalid_arg "Omission.apply: duplicate corruption";
    List.iter
      (fun j ->
        if j < 1 || j > n then invalid_arg "Omission.apply: bad pid";
        if x.faulty.(j - 1) then invalid_arg "Omission.apply: already faulty")
      corrupt;
    let faulty =
      Array.init n (fun idx -> x.faulty.(idx) || List.mem (idx + 1) corrupt)
    in
    List.iter
      (fun (s, _) ->
        if not faulty.(s - 1) then invalid_arg "Omission.apply: drop by non-faulty sender")
      drops;
    List.iter
      (fun (r, _) ->
        if not faulty.(r - 1) then
          invalid_arg "Omission.apply: receive drop by non-faulty receiver")
      rdrops;
    let dropped s d =
      (match List.assoc_opt s drops with Some ds -> List.mem d ds | None -> false)
      || match List.assoc_opt d rdrops with Some ss -> List.mem s ss | None -> false
    in
    let received_by j =
      Array.init n (fun idx ->
          let i = idx + 1 in
          if i = j || dropped i j then None
          else P.send ~n ~round ~pid:i x.locals.(idx) ~dest:j)
    in
    let locals =
      Array.init n (fun idx ->
          let j = idx + 1 in
          P.step ~n ~round ~pid:j x.locals.(idx) ~received:(received_by j))
    in
    { round; locals; faulty }

  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun sub -> x :: sub) s

  let all_actions ?(general = false) ~max_new ~remaining_failures x =
    let n = n_of x in
    let candidates = List.filter (fun j -> not x.faulty.(j - 1)) (Pid.all n) in
    let budget = min max_new remaining_failures in
    let corruptions =
      List.filter (fun c -> List.length c <= budget) (subsets candidates)
    in
    (* Per faulty process, any subset of peers on the given side. *)
    let rec choices = function
      | [] -> [ [] ]
      | s :: rest ->
          let tails = choices rest in
          List.concat_map
            (fun ds ->
              List.map (fun tail -> if ds = [] then tail else (s, ds) :: tail) tails)
            (subsets (Pid.others n s))
    in
    List.concat_map
      (fun corrupt ->
        let faulty_now =
          List.filter (fun j -> x.faulty.(j - 1)) (Pid.all n) @ corrupt
        in
        let rdrop_choices = if general then choices faulty_now else [ [] ] in
        List.concat_map
          (fun drops -> List.map (fun rdrops -> { corrupt; drops; rdrops }) rdrop_choices)
          (choices faulty_now))
      corruptions

  let key x =
    let buf = Buffer.create 64 in
    Buffer.add_string buf (string_of_int x.round);
    Buffer.add_char buf '|';
    Array.iter (fun f -> Buffer.add_char buf (if f then '1' else '0')) x.faulty;
    Array.iter
      (fun l ->
        Buffer.add_char buf '|';
        Buffer.add_string buf (P.key l))
      x.locals;
    Buffer.contents buf

  let equal x y = String.equal (key x) (key y)
  let decisions x = Array.map P.decision x.locals

  let decided_vset x =
    let s = ref Vset.empty in
    Array.iteri
      (fun idx l ->
        if not x.faulty.(idx) then
          match P.decision l with Some v -> s := Vset.add v !s | None -> ())
      x.locals;
    !s

  let terminal x =
    let ok = ref true in
    Array.iteri
      (fun idx l -> if (not x.faulty.(idx)) && P.decision l = None then ok := false)
      x.locals;
    !ok

  let faulty_count x = Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 x.faulty
  let nonfaulty x = List.filter (fun i -> not x.faulty.(i - 1)) (Pid.all (n_of x))

  let pp ppf x =
    Format.fprintf ppf "@[<v>round %d, faulty {%s}@," x.round
      (String.concat ","
         (List.filter_map
            (fun i -> if x.faulty.(i - 1) then Some (string_of_int i) else None)
            (Pid.all (n_of x))));
    Array.iteri
      (fun idx l ->
        Format.fprintf ppf "  p%d: %a%s@," (idx + 1) P.pp l
          (match P.decision l with
          | Some v -> Printf.sprintf "  [decided %s]" (Value.to_string v)
          | None -> ""))
      x.locals;
    Format.fprintf ppf "@]"
end
