(** The t-resilient {e send-omission} model — the second failure type the
    paper's introduction names ("sending omissions or Byzantine failures:
    a faulty processor can fail to send messages altogether from some
    point on, and thus behave as if it has crashed").

    The adversary marks up to [t] processes omission-faulty (adaptively,
    mid-run); in every round it may drop any subset of each faulty
    process's outgoing messages.  Unlike the crash model of Section 6 a
    faulty process is {e not} silenced — it keeps sending whatever the
    adversary lets through, and keeps receiving everything — and unlike
    the mobile model the faulty set only grows.  Crash runs are exactly
    the omission runs that drop everything from the first drop on, so this
    model strictly contains the Section 6 model and all its lower bounds
    apply a fortiori.

    Agreement/Validity/Decision are judged on the non-faulty processes.
    Experiment E18 shows min-flooding consensus breaks here (the checker
    finds a last-round injection witness) and verifies a coordinator-based
    protocol that survives it for [n > 2t]. *)

open Layered_core

module Make (P : Protocol.S) : sig
  type state = private {
    round : int;
    locals : P.local array;
    faulty : bool array;  (** adversary's omission-faulty marks *)
  }

  type action = {
    corrupt : Pid.t list;  (** processes freshly marked faulty this round *)
    drops : (Pid.t * Pid.t list) list;
        (** send omissions — per (already or freshly) faulty sender:
            receivers missing its message this round *)
    rdrops : (Pid.t * Pid.t list) list;
        (** receive omissions — per faulty receiver: senders whose
            messages it misses this round.  Empty for the pure
            send-omission model; non-empty actions give the {e general}
            omission model. *)
  }

  val n_of : state -> int
  val initial : inputs:Value.t array -> state
  val initial_states : n:int -> values:Value.t list -> state list

  (** Execute one round.  Raises [Invalid_argument] if a drop names a
      non-faulty sender or [corrupt] repeats/overlaps existing faults. *)
  val apply : state -> action -> state

  (** Every action with at most [max_new] fresh corruptions within
      [remaining_failures], and arbitrary per-faulty send-drop subsets;
      with [general:true] also arbitrary per-faulty receive-drop
      subsets. *)
  val all_actions :
    ?general:bool -> max_new:int -> remaining_failures:int -> state -> action list

  val key : state -> string
  val equal : state -> state -> bool
  val decisions : state -> Value.t option array

  (** Decisions of non-faulty processes. *)
  val decided_vset : state -> Vset.t

  (** Every non-faulty process has decided. *)
  val terminal : state -> bool

  val faulty_count : state -> int
  val nonfaulty : state -> Pid.t list
  val pp : Format.formatter -> state -> unit
end
