lib/sync/omission.mli: Format Layered_core Pid Protocol Value Vset
