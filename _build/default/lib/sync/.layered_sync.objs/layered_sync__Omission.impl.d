lib/sync/omission.ml: Array Buffer Format Inputs Layered_core List Pid Printf Protocol String Value Vset
