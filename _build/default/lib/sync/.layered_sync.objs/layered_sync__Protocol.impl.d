lib/sync/protocol.ml: Format Layered_core Pid Value
