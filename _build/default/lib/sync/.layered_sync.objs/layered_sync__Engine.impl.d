lib/sync/engine.ml: Array Bool Buffer Explore Format Hashtbl Inputs Layered_core List Pid Printf Protocol String Valence Value Vset
