(** Deterministic protocols for the synchronous message-passing substrate.

    A protocol describes one process: its initial local state, the message
    it sends to each destination in a round, its state transition on the
    vector of received messages, and its (write-once) decision.  The paper
    quantifies over all deterministic protocols; the engine
    ({!Engine.Make}) is a functor so experiments can instantiate several.

    Conventions: processes are named [1 .. n]; a process does not send to
    itself; [received.(j - 1) = None] means process [j]'s message was lost
    (or [j] sent nothing / is silenced). *)

open Layered_core

module type S = sig
  type local
  type msg

  val name : string
  val init : n:int -> pid:Pid.t -> input:Value.t -> local

  (** Message for destination [dest] in the given (1-based) round; [None] =
      no message. *)
  val send : n:int -> round:int -> pid:Pid.t -> local -> dest:Pid.t -> msg option

  val step : n:int -> round:int -> pid:Pid.t -> local -> received:msg option array -> local
  val decision : local -> Value.t option

  (** Canonical encoding of the local state (equal keys = equal states). *)
  val key : local -> string

  (** Canonical encoding of a message (used by the asynchronous synchronic
      variant, whose environment state holds in-transit messages). *)
  val msg_key : msg -> string

  val pp : Format.formatter -> local -> unit
end
