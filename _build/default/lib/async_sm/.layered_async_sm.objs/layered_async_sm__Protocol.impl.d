lib/async_sm/protocol.ml: Format Layered_core Pid Value
