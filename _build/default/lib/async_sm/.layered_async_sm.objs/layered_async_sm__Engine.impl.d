lib/async_sm/engine.ml: Array Buffer Explore Format Hashtbl Inputs Layered_core List Pid Printf Protocol String Valence Value Vset
