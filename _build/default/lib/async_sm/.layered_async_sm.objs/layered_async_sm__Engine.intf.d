lib/async_sm/engine.mli: Explore Format Layered_core Pid Protocol Valence Value Vset
