(** Deterministic protocols for the asynchronous single-writer
    multi-reader shared-memory model [M^rw] (Section 5.1).

    A protocol describes one process's behaviour over {e local phases}: at
    most one write into its own register followed by a scan (the paper's
    maximal sequence of reads of distinct variables, which the synchronic
    layering always schedules after the relevant writes, so an atomic scan
    is equivalent).  [step] consumes the scanned register contents. *)

open Layered_core

module type S = sig
  type local

  type reg
  (** contents of a single-writer register *)

  val name : string
  val init : n:int -> pid:Pid.t -> input:Value.t -> local

  (** Value to write into own register at the start of a phase ([None] =
      skip the write). *)
  val write : n:int -> pid:Pid.t -> local -> reg option

  (** Transition on the scanned registers; [reads.(j - 1)] is register
      [V_j]'s content ([None] = never written). *)
  val step : n:int -> pid:Pid.t -> local -> reads:reg option array -> local

  val decision : local -> Value.t option
  val key : local -> string
  val reg_key : reg -> string
  val pp : Format.formatter -> local -> unit
end
