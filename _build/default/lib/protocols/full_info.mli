(** Full-information protocols for every substrate: processes exchange
    their entire {!View} history and decide the minimum input seen at a
    horizon.

    These are the protocols the paper's adversary arguments are usually
    pictured against — nothing is forgotten, so any indistinguishability
    the analysis finds is intrinsic to the model, not an artifact of a
    protocol discarding information.  Experiment E14 replays the layer
    structure checks of E3/E5/E6/E13 against them. *)

(** Synchronous message passing (mobile or t-resilient). *)
val sync : horizon:int -> (module Layered_sync.Protocol.S)

(** Asynchronous read/write shared memory. *)
val shared_memory : horizon:int -> (module Layered_async_sm.Protocol.S)

(** Asynchronous message passing (permutation layering). *)
val message_passing : horizon:int -> (module Layered_async_mp.Protocol.S)

(** Iterated immediate snapshot. *)
val iis : horizon:int -> (module Layered_iis.Protocol.S)
