open Layered_core

let make ~horizon =
  (module struct
    type local = { pref : Value.t; round : int; dec : Value.t option }
    type reg = Value.t

    let name = Printf.sprintf "iis-voting(h=%d)" horizon
    let init ~n:_ ~pid:_ ~input = { pref = input; round = 0; dec = None }
    let write ~n:_ ~pid:_ local = local.pref

    let step ~n:_ ~pid:_ local ~snapshot =
      match local.dec with
      | Some _ -> local
      | None ->
          let pref = List.fold_left (fun acc (_, v) -> min acc v) local.pref snapshot in
          let round = local.round + 1 in
          let dec = if round >= horizon then Some pref else None in
          { pref; round; dec }

    let decision local = local.dec

    let key local =
      Printf.sprintf "%d,%d,%d" local.round local.pref
        (match local.dec with Some v -> v | None -> -1)

    let reg_key = Value.to_string

    let pp ppf local = Format.fprintf ppf "r%d pref=%a" local.round Value.pp local.pref
  end : Layered_iis.Protocol.S)
