(** A deciding consensus attempt for the iterated immediate-snapshot
    model: write the current preference, adopt the minimum preference in
    the snapshot, decide unconditionally at round [horizon].

    Decision and Validity hold by construction; Agreement therefore fails
    on adversarial ordered partitions (experiment E13's ever-bivalent
    chain), mirroring the wait-free impossibility. *)

val make : horizon:int -> (module Layered_iis.Protocol.S)
