(** FloodSet: the classical (t+1)-round consensus protocol for the
    synchronous crash model of Section 6.

    Every process floods the set [W] of values it has seen; at the end of
    round [t + 1] it decides [min W].  Correct (Decision, Agreement,
    Validity) under at most [t] crashes, where a crashing process may
    deliver an arbitrary subset of its final round's messages — exactly
    the adversary of the [S^t] layering; verified exhaustively in the test
    suite.  Its worst-case decision round is exactly [t + 1], witnessing
    tightness of the lower bound (Corollary 6.3).

    In the mobile-failure model [M^mf] (where omissions recur and are
    never recorded) the same protocol still satisfies Decision and
    Validity but — necessarily, by Corollary 5.2 — violates Agreement on
    adversarial runs; experiment E4 exhibits this via an ever-bivalent
    chain. *)

(** [make ~t] decides at the end of round [t + 1]. *)
val make : t:int -> (module Layered_sync.Protocol.S)
