(** The wait-for-(n-1) 2-set agreement algorithm of {!Mp_kset}, ported to
    the iterated immediate-snapshot substrate: each round writes the set
    of (pid, input) pairs known so far, the snapshot merges the visible
    ones, and knowing [n - 1] inputs triggers deciding their minimum.  A
    process scheduled alone in the first concurrency class every round is
    the model's analogue of the one starved process.  Used by E19. *)

val make : unit -> (module Layered_iis.Protocol.S)
