open Layered_core

let make () =
  (module struct
    type local = { seen : (Pid.t * Value.t) list; dec : Value.t option }
    type reg = (Pid.t * Value.t) list

    let name = "sm-2set"
    let init ~n:_ ~pid ~input = { seen = [ (pid, input) ]; dec = None }

    let write ~n:_ ~pid:_ local =
      match local.dec with Some _ -> None | None -> Some local.seen

    let step ~n ~pid:_ local ~reads =
      match local.dec with
      | Some _ -> local
      | None ->
          let seen =
            Array.fold_left
              (fun acc r ->
                match r with
                | Some pairs -> List.sort_uniq compare (acc @ pairs)
                | None -> acc)
              local.seen reads
          in
          let dec =
            if List.length seen >= n - 1 then
              Some (List.fold_left (fun acc (_, v) -> min acc v) max_int seen)
            else None
          in
          { seen; dec }

    let decision local = local.dec

    let pairs_key pairs =
      String.concat ";" (List.map (fun (p, v) -> Printf.sprintf "%d:%d" p v) pairs)

    let key local =
      Printf.sprintf "%s|%d" (pairs_key local.seen)
        (match local.dec with Some v -> v | None -> -1)

    let reg_key = pairs_key

    let pp ppf local = Format.fprintf ppf "knows %d inputs" (List.length local.seen)
  end : Layered_async_sm.Protocol.S)
