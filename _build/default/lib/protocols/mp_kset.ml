open Layered_core

let make ~n:threshold_n =
  (module struct
    (* [seen] maps pids to their inputs, as a sorted assoc list so that
       [key] is canonical. *)
    type local = { seen : (Pid.t * Value.t) list; dec : Value.t option }
    type msg = (Pid.t * Value.t) list

    let name = Printf.sprintf "mp-2set(n=%d)" threshold_n

    let init ~n:_ ~pid ~input = { seen = [ (pid, input) ]; dec = None }

    let send ~n ~pid local =
      match local.dec with
      | Some _ -> []
      | None -> List.map (fun d -> (d, local.seen)) (Pid.others n pid)

    let merge a b =
      List.sort_uniq compare (a @ b)

    let step ~n ~pid:_ local ~inbox =
      match local.dec with
      | Some _ -> local
      | None ->
          let seen =
            List.fold_left (fun acc (_, m) -> merge acc m) local.seen inbox
          in
          let dec =
            if List.length seen >= n - 1 then
              Some (List.fold_left (fun acc (_, v) -> min acc v) max_int seen)
            else None
          in
          { seen; dec }

    let decision local = local.dec

    let key local =
      Printf.sprintf "%s|%d"
        (String.concat ";"
           (List.map (fun (p, v) -> Printf.sprintf "%d:%d" p v) local.seen))
        (match local.dec with Some v -> v | None -> -1)

    let msg_key m =
      String.concat ";" (List.map (fun (p, v) -> Printf.sprintf "%d:%d" p v) m)

    let pp ppf local =
      Format.fprintf ppf "knows %d inputs" (List.length local.seen)
  end : Layered_async_mp.Protocol.S)
