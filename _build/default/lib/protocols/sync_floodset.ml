open Layered_core

let make ~t =
  (module struct
    type local = { seen : Vset.t; round : int; dec : Value.t option }
    type msg = Vset.t

    let name = Printf.sprintf "floodset(t=%d)" t
    let init ~n:_ ~pid:_ ~input = { seen = Vset.singleton input; round = 0; dec = None }

    (* Keep flooding after deciding: the local state is then stable, which
       keeps the reachable state space small. *)
    let send ~n:_ ~round:_ ~pid:_ local ~dest:_ = Some local.seen

    let step ~n:_ ~round:_ ~pid:_ local ~received =
      let seen =
        Array.fold_left
          (fun acc m -> match m with Some w -> Vset.union acc w | None -> acc)
          local.seen received
      in
      let round = local.round + 1 in
      let dec =
        match local.dec with
        | Some _ as d -> d
        | None ->
            if round >= t + 1 then
              match Vset.elements seen with
              | v :: _ -> Some v (* elements are sorted: min *)
              | [] -> assert false
            else None
      in
      { seen; round; dec }

    let decision local = local.dec

    let key local =
      Printf.sprintf "%d,%d,%s" local.round
        (match local.dec with Some v -> v | None -> -1)
        (String.concat "" (List.map string_of_int (Vset.elements local.seen)))

    let msg_key w = String.concat "" (List.map string_of_int (Vset.elements w))

    let pp ppf local =
      Format.fprintf ppf "r%d W=%a" local.round Vset.pp local.seen
  end : Layered_sync.Protocol.S)
