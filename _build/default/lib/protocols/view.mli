(** Full-information views.

    The paper's adversary arguments are usually pictured against
    full-information protocols — processes that remember their entire
    history and send it around.  This module provides the shared view
    structure; the [*_full_info] protocols adapt it to each substrate.

    A view is a canonical string recording everything observed so far,
    together with the set of input values gleaned (for the decision rule)
    and the local round count.  The decision rule is the usual one: decide
    the minimum input seen once [horizon] observation steps have
    happened. *)

open Layered_core

type t = private {
  view : string;  (** canonical full history *)
  seen : Vset.t;  (** input values occurring in the view *)
  round : int;
  dec : Value.t option;
}

(** What a process exposes to others (its full view). *)
type obs = { oview : string; oseen : Vset.t }

val init : pid:Pid.t -> input:Value.t -> t
val observe : t -> obs

(** [advance ~horizon v observations] appends one observation step: the
    (pid, view) pairs received this round, sorted by pid by the caller.
    Decides [min seen] when the new round reaches [horizon] (write-once:
    further advances keep the decision and stop growing the view). *)
val advance : horizon:int -> t -> (Pid.t * obs) list -> t

val decision : t -> Value.t option
val key : t -> string
val obs_key : obs -> string
val pp : Format.formatter -> t -> unit
