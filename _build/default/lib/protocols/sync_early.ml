open Layered_core

let make ~t =
  (module struct
    type local = {
      seen : Vset.t;
      crashed : int;  (** bitmask of processes observed crashed *)
      round : int;
      dec : Value.t option;
    }

    type msg = Vset.t

    let name = Printf.sprintf "early-floodset(t=%d)" t

    let init ~n:_ ~pid:_ ~input =
      { seen = Vset.singleton input; crashed = 0; round = 0; dec = None }

    (* Keep flooding after deciding so that late deciders still receive
       every value the early ones saw. *)
    let send ~n:_ ~round:_ ~pid:_ local ~dest:_ = Some local.seen

    let popcount bits =
      let rec go acc b = if b = 0 then acc else go (acc + (b land 1)) (b lsr 1) in
      go 0 bits

    let step ~n ~round:_ ~pid local ~received =
      let seen = ref local.seen and crashed = ref local.crashed in
      Array.iteri
        (fun idx m ->
          let src = idx + 1 in
          match m with
          | Some w -> seen := Vset.union !seen w
          | None -> if src <> pid then crashed := !crashed lor (1 lsl src))
        received;
      ignore n;
      let round = local.round + 1 in
      let dec =
        match local.dec with
        | Some _ as d -> d
        | None ->
            if popcount !crashed < round || round >= t + 1 then
              match Vset.elements !seen with
              | v :: _ -> Some v
              | [] -> assert false
            else None
      in
      { seen = !seen; crashed = !crashed; round; dec }

    let decision local = local.dec

    let key local =
      Printf.sprintf "%d,%d,%d,%s" local.round local.crashed
        (match local.dec with Some v -> v | None -> -1)
        (String.concat "" (List.map string_of_int (Vset.elements local.seen)))

    let msg_key w = String.concat "" (List.map string_of_int (Vset.elements w))

    let pp ppf local =
      Format.fprintf ppf "r%d W=%a crashed=%d" local.round Vset.pp local.seen
        (popcount local.crashed)
  end : Layered_sync.Protocol.S)
