(** Rotating-coordinator consensus for the send-omission model, [n > 2t]
    (experiment E18).

    [t + 1] phases of three rounds each — vote (lock a value backed by
    [n - t] votes), claim (broadcast lock status; omission faults drop
    but never corrupt, so the phase king can safely adopt any lock claim
    it sees), king (unlocked processes adopt the king's value).  Decides
    after round [3(t + 1)].

    Correct under send-omission and general (send+receive) omission for
    [n > 2t], verified exhaustively; at the boundary [n = 2t] the
    guarantee genuinely fails and the checker exhibits it.  The claim
    round is essential: the two-round variant lets a weak king decide its
    own minority value (the checker found the 3-process counterexample
    during development). *)

val make : t:int -> (module Layered_sync.Protocol.S)
