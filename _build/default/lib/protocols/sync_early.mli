(** Early-deciding FloodSet for the synchronous crash model: the "fast"
    protocol of Lemma 6.4.

    Processes flood value sets as in {!Sync_floodset} and additionally
    track the set of processes they have observed to crash (no message
    received in some round).  A process decides [min W] at the end of the
    first round [r] in which its observed-crash count is smaller than [r]
    — by pigeonhole such a round occurs by [t + 1], and in a failure-free
    run decision takes a single round.  Decisions therefore always happen
    within [t + 1] rounds (the protocol is {e fast} in the paper's sense),
    and by round [f + 2] when only [f] processes actually crash.
    Correctness under every [S^t] adversary is established exhaustively in
    the test suite. *)

val make : t:int -> (module Layered_sync.Protocol.S)
