(** A deciding flooding protocol for the asynchronous message-passing
    model, used by the permutation-layering experiments (E6).

    Each local phase sends the current value set [W] to everyone (content
    fixed at phase start, per the model), merges the inbox into [W], bumps
    the phase counter, and decides [min W] unconditionally at phase
    [horizon] (after which the process sends nothing, keeping the state
    space small).

    As with {!Sm_voting}: Decision and Validity hold, so Agreement must
    fail on adversarial schedules (FLP / Section 5.1), which is what the
    ever-bivalent chain exhibits. *)

val make : horizon:int -> (module Layered_async_mp.Protocol.S)
