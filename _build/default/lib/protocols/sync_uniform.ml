open Layered_core

(* Phase 1 (rounds 1..t+1): FloodSet, producing a tentative value.
   Phase 2 (round t+2): echo tentatives; decide the minimum tentative
   RECEIVED (own tentative only when isolated).

   Why this is uniform: if all t crashes happen by round t+1 the echo
   round is crash-free and every process — even long-crashed ones, which
   still receive — decides the survivors' common tentative.  If a crash
   happens in the echo round itself, at most t-1 crashes preceded it, so
   every process alive through round t+1 holds the same tentative; the
   echo-round crasher both spreads and decides that same value.  A
   process that crashed earlier is silenced and cannot pollute the echo
   with its possibly-smaller private tentative — which is exactly the
   flaw that makes plain FloodSet non-uniform. *)
let make ~t =
  (module struct
    type local = {
      seen : Vset.t;
      tentative : Value.t option;
      round : int;
      dec : Value.t option;
    }

    type msg = Flood of Vset.t | Echo of Value.t

    let name = Printf.sprintf "uniform-floodset(t=%d)" t

    let init ~n:_ ~pid:_ ~input =
      { seen = Vset.singleton input; tentative = None; round = 0; dec = None }

    let send ~n:_ ~round:_ ~pid:_ local ~dest:_ =
      match (local.dec, local.tentative) with
      | Some _, _ -> None
      | None, Some v -> Some (Echo v)
      | None, None -> Some (Flood local.seen)

    let step ~n:_ ~round:_ ~pid:_ local ~received =
      match local.dec with
      | Some _ -> local
      | None ->
          let round = local.round + 1 in
          if round <= t + 1 then begin
            let seen =
              Array.fold_left
                (fun acc m ->
                  match m with
                  | Some (Flood w) -> Vset.union acc w
                  | Some (Echo _) | None -> acc)
                local.seen received
            in
            let tentative =
              if round = t + 1 then
                match Vset.elements seen with v :: _ -> Some v | [] -> assert false
              else None
            in
            { seen; tentative; round; dec = None }
          end
          else begin
            let echoes =
              Array.fold_left
                (fun acc m ->
                  match m with
                  | Some (Echo v) -> Vset.add v acc
                  | Some (Flood _) | None -> acc)
                Vset.empty received
            in
            let basis =
              if Vset.is_empty echoes then
                match local.tentative with Some v -> Vset.singleton v | None -> assert false
              else echoes
            in
            let dec = match Vset.elements basis with
              | v :: _ -> Some v
              | [] -> assert false
            in
            { local with round; dec }
          end

    let decision local = local.dec

    let key local =
      Printf.sprintf "%d,%d,%d,%s" local.round
        (match local.tentative with Some v -> v | None -> -1)
        (match local.dec with Some v -> v | None -> -1)
        (String.concat "" (List.map string_of_int (Vset.elements local.seen)))

    let msg_key = function
      | Flood w -> "F" ^ String.concat "" (List.map string_of_int (Vset.elements w))
      | Echo v -> "E" ^ Value.to_string v

    let pp ppf local =
      Format.fprintf ppf "r%d W=%a%s" local.round Vset.pp local.seen
        (match local.tentative with
        | Some v -> Printf.sprintf " tent=%d" v
        | None -> "")
  end : Layered_sync.Protocol.S)
