open Layered_core

let make ~t =
  (module struct
    type local = {
      seen : Vset.t;
      silent : int;  (** bitmask of processes ever found silent *)
      round : int;
      dec : Value.t option;
    }

    type msg = Vset.t

    let name = Printf.sprintf "clean-floodset(t=%d)" t

    let init ~n:_ ~pid:_ ~input =
      { seen = Vset.singleton input; silent = 0; round = 0; dec = None }

    let send ~n:_ ~round:_ ~pid:_ local ~dest:_ = Some local.seen

    let step ~n:_ ~round:_ ~pid local ~received =
      let seen = ref local.seen and fresh_silence = ref 0 in
      Array.iteri
        (fun idx m ->
          let src = idx + 1 in
          match m with
          | Some w -> seen := Vset.union !seen w
          | None -> if src <> pid then fresh_silence := !fresh_silence lor (1 lsl src))
        received;
      let round = local.round + 1 in
      let new_silence = !fresh_silence land lnot local.silent in
      let silent = local.silent lor !fresh_silence in
      let dec =
        match local.dec with
        | Some _ as d -> d
        | None ->
            if new_silence = 0 || round >= t + 1 then
              match Vset.elements !seen with
              | v :: _ -> Some v
              | [] -> assert false
            else None
      in
      { seen = !seen; silent; round; dec }

    let decision local = local.dec

    let key local =
      Printf.sprintf "%d,%d,%d,%s" local.round local.silent
        (match local.dec with Some v -> v | None -> -1)
        (String.concat "" (List.map string_of_int (Vset.elements local.seen)))

    let msg_key w = String.concat "" (List.map string_of_int (Vset.elements w))

    let pp ppf local =
      Format.fprintf ppf "r%d W=%a silent=%d" local.round Vset.pp local.seen local.silent
  end : Layered_sync.Protocol.S)
