(** A 1-resilient k-set agreement protocol (k = 2) for asynchronous
    message passing — the constructive side of Corollary 7.3.

    Experiment E9 shows 2-set agreement {e passes} the 1-thick
    connectivity condition; by the cited Biran-Moran-Zaks sufficiency it
    must be solvable 1-resiliently, and this protocol realises it:

    every process repeatedly broadcasts the map of (pid, input) pairs it
    has collected; once it knows the inputs of at least [n - 1] processes
    (its own included) it decides the minimum value it has seen and goes
    quiet.

    Why at most two distinct decisions: each decision is the minimum over
    all inputs except at most one, so it is either the global minimum or
    — only when the unique minimum-holder is the excluded process — the
    minimum of the rest.  Validity is immediate, and in every run of the
    permutation submodel all but at most one process eventually hears
    [n - 1] inputs.  Experiment E11 verifies all three properties by
    exhaustive exploration. *)

val make : n:int -> (module Layered_async_mp.Protocol.S)
