open Layered_core

(* Tree nodes as an association list from the path (a string of pid
   digits, most recent relay last) to the reported value, kept sorted by
   path for canonical keys.  Processes are single digits in all our
   instances; guard in [init]. *)

let make ~t =
  (module struct
    type local = { tree : (string * Value.t) list; round : int; dec : Value.t option }
    type msg = (string * Value.t) list

    let name = Printf.sprintf "eig(t=%d)" t

    let init ~n ~pid ~input =
      if n > 9 then invalid_arg "eig: at most 9 processes";
      ignore pid;
      { tree = [ ("", input) ]; round = 0; dec = None }

    let level local r =
      List.filter (fun (path, _) -> String.length path = r) local.tree

    let send ~n:_ ~round ~pid:_ local ~dest:_ =
      match local.dec with
      | Some _ -> None (* halt after deciding; the tree is complete *)
      | None -> Some (level local (round - 1))

    let path_mem pid path = String.contains path (Char.chr (Char.code '0' + pid))

    let step ~n:_ ~round ~pid:_ local ~received =
      let additions =
        Array.to_list received
        |> List.mapi (fun idx m -> (idx + 1, m))
        |> List.concat_map (fun (src, m) ->
               match m with
               | None -> []
               | Some nodes ->
                   List.filter_map
                     (fun (path, v) ->
                       if path_mem src path then None
                       else Some (path ^ string_of_int src, v))
                     nodes)
      in
      let tree =
        List.sort_uniq compare (local.tree @ additions)
      in
      let dec =
        match local.dec with
        | Some _ as d -> d
        | None ->
            if round >= t + 1 then
              Some (List.fold_left (fun acc (_, v) -> min acc v) max_int tree)
            else None
      in
      { tree; round = local.round + 1; dec }

    let decision local = local.dec

    let key local =
      Printf.sprintf "%d,%d|%s" local.round
        (match local.dec with Some v -> v | None -> -1)
        (String.concat ";"
           (List.map (fun (p, v) -> Printf.sprintf "%s=%d" p v) local.tree))

    let msg_key nodes =
      String.concat ";" (List.map (fun (p, v) -> Printf.sprintf "%s=%d" p v) nodes)

    let pp ppf local =
      Format.fprintf ppf "r%d |tree|=%d" local.round (List.length local.tree)
  end : Layered_sync.Protocol.S)
