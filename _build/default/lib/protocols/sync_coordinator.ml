open Layered_core

(* Rotating-coordinator consensus for the send-omission model, n > 2t.

   Phase k (three rounds):
   - vote:  everyone broadcasts its preference; a process seeing some
     value v with at least n - t votes (its own included) locks v
     (strong); otherwise it tentatively keeps the minimum vote.
   - claim: everyone broadcasts (preference, locked?).  Omission faults
     drop messages but never corrupt them, so a received lock claim is
     genuine; and two locks on different values are impossible (each is
     backed by n - t votes, which would overlap in n - 2t > 0 voters).
     The phase king adopts the value of any lock claim it sees.
   - king:  process k broadcasts its preference; unlocked processes adopt
     it.

   After t + 1 phases some king was non-faulty and that phase ended with
   all correct processes agreed (a correct king hears every correct lock
   claim); locks make agreement persist.  Decide after round 3(t + 1).

   The claim round is not an optimisation: the two-round variant (no
   claim) lets a weak king decide its own minority value, and the
   exhaustive checker exhibits a 3-process run doing exactly that — see
   the test suite, which pins both this design's correctness and the
   two-round design's failure. *)
let make ~t =
  (module struct
    type local = {
      pref : Value.t;
      strong : bool;
      round : int;
      dec : Value.t option;
    }

    type msg = Vote of Value.t | Claim of Value.t * bool | King of Value.t

    let name = Printf.sprintf "coordinator(t=%d)" t

    let init ~n:_ ~pid:_ ~input = { pref = input; strong = false; round = 0; dec = None }

    let phase_of round = ((round - 1) / 3) + 1
    let sub_of round = (round - 1) mod 3 (* 0 = vote, 1 = claim, 2 = king *)

    let send ~n:_ ~round ~pid local ~dest:_ =
      match local.dec with
      | Some _ -> None
      | None -> (
          match sub_of round with
          | 0 -> Some (Vote local.pref)
          | 1 -> Some (Claim (local.pref, local.strong))
          | _ -> if pid = phase_of round then Some (King local.pref) else None)

    let step ~n ~round ~pid local ~received =
      match local.dec with
      | Some _ -> local
      | None ->
          let local =
            match sub_of round with
            | 0 ->
                let votes = ref [ local.pref ] in
                Array.iteri
                  (fun idx m ->
                    match m with
                    | Some (Vote v) when idx + 1 <> pid -> votes := v :: !votes
                    | Some (Vote _ | Claim _ | King _) | None -> ())
                  received;
                let votes = !votes in
                let count v = List.length (List.filter (Value.equal v) votes) in
                let candidates = List.sort_uniq compare votes in
                (match List.find_opt (fun v -> count v >= n - t) candidates with
                | Some v -> { local with pref = v; strong = true }
                | None ->
                    {
                      local with
                      pref = List.fold_left min (List.hd votes) votes;
                      strong = false;
                    })
            | 1 ->
                (* Only the upcoming king acts on claims. *)
                if pid <> phase_of round then local
                else if local.strong then local
                else begin
                  let locked = ref None in
                  Array.iter
                    (fun m ->
                      match m with
                      | Some (Claim (v, true)) when !locked = None -> locked := Some v
                      | Some (Claim _ | Vote _ | King _) | None -> ())
                    received;
                  match !locked with
                  | Some v -> { local with pref = v }
                  | None -> local
                end
            | _ -> (
                let king = phase_of round in
                if pid = king then local
                else
                  match received.(king - 1) with
                  | Some (King w) when not local.strong -> { local with pref = w }
                  | Some (King _ | Vote _ | Claim _) | None -> local)
          in
          let round' = local.round + 1 in
          let dec = if round' >= 3 * (t + 1) then Some local.pref else None in
          { local with round = round'; dec }

    let decision local = local.dec

    let key local =
      Printf.sprintf "%d,%d,%b,%d" local.round local.pref local.strong
        (match local.dec with Some v -> v | None -> -1)

    let msg_key = function
      | Vote v -> "V" ^ Value.to_string v
      | Claim (v, s) -> Printf.sprintf "C%d%b" v s
      | King v -> "K" ^ Value.to_string v

    let pp ppf local =
      Format.fprintf ppf "r%d pref=%a%s" local.round Value.pp local.pref
        (if local.strong then " strong" else "")
  end : Layered_sync.Protocol.S)
