open Layered_core

let make ~horizon =
  (module struct
    type local = { seen : Vset.t; phase : int; dec : Value.t option }
    type msg = Vset.t

    let name = Printf.sprintf "mp-floodset(h=%d)" horizon
    let init ~n:_ ~pid:_ ~input = { seen = Vset.singleton input; phase = 0; dec = None }

    let send ~n ~pid local =
      match local.dec with
      | Some _ -> []
      | None -> List.map (fun d -> (d, local.seen)) (Pid.others n pid)

    let step ~n:_ ~pid:_ local ~inbox =
      match local.dec with
      | Some _ -> local
      | None ->
          let seen =
            List.fold_left (fun acc (_, w) -> Vset.union acc w) local.seen inbox
          in
          let phase = local.phase + 1 in
          let dec =
            if phase >= horizon then
              match Vset.elements seen with v :: _ -> Some v | [] -> assert false
            else None
          in
          { seen; phase; dec }

    let decision local = local.dec

    let key local =
      Printf.sprintf "%d,%d,%s" local.phase
        (match local.dec with Some v -> v | None -> -1)
        (String.concat "" (List.map string_of_int (Vset.elements local.seen)))

    let msg_key w = String.concat "" (List.map string_of_int (Vset.elements w))

    let pp ppf local =
      Format.fprintf ppf "ph%d W=%a" local.phase Vset.pp local.seen
  end : Layered_async_mp.Protocol.S)
