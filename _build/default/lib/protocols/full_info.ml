open Layered_core

let sync ~horizon =
  (module struct
    type local = View.t
    type msg = View.obs

    let name = Printf.sprintf "full-info-sync(h=%d)" horizon
    let init ~n:_ ~pid ~input = View.init ~pid ~input

    let send ~n:_ ~round:_ ~pid:_ local ~dest:_ =
      match View.decision local with Some _ -> None | None -> Some (View.observe local)

    let step ~n ~round:_ ~pid:_ local ~received =
      let observations =
        List.filter_map
          (fun i ->
            match received.(i - 1) with Some o -> Some (i, o) | None -> None)
          (Pid.all n)
      in
      View.advance ~horizon local observations

    let decision = View.decision
    let key = View.key
    let msg_key = View.obs_key
    let pp = View.pp
  end : Layered_sync.Protocol.S)

let shared_memory ~horizon =
  (module struct
    type local = View.t
    type reg = View.obs

    let name = Printf.sprintf "full-info-sm(h=%d)" horizon
    let init ~n:_ ~pid ~input = View.init ~pid ~input

    let write ~n:_ ~pid:_ local =
      match View.decision local with Some _ -> None | None -> Some (View.observe local)

    let step ~n ~pid:_ local ~reads =
      let observations =
        List.filter_map
          (fun i -> match reads.(i - 1) with Some o -> Some (i, o) | None -> None)
          (Pid.all n)
      in
      View.advance ~horizon local observations

    let decision = View.decision
    let key = View.key
    let reg_key = View.obs_key
    let pp = View.pp
  end : Layered_async_sm.Protocol.S)

let message_passing ~horizon =
  (module struct
    type local = View.t
    type msg = View.obs

    let name = Printf.sprintf "full-info-mp(h=%d)" horizon
    let init ~n:_ ~pid ~input = View.init ~pid ~input

    let send ~n ~pid local =
      match View.decision local with
      | Some _ -> []
      | None -> List.map (fun d -> (d, View.observe local)) (Pid.others n pid)

    let step ~n:_ ~pid:_ local ~inbox =
      (* The engine delivers mailboxes sorted by source. *)
      View.advance ~horizon local inbox

    let decision = View.decision
    let key = View.key
    let msg_key = View.obs_key
    let pp = View.pp
  end : Layered_async_mp.Protocol.S)

let iis ~horizon =
  (module struct
    type local = View.t
    type reg = View.obs

    let name = Printf.sprintf "full-info-iis(h=%d)" horizon
    let init ~n:_ ~pid ~input = View.init ~pid ~input
    let write ~n:_ ~pid:_ local = View.observe local
    let step ~n:_ ~pid:_ local ~snapshot = View.advance ~horizon local snapshot
    let decision = View.decision
    let key = View.key
    let reg_key = View.obs_key
    let pp = View.pp
  end : Layered_iis.Protocol.S)
