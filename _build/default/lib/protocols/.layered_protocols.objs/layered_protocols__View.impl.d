lib/protocols/view.ml: Format Layered_core List Printf String Value Vset
