lib/protocols/full_info.mli: Layered_async_mp Layered_async_sm Layered_iis Layered_sync
