lib/protocols/mp_floodset.mli: Layered_async_mp
