lib/protocols/sync_coordinator.ml: Array Format Layered_core Layered_sync List Printf Value
