lib/protocols/sync_clean.mli: Layered_sync
