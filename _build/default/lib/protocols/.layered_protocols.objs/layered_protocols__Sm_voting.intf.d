lib/protocols/sm_voting.mli: Layered_async_sm
