lib/protocols/sync_early.ml: Array Format Layered_core Layered_sync List Printf String Value Vset
