lib/protocols/iis_kset.mli: Layered_iis
