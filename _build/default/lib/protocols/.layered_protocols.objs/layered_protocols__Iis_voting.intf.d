lib/protocols/iis_voting.mli: Layered_iis
