lib/protocols/sync_floodset.mli: Layered_sync
