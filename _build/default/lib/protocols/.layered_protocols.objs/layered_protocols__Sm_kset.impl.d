lib/protocols/sm_kset.ml: Array Format Layered_async_sm Layered_core List Pid Printf String Value
