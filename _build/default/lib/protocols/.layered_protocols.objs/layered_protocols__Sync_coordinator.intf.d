lib/protocols/sync_coordinator.mli: Layered_sync
