lib/protocols/view.mli: Format Layered_core Pid Value Vset
