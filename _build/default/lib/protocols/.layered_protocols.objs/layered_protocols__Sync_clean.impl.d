lib/protocols/sync_clean.ml: Array Format Layered_core Layered_sync List Printf String Value Vset
