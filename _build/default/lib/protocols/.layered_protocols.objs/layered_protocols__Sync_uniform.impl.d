lib/protocols/sync_uniform.ml: Array Format Layered_core Layered_sync List Printf String Value Vset
