lib/protocols/sync_early.mli: Layered_sync
