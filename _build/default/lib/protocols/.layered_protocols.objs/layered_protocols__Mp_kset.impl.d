lib/protocols/mp_kset.ml: Format Layered_async_mp Layered_core List Pid Printf String Value
