lib/protocols/sync_eig.ml: Array Char Format Layered_core Layered_sync List Printf String Value
