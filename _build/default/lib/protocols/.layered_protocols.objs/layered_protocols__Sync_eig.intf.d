lib/protocols/sync_eig.mli: Layered_sync
