lib/protocols/sm_kset.mli: Layered_async_sm
