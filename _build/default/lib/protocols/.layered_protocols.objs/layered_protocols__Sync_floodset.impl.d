lib/protocols/sync_floodset.ml: Array Format Layered_core Layered_sync List Printf String Value Vset
