lib/protocols/mp_kset.mli: Layered_async_mp
