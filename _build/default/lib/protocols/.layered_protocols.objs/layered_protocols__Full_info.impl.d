lib/protocols/full_info.ml: Array Layered_async_mp Layered_async_sm Layered_core Layered_iis Layered_sync List Pid Printf View
