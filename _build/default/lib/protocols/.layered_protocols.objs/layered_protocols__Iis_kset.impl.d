lib/protocols/iis_kset.ml: Format Layered_core Layered_iis List Pid Printf String Value
