lib/protocols/mp_floodset.ml: Format Layered_async_mp Layered_core List Pid Printf String Value Vset
