lib/protocols/sm_voting.ml: Array Format Layered_async_sm Layered_core Printf Value
