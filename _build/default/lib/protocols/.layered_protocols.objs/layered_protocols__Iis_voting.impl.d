lib/protocols/iis_voting.ml: Format Layered_core Layered_iis List Printf Value
