lib/protocols/sync_uniform.mli: Layered_sync
