(** EIGStop: consensus by Exponential Information Gathering, for the
    synchronous crash model of Section 6.

    Each process maintains a tree of relayed values indexed by sequences of
    distinct process ids ("[p_k] told me that [p_{k-1}] told me ... that
    [p_1]'s input was [v]").  In round [r] it forwards its level-[r-1]
    nodes; after round [t + 1] it decides the minimum value in its tree.
    Under crash failures this decides exactly like {!Sync_floodset} but
    carries the full relay structure — it is the ablation baseline showing
    the experiments' conclusions do not depend on the protocol's state
    representation. *)

val make : t:int -> (module Layered_sync.Protocol.S)
