(** Clean-round early-stopping FloodSet, for the "wasted faults"
    discussion closing Section 6.

    Processes flood value sets and track the set of processes they have
    ever found silent.  A process decides [min W] at the end of the first
    round in which it observed {e no new silence} (a locally clean round),
    or unconditionally at round [t + 1].

    A failure-free run decides in one round; more generally, when the
    environment "wastes" its faults — spends several crashes early and
    visibly — a clean round arrives early and so does decision, matching
    the [k + w] crashes by round [k] => decide by [t + 1 - w] account of
    Dwork-Moses that the paper cites after Lemma 6.4 (experiment E16).
    Correctness under every crash adversary is established exhaustively in
    the test suite and E16. *)

val make : t:int -> (module Layered_sync.Protocol.S)
