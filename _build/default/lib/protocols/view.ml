open Layered_core

type t = { view : string; seen : Vset.t; round : int; dec : Value.t option }
type obs = { oview : string; oseen : Vset.t }

let init ~pid ~input =
  {
    view = Printf.sprintf "%d=%d" pid input;
    seen = Vset.singleton input;
    round = 0;
    dec = None;
  }

let observe v = { oview = v.view; oseen = v.seen }

let advance ~horizon v observations =
  match v.dec with
  | Some _ -> v
  | None ->
      let view =
        Printf.sprintf "%s[%s]" v.view
          (String.concat ","
             (List.map (fun (p, o) -> Printf.sprintf "%d:%s" p o.oview) observations))
      in
      let seen =
        List.fold_left (fun acc (_, o) -> Vset.union acc o.oseen) v.seen observations
      in
      let round = v.round + 1 in
      let dec =
        if round >= horizon then
          match Vset.elements seen with w :: _ -> Some w | [] -> assert false
        else None
      in
      { view; seen; round; dec }

let decision v = v.dec

let key v =
  Printf.sprintf "%d,%d,%s" v.round
    (match v.dec with Some w -> w | None -> -1)
    v.view

let obs_key o = o.oview

let pp ppf v =
  Format.fprintf ppf "r%d seen=%a |view|=%d" v.round Vset.pp v.seen (String.length v.view)
