open Layered_core

let make ~horizon =
  (module struct
    type local = { pref : Value.t; phase : int; dec : Value.t option }
    type reg = { r_phase : int; r_pref : Value.t }

    let name = Printf.sprintf "sm-voting(h=%d)" horizon
    let init ~n:_ ~pid:_ ~input = { pref = input; phase = 0; dec = None }

    let write ~n:_ ~pid:_ local =
      match local.dec with
      | Some _ -> None (* stable after deciding *)
      | None -> Some { r_phase = local.phase; r_pref = local.pref }

    let step ~n:_ ~pid:_ local ~reads =
      match local.dec with
      | Some _ -> local
      | None ->
          (* Adopt the minimum preference among the freshest register
             entries (phase >= own), own included. *)
          let freshest =
            Array.fold_left
              (fun acc r ->
                match r with
                | Some { r_phase; r_pref } when r_phase >= local.phase -> min acc r_pref
                | Some _ | None -> acc)
              local.pref reads
          in
          let phase = local.phase + 1 in
          let dec = if phase >= horizon then Some freshest else None in
          { pref = freshest; phase; dec }

    let decision local = local.dec

    let key local =
      Printf.sprintf "%d,%d,%d" local.phase local.pref
        (match local.dec with Some v -> v | None -> -1)

    let reg_key { r_phase; r_pref } = Printf.sprintf "%d:%d" r_phase r_pref

    let pp ppf local =
      Format.fprintf ppf "ph%d pref=%a" local.phase Value.pp local.pref
  end : Layered_async_sm.Protocol.S)
