(** The wait-for-(n-1) 2-set agreement algorithm of {!Mp_kset}, ported to
    the asynchronous read/write shared-memory substrate: each process
    keeps the set of (pid, input) pairs it knows in its register; a scan
    merges all registers; knowing [n - 1] inputs triggers deciding their
    minimum.  Used by E19 to exhibit Corollary 7.3's model equivalence
    operationally: one algorithm, three substrates. *)

val make : unit -> (module Layered_async_sm.Protocol.S)
