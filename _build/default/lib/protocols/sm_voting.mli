(** A deciding consensus attempt for the asynchronous read/write
    shared-memory model [M^rw], used by the synchronic-layering
    experiments (E5).

    Each process writes its (phase, preference) into its register, scans,
    adopts the minimum preference among the freshest entries it sees, and
    decides its preference unconditionally at phase [horizon].

    The protocol satisfies Decision (every process decides by its
    [horizon]-th phase) and Validity (preferences are always inputs), so —
    by the very impossibility it is used to demonstrate (Corollary 5.4) —
    it must violate Agreement on some [S^rw]-schedules; the bivalent-chain
    construction of experiment E5 drives it to exactly those schedules. *)

val make : horizon:int -> (module Layered_async_sm.Protocol.S)
