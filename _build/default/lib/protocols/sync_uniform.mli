(** Uniform consensus in t+2 rounds for the crash model.

    FloodSet for rounds [1 .. t+1] yields a tentative value; one further
    {e echo} round then has everyone decide the minimum tentative it
    {e received} (its own only when isolated).  A process that crashed
    early is silenced, so its possibly-smaller private tentative — exactly
    what makes plain FloodSet non-uniform (E7's [uniform=false], E15's
    epistemic witness) — never reaches the echo.  Agreement thus extends
    to all deciders, failed ones included, at the price of one extra
    round: the measured worst-case decision round is [t + 2], an empirical
    view of the classical "uniform consensus is harder" gap.

    (A one-phase variant deciding on the {e final-round} received sets
    looks plausible and is refuted by the exhaustive checker — a stale
    receiver can out-vote a fresh one; see the test suite.)

    Verified exhaustively (including the uniform flag) in E7 and the test
    suite. *)

val make : t:int -> (module Layered_sync.Protocol.S)
