(** Decision values.

    The paper treats binary consensus ({!zero}/{!one}) in Sections 3-6 and
    values from an arbitrary finite range in Section 7.  We represent values
    as small non-negative integers so that sets of values fit in a {!Vset.t}
    bitmask. *)

type t = int

val zero : t
val one : t

(** [of_int v] checks [0 <= v < Vset.max_value] and returns [v]. *)
val of_int : int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
