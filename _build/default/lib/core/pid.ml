type t = int

let all n =
  if n < 2 then invalid_arg "Pid.all: need at least two processes";
  List.init n (fun i -> i + 1)

let others n i = List.filter (fun j -> j <> i) (all n)
let equal = Int.equal
let compare = Int.compare
let pp = Format.pp_print_int
