(** Disjoint-set forests over the integers [0 .. size - 1], with union by
    rank and path compression.  Used by the connectivity engines. *)

type t

val create : int -> t
val size : t -> int

(** [find t i] is the canonical representative of [i]'s class. *)
val find : t -> int -> int

(** [union t i j] merges the classes of [i] and [j]; returns [true] iff the
    classes were distinct. *)
val union : t -> int -> int -> bool

val same : t -> int -> int -> bool

(** Number of distinct classes. *)
val count : t -> int

(** Classes as lists of members, each sorted ascending. *)
val classes : t -> int list list
