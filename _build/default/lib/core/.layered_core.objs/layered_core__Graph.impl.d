lib/core/graph.ml: Array List Queue Union_find
