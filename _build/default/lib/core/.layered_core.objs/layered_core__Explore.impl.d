lib/core/explore.ml: Hashtbl List Option Queue
