lib/core/explore.mli:
