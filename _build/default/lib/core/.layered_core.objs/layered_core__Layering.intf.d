lib/core/layering.mli: Valence
