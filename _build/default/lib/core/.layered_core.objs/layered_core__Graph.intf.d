lib/core/graph.mli:
