lib/core/value.ml: Format Int
