lib/core/vset.mli: Format Value
