lib/core/pid.ml: Format Int List
