lib/core/inputs.ml: Array List
