lib/core/connectivity.mli: Valence Vset
