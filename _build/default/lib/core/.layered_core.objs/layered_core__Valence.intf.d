lib/core/valence.mli: Format Value Vset
