lib/core/inputs.mli: Value
