lib/core/connectivity.ml: Array Graph List Option Valence Vset
