lib/core/report.ml: Buffer Format List String
