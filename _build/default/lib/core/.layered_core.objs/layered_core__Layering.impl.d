lib/core/layering.ml: Explore List String Valence
