lib/core/valence.ml: Format Hashtbl List Value Vset
