lib/core/vset.ml: Format Int List Value
