lib/core/pid.mli: Format
