type t = { adj : int list array }

let of_edges ~size edges =
  let adj = Array.make size [] in
  let add i j =
    if i < 0 || i >= size || j < 0 || j >= size then invalid_arg "Graph.of_edges";
    adj.(i) <- j :: adj.(i)
  in
  List.iter
    (fun (i, j) ->
      if i <> j then begin
        add i j;
        add j i
      end)
    edges;
  { adj = Array.map (List.sort_uniq compare) adj }

let of_pred ~size rel =
  let edges = ref [] in
  for i = 0 to size - 1 do
    for j = i + 1 to size - 1 do
      if rel i j then edges := (i, j) :: !edges
    done
  done;
  of_edges ~size !edges

let size t = Array.length t.adj
let neighbours t i = t.adj.(i)
let edge_count t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.adj / 2

(* BFS from [src]; returns the distance array (-1 = unreachable) and a
   predecessor array for path reconstruction. *)
let bfs t src =
  let n = size t in
  let dist = Array.make n (-1) and pred = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let visit v =
      if dist.(v) < 0 then begin
        dist.(v) <- dist.(u) + 1;
        pred.(v) <- u;
        Queue.add v queue
      end
    in
    List.iter visit t.adj.(u)
  done;
  (dist, pred)

let is_connected t =
  let n = size t in
  n = 0
  ||
  let dist, _ = bfs t 0 in
  Array.for_all (fun d -> d >= 0) dist

let components t =
  let n = size t in
  let uf = Union_find.create n in
  Array.iteri (fun i adj -> List.iter (fun j -> ignore (Union_find.union uf i j)) adj) t.adj;
  Union_find.classes uf

let path t src dst =
  let _, pred = bfs t src in
  if src = dst then Some [ src ]
  else if pred.(dst) < 0 then None
  else begin
    let rec walk acc v = if v = src then src :: acc else walk (v :: acc) pred.(v) in
    Some (walk [] dst)
  end

let eccentricity t i =
  let dist, _ = bfs t i in
  if Array.exists (fun d -> d < 0) dist then None
  else Some (Array.fold_left max 0 dist)

let diameter t =
  let n = size t in
  if n = 0 then None
  else begin
    let rec widest acc i =
      if i >= n then Some acc
      else
        match eccentricity t i with
        | None -> None
        | Some e -> widest (max acc e) (i + 1)
    in
    widest 0 0
  end
