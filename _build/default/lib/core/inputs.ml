let vectors ~n ~values =
  if n < 1 then invalid_arg "Inputs.vectors";
  let rec build acc i =
    if i = n then [ Array.of_list (List.rev acc) ]
    else List.concat_map (fun v -> build (v :: acc) (i + 1)) values
  in
  build [] 0
