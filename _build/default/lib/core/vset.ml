type t = int

let max_value = 62

let check v =
  if v < 0 || v >= max_value then invalid_arg "Vset: value out of range";
  v

let empty = 0
let singleton v = 1 lsl check v
let add v s = s lor singleton v
let mem v s = s land singleton v <> 0
let union a b = a lor b
let inter a b = a land b
let is_empty s = s = 0

let cardinal s =
  let rec count acc s = if s = 0 then acc else count (acc + (s land 1)) (s lsr 1) in
  count 0 s

let subset a b = a land lnot b = 0
let equal = Int.equal

let elements s =
  let rec collect acc v =
    if v < 0 then acc
    else collect (if mem v s then v :: acc else acc) (v - 1)
  in
  collect [] (max_value - 1)

let of_list vs = List.fold_left (fun s v -> add v s) empty vs
let intersects a b = not (is_empty (inter a b))

let pp ppf s =
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') Value.pp) (elements s)
