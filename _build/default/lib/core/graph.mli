(** Finite undirected graphs over the nodes [0 .. size - 1].

    The connectivity notions of the paper (similarity connectivity, valence
    connectivity, the [~s]-diameter of Section 7) are all properties of
    finite graphs whose nodes are global states; this module provides the
    graph algorithms and {!Connectivity} maps states onto them. *)

type t

val of_edges : size:int -> (int * int) list -> t

(** [of_pred ~size rel] builds the graph with an edge [(i, j)] for every
    [i < j] with [rel i j].  [rel] is queried once per unordered pair. *)
val of_pred : size:int -> (int -> int -> bool) -> t

val size : t -> int
val neighbours : t -> int -> int list
val edge_count : t -> int
val is_connected : t -> bool

(** Connected components, each sorted ascending, ordered by smallest
    member. *)
val components : t -> int list list

(** [path t src dst] is a shortest path from [src] to [dst] (inclusive), or
    [None] if disconnected. *)
val path : t -> int -> int -> int list option

(** [eccentricity t i] is the greatest BFS distance from [i], or [None] if
    some node is unreachable from [i]. *)
val eccentricity : t -> int -> int option

(** Diameter of the graph: greatest shortest-path distance over all pairs.
    [None] if the graph is disconnected or empty. *)
val diameter : t -> int option
