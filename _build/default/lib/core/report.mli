(** Uniform result rows for the experiments of EXPERIMENTS.md.

    The paper has no tables or figures; each numbered claim becomes an
    experiment emitting rows of the shape "paper says X — we measured Y".
    The same rows back the CLI output, the test assertions and the
    markdown in EXPERIMENTS.md. *)

type status =
  | Pass  (** the machine-checked instances agree with the paper's claim *)
  | Fail  (** a counterexample was found *)
  | Info  (** a measurement with no pass/fail semantics *)

type row = {
  id : string;  (** experiment id, e.g. ["E7"] *)
  claim : string;  (** the paper result being exercised, e.g. ["Cor 6.3"] *)
  params : string;  (** instance parameters, e.g. ["n=4 t=2"] *)
  expected : string;  (** what the paper asserts *)
  measured : string;  (** what the run found *)
  status : status;
}

val row :
  id:string ->
  claim:string ->
  params:string ->
  expected:string ->
  measured:string ->
  status ->
  row

(** [check ... bool] maps [true]/[false] to [Pass]/[Fail]. *)
val check :
  id:string -> claim:string -> params:string -> expected:string -> measured:string -> bool -> row

val all_pass : row list -> bool
val pp_status : Format.formatter -> status -> unit
val pp_row : Format.formatter -> row -> unit

(** Aligned plain-text table. *)
val pp_table : Format.formatter -> row list -> unit

(** GitHub-flavoured markdown table, for EXPERIMENTS.md. *)
val to_markdown : row list -> string
