type 'a successor = 'a -> 'a list

let validate ~micro ~key ?(bound = 8) ~states succ =
  let spec = { Explore.succ = micro; key } in
  let reachable_from x y =
    let ky = key y in
    Explore.exists_reachable spec ~depth:bound ~pred:(fun z -> String.equal (key z) ky) x
  in
  List.concat_map
    (fun x ->
      List.filter_map
        (fun y -> if reachable_from x y then None else Some (x, y))
        (succ x))
    states

type 'a chain = { states : 'a list; complete : bool; stuck : 'a option }

let bivalent_chain ~classify ~succ ~length x0 =
  let is_bivalent x =
    match classify x with
    | Valence.Bivalent -> true
    | Valence.Univalent _ | Valence.Unknown -> false
  in
  if not (is_bivalent x0) then { states = []; complete = false; stuck = Some x0 }
  else begin
    let rec extend acc x remaining =
      if remaining = 0 then { states = List.rev acc; complete = true; stuck = None }
      else
        match List.find_opt is_bivalent (succ x) with
        | Some y -> extend (y :: acc) y (remaining - 1)
        | None -> { states = List.rev acc; complete = false; stuck = Some x }
    in
    extend [ x0 ] x0 (max 0 (length - 1))
  end

let find_bivalent ~classify states =
  List.find_opt
    (fun x ->
      match classify x with
      | Valence.Bivalent -> true
      | Valence.Univalent _ | Valence.Unknown -> false)
    states

type ('l, 'a) labelled_chain = {
  start : 'a;
  steps : ('l * 'a) list;
  complete_l : bool;
}

let bivalent_chain_labelled ~classify ~succ ~length x0 =
  let is_bivalent x =
    match classify x with
    | Valence.Bivalent -> true
    | Valence.Univalent _ | Valence.Unknown -> false
  in
  if not (is_bivalent x0) then { start = x0; steps = []; complete_l = false }
  else begin
    let rec extend acc x remaining =
      if remaining = 0 then { start = x0; steps = List.rev acc; complete_l = true }
      else
        match List.find_opt (fun (_, y) -> is_bivalent y) (succ x) with
        | Some ((_, y) as step) -> extend (step :: acc) y (remaining - 1)
        | None -> { start = x0; steps = List.rev acc; complete_l = false }
    in
    extend [] x0 (max 0 (length - 1))
  end
