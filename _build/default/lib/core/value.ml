type t = int

let zero = 0
let one = 1

let of_int v =
  if v < 0 || v >= 62 then invalid_arg "Value.of_int: out of range";
  v

let equal = Int.equal
let compare = Int.compare
let to_string = string_of_int
let pp = Format.pp_print_int
