(** Enumeration of initial input assignments.

    [Con_0] (Section 3) has one initial state per assignment of values to
    processes; every substrate engine builds its initial states from these
    vectors.  The enumeration is lexicographic with process 1 most
    significant, so the all-[v0] assignment comes first and the all-[vk]
    assignment last — experiment code relies on this order for the
    Validity anchors. *)

val vectors : n:int -> values:Value.t list -> Value.t array list
