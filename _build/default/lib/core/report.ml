type status = Pass | Fail | Info

type row = {
  id : string;
  claim : string;
  params : string;
  expected : string;
  measured : string;
  status : status;
}

let row ~id ~claim ~params ~expected ~measured status =
  { id; claim; params; expected; measured; status }

let check ~id ~claim ~params ~expected ~measured ok =
  row ~id ~claim ~params ~expected ~measured (if ok then Pass else Fail)

let all_pass rows = List.for_all (fun r -> r.status <> Fail) rows

let status_string = function Pass -> "PASS" | Fail -> "FAIL" | Info -> "info"
let pp_status ppf s = Format.pp_print_string ppf (status_string s)

let pp_row ppf r =
  Format.fprintf ppf "[%s] %s %s (%s): expected %s, measured %s" (status_string r.status)
    r.id r.claim r.params r.expected r.measured

let columns r =
  [ r.id; r.claim; r.params; r.expected; r.measured; status_string r.status ]

let headers = [ "id"; "claim"; "params"; "expected"; "measured"; "status" ]

let widths rows =
  let update ws cols = List.map2 (fun w c -> max w (String.length c)) ws cols in
  List.fold_left
    (fun ws r -> update ws (columns r))
    (List.map String.length headers)
    rows

let pad w s = s ^ String.make (max 0 (w - String.length s)) ' '

let pp_table ppf rows =
  let ws = widths rows in
  let line cols =
    Format.fprintf ppf "%s@." (String.concat "  " (List.map2 pad ws cols))
  in
  line headers;
  line (List.map (fun w -> String.make w '-') ws);
  List.iter (fun r -> line (columns r)) rows

let to_markdown rows =
  let buf = Buffer.create 1024 in
  let line cols =
    Buffer.add_string buf ("| " ^ String.concat " | " cols ^ " |\n")
  in
  line headers;
  line (List.map (fun _ -> "---") headers);
  List.iter (fun r -> line (columns r)) rows;
  Buffer.contents buf
