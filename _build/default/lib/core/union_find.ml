type t = { parent : int array; rank : int array; mutable count : int }

let create n =
  if n < 0 then invalid_arg "Union_find.create";
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; count = n }

let size t = Array.length t.parent

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri = rj then false
  else begin
    if t.rank.(ri) < t.rank.(rj) then t.parent.(ri) <- rj
    else if t.rank.(ri) > t.rank.(rj) then t.parent.(rj) <- ri
    else begin
      t.parent.(rj) <- ri;
      t.rank.(ri) <- t.rank.(ri) + 1
    end;
    t.count <- t.count - 1;
    true
  end

let same t i j = find t i = find t j
let count t = t.count

let classes t =
  let n = size t in
  let tbl = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t i in
    let members = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: members)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
  |> List.sort compare
