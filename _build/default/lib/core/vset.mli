(** Small sets of {!Value.t}, represented as bitmasks.

    Valence analysis manipulates sets of decision values reachable from a
    state; those sets are tiny (binary consensus uses two values) and are
    built and intersected in inner loops, so a bitmask representation keeps
    the valence engine allocation-free. *)

type t

(** Values must be in [0 .. max_value - 1]. *)
val max_value : int

val empty : t
val singleton : Value.t -> t
val add : Value.t -> t -> t
val mem : Value.t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val is_empty : t -> bool
val cardinal : t -> int
val subset : t -> t -> bool
val equal : t -> t -> bool
val elements : t -> Value.t list
val of_list : Value.t list -> t

(** [intersects a b] is [not (is_empty (inter a b))]. *)
val intersects : t -> t -> bool

val pp : Format.formatter -> t -> unit
