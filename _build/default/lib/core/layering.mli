(** Layerings and the bivalent-chain construction (Section 4).

    A successor function [S : G -> 2^G \ {0}] generates the system [R_S] of
    S-runs.  [S] is a {e layering} of a system [R] when every S-run starting
    at an initial state of [R] embeds into a run of [R] via a monotone time
    mapping — i.e. each layer is a legal (multi-)step of the original model.

    The central construction (Lemma 4.1 iterated, as in Theorem 4.2): from a
    bivalent state, if every layer [S(x)] is valence connected then some
    successor is again bivalent, so a run can be kept bivalent forever —
    consensus never terminates in [R_S], hence not in [R]. *)

type 'a successor = 'a -> 'a list

(** [validate ~micro ~key ~states succ] checks the layering property
    against a micro-step relation of the original model: every [succ]
    successor of every state in [states] must be reachable from it by at
    most [bound] micro-steps (default 8).  Returns the list of violating
    [(state, successor)] pairs (empty = valid). *)
val validate :
  micro:'a successor ->
  key:('a -> string) ->
  ?bound:int ->
  states:'a list ->
  'a successor ->
  ('a * 'a) list

(** Result of attempting to extend a bivalent chain. *)
type 'a chain = {
  states : 'a list;  (** the constructed chain, [x0; x1; ...], all bivalent *)
  complete : bool;  (** reached the requested length *)
  stuck : 'a option;  (** last state whose layer had no bivalent successor *)
}

(** [bivalent_chain ~classify ~succ ~length x0] greedily extends a chain of
    bivalent states starting from [x0] (which must itself classify as
    bivalent) by picking, in each layer, the first bivalent successor.
    If [x0] is not bivalent the chain is empty and [stuck = Some x0]. *)
val bivalent_chain :
  classify:('a -> Valence.verdict) -> succ:'a successor -> length:int -> 'a -> 'a chain

(** [find_bivalent ~classify states] is the first bivalent state of
    [states], if any — typically applied to the initial states, per
    Lemma 3.6. *)
val find_bivalent : classify:('a -> Valence.verdict) -> 'a list -> 'a option

(** A labelled chain records the environment action chosen at each layer —
    the adversary's strategy, exhibitable to a user. *)
type ('l, 'a) labelled_chain = {
  start : 'a;
  steps : ('l * 'a) list;  (** action taken and resulting (bivalent) state *)
  complete_l : bool;
}

(** [bivalent_chain_labelled ~classify ~succ ~length x0] is
    {!bivalent_chain} over a successor function that names its successors
    (e.g. with the environment action producing them); picks the first
    bivalent successor each layer. [length] counts states including
    [x0]. *)
val bivalent_chain_labelled :
  classify:('a -> Valence.verdict) ->
  succ:('a -> ('l * 'a) list) ->
  length:int ->
  'a ->
  ('l, 'a) labelled_chain
