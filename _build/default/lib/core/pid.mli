(** Process identifiers.

    The paper fixes a finite set of [n >= 2] processes named [1 .. n]; the
    environment [e] is handled separately by each model and never appears as
    a {!t}. *)

type t = int

(** [all n] is [[1; ...; n]].  Raises [Invalid_argument] if [n < 2]. *)
val all : int -> t list

(** [others n i] is [all n] without [i]. *)
val others : int -> t -> t list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
