(** Coverings and generalized valence (Section 7).

    A pair of n-size complexes [(O0, O1)] is a covering of a set of runs
    when every decided output simplex lies in one of the two complexes and
    each complex contains at least one decided output simplex.  Generalized
    valence replaces "decides v" with "the run's decided output simplex
    lies in [Ov]"; all the connectivity machinery then lifts verbatim
    (Lemma 7.1). *)

open Layered_core

type t = {
  label : string;
  mem0 : Simplex.t -> bool;
  mem1 : Simplex.t -> bool;
}

val of_complexes : ?label:string -> Complex.t -> Complex.t -> t

(** Generalized-valence exploration over a submodel, in the style of
    {!Layered_core.Valence} but with covering membership as the decision
    observation. *)
type 'a spec = {
  succ : 'a -> 'a list;
  key : 'a -> string;
  terminal : 'a -> bool;  (** all relevant processes have decided *)
  output : 'a -> Simplex.t;
      (** decisions of the non-failed processes at this state *)
}

type outcome = {
  vals : Vset.t;  (** subset of [{0, 1}]: coverings reachable in a future *)
  complete : bool;
}

type 'a engine

val create : 'a spec -> t -> 'a engine
val outcome : 'a engine -> depth:int -> 'a -> outcome
val classify : 'a engine -> depth:int -> 'a -> Valence.verdict

(** [is_covering cover outputs] checks the two covering conditions against
    a finite set of decided output simplexes. *)
val is_covering : t -> Simplex.t list -> bool
