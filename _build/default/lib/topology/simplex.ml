open Layered_core

(* Sorted by pid; pids pairwise distinct. *)
type t = Vertex.t list

let empty = []

let of_vertices vs =
  let sorted = List.sort Vertex.compare vs in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if Pid.equal a.Vertex.pid b.Vertex.pid then
          invalid_arg "Simplex.of_vertices: duplicate pid"
        else check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  sorted

let of_assoc assoc = of_vertices (List.map (fun (p, v) -> Vertex.make p v) assoc)
let vertices t = t
let size = List.length
let is_empty t = t = []
let pids t = List.map (fun v -> v.Vertex.pid) t
let values t = List.map (fun v -> v.Vertex.value) t
let value_set t = Vset.of_list (values t)

let value_of t pid =
  List.find_map
    (fun v -> if Pid.equal v.Vertex.pid pid then Some v.Vertex.value else None)
    t

let mem v t = List.exists (Vertex.equal v) t
let add v t = of_vertices (v :: t)
let subset a b = List.for_all (fun v -> mem v b) a
let inter a b = List.filter (fun v -> mem v b) a

let compatible_union a b =
  let conflict =
    List.exists
      (fun va ->
        match value_of b va.Vertex.pid with
        | Some w -> not (Value.equal w va.Vertex.value)
        | None -> false)
      a
  in
  if conflict then None
  else Some (List.sort_uniq Vertex.compare (a @ b))

let remove_pid pid t = List.filter (fun v -> not (Pid.equal v.Vertex.pid pid)) t
let restrict keep t = List.filter (fun v -> List.mem v.Vertex.pid keep) t

let faces t =
  List.fold_left
    (fun acc v -> acc @ List.map (fun s -> v :: s) acc)
    [ [] ] (List.rev t)

let compare = List.compare Vertex.compare
let equal a b = compare a b = 0

let key t =
  String.concat ";"
    (List.map (fun v -> Printf.sprintf "%d:%d" v.Vertex.pid v.Vertex.value) t)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ') Vertex.pp)
    t
