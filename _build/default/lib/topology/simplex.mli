(** Simplexes: sets of vertices with pairwise-distinct process ids
    (Section 7).  A [k]-size-simplex has [k] vertices.  Internally kept
    sorted by pid, so structural equality is set equality. *)

open Layered_core

type t

val empty : t

(** Raises [Invalid_argument] if two vertices share a pid. *)
val of_vertices : Vertex.t list -> t

val of_assoc : (Pid.t * Value.t) list -> t
val vertices : t -> Vertex.t list
val size : t -> int
val is_empty : t -> bool
val pids : t -> Pid.t list
val values : t -> Value.t list

(** Set of distinct values appearing in the simplex. *)
val value_set : t -> Vset.t

val value_of : t -> Pid.t -> Value.t option
val mem : Vertex.t -> t -> bool
val add : Vertex.t -> t -> t
val subset : t -> t -> bool
val inter : t -> t -> t

(** [compatible_union a b] is the vertex-union when no pid carries two
    different values, [None] otherwise. *)
val compatible_union : t -> t -> t option

val remove_pid : Pid.t -> t -> t
val restrict : Pid.t list -> t -> t

(** All faces (sub-simplexes), including [empty] and the simplex itself:
    [2^size] simplexes. *)
val faces : t -> t list

val equal : t -> t -> bool
val compare : t -> t -> int

(** Canonical string encoding (usable as a hash key). *)
val key : t -> string

val pp : Format.formatter -> t -> unit
