open Layered_core

type t = {
  name : string;
  n : int;
  inputs : Complex.t;
  outputs : Complex.t;
  delta : Simplex.t -> Complex.t;
}

let input_assignments t = Complex.simplexes_of_size t.inputs t.n

let c_delta t inputs =
  List.fold_left (fun acc s -> Complex.union acc (t.delta s)) Complex.empty inputs

(* All assignments of a value from [values] to every pid in [pids]. *)
let assignments pids values =
  List.fold_left
    (fun acc pid ->
      List.concat_map (fun s -> List.map (fun v -> Simplex.add (Vertex.make pid v) s) values) acc)
    [ Simplex.empty ] pids

let full_complex n values = Complex.of_simplexes (assignments (Pid.all n) values)

let unanimous pids v = Simplex.of_assoc (List.map (fun p -> (p, v)) pids)

let distinct_value_count s =
  Vset.cardinal (Simplex.value_set s)

let consensus ~n ~values =
  let inputs = full_complex n values in
  let all = Pid.all n in
  {
    name = Printf.sprintf "consensus(|V|=%d)" (List.length values);
    n;
    inputs;
    outputs = Complex.of_simplexes (List.map (unanimous all) values);
    delta =
      (fun s ->
        let vs = Vset.elements (Simplex.value_set s) in
        Complex.of_simplexes (List.map (unanimous all) vs));
  }

let k_set_agreement ~n ~k ~values =
  let inputs = full_complex n values in
  let all = Pid.all n in
  let allowed vs =
    assignments all vs |> List.filter (fun s -> distinct_value_count s <= k)
  in
  {
    name = Printf.sprintf "%d-set-agreement(|V|=%d)" k (List.length values);
    n;
    inputs;
    outputs = Complex.of_simplexes (allowed values);
    delta = (fun s -> Complex.of_simplexes (allowed (Vset.elements (Simplex.value_set s))));
  }

let weak_consensus ~n =
  let values = [ Value.zero; Value.one ] in
  let inputs = full_complex n values in
  let all = Pid.all n in
  let everything = full_complex n values in
  {
    name = "weak-consensus";
    n;
    inputs;
    outputs = everything;
    delta =
      (fun s ->
        match Vset.elements (Simplex.value_set s) with
        | [ v ] -> Complex.of_simplexes [ unanimous all v ]
        | [] | _ :: _ :: _ -> everything);
  }

let identity ~n ~values =
  let inputs = full_complex n values in
  {
    name = "identity";
    n;
    inputs;
    outputs = inputs;
    delta = (fun s -> Complex.of_simplexes [ s ]);
  }

let fixed_value ~n =
  let values = [ Value.zero; Value.one ] in
  let inputs = full_complex n values in
  let all = Pid.all n in
  let zero = Complex.of_simplexes [ unanimous all Value.zero ] in
  { name = "fixed-value"; n; inputs; outputs = zero; delta = (fun _ -> zero) }

let election ~n =
  let values = [ Value.zero; Value.one ] in
  let inputs = full_complex n values in
  let all = Pid.all n in
  (* Decide a common pid (encoded as a value) whose input was 1. *)
  let leaders s =
    List.filter_map
      (fun v ->
        if Value.equal v.Vertex.value Value.one then Some v.Vertex.pid else None)
      (Simplex.vertices s)
  in
  let outputs =
    Complex.of_simplexes (List.map (fun p -> unanimous all (Value.of_int p)) (Pid.all n))
  in
  {
    name = "election";
    n;
    inputs;
    outputs;
    delta =
      (fun s ->
        match leaders s with
        | [] ->
            (* no volunteer: any common pid is acceptable *)
            outputs
        | ls -> Complex.of_simplexes (List.map (fun p -> unanimous all (Value.of_int p)) ls));
  }
