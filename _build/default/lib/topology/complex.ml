open Layered_core

type t = Simplex.t list (* maximal simplexes, sorted, mutually incomparable *)

let normalise simplexes =
  let sorted = List.sort_uniq Simplex.compare simplexes in
  List.filter
    (fun s ->
      not
        (List.exists (fun s' -> (not (Simplex.equal s s')) && Simplex.subset s s') sorted))
    sorted

let of_simplexes = normalise
let empty = []
let generators t = t
let mem s t = List.exists (fun g -> Simplex.subset s g) t
let is_empty t = t = []
let dimension t = List.fold_left (fun acc s -> max acc (Simplex.size s)) 0 t

let all_simplexes t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun g ->
      List.iter (fun f -> Hashtbl.replace tbl (Simplex.key f) f) (Simplex.faces g))
    t;
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl [] |> List.sort Simplex.compare

let simplexes_of_size t size =
  List.filter (fun s -> Simplex.size s = size) (all_simplexes t)

let union a b = normalise (a @ b)

let subcomplex a b = List.for_all (fun g -> mem g b) a
let equal a b = List.equal Simplex.equal a b

let pp ppf t =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Simplex.pp)
    t

let similarity_graph t ~size =
  let simplexes = Array.of_list (simplexes_of_size t size) in
  let adjacent a b = Simplex.size (Simplex.inter a b) >= size - 1 in
  let g =
    Graph.of_pred ~size:(Array.length simplexes) (fun i j ->
        adjacent simplexes.(i) simplexes.(j))
  in
  (simplexes, g)
