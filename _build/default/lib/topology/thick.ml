open Layered_core

let graph ~n ~k c =
  let simplexes = Array.of_list (Complex.simplexes_of_size c n) in
  let g =
    Graph.of_pred ~size:(Array.length simplexes) (fun i j ->
        Simplex.size (Simplex.inter simplexes.(i) simplexes.(j)) >= n - k)
  in
  (simplexes, g)

let k_thick_connected ~n ~k c =
  let _, g = graph ~n ~k c in
  Graph.is_connected g

let diameter ~n ~k c =
  let _, g = graph ~n ~k c in
  Graph.diameter g

let disconnected_witness ~n ~k c =
  let simplexes, g = graph ~n ~k c in
  match Graph.components g with
  | (i :: _) :: (j :: _) :: _ -> Some (simplexes.(i), simplexes.(j))
  | _ -> None
