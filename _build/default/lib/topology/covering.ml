open Layered_core

type t = { label : string; mem0 : Simplex.t -> bool; mem1 : Simplex.t -> bool }

let of_complexes ?(label = "covering") c0 c1 =
  { label; mem0 = (fun s -> Complex.mem s c0); mem1 = (fun s -> Complex.mem s c1) }

type 'a spec = {
  succ : 'a -> 'a list;
  key : 'a -> string;
  terminal : 'a -> bool;
  output : 'a -> Simplex.t;
}

type outcome = { vals : Vset.t; complete : bool }

type 'a engine = { valence : 'a Valence.t }

let create spec cover =
  let decided x =
    if spec.terminal x then begin
      let out = spec.output x in
      let s = if cover.mem0 out then Vset.singleton Value.zero else Vset.empty in
      if cover.mem1 out then Vset.add Value.one s else s
    end
    else Vset.empty
  in
  {
    valence =
      Valence.create
        { Valence.succ = spec.succ; key = spec.key; decided; terminal = spec.terminal };
  }

let outcome t ~depth x =
  let o = Valence.outcome t.valence ~depth x in
  { vals = o.Valence.vals; complete = o.Valence.complete }

let classify t ~depth x = Valence.classify t.valence ~depth x

let is_covering cover outputs =
  match outputs with
  | [] -> false
  | _ :: _ ->
      List.for_all (fun s -> cover.mem0 s || cover.mem1 s) outputs
      && List.exists cover.mem0 outputs
      && List.exists cover.mem1 outputs
