(** k-thick-connectivity of n-size complexes (Section 7).

    An n-size-complex [C] is k-thick-connected if every pair of
    n-size-simplexes of [C] is linked by a chain of n-size-simplexes in
    which consecutive simplexes share an (n-k)-size face.  For k = 1 this
    is the necessary (and, by Biran-Moran-Zaks, sufficient) condition for
    1-resilient solvability in the paper's asynchronous models
    (Theorem 7.2 / Corollary 7.3). *)

open Layered_core

(** [graph ~n ~k c]: nodes are the n-size simplexes of [c]; edges join
    simplexes whose intersection has at least [n - k] vertices. *)
val graph : n:int -> k:int -> Complex.t -> Simplex.t array * Graph.t

(** A complex with zero or one n-size simplex is trivially connected. *)
val k_thick_connected : n:int -> k:int -> Complex.t -> bool

(** Diameter of the k-thickness graph ([None] if disconnected). *)
val diameter : n:int -> k:int -> Complex.t -> int option

(** A witness pair of n-size simplexes in different k-thickness components,
    if any. *)
val disconnected_witness : n:int -> k:int -> Complex.t -> (Simplex.t * Simplex.t) option
