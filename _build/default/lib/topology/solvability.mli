(** Machine-checkable sides of Theorem 7.2 / Corollary 7.3: 1-resilient
    solvability of a decision problem is characterised by 1-thick
    connectivity of [C_Delta(I)] over similarity-connected input sets [I].

    Two checks are provided:

    - {!passes_necessary_condition} verifies the condition for the task's
      own [Delta] over {e every} similarity-connected set of input
      assignments (exhaustively when the input complex is small, see
      [cap]).  By the sufficiency direction (Biran-Moran-Zaks, cross-cited
      by the paper), a task whose own [Delta] passes is solvable.

    - {!forced_fragmentation} proves {e unsolvability} soundly even though
      the condition quantifies over subproblems [Delta' <= Delta]: an input
      assignment whose [Delta] contains a single n-size output simplex
      forces that simplex into every subproblem; if two forced simplexes
      lie in different components of the 1-thickness graph of [C_Delta(I)]
      for a similarity-connected [I], no subproblem can pass, so the task
      is 1-resiliently unsolvable. *)

type verdict = {
  ok : bool;
  detail : string;  (** human-readable witness / summary *)
}

(** [passes_necessary_condition ?cap task] checks 1-thick connectivity of
    [C_Delta(I)] for every similarity-connected subset [I] of the input
    assignments, enumerated exhaustively when there are at most [cap]
    assignments (default 16); beyond the cap it checks the full set, all
    singletons and all similarity balls, and says so in [detail]. *)
val passes_necessary_condition : ?cap:int -> Task.t -> verdict

(** Inputs whose [Delta] has a unique n-size output simplex, paired with
    that simplex. *)
val forced_outputs : Task.t -> (Simplex.t * Simplex.t) list

(** See above: a sound unsolvability certificate over the full input set. *)
val forced_fragmentation : Task.t -> verdict
