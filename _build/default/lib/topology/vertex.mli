(** Vertices of the simplicial substrate of Section 7: a pair of a process
    id and a value.  In an input simplex the value is the process's initial
    value; in an output simplex, its decision. *)

open Layered_core

type t = { pid : Pid.t; value : Value.t }

val make : Pid.t -> Value.t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
