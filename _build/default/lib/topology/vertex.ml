open Layered_core

type t = { pid : Pid.t; value : Value.t }

let make pid value = { pid; value }
let equal a b = Pid.equal a.pid b.pid && Value.equal a.value b.value

let compare a b =
  match Pid.compare a.pid b.pid with 0 -> Value.compare a.value b.value | c -> c

let pp ppf v = Format.fprintf ppf "(%a,%a)" Pid.pp v.pid Value.pp v.value
