lib/topology/task.mli: Complex Layered_core Simplex Value
