lib/topology/vertex.ml: Format Layered_core Pid Value
