lib/topology/complex.mli: Format Graph Layered_core Simplex
