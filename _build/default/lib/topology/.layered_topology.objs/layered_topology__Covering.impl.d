lib/topology/covering.ml: Complex Layered_core List Simplex Valence Value Vset
