lib/topology/thick.mli: Complex Graph Layered_core Simplex
