lib/topology/covering.mli: Complex Layered_core Simplex Valence Vset
