lib/topology/simplex.ml: Format Layered_core List Pid Printf String Value Vertex Vset
