lib/topology/simplex.mli: Format Layered_core Pid Value Vertex Vset
