lib/topology/vertex.mli: Format Layered_core Pid Value
