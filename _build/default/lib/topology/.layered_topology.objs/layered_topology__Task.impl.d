lib/topology/task.ml: Complex Layered_core List Pid Printf Simplex Value Vertex Vset
