lib/topology/solvability.ml: Array Complex Format Fun Graph Layered_core List Printf Simplex Task Thick Union_find
