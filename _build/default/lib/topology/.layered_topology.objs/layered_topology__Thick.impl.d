lib/topology/thick.ml: Array Complex Graph Layered_core Simplex
