lib/topology/complex.ml: Array Format Graph Hashtbl Layered_core List Simplex
