lib/topology/solvability.mli: Simplex Task
