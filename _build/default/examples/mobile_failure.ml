(* Watching the mobile-failure adversary keep a run bivalent forever
   (Corollary 5.2 / Santoro-Widmayer, via the paper's S1 layering).

   Run with:  dune exec examples/mobile_failure.exe

   FloodSet-with-deadline satisfies Decision (everyone decides by round 2)
   and Validity in M^mf.  The impossibility theorem says it therefore
   cannot satisfy Agreement; this example constructs, layer by layer, the
   adversarial run on which bivalence never dies — and shows the moment
   the forced decisions split. *)

open Layered_core

module P = (val Layered_protocols.Sync_floodset.make ~t:1)
module E = Layered_sync.Engine.Make (P)

let () =
  let n = 3 and horizon = 2 in
  Format.printf
    "Mobile-failure model M^mf, n=%d; protocol decides unconditionally at round %d@.@." n
    horizon;

  (* In M^mf nothing is ever recorded: the same process can be hit in one
     round and heard in the next. *)
  let succ = E.s1 ~record_failures:false in
  let valence = Valence.create (E.valence_spec ~succ) in
  let classify x = Valence.classify valence ~depth:(horizon + 1) x in

  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  let x0 = Option.get (Layering.find_bivalent ~classify initials) in

  let succ_labelled x =
    List.map (fun a -> (a, E.apply ~record_failures:false x a)) (E.s1_actions x)
  in
  let chain = Layering.bivalent_chain_labelled ~classify ~succ:succ_labelled ~length:8 x0 in
  assert chain.Layering.complete_l;

  Format.printf "The adversary's ever-bivalent run (action -> state):@.@.";
  let describe x =
    let decided = E.decided_vset x in
    let tag =
      if Vset.cardinal decided >= 2 then "  <-- AGREEMENT VIOLATED"
      else if not (Vset.is_empty decided) then "  (some processes decided)"
      else ""
    in
    Format.asprintf "%a  decided=%a%s" Valence.pp_verdict (classify x) Vset.pp decided tag
  in
  Format.printf "round 0: %-12s %s@." "(start)" (describe x0);
  List.iter
    (fun (action, x) ->
      (* In M^mf nothing is recorded, so an omission with no blocked
         destination is simply a clean round. *)
      let action = List.filter (fun o -> o.E.blocked <> []) action in
      Format.printf "round %d: %-12s %s@." x.E.round
        (Format.asprintf "%a" E.pp_action action)
        (describe x))
    chain.Layering.steps;

  Format.printf
    "@.Every state above is bivalent: both 0- and 1-deciding futures exist.@.";
  Format.printf
    "Once the decision deadline passes, bivalence can only mean disagreement --@.";
  Format.printf
    "which is exactly why no protocol solves consensus in this model (Cor 5.2).@.";

  (* Show one concrete violating state in full. *)
  match
    List.find_map
      (fun (_, x) -> if Vset.cardinal (E.decided_vset x) >= 2 then Some x else None)
      chain.Layering.steps
  with
  | Some x -> Format.printf "@.A violating global state:@.%a@." E.pp x
  | None -> ()
