(* The (t+1)-round lower bound, played out move by move (Section 6).

   Run with:  dune exec examples/lower_bound.exe

   The adversary spends one crash per round to keep the configuration
   bivalent through round t-1 (Lemma 6.1); one more round must pass before
   everyone can decide (Lemma 6.2); and FloodSet indeed always needs
   exactly t+1 rounds (tightness), while the early-deciding variant beats
   it on clean runs but not in the worst case. *)

open Layered_core

let demonstrate ~pname ~protocol ~n ~t =
  let module P = (val (protocol : (module Layered_sync.Protocol.S))) in
  let module E = Layered_sync.Engine.Make (P) in
  Format.printf "=== %s, n=%d t=%d ===@.@." pname n t;
  let succ = E.st ~t in
  let valence = Valence.create (E.valence_spec ~succ) in
  let classify x = Valence.classify valence ~depth:(t + 2) x in
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  let x0 = Option.get (Layering.find_bivalent ~classify initials) in
  let succ_labelled x =
    List.map (fun a -> (a, E.apply ~record_failures:true x a)) (E.st_actions ~t x)
  in
  let chain = Layering.bivalent_chain_labelled ~classify ~succ:succ_labelled ~length:t x0 in
  Format.printf "Lemma 6.1 -- the adversary keeps the run bivalent:@.";
  Format.printf "  round 0: %-12s %a, %d failed@." "(start)" Valence.pp_verdict
    (classify x0) (E.failed_count x0);
  List.iter
    (fun (action, x) ->
      Format.printf "  round %d: %-12s %a, %d failed@." x.E.round
        (Format.asprintf "%a" E.pp_action action)
        Valence.pp_verdict (classify x) (E.failed_count x))
    chain.Layering.steps;
  let last =
    match List.rev chain.Layering.steps with (_, x) :: _ -> x | [] -> x0
  in
  let undecided y =
    let decs = E.decisions y in
    List.length (List.filter (fun i -> decs.(i - 1) = None) (E.nonfailed y))
  in
  let worst = List.fold_left (fun acc y -> max acc (undecided y)) 0 (succ last) in
  Format.printf
    "Lemma 6.2 -- a round-%d successor still has %d non-failed undecided processes,@."
    t worst;
  Format.printf "so some run cannot decide before round %d.@." (t + 1);
  let result =
    Layered_analysis.Consensus_check.check ~protocol ~n ~t ~rounds:(t + 2) ()
  in
  Format.printf "Tightness -- exhaustive check over all crash adversaries: %a@.@."
    Layered_analysis.Consensus_check.pp_result result

let () =
  demonstrate ~pname:"FloodSet" ~protocol:(Layered_protocols.Sync_floodset.make ~t:2)
    ~n:4 ~t:2;
  demonstrate ~pname:"EIGStop" ~protocol:(Layered_protocols.Sync_eig.make ~t:1) ~n:3 ~t:1;
  demonstrate ~pname:"early-deciding FloodSet"
    ~protocol:(Layered_protocols.Sync_early.make ~t:2) ~n:4 ~t:2;
  (* The early decider's advantage: a failure-free run decides in ONE
     round, yet its worst case is still t+1 (Lemma 6.4 explains why the
     adversary must spend failures to delay it). *)
  let module P = (val Layered_protocols.Sync_early.make ~t:2) in
  let module E = Layered_sync.Engine.Make (P) in
  let x = E.initial ~inputs:[| 0; 1; 1; 1 |] in
  let y = E.apply ~record_failures:true x [] in
  Format.printf
    "Early decider on a clean run: everyone decided after round 1? %b (t+1 = 3)@."
    (E.terminal y)
