(* What do processes *know* when they decide?  (The Dwork-Moses reading
   of Section 6, experiment E15 narrated.)

   Run with:  dune exec examples/knowledge.exe

   We build the Kripke structure over every reachable state of FloodSet
   under every crash adversary (n=3, t=1), and interrogate it:

   - a process that decides 0 BELIEVES its value is safe (relativized to
     its own correctness), but does not KNOW it — we exhibit the world it
     cannot distinguish, in which it has crashed and the others decide 1;
   - at the simultaneous decision round the decided value is COMMON BELIEF
     among the non-failed, while plain common knowledge fails. *)

open Layered_core
module Kripke = Layered_knowledge.Kripke

module P = (val Layered_protocols.Sync_floodset.make ~t:1)
module E = Layered_sync.Engine.Make (P)

let () =
  let n = 3 and t = 1 in
  Format.printf "FloodSet, n=%d t=%d: the epistemics of deciding@.@." n t;

  (* Collect every reachable state under every crash adversary. *)
  let worlds = ref [] in
  let seen = Hashtbl.create 1024 in
  let rec explore x =
    let k = E.key x in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      worlds := x :: !worlds;
      if x.E.round < t + 2 then
        List.iter
          (fun a -> explore (E.apply ~record_failures:true x a))
          (E.all_actions ~max_new:2 ~remaining_failures:(t - E.failed_count x) x)
    end
  in
  List.iter explore (E.initial_states ~n ~values:[ Value.zero; Value.one ]);
  let worlds = !worlds in
  Format.printf "Explored %d distinct global states.@.@." (List.length worlds);

  let local_key i (x : E.state) = P.key x.E.locals.(i - 1) in
  let kr = Kripke.create ~n ~key:E.key ~local_key worlds in
  let alive i (x : E.state) = not x.E.failed.(i - 1) in

  (* phi v: every non-failed decided process decided v. *)
  let phi v =
    Kripke.prop_of kr (fun x ->
        let decs = E.decisions x in
        List.for_all
          (fun i -> match decs.(i - 1) with Some w -> Value.equal w v | None -> true)
          (E.nonfailed x))
  in

  (* Find a deciding (world, process) pair lacking knowledge of safety. *)
  let witness =
    List.find_map
      (fun x ->
        let decs = E.decisions x in
        List.find_map
          (fun p ->
            match decs.(p - 1) with
            | Some v when not (Kripke.holds_at kr (Kripke.knows kr p (phi v)) x) ->
                Some (x, p, v)
            | Some _ | None -> None)
          (E.nonfailed x))
      worlds
  in
  (match witness with
  | None -> Format.printf "(no knowledge gap found?!)@."
  | Some (x, p, v) ->
      Format.printf "Process %d has decided %a at this state:@.%a@." p Value.pp v E.pp x;
      Format.printf "It BELIEVES every non-failed decision is %a: %b@." Value.pp v
        (Kripke.holds_at kr (Kripke.believes kr p ~alive (phi v)) x);
      Format.printf "But it does not KNOW it -- it cannot distinguish:@.";
      let confusing =
        List.find
          (fun u -> not (Kripke.holds_at kr (phi v) u))
          (Kripke.indistinguishable kr p x)
      in
      Format.printf "%a@." E.pp confusing;
      Format.printf
        "...where process %d itself is failed and the survivors decide differently.@."
        p;
      Format.printf
        "This is non-uniform agreement, seen epistemically (cf. E7's uniform=false).@.@.");

  (* Common belief vs common knowledge at the decision round. *)
  let members = E.nonfailed in
  let decision_worlds =
    List.filter (fun x -> E.terminal x && x.E.round = t + 1) worlds
  in
  let counts op =
    List.length
      (List.filter
         (fun x ->
           match Vset.elements (E.decided_vset x) with
           | [ v ] -> Kripke.holds_at kr (op v) x
           | _ -> false)
         decision_worlds)
  in
  let cb v = Kripke.common_belief kr ~members ~alive (phi v) in
  let ck v = Kripke.common kr ~members (phi v) in
  Format.printf "At the %d simultaneous decision worlds (round %d):@."
    (List.length decision_worlds) (t + 1);
  Format.printf "  common BELIEF of the decided value holds at %d/%d@." (counts cb)
    (List.length decision_worlds);
  Format.printf "  plain common KNOWLEDGE holds at %d/%d@." (counts ck)
    (List.length decision_worlds);
  Format.printf
    "@.Simultaneous decision = common belief (Dwork-Moses); the relativization@.";
  Format.printf "to one's own correctness is what crash failures cost.@."
