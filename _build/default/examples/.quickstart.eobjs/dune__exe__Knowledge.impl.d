examples/knowledge.ml: Array Format Hashtbl Layered_core Layered_knowledge Layered_protocols Layered_sync List Value Vset
