examples/omission.ml: Format Layered_core Layered_protocols Layered_sync List Vset
