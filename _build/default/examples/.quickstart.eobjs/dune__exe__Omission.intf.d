examples/omission.mli:
