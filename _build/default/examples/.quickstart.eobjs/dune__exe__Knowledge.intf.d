examples/knowledge.mli:
