examples/lower_bound.mli:
