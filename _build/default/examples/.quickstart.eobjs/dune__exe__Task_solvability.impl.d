examples/task_solvability.ml: Complex Format Layered_topology List Option Simplex Solvability Task Thick
