examples/mobile_failure.ml: Format Layered_core Layered_protocols Layered_sync Layering List Option Valence Value Vset
