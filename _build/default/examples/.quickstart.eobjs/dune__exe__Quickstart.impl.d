examples/quickstart.ml: Connectivity Format Layered_analysis Layered_core Layered_protocols Layered_sync Layering List Option String Valence Value
