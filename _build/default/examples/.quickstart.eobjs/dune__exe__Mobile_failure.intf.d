examples/mobile_failure.mli:
