examples/task_solvability.mli:
