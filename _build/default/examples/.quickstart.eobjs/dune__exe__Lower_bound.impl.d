examples/lower_bound.ml: Array Format Layered_analysis Layered_core Layered_protocols Layered_sync Layering List Option Valence Value
