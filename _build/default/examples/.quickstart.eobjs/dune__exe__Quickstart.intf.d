examples/quickstart.mli:
