(* Task solvability via thick connectivity (Section 7).

   Run with:  dune exec examples/task_solvability.exe

   Theorem 7.2 / Corollary 7.3: a decision problem is solvable
   1-resiliently (in shared memory, message passing, and all the layered
   submodels alike) exactly when C_Delta(I) is 1-thick connected for every
   similarity-connected input set I.  We walk the task zoo and watch the
   geometry decide. *)

open Layered_topology

let inspect task ~expect_solvable =
  Format.printf "--- %s (n=%d) ---@." task.Task.name task.Task.n;
  let inputs = Task.input_assignments task in
  let c = Task.c_delta task inputs in
  Format.printf "  %d input assignments; C_Delta(I) has %d maximal simplexes@."
    (List.length inputs)
    (List.length (Complex.generators c));
  (match Thick.diameter ~n:task.Task.n ~k:1 c with
  | Some d -> Format.printf "  1-thickness graph connected, diameter %d@." d
  | None ->
      let s1, s2 = Option.get (Thick.disconnected_witness ~n:task.Task.n ~k:1 c) in
      Format.printf "  1-thickness graph DISCONNECTED: %a vs %a@." Simplex.pp s1
        Simplex.pp s2);
  let cond = Solvability.passes_necessary_condition task in
  Format.printf "  necessary condition over all similarity-connected I: %b@."
    cond.Solvability.ok;
  let frag = Solvability.forced_fragmentation task in
  if frag.Solvability.ok then Format.printf "  unsolvability certificate: %s@." frag.Solvability.detail;
  let verdict = if cond.Solvability.ok && not frag.Solvability.ok then "SOLVABLE" else "UNSOLVABLE" in
  Format.printf "  => 1-resiliently %s (expected %s)@.@." verdict
    (if expect_solvable then "SOLVABLE" else "UNSOLVABLE")

let () =
  Format.printf "1-resilient task solvability = 1-thick connectivity (Cor 7.3)@.@.";
  inspect (Task.consensus ~n:3 ~values:[ 0; 1 ]) ~expect_solvable:false;
  inspect (Task.election ~n:3) ~expect_solvable:false;
  inspect (Task.weak_consensus ~n:3) ~expect_solvable:true;
  inspect (Task.identity ~n:3 ~values:[ 0; 1 ]) ~expect_solvable:true;
  Format.printf "The k-set agreement crossover (three values, n=3):@.@.";
  List.iter
    (fun k -> inspect (Task.k_set_agreement ~n:3 ~k ~values:[ 0; 1; 2 ])
        ~expect_solvable:(k >= 2))
    [ 1; 2; 3 ]
