(* Send-omission failures: why flooding breaks and coordinators survive
   (experiment E18 narrated).

   Run with:  dune exec examples/omission.exe

   The paper's introduction names send omissions as the second archetypal
   failure ("a faulty processor can fail to send messages altogether ...
   and thus behave as if it has crashed").  Unlike a crash, the faulty
   process keeps talking — which lets the adversary inject a stale value
   at the last moment.  We replay the exact counterexample the exhaustive
   checker finds against FloodSet, then watch the rotating-coordinator
   protocol absorb the same adversary. *)

open Layered_core

let () =
  Format.printf "=== FloodSet under send-omission (n=3, t=1) ===@.@.";
  let module P = (val Layered_protocols.Sync_floodset.make ~t:1) in
  let module E = Layered_sync.Omission.Make (P) in
  (* Inputs 0,1,1; the adversary marks p3... here the injector is p1
     itself holding the minimum.  Round 1: p1 faulty, sends to nobody.
     Round 2 (decision round): p1 delivers only to p2. *)
  let x = E.initial ~inputs:[| 0; 1; 1 |] in
  let y = E.apply x { E.corrupt = [ 1 ]; drops = [ (1, [ 2; 3 ]) ]; rdrops = [] } in
  let z = E.apply y { E.corrupt = []; drops = [ (1, [ 3 ]) ]; rdrops = [] } in
  Format.printf "%a@." E.pp z;
  Format.printf
    "p2 received the late 0 and decided it; p3 never saw it.  Both are correct:@.";
  Format.printf "agreement is violated -- decided set %a.@.@." Vset.pp (E.decided_vset z);
  Format.printf
    "In the crash model this cannot happen: a process that omits is silenced@.";
  Format.printf "forever, so a last-round injection is impossible (cf. E7).@.@.";

  Format.printf "=== The rotating coordinator absorbs it (n=3, t=1) ===@.@.";
  let module C = (val Layered_protocols.Sync_coordinator.make ~t:1) in
  let module EC = Layered_sync.Omission.Make (C) in
  (* Same adversarial idea, against the coordinator: p1 faulty, hides its
     0 early and reveals it late. *)
  let x = EC.initial ~inputs:[| 0; 1; 1 |] in
  let steps =
    [
      { EC.corrupt = [ 1 ]; drops = [ (1, [ 2; 3 ]) ]; rdrops = [] };
      { EC.corrupt = []; drops = [ (1, [ 3 ]) ]; rdrops = [] };
      { EC.corrupt = []; drops = [ (1, [ 2 ]) ]; rdrops = [] };
      { EC.corrupt = []; drops = []; rdrops = [] };
      { EC.corrupt = []; drops = [ (1, [ 2; 3 ]) ]; rdrops = [] };
      { EC.corrupt = []; drops = []; rdrops = [] };
    ]
  in
  let final = List.fold_left EC.apply x steps in
  Format.printf "%a@." EC.pp final;
  Format.printf "Non-faulty decisions: %a -- agreement holds.@.@." Vset.pp
    (EC.decided_vset final);
  Format.printf
    "The vote/claim/king structure is what saves it: a value is only locked@.";
  Format.printf
    "when n-t processes vote for it, two locks cannot disagree (the vote sets@.";
  Format.printf
    "would overlap), and omission faults can drop claims but never forge them.@.";
  Format.printf
    "E18 verifies this against EVERY omission adversary, and shows the n > 2t@.";
  Format.printf "requirement is tight (agreement fails at n = 2t).@."
