(* Quickstart: build a model, expand a layer, classify valences.

   Run with:  dune exec examples/quickstart.exe

   We instantiate the synchronous round engine with the classical FloodSet
   protocol for t = 1, restrict the scheduler to the S^t layering of
   Section 6 of the paper, and inspect the layered structure: the valence
   of each initial state, the shape of one layer, and its connectivity. *)

open Layered_core

(* 1. Pick a protocol (a first-class module) and build the model engine. *)
module P = (val Layered_protocols.Sync_floodset.make ~t:1)
module E = Layered_sync.Engine.Make (P)

let () =
  let n = 3 and t = 1 in
  Format.printf "FloodSet on the t-resilient synchronous model, n=%d t=%d@.@." n t;

  (* 2. The layering S^t: one fresh crash per layer while the budget
     lasts. *)
  let succ = E.st ~t in

  (* 3. A valence engine over the submodel R_{S^t}.  Depth t+2 covers the
     protocol's decision round, so every verdict is exact. *)
  let valence = Valence.create (E.valence_spec ~succ) in
  let classify x = Valence.classify valence ~depth:(t + 2) x in

  (* 4. Classify the 2^n initial states (the paper's Con_0). *)
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  Format.printf "Initial states (inputs -> valence):@.";
  List.iteri
    (fun idx x ->
      (* Recover the input vector from the enumeration order. *)
      let bits = List.init n (fun i -> (idx lsr (n - 1 - i)) land 1) in
      Format.printf "  %s -> %a@."
        (String.concat "" (List.map string_of_int bits))
        Valence.pp_verdict (classify x))
    initials;

  (* 5. Lemma 3.6 in action: Con_0 is similarity connected and contains a
     bivalent state. *)
  Format.printf "@.Con_0 similarity connected: %b@."
    (Connectivity.connected ~rel:E.similar initials);
  let x0 = Option.get (Layering.find_bivalent ~classify initials) in
  Format.printf "Found a bivalent initial state.@.";

  (* 6. One layer of the submodel.  For t = 1 the crash budget is spent
     within this very layer, so the "arbitrary crash failure" display of
     Lemma 3.3 no longer applies to it and the layer is NOT valence
     connected -- which is precisely why bivalence survives only through
     round t-1 = 0 here (compare Lemma 6.1's bound), and why the mobile
     model of Section 5, whose adversary has a fresh failure every round,
     keeps its layers valence connected forever. *)
  let layer = succ x0 in
  Format.printf "@.|S^t(x0)| = %d distinct successors@." (List.length layer);
  Format.printf "layer valence connected: %b  (budget spent: expected false for t=1)@."
    (Connectivity.valence_connected
       ~vals:(fun x -> Valence.vals valence ~depth:(t + 2) x)
       layer);

  (* 7. Indeed every round-t state is already univalent: bivalence dies
     exactly where the paper says it must. *)
  let verdicts = List.map classify layer in
  let count v =
    List.length (List.filter (fun w -> Valence.verdict_equal v w) verdicts)
  in
  Format.printf "layer verdicts: %d x 0-univalent, %d x 1-univalent, %d x bivalent@."
    (count (Valence.Univalent Value.zero))
    (count (Valence.Univalent Value.one))
    (count Valence.Bivalent);

  (* 8. And the worst-case decision round is t+1 = 2 (Corollary 6.3),
     verified against every crash adversary. *)
  let result =
    Layered_analysis.Consensus_check.check
      ~protocol:(Layered_protocols.Sync_floodset.make ~t) ~n ~t ~rounds:(t + 2) ()
  in
  Format.printf "@.Exhaustive verification: %a@." Layered_analysis.Consensus_check.pp_result
    result
