(* Tests for the iterated immediate-snapshot substrate. *)

open Layered_core
module Iis = Layered_iis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module P = (val Layered_protocols.Iis_voting.make ~horizon:2)
module E = Iis.Engine.Make (P)

let initial inputs = E.initial ~inputs:(Array.of_list inputs)

(* ------------------------------------------------------------------ *)
(* Ordered partitions *)

let test_partition_counts () =
  List.iter
    (fun (n, expected) ->
      check_int
        (Printf.sprintf "Fubini(%d)" n)
        expected
        (List.length (Iis.Engine.partitions ~n));
      check_int "closed form agrees" expected (Iis.Engine.fubini n))
    [ (2, 3); (3, 13); (4, 75) ]

let test_partitions_are_partitions () =
  List.iter
    (fun blocks ->
      check "no empty block" true (List.for_all (fun b -> b <> []) blocks);
      check "covers {1..3}" true
        (List.sort compare (List.concat blocks) = [ 1; 2; 3 ]))
    (Iis.Engine.partitions ~n:3)

let test_partitions_distinct () =
  let ps = Iis.Engine.partitions ~n:3 in
  check_int "no duplicates" (List.length ps) (List.length (List.sort_uniq compare ps))

(* ------------------------------------------------------------------ *)
(* Round semantics *)

let test_one_block_full_view () =
  (* Everyone in one concurrency class: all see all, preferences collapse
     to the global minimum. *)
  let x = initial [ 2; 1; 0 ] in
  let y = E.apply x [ [ 1; 2; 3 ] ] in
  let z = E.apply y [ [ 1; 2; 3 ] ] in
  check "all decide global min" true (Vset.equal (E.decided_vset z) (Vset.singleton 0))

let test_singleton_blocks_prefix_views () =
  (* [ {3}; {2}; {1} ]: p3 sees only itself, p2 sees {2,3}, p1 all. *)
  let x = initial [ 2; 1; 0 ] in
  let y = E.apply x [ [ 3 ]; [ 2 ]; [ 1 ] ] in
  let z = E.apply y [ [ 3 ]; [ 2 ]; [ 1 ] ] in
  (* p3 never sees a smaller value than its own 0... p3's input is 0: it
     keeps 0 and decides 0.  p2 (input 1) sees p3's 0 in round 1 -> 0.
     p1 (input 2) sees everything -> 0. *)
  check "schedule order does not hide the minimum here" true
    (Vset.equal (E.decided_vset z) (Vset.singleton 0));
  (* Run it the other way: the minimum-holder last. *)
  let y' = E.apply x [ [ 1 ]; [ 2 ]; [ 3 ] ] in
  let z' = E.apply y' [ [ 1 ]; [ 2 ]; [ 3 ] ] in
  (* p1 (input 2) saw only itself in round 1, then in round 2 sees
     prefs written at round 2 start: p1 keeps 2 after round 1, so in
     round 2 it sees only its own 2 -> decides 2; p2 decides 1; p3 0. *)
  check "first-scheduled process stays blind" true
    (Vset.equal (E.decided_vset z') (Vset.of_list [ 0; 1; 2 ]))

let test_invalid_partitions_rejected () =
  let x = initial [ 0; 1; 1 ] in
  Alcotest.check_raises "missing process" (Invalid_argument "Iis: blocks must partition {1..n}")
    (fun () -> ignore (E.apply x [ [ 1 ]; [ 2 ] ]));
  Alcotest.check_raises "duplicate process" (Invalid_argument "Iis: blocks must partition {1..n}")
    (fun () -> ignore (E.apply x [ [ 1; 2 ]; [ 2; 3 ] ]));
  Alcotest.check_raises "empty block" (Invalid_argument "Iis: empty block") (fun () ->
      ignore (E.apply x [ [ 1; 2; 3 ]; [] ]))

(* ------------------------------------------------------------------ *)
(* Similarity structure of a layer *)

let test_adjacent_partitions_similar () =
  let x = initial [ 0; 1; 1 ] in
  (* Merging the two blocks of [{1},{2},{3}] at position 1 changes only
     p1's view (it now sees p2's write). *)
  let a = E.apply x [ [ 1 ]; [ 2 ]; [ 3 ] ] in
  let b = E.apply x [ [ 1; 2 ]; [ 3 ] ] in
  check "merge changes one view" true (E.agree_modulo a b 1);
  (* Splitting the merged block the other way changes only p2. *)
  let c = E.apply x [ [ 2 ]; [ 1 ]; [ 3 ] ] in
  check "split changes the other view" true (E.agree_modulo b c 2)

let test_layer_connected () =
  let x = initial [ 0; 1; 1 ] in
  check "layer similarity connected" true
    (Connectivity.connected ~rel:E.similar (E.layer x));
  check "layer deduplicated" true
    (let layer = E.layer x in
     List.length (List.sort_uniq compare (List.map E.key layer)) = List.length layer)

(* ------------------------------------------------------------------ *)
(* Properties *)

let runs_arb =
  QCheck.make
    QCheck.Gen.(
      pair (list_repeat 3 (int_bound 1))
        (list_size (int_range 0 3) (oneofl (Iis.Engine.partitions ~n:3))))

let prop_rounds_count =
  QCheck.Test.make ~name:"iis: rounds count applied partitions" ~count:200 runs_arb
    (fun (inputs, parts) ->
      let x = List.fold_left E.apply (initial inputs) parts in
      x.E.round = List.length parts)

let prop_validity =
  QCheck.Test.make ~name:"iis: decisions are input values" ~count:200 runs_arb
    (fun (inputs, parts) ->
      let x = List.fold_left E.apply (initial inputs) parts in
      Vset.subset (E.decided_vset x) (Vset.of_list inputs))

let prop_deterministic =
  QCheck.Test.make ~name:"iis: apply is deterministic" ~count:100 runs_arb
    (fun (inputs, parts) ->
      let run () = E.key (List.fold_left E.apply (initial inputs) parts) in
      String.equal (run ()) (run ()))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "layered_iis"
    [
      ( "partitions",
        [
          Alcotest.test_case "counts" `Quick test_partition_counts;
          Alcotest.test_case "are partitions" `Quick test_partitions_are_partitions;
          Alcotest.test_case "distinct" `Quick test_partitions_distinct;
        ] );
      ( "rounds",
        [
          Alcotest.test_case "one block" `Quick test_one_block_full_view;
          Alcotest.test_case "singleton blocks" `Quick test_singleton_blocks_prefix_views;
          Alcotest.test_case "invalid rejected" `Quick test_invalid_partitions_rejected;
        ] );
      ( "similarity",
        [
          Alcotest.test_case "adjacent partitions" `Quick test_adjacent_partitions_similar;
          Alcotest.test_case "layer connected" `Quick test_layer_connected;
        ] );
      ("properties", [ qt prop_rounds_count; qt prop_validity; qt prop_deterministic ]);
    ]
