(* Tests for the Kripke-structure knowledge operators, on hand-built
   structures with known epistemic content. *)

module Kripke = Layered_knowledge.Kripke

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A two-process "card" scenario: worlds are pairs (a, b) of bits held by
   processes 1 and 2; each process sees its own bit only. *)
type world = { a : int; b : int }

let all_worlds = [ { a = 0; b = 0 }; { a = 0; b = 1 }; { a = 1; b = 0 }; { a = 1; b = 1 } ]
let key w = Printf.sprintf "%d%d" w.a w.b
let local_key i w = string_of_int (if i = 1 then w.a else w.b)
let kr = Kripke.create ~n:2 ~key ~local_key all_worlds

let test_basics () =
  check_int "four worlds" 4 (Kripke.world_count kr);
  let a_is_0 = Kripke.prop_of kr (fun w -> w.a = 0) in
  check_int "extension" 2 (Kripke.extension_size a_is_0);
  (* Process 1 knows its own bit... *)
  check "1 knows a=0 at 00" true (Kripke.holds_at kr (Kripke.knows kr 1 a_is_0) { a = 0; b = 0 });
  check "1 doesn't know a=0 at 10" false
    (Kripke.holds_at kr (Kripke.knows kr 1 a_is_0) { a = 1; b = 0 });
  (* ...but process 2 never knows process 1's bit. *)
  check "2 never knows a" true
    (Kripke.extension_size (Kripke.knows kr 2 a_is_0) = 0)

let test_negation_conjunction () =
  let a0 = Kripke.prop_of kr (fun w -> w.a = 0) in
  let b0 = Kripke.prop_of kr (fun w -> w.b = 0) in
  check_int "negation flips" 2 (Kripke.extension_size (Kripke.negate kr a0));
  check_int "conjunction" 1 (Kripke.extension_size (Kripke.conj a0 b0))

let test_everyone_common () =
  let members _ = [ 1; 2 ] in
  (* A tautology is common knowledge. *)
  let top = Kripke.prop_of kr (fun _ -> true) in
  check_int "C(top) everywhere" 4
    (Kripke.extension_size (Kripke.common kr ~members top));
  (* "a = 0 or b = 0 or (a = 1 and b = 1)" is true everywhere, hence
     common; a contingent fact like "not both bits are 1" is true at 3
     worlds but nobody can rule out the fourth from (0,1) or (1,0), and
     common knowledge propagates the doubt everywhere. *)
  let not_both = Kripke.prop_of kr (fun w -> not (w.a = 1 && w.b = 1)) in
  check_int "E(not-both) only at 00" 1
    (Kripke.extension_size (Kripke.everyone kr ~members not_both));
  check_int "C(not-both) nowhere" 0
    (Kripke.extension_size (Kripke.common kr ~members not_both))

let test_indexical_members () =
  (* With membership {1} only, E = K_1 and C = K_1-transitive closure. *)
  let members _ = [ 1 ] in
  let b0 = Kripke.prop_of kr (fun w -> w.b = 0) in
  check_int "E_{1}(b=0) empty" 0 (Kripke.extension_size (Kripke.everyone kr ~members b0));
  let a0 = Kripke.prop_of kr (fun w -> w.a = 0) in
  check_int "C_{1}(a=0) = a=0 worlds" 2
    (Kripke.extension_size (Kripke.common kr ~members a0))

(* Belief: relativize to an aliveness predicate.  Mark process 1 "failed"
   at the worlds where a = 1; then process 1's belief quantifies only
   over its alive-worlds. *)
let test_belief () =
  let alive i w = not (i = 1 && w.a = 1) in
  (* At (1, b) process 1 is failed everywhere it considers possible, so it
     believes anything — including falsity ("belief is not veridical"). *)
  let bottom = Kripke.prop_of kr (fun _ -> false) in
  check "failed process believes bottom" true
    (Kripke.holds_at kr (Kripke.believes kr 1 ~alive bottom) { a = 1; b = 0 });
  (* Alive worlds behave like knowledge. *)
  let a0 = Kripke.prop_of kr (fun w -> w.a = 0) in
  check "alive belief = knowledge" true
    (Kripke.holds_at kr (Kripke.believes kr 1 ~alive a0) { a = 0; b = 1 });
  (* Common belief with everyone alive coincides with common knowledge. *)
  let always_alive _ _ = true in
  let not_both = Kripke.prop_of kr (fun w -> not (w.a = 1 && w.b = 1)) in
  let members _ = [ 1; 2 ] in
  check "CB = C when alive everywhere" true
    (Kripke.extension_size
       (Kripke.common_belief kr ~members ~alive:always_alive not_both)
    = Kripke.extension_size (Kripke.common kr ~members not_both))

let test_dedup () =
  let kr2 = Kripke.create ~n:2 ~key ~local_key (all_worlds @ all_worlds) in
  check_int "duplicate worlds collapsed" 4 (Kripke.world_count kr2)

let test_indistinguishable () =
  let cls = Kripke.indistinguishable kr 1 { a = 0; b = 0 } in
  check_int "process 1's class has two worlds" 2 (List.length cls);
  check "own world included" true (List.exists (fun w -> w = { a = 0; b = 0 }) cls);
  check "same a-bit" true (List.for_all (fun w -> w.a = 0) cls)

(* S5 laws on randomly generated propositions over the card structure. *)
let prop_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun bits -> Kripke.prop_of kr (fun w -> List.nth bits ((2 * w.a) + w.b)))
        (list_repeat 4 bool))

let subset p q =
  let sp = Kripke.extension_size (Kripke.conj p q) in
  sp = Kripke.extension_size p

let prop_knowledge_veridical =
  QCheck.Test.make ~name:"S5: K_i(p) implies p" ~count:200 prop_arb (fun p ->
      List.for_all (fun i -> subset (Kripke.knows kr i p) p) [ 1; 2 ])

let prop_positive_introspection =
  QCheck.Test.make ~name:"S5: K_i(p) = K_i(K_i(p))" ~count:200 prop_arb (fun p ->
      List.for_all
        (fun i ->
          let k = Kripke.knows kr i p in
          Kripke.extension_size k = Kripke.extension_size (Kripke.knows kr i k)
          && subset k (Kripke.knows kr i k))
        [ 1; 2 ])

let prop_common_strongest =
  QCheck.Test.make ~name:"C(p) below E(p) below K_i(p) below p" ~count:200 prop_arb
    (fun p ->
      let members _ = [ 1; 2 ] in
      let e = Kripke.everyone kr ~members p in
      let c = Kripke.common kr ~members p in
      subset c e && subset e (Kripke.knows kr 1 p) && subset e (Kripke.knows kr 2 p)
      && subset c p)

let prop_knowledge_monotone =
  QCheck.Test.make ~name:"K_i monotone over conjunction" ~count:200
    (QCheck.pair prop_arb prop_arb) (fun (p, q) ->
      List.for_all
        (fun i ->
          subset
            (Kripke.knows kr i (Kripke.conj p q))
            (Kripke.conj (Kripke.knows kr i p) (Kripke.knows kr i q)))
        [ 1; 2 ])

let prop_belief_weaker =
  QCheck.Test.make ~name:"belief contains knowledge (alive subsets worlds)" ~count:200
    prop_arb (fun p ->
      let alive i w = not (i = 1 && w.a = 1) in
      List.for_all
        (fun i -> subset (Kripke.knows kr i p) (Kripke.believes kr i ~alive p))
        [ 1; 2 ])

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "layered_knowledge"
    [
      ( "kripke",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "negation/conjunction" `Quick test_negation_conjunction;
          Alcotest.test_case "everyone/common" `Quick test_everyone_common;
          Alcotest.test_case "indexical members" `Quick test_indexical_members;
          Alcotest.test_case "belief" `Quick test_belief;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "indistinguishable" `Quick test_indistinguishable;
        ] );
      ( "s5-laws",
        [
          qt prop_knowledge_veridical;
          qt prop_positive_introspection;
          qt prop_common_strongest;
          qt prop_knowledge_monotone;
          qt prop_belief_weaker;
        ] );
    ]
