(* Tests for the synchronous round engine, its layerings and the
   adversary enumeration. *)

open Layered_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module P = (val Layered_protocols.Sync_floodset.make ~t:1)
module E = Layered_sync.Engine.Make (P)

let initial inputs = E.initial ~inputs:(Array.of_list inputs)

(* ------------------------------------------------------------------ *)
(* Round mechanics *)

let test_initial () =
  let x = initial [ 0; 1; 1 ] in
  check_int "round" 0 x.E.round;
  check_int "n" 3 (E.n_of x);
  check_int "no failures" 0 (E.failed_count x);
  check "not terminal" false (E.terminal x);
  check "no decisions" true (Vset.is_empty (E.decided_vset x))

let test_initial_states_order () =
  let states = E.initial_states ~n:3 ~values:[ 0; 1 ] in
  check_int "2^3 states" 8 (List.length states);
  (* First is all-zeros, last all-ones: decided values after flooding. *)
  let first = List.hd states and last = List.nth states 7 in
  let ff x = E.apply ~record_failures:true x [] in
  check "all-zero decides 0" true
    (Vset.equal (E.decided_vset (ff (ff first))) (Vset.singleton 0));
  check "all-one decides 1" true
    (Vset.equal (E.decided_vset (ff (ff last))) (Vset.singleton 1))

let test_failure_free_round () =
  let x = initial [ 0; 1; 1 ] in
  let y = E.apply ~record_failures:true x [] in
  check_int "round advanced" 1 y.E.round;
  check_int "still no failures" 0 (E.failed_count y);
  (* After one clean round everyone knows all inputs; decision at t+1=2. *)
  let z = E.apply ~record_failures:true y [] in
  check "decided" true (E.terminal z);
  check "decides min = 0" true (Vset.equal (E.decided_vset z) (Vset.singleton 0))

let test_omission_records_failure () =
  let x = initial [ 0; 1; 1 ] in
  let y = E.apply ~record_failures:true x [ { E.sender = 1; blocked = [ 2; 3 ] } ] in
  check_int "one failed" 1 (E.failed_count y);
  Alcotest.(check (list int)) "nonfailed" [ 2; 3 ] (E.nonfailed y);
  (* Nobody saw p1's 0: the silenced run decides 1. *)
  let z = E.apply ~record_failures:true y [] in
  check "value 0 suppressed" true (Vset.equal (E.decided_vset z) (Vset.singleton 1))

let test_mobile_mode_never_records () =
  let x = initial [ 0; 1; 1 ] in
  let y = E.apply ~record_failures:false x [ { E.sender = 1; blocked = [ 2; 3 ] } ] in
  check_int "no failure recorded" 0 (E.failed_count y);
  (* p1 keeps sending in later rounds: 0 resurfaces. *)
  let z = E.apply ~record_failures:false y [] in
  check "0 reaches everyone eventually" true
    (Vset.equal (E.decided_vset z) (Vset.singleton 0))

let test_silenced_forever () =
  let x = initial [ 0; 1; 1 ] in
  (* Declaration-only crash: recorded failed, nothing lost this round. *)
  let y = E.apply ~record_failures:true x [ { E.sender = 1; blocked = [] } ] in
  check_int "declared failed" 1 (E.failed_count y);
  (* p1's round-1 messages were delivered, so 0 is known and decided. *)
  let z = E.apply ~record_failures:true y [] in
  check "0 was delivered before the declaration" true
    (Vset.equal (E.decided_vset z) (Vset.singleton 0))

let test_duplicate_omitters_rejected () =
  let x = initial [ 0; 1; 1 ] in
  Alcotest.check_raises "duplicate senders"
    (Invalid_argument "Engine.apply: duplicate omitters") (fun () ->
      ignore
        (E.apply ~record_failures:true x
           [ { E.sender = 1; blocked = [ 2 ] }; { E.sender = 1; blocked = [ 3 ] } ]))

let test_apply_jk_prefix () =
  let x = initial [ 0; 1; 1 ] in
  (* (j, [0]) is the failure-free round in mobile mode. *)
  let y = E.apply_jk ~record_failures:false x 1 0 in
  check "k=0 is clean" true (E.equal y (E.apply ~record_failures:false x []));
  (* (j, [n]) silences j this round. *)
  let z = E.apply_jk ~record_failures:false x 1 3 in
  check "blocked round differs" false (E.equal z y)

(* ------------------------------------------------------------------ *)
(* Similarity *)

let test_agree_modulo () =
  let x = initial [ 0; 1; 1 ] in
  let y = initial [ 0; 0; 1 ] in
  check "differ at p2" true (E.agree_modulo x y 2);
  check "not modulo p3" false (E.agree_modulo x y 3);
  check "similar" true (E.similar x y);
  let z = initial [ 1; 0; 1 ] in
  check "two diffs not similar" false (E.similar x z);
  check "self similar" true (E.similar x x)

let test_similarity_ignores_js_failure_flag () =
  let x = initial [ 0; 1; 1 ] in
  let clean = E.apply ~record_failures:true x [] in
  let declared = E.apply ~record_failures:true x [ { E.sender = 1; blocked = [] } ] in
  (* Locals all equal; only p1's failure record differs. *)
  check "agree modulo the declared process" true (E.agree_modulo clean declared 1);
  check "similar" true (E.similar clean declared)

(* ------------------------------------------------------------------ *)
(* Layerings *)

let test_s1_layer () =
  let x = initial [ 0; 1; 1 ] in
  let layer = E.s1 ~record_failures:false x in
  (* n(n+1) actions with heavy aliasing: all (j,[0]) coincide, and
     self-only prefixes duplicate. *)
  check "contains clean round" true
    (List.exists (fun y -> E.equal y (E.apply ~record_failures:false x [])) layer);
  check "dedup" true
    (List.length (List.sort_uniq compare (List.map E.key layer)) = List.length layer);
  check "all at round 1" true (List.for_all (fun y -> y.E.round = 1) layer)

let test_st_layer_structure () =
  let x = initial [ 0; 1; 1 ] in
  let layer = E.st ~t:1 x in
  check "includes declaration states" true
    (List.exists
       (fun y -> E.failed_count y = 1 && E.equal y (E.apply ~record_failures:true x [ { E.sender = 2; blocked = [] } ]))
       layer);
  check "at most one new failure" true (List.for_all (fun y -> E.failed_count y <= 1) layer);
  (* Once t processes failed: only the failure-free successor. *)
  let crashed = E.apply ~record_failures:true x [ { E.sender = 1; blocked = [ 2; 3 ] } ] in
  check_int "exhausted budget: singleton layer" 1 (List.length (E.st ~t:1 crashed));
  check "layer similarity connected" true
    (Connectivity.connected ~rel:E.similar layer)

let test_s_multi () =
  let x = initial [ 0; 1; 1 ] in
  let single = List.sort_uniq compare (List.map E.key (E.s1 ~record_failures:false x)) in
  let multi1 = List.sort_uniq compare (List.map E.key (E.s_multi ~omitters:1 x)) in
  let multi2 = List.sort_uniq compare (List.map E.key (E.s_multi ~omitters:2 x)) in
  check "one omitter coincides with S1" true (single = multi1);
  check "monotone in the omitter budget" true
    (List.for_all (fun k -> List.mem k multi2) multi1);
  check "two omitters reach more" true (List.length multi2 > List.length multi1);
  (* A two-omitter round can silence two senders simultaneously. *)
  let both_silenced =
    E.apply ~record_failures:false x
      [ { E.sender = 2; blocked = [ 1; 3 ] }; { E.sender = 3; blocked = [ 1; 2 ] } ]
  in
  check "double silencing reachable" true
    (List.exists (fun y -> E.equal y both_silenced) (E.s_multi ~omitters:2 x))

let test_st_layers_are_legal () =
  (* Every S^t successor is one legal round of the crash model. *)
  let x = initial [ 0; 1; 1 ] in
  let micro y =
    E.all_actions ~max_new:1 ~remaining_failures:1 y
    |> List.map (E.apply ~record_failures:true y)
  in
  let violations =
    Layering.validate ~micro ~key:E.key ~bound:1 ~states:[ x ] (E.st ~t:1)
  in
  check "no violations" true (violations = [])

(* ------------------------------------------------------------------ *)
(* Adversary enumeration *)

let test_all_actions_counts () =
  let x = initial [ 0; 1; 1 ] in
  (* max_new 1: failure-free + 3 senders x 2^2 blocked subsets. *)
  check_int "single-crash actions" (1 + (3 * 4))
    (List.length (E.all_actions ~max_new:1 ~remaining_failures:1 x));
  (* Budget exhausted: only the failure-free action. *)
  check_int "no budget" 1 (List.length (E.all_actions ~max_new:2 ~remaining_failures:0 x));
  (* Two simultaneous crashes: add C(3,2) pairs x 4 x 4 subsets. *)
  check_int "double-crash actions"
    (1 + (3 * 4) + (3 * 16))
    (List.length (E.all_actions ~max_new:2 ~remaining_failures:2 x))

let test_all_actions_exclude_failed () =
  let x = initial [ 0; 1; 1 ] in
  let y = E.apply ~record_failures:true x [ { E.sender = 1; blocked = [ 2 ] } ] in
  let actions = E.all_actions ~max_new:1 ~remaining_failures:1 y in
  check "failed process not a fresh omitter" true
    (List.for_all (List.for_all (fun o -> o.E.sender <> 1)) actions)

(* ------------------------------------------------------------------ *)
(* Send-omission model *)

module O = Layered_sync.Omission.Make (P)

let o_initial inputs = O.initial ~inputs:(Array.of_list inputs)

let test_omission_basics () =
  let x = o_initial [ 0; 1; 1 ] in
  check_int "nobody faulty" 0 (O.faulty_count x);
  (* Corrupt p1, drop nothing: everything still flows. *)
  let y = O.apply x { O.corrupt = [ 1 ]; drops = []; rdrops = [] } in
  check_int "one faulty" 1 (O.faulty_count y);
  Alcotest.(check (list int)) "nonfaulty" [ 2; 3 ] (O.nonfaulty y);
  let z = O.apply y { O.corrupt = []; drops = []; rdrops = [] } in
  (* FloodSet with undropped messages decides the true minimum. *)
  check "harmless fault decides 0" true (Vset.equal (O.decided_vset z) (Vset.singleton 0))

let test_omission_faulty_keeps_talking () =
  let x = o_initial [ 0; 1; 1 ] in
  (* p1 drops everything in round 1 but resumes in round 2 — impossible
     in the crash model, allowed here. *)
  let y = O.apply x { O.corrupt = [ 1 ]; drops = [ (1, [ 2; 3 ]) ]; rdrops = [] } in
  let z = O.apply y { O.corrupt = []; drops = []; rdrops = [] } in
  check "value 0 resurfaces" true (Vset.mem 0 (O.decided_vset z))

let test_omission_validation () =
  let x = o_initial [ 0; 1; 1 ] in
  Alcotest.check_raises "drop by non-faulty"
    (Invalid_argument "Omission.apply: drop by non-faulty sender") (fun () ->
      ignore (O.apply x { O.corrupt = []; drops = [ (1, [ 2 ]) ]; rdrops = [] }));
  let y = O.apply x { O.corrupt = [ 1 ]; drops = []; rdrops = [] } in
  Alcotest.check_raises "double corruption"
    (Invalid_argument "Omission.apply: already faulty") (fun () ->
      ignore (O.apply y { O.corrupt = [ 1 ]; drops = []; rdrops = [] }))

let test_omission_contains_crash () =
  (* A crash run (silence from the first drop on) is an omission run:
     both engines reach the same non-faulty decisions. *)
  let inputs = [ 0; 1; 1 ] in
  let crash =
    let x = initial inputs in
    let y = E.apply ~record_failures:true x [ { E.sender = 1; blocked = [ 2; 3 ] } ] in
    E.decided_vset (E.apply ~record_failures:true y [])
  in
  let omission =
    let x = o_initial inputs in
    let y = O.apply x { O.corrupt = [ 1 ]; drops = [ (1, [ 2; 3 ]) ]; rdrops = [] } in
    O.decided_vset (O.apply y { O.corrupt = []; drops = [ (1, [ 2; 3 ]) ]; rdrops = [] })
  in
  check "same decisions" true (Vset.equal crash omission)

let test_omission_action_counts () =
  let x = o_initial [ 0; 1; 1 ] in
  (* No faulty process yet, budget 1: no-corruption (1 action: nothing to
     drop) + 3 single corruptions x 4 drop subsets. *)
  check_int "fresh actions" (1 + (3 * 4))
    (List.length (O.all_actions ~max_new:1 ~remaining_failures:1 x));
  let y = O.apply x { O.corrupt = [ 1 ]; drops = []; rdrops = [] } in
  (* Budget spent: drops for the one faulty process only. *)
  check_int "spent budget" 4
    (List.length (O.all_actions ~max_new:1 ~remaining_failures:0 y))

(* Random omission-adversary runs, replayed as legal action sequences:
   corrupt the requested process while the budget lasts, keep only drops
   by currently-faulty senders. *)
let omission_run_arb =
  QCheck.make
    QCheck.Gen.(
      pair (list_repeat 3 (int_bound 1))
        (list_size (int_range 0 4)
           (pair bool (list_size (int_bound 2) (pair (int_range 1 3) (int_range 1 3))))))

let omission_replay (inputs, raw) =
  List.fold_left
    (fun (x, budget) (want_corrupt, drop_pairs) ->
      let corrupt =
        if want_corrupt && budget > 0 then
          match List.filter (fun j -> not x.O.faulty.(j - 1)) [ 1; 2; 3 ] with
          | j :: _ -> [ j ]
          | [] -> []
        else []
      in
      let faulty_after j = x.O.faulty.(j - 1) || List.mem j corrupt in
      let drops =
        List.filter_map
          (fun (s, d) -> if faulty_after s && s <> d then Some (s, [ d ]) else None)
          drop_pairs
        |> List.fold_left
             (fun acc (s, ds) ->
               match List.assoc_opt s acc with
               | Some prev -> (s, List.sort_uniq compare (ds @ prev)) :: List.remove_assoc s acc
               | None -> (s, ds) :: acc)
             []
      in
      (O.apply x { O.corrupt; drops; rdrops = [] }, budget - List.length corrupt))
    (o_initial inputs, 1)
    raw
  |> fst

let prop_omission_budget =
  QCheck.Test.make ~name:"omission: at most t processes ever faulty" ~count:200
    omission_run_arb (fun run -> O.faulty_count (omission_replay run) <= 1)

let prop_omission_validity =
  QCheck.Test.make ~name:"omission: floodset decisions are inputs" ~count:200
    omission_run_arb (fun ((inputs, _) as run) ->
      Vset.subset (O.decided_vset (omission_replay run)) (Vset.of_list inputs))

let prop_omission_deterministic =
  QCheck.Test.make ~name:"omission: replay is deterministic" ~count:100 omission_run_arb
    (fun run -> String.equal (O.key (omission_replay run)) (O.key (omission_replay run)))

(* ------------------------------------------------------------------ *)
(* qcheck properties over random adversary runs *)

let inputs_gen n = QCheck.Gen.(list_repeat n (int_bound 1))

let action_gen n =
  QCheck.Gen.(
    let omission =
      pair (int_range 1 n) (list_size (int_bound n) (int_range 1 n))
      |> map (fun (sender, blocked) -> { E.sender; blocked })
    in
    frequency [ (1, return []); (3, map (fun o -> [ o ]) omission) ])

let run_gen =
  QCheck.Gen.(
    pair (inputs_gen 3) (list_size (int_range 0 4) (action_gen 3)))

let run_arb = QCheck.make run_gen

let prop_round_counts =
  QCheck.Test.make ~name:"sync: rounds count applied actions" ~count:200 run_arb
    (fun (inputs, actions) ->
      let x =
        List.fold_left
          (fun x a -> E.apply ~record_failures:true x a)
          (initial inputs) actions
      in
      x.E.round = List.length actions)

let prop_failures_monotone =
  QCheck.Test.make ~name:"sync: failure record grows monotonically" ~count:200 run_arb
    (fun (inputs, actions) ->
      let counts =
        List.fold_left
          (fun (x, acc) a ->
            let y = E.apply ~record_failures:true x a in
            (y, E.failed_count y :: acc))
          (initial inputs, [ 0 ])
          actions
        |> snd |> List.rev
      in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | [ _ ] | [] -> true
      in
      sorted counts)

let prop_decisions_write_once =
  QCheck.Test.make ~name:"sync: decisions are write-once along runs" ~count:200 run_arb
    (fun (inputs, actions) ->
      let ok = ref true in
      let final =
        List.fold_left
          (fun x a ->
            let y = E.apply ~record_failures:true x a in
            let dx = E.decisions x and dy = E.decisions y in
            Array.iteri
              (fun i d ->
                match (d, dy.(i)) with
                | Some v, Some w when v <> w -> ok := false
                | Some _, None -> ok := false
                | (Some _ | None), _ -> ())
              dx;
            y)
          (initial inputs) actions
      in
      ignore final;
      !ok)

let prop_key_deterministic =
  QCheck.Test.make ~name:"sync: apply is deterministic (key-stable)" ~count:100 run_arb
    (fun (inputs, actions) ->
      let run () =
        List.fold_left
          (fun x a -> E.apply ~record_failures:true x a)
          (initial inputs) actions
        |> E.key
      in
      String.equal (run ()) (run ()))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "layered_sync"
    [
      ( "rounds",
        [
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "initial states order" `Quick test_initial_states_order;
          Alcotest.test_case "failure-free" `Quick test_failure_free_round;
          Alcotest.test_case "omission records" `Quick test_omission_records_failure;
          Alcotest.test_case "mobile never records" `Quick test_mobile_mode_never_records;
          Alcotest.test_case "declaration crash" `Quick test_silenced_forever;
          Alcotest.test_case "duplicate omitters" `Quick test_duplicate_omitters_rejected;
          Alcotest.test_case "apply_jk prefixes" `Quick test_apply_jk_prefix;
        ] );
      ( "similarity",
        [
          Alcotest.test_case "agree modulo" `Quick test_agree_modulo;
          Alcotest.test_case "failure flag refinement" `Quick
            test_similarity_ignores_js_failure_flag;
        ] );
      ( "layerings",
        [
          Alcotest.test_case "S1 layer" `Quick test_s1_layer;
          Alcotest.test_case "S^t structure" `Quick test_st_layer_structure;
          Alcotest.test_case "multi-omitter layer" `Quick test_s_multi;
          Alcotest.test_case "S^t legality" `Quick test_st_layers_are_legal;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "action counts" `Quick test_all_actions_counts;
          Alcotest.test_case "failed excluded" `Quick test_all_actions_exclude_failed;
        ] );
      ( "omission",
        [
          Alcotest.test_case "basics" `Quick test_omission_basics;
          Alcotest.test_case "faulty keeps talking" `Quick test_omission_faulty_keeps_talking;
          Alcotest.test_case "validation" `Quick test_omission_validation;
          Alcotest.test_case "contains crash" `Quick test_omission_contains_crash;
          Alcotest.test_case "action counts" `Quick test_omission_action_counts;
        ] );
      ( "properties",
        [
          qt prop_omission_budget;
          qt prop_omission_validity;
          qt prop_omission_deterministic;
          qt prop_round_counts;
          qt prop_failures_monotone;
          qt prop_decisions_write_once;
          qt prop_key_deterministic;
        ] );
    ]
