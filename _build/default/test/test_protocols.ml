(* Protocol-level tests: exhaustive model checking of the synchronous
   consensus protocols, and behavioural spot checks of all protocols. *)

open Layered_core
open Layered_analysis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Exhaustive verification against every crash adversary *)

let verify ?(uniform = false) ?decision_round name protocol ~n ~t () =
  let decision_round = Option.value decision_round ~default:(t + 1) in
  let r = Consensus_check.check ~protocol ~n ~t ~rounds:(decision_round + 1) () in
  check (name ^ " agreement") true r.Consensus_check.agreement_ok;
  check (name ^ " validity") true r.Consensus_check.validity_ok;
  check (name ^ " termination") true r.Consensus_check.termination_ok;
  check_int (name ^ " worst round") decision_round r.Consensus_check.worst_decision_round;
  (* The classical contrast: the t+1-round protocols achieve plain but not
     uniform agreement (a mid-delivery crasher can decide on a value the
     survivors never see); the echo-round protocol buys uniformity. *)
  check (name ^ " uniformity") uniform r.Consensus_check.uniform_agreement_ok

(* ------------------------------------------------------------------ *)
(* FloodSet behaviour *)

module FS = (val Layered_protocols.Sync_floodset.make ~t:1)
module EFS = Layered_sync.Engine.Make (FS)

let test_floodset_decides_min () =
  List.iter
    (fun inputs ->
      let x = EFS.initial ~inputs:(Array.of_list inputs) in
      let ff = EFS.apply ~record_failures:true x [] in
      let y = EFS.apply ~record_failures:true ff [] in
      let expected = List.fold_left min (List.hd inputs) inputs in
      check "decides min of inputs" true
        (Vset.equal (EFS.decided_vset y) (Vset.singleton expected)))
    [ [ 0; 1; 1 ]; [ 1; 1; 1 ]; [ 1; 0; 1 ]; [ 0; 0; 0 ] ]

let test_floodset_decision_round () =
  let x = EFS.initial ~inputs:[| 0; 1; 1 |] in
  let r1 = EFS.apply ~record_failures:true x [] in
  check "no decision at round t" false (EFS.terminal r1);
  check "decision at round t+1" true (EFS.terminal (EFS.apply ~record_failures:true r1 []))

let test_floodset_stable_after_decision () =
  let x = EFS.initial ~inputs:[| 0; 1; 1 |] in
  let rec advance x k = if k = 0 then x else advance (EFS.apply ~record_failures:true x []) (k - 1) in
  let a = advance x 2 and b = advance x 3 in
  (* Only the round counter moves once everyone has decided. *)
  check "decisions stable" true
    (Array.for_all2 ( = ) (EFS.decisions a) (EFS.decisions b))

(* ------------------------------------------------------------------ *)
(* Early-deciding FloodSet: speed on clean runs *)

module ED = (val Layered_protocols.Sync_early.make ~t:2)
module EED = Layered_sync.Engine.Make (ED)

let test_early_fast_path () =
  (* Failure-free: decides in one round even though t = 2. *)
  let x = EED.initial ~inputs:[| 0; 1; 1; 1 |] in
  let y = EED.apply ~record_failures:true x [] in
  check "decided after one clean round" true (EED.terminal y);
  check "decides the minimum" true (Vset.equal (EED.decided_vset y) (Vset.singleton 0))

let test_early_delays_under_crash () =
  (* A visible crash in round 1 delays the observers. *)
  let x = EED.initial ~inputs:[| 0; 1; 1; 1 |] in
  let y = EED.apply ~record_failures:true x [ { EED.sender = 1; blocked = [ 2; 3; 4 ] } ] in
  check "observers wait" false (EED.terminal y);
  (* Round 2 clean: 1 observed crash < 2, decide. *)
  check "decide next round" true (EED.terminal (EED.apply ~record_failures:true y []))

(* ------------------------------------------------------------------ *)
(* EIG tree structure *)

module EIG = (val Layered_protocols.Sync_eig.make ~t:1)
module EEIG = Layered_sync.Engine.Make (EIG)

let test_eig_decides_like_floodset () =
  (* On every crash-adversary run, EIG and FloodSet reach the same
     decision vector (both decide min of surviving values). *)
  let inputs = [| 0; 1; 1 |] in
  let actions0 = [ []; [ { EEIG.sender = 1; blocked = [ 2; 3 ] } ] ] in
  List.iter
    (fun a0 ->
      let via_eig =
        let x = EEIG.initial ~inputs in
        let a0' = List.map (fun o -> { EEIG.sender = o.EEIG.sender; blocked = o.EEIG.blocked }) a0 in
        let y = EEIG.apply ~record_failures:true x a0' in
        EEIG.decided_vset (EEIG.apply ~record_failures:true y [])
      in
      let via_fs =
        let x = EFS.initial ~inputs in
        let a0' = List.map (fun o -> { EFS.sender = o.EEIG.sender; blocked = o.EEIG.blocked }) a0 in
        let y = EFS.apply ~record_failures:true x a0' in
        EFS.decided_vset (EFS.apply ~record_failures:true y [])
      in
      check "same decision set" true (Vset.equal via_eig via_fs))
    actions0

(* ------------------------------------------------------------------ *)
(* Asynchronous protocols: shape checks *)

module MPF = (val Layered_protocols.Mp_floodset.make ~horizon:2)
module EMP = Layered_async_mp.Engine.Make (MPF)

let test_mp_floodset_halts_after_decision () =
  let x = EMP.initial ~inputs:[| 0; 1; 1 |] in
  let full = List.map (fun i -> Layered_async_mp.Engine.Solo i) [ 1; 2; 3 ] in
  let y = EMP.apply (EMP.apply x full) full in
  check "terminal" true (EMP.terminal y);
  (* Decided processes send nothing: the state stabilises. *)
  let z = EMP.apply y full in
  check "no new messages" true (EMP.in_transit z = 0)

module SMV = (val Layered_protocols.Sm_voting.make ~horizon:2)
module ESM = Layered_async_sm.Engine.Make (SMV)

let test_sm_voting_unanimity () =
  let x = ESM.initial ~inputs:[| 1; 1; 1 |] in
  let clean = { Layered_async_sm.Engine.slow = 1; mode = Layered_async_sm.Engine.Read_late 0 } in
  let y = ESM.apply (ESM.apply x clean) clean in
  check "unanimous input decides that value" true
    (Vset.equal (ESM.decided_vset y) (Vset.singleton 1))

(* ------------------------------------------------------------------ *)
(* The omission-tolerant coordinator *)

module CO = (val Layered_protocols.Sync_coordinator.make ~t:1)
module ECO = Layered_sync.Omission.Make (CO)

let test_coordinator_clean_run () =
  let x = ECO.initial ~inputs:[| 0; 1; 1 |] in
  let rec advance x k =
    if k = 0 then x else advance (ECO.apply x { ECO.corrupt = []; drops = []; rdrops = [] }) (k - 1)
  in
  let y = advance x 6 in
  check "decided after 3(t+1) rounds" true (ECO.terminal y);
  (* With votes (0,1,1) the n-t = 2 majority locks 1 in the first vote
     round: the coordinator decides by majority, not minimum. *)
  check "decides the majority value" true
    (Vset.equal (ECO.decided_vset y) (Vset.singleton 1));
  check "not earlier" false (ECO.terminal (advance x 5))

let test_coordinator_verified_omission () =
  let r =
    Omission_check.check
      ~protocol:(Layered_protocols.Sync_coordinator.make ~t:1)
      ~n:3 ~t:1 ~rounds:7 ()
  in
  check "agreement" true r.Omission_check.agreement_ok;
  check "validity" true r.Omission_check.validity_ok;
  check "termination" true r.Omission_check.termination_ok

let test_floodset_not_omission_tolerant () =
  let r =
    Omission_check.check
      ~protocol:(Layered_protocols.Sync_floodset.make ~t:1)
      ~n:3 ~t:1 ~rounds:3 ()
  in
  check "agreement fails" false r.Omission_check.agreement_ok

(* ------------------------------------------------------------------ *)
(* Full-information views *)

let test_view_growth () =
  let v = Layered_protocols.View.init ~pid:1 ~input:0 in
  check "initial undecided" true (Layered_protocols.View.decision v = None);
  let o2 = Layered_protocols.View.observe (Layered_protocols.View.init ~pid:2 ~input:1) in
  let v1 = Layered_protocols.View.advance ~horizon:2 v [ (2, o2) ] in
  check "still undecided before horizon" true (Layered_protocols.View.decision v1 = None);
  let v2 = Layered_protocols.View.advance ~horizon:2 v1 [ (2, o2) ] in
  check "decides min at horizon" true (Layered_protocols.View.decision v2 = Some 0);
  (* Write-once/stability. *)
  let v3 = Layered_protocols.View.advance ~horizon:2 v2 [] in
  check "stable after decision" true
    (String.equal (Layered_protocols.View.key v2) (Layered_protocols.View.key v3));
  (* Views distinguish observation histories. *)
  let w1 = Layered_protocols.View.advance ~horizon:2 v [] in
  check "histories distinguishable" false
    (String.equal (Layered_protocols.View.key v1) (Layered_protocols.View.key w1))

let test_full_info_sync_decides () =
  let module FI = (val Layered_protocols.Full_info.sync ~horizon:2) in
  let module E = Layered_sync.Engine.Make (FI) in
  let x = E.initial ~inputs:[| 0; 1; 1 |] in
  let y = E.apply ~record_failures:true (E.apply ~record_failures:true x []) [] in
  check "full-info floods and decides min" true
    (Vset.equal (E.decided_vset y) (Vset.singleton 0))

(* ------------------------------------------------------------------ *)
(* The 2-set agreement protocol *)

module K = (val Layered_protocols.Mp_kset.make ~n:3)
module EK = Layered_async_mp.Engine.Make (K)

let test_kset_waits_for_quorum () =
  let x = EK.initial ~inputs:[| 0; 1; 2 |] in
  let solo p = List.map (fun i -> Layered_async_mp.Engine.Solo i) p in
  (* One full round: the last mover knows three inputs, the first only
     its own; deciders need n - 1 = 2. *)
  let y = EK.apply x (solo [ 1; 2; 3 ]) in
  let decs = EK.decisions y in
  check "first mover undecided" true (decs.(0) = None);
  check "second mover decided (knows 2)" true (decs.(1) <> None);
  check "third mover decided" true (decs.(2) <> None)

let test_kset_two_values_max () =
  (* Starve p1 (holder of the unique minimum): others decide the second
     minimum; p1, once scheduled, may decide the true minimum. *)
  let x = EK.initial ~inputs:[| 0; 1; 2 |] in
  let solo p = List.map (fun i -> Layered_async_mp.Engine.Solo i) p in
  let y = EK.apply (EK.apply x (solo [ 2; 3 ])) (solo [ 2; 3 ]) in
  check "others decide 1" true
    (Vset.equal (EK.decided_vset y) (Vset.singleton 1));
  let z = EK.apply y (solo [ 1; 2; 3 ]) in
  check "late mover decides 0: two values total" true
    (Vset.equal (EK.decided_vset z) (Vset.of_list [ 0; 1 ]))

let () =
  Alcotest.run "layered_protocols"
    [
      ( "verification",
        [
          Alcotest.test_case "floodset (3,1)" `Quick
            (verify "floodset" (Layered_protocols.Sync_floodset.make ~t:1) ~n:3 ~t:1);
          Alcotest.test_case "floodset (4,2)" `Slow
            (verify "floodset" (Layered_protocols.Sync_floodset.make ~t:2) ~n:4 ~t:2);
          Alcotest.test_case "eig (3,1)" `Quick
            (verify "eig" (Layered_protocols.Sync_eig.make ~t:1) ~n:3 ~t:1);
          Alcotest.test_case "early (3,1)" `Quick
            (verify "early" (Layered_protocols.Sync_early.make ~t:1) ~n:3 ~t:1);
          Alcotest.test_case "early (4,2)" `Slow
            (verify "early" (Layered_protocols.Sync_early.make ~t:2) ~n:4 ~t:2);
          Alcotest.test_case "clean (3,1)" `Quick
            (verify "clean" (Layered_protocols.Sync_clean.make ~t:1) ~n:3 ~t:1);
          Alcotest.test_case "clean (4,2)" `Slow
            (verify "clean" (Layered_protocols.Sync_clean.make ~t:2) ~n:4 ~t:2);
          Alcotest.test_case "uniform (3,1)" `Quick
            (verify ~uniform:true ~decision_round:3 "uniform"
               (Layered_protocols.Sync_uniform.make ~t:1) ~n:3 ~t:1);
          Alcotest.test_case "uniform (4,2)" `Slow
            (verify ~uniform:true ~decision_round:4 "uniform"
               (Layered_protocols.Sync_uniform.make ~t:2) ~n:4 ~t:2);
        ] );
      ( "floodset",
        [
          Alcotest.test_case "decides min" `Quick test_floodset_decides_min;
          Alcotest.test_case "decision round" `Quick test_floodset_decision_round;
          Alcotest.test_case "stable after decision" `Quick
            test_floodset_stable_after_decision;
        ] );
      ( "early",
        [
          Alcotest.test_case "fast path" `Quick test_early_fast_path;
          Alcotest.test_case "delayed by crash" `Quick test_early_delays_under_crash;
        ] );
      ("eig", [ Alcotest.test_case "matches floodset" `Quick test_eig_decides_like_floodset ]);
      ( "async",
        [
          Alcotest.test_case "mp halts after decision" `Quick
            test_mp_floodset_halts_after_decision;
          Alcotest.test_case "sm unanimity" `Quick test_sm_voting_unanimity;
        ] );
      ( "omission",
        [
          Alcotest.test_case "coordinator clean run" `Quick test_coordinator_clean_run;
          Alcotest.test_case "coordinator verified" `Quick test_coordinator_verified_omission;
          Alcotest.test_case "floodset breaks" `Quick test_floodset_not_omission_tolerant;
        ] );
      ( "full-info",
        [
          Alcotest.test_case "view growth" `Quick test_view_growth;
          Alcotest.test_case "sync decides" `Quick test_full_info_sync_decides;
        ] );
      ( "kset",
        [
          Alcotest.test_case "quorum wait" `Quick test_kset_waits_for_quorum;
          Alcotest.test_case "two values max" `Quick test_kset_two_values_max;
        ] );
    ]
