test/test_core.ml: Alcotest Array Connectivity Explore Fmt Fun Graph Int Layered_core Layering List Option Pid QCheck QCheck_alcotest Report String Union_find Valence Value Vset
