test/test_iis.ml: Alcotest Array Connectivity Layered_core Layered_iis Layered_protocols List Printf QCheck QCheck_alcotest String Vset
