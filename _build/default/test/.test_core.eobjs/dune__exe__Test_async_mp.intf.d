test/test_async_mp.mli:
