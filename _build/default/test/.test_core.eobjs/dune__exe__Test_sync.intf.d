test/test_sync.mli:
