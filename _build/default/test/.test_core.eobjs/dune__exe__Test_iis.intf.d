test/test_iis.mli:
