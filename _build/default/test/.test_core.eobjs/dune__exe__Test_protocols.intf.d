test/test_protocols.mli:
