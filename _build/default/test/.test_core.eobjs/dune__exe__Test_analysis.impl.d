test/test_analysis.ml: Alcotest Chains Export Layered_analysis Layered_core List Printf Registry Report String Sweep
