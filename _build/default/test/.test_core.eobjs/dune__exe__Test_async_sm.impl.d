test/test_async_sm.ml: Alcotest Array Layered_async_sm Layered_core Layered_protocols List Option QCheck QCheck_alcotest String Vset
