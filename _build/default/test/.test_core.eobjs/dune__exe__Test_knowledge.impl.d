test/test_knowledge.ml: Alcotest Layered_knowledge List Printf QCheck QCheck_alcotest
