test/test_sync.ml: Alcotest Array Connectivity Layered_core Layered_protocols Layered_sync Layering List QCheck QCheck_alcotest String Vset
