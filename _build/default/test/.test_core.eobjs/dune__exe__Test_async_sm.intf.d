test/test_async_sm.mli:
