test/test_knowledge.mli:
