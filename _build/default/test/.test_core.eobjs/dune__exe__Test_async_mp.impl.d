test/test_async_mp.ml: Alcotest Array Layered_async_mp Layered_core Layered_protocols List QCheck QCheck_alcotest String Vset
