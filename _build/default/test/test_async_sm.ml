(* Tests for the asynchronous shared-memory engine and its synchronic
   layering. *)

open Layered_core
module Sm = Layered_async_sm

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module P = (val Layered_protocols.Sm_voting.make ~horizon:2)
module E = Sm.Engine.Make (P)

let initial inputs = E.initial ~inputs:(Array.of_list inputs)
let act slow mode = { Sm.Engine.slow; mode }

(* ------------------------------------------------------------------ *)
(* Phase mechanics *)

let test_initial () =
  let x = initial [ 0; 1; 1 ] in
  check_int "phase" 0 x.E.phase;
  check "registers empty" true (Array.for_all (fun r -> r = None) x.E.regs);
  check "not terminal" false (E.terminal x)

let test_actions_enumeration () =
  (* n choices of slow process x (Absent + k in 0..n). *)
  check_int "action count" (3 * 5) (List.length (E.actions ~n:3))

let test_absent_process_untouched () =
  let x = initial [ 0; 1; 1 ] in
  let y = E.apply x (act 2 Sm.Engine.Absent) in
  check "p2 local unchanged" true
    (String.equal (P.key y.E.locals.(1)) (P.key x.E.locals.(1)));
  check "p2 register still empty" true (y.E.regs.(1) = None);
  check "p1 wrote" true (y.E.regs.(0) <> None);
  check_int "phase advanced" 1 y.E.phase

let test_jk_independence_of_j () =
  (* The paper: the state after action (j, 0) is independent of j. *)
  let x = initial [ 0; 1; 1 ] in
  let states =
    List.map (fun j -> E.apply x (act j (Sm.Engine.Read_late 0))) [ 1; 2; 3 ]
  in
  match states with
  | [ a; b; c ] ->
      check "j=1 = j=2" true (E.equal a b);
      check "j=2 = j=3" true (E.equal b c)
  | _ -> assert false

let test_read_late_k_semantics () =
  (* With (j, n), proper processes scan before j's write: register V_j
     visible only to j itself next phase. *)
  let x = initial [ 0; 1; 1 ] in
  let early = E.apply x (act 1 (Sm.Engine.Read_late 3)) in
  let late = E.apply x (act 1 (Sm.Engine.Read_late 0)) in
  (* In both cases all registers end up written... *)
  check "all wrote (early)" true (Array.for_all (fun r -> r <> None) early.E.regs);
  check "all wrote (late)" true (Array.for_all (fun r -> r <> None) late.E.regs);
  (* ...but the scans differ: with k=n proper processes missed V_1 = 0, so
     p2/p3 kept preference 1; with k=0 everyone saw 0 and adopted it. *)
  check "late readers adopt the minimum" false
    (String.equal (P.key early.E.locals.(1)) (P.key late.E.locals.(1)))

let test_compile_matches_apply () =
  let x = initial [ 0; 1; 1 ] in
  List.for_all
    (fun a ->
      let via_events = E.apply_events x (E.compile x a) in
      E.equal via_events (E.apply x a))
    (E.actions ~n:3)
  |> check "apply = apply_events . compile" true

let test_schedule_legality () =
  check "write then scan legal" true
    (E.schedule_legal [ Sm.Engine.Write 1; Sm.Engine.Scan 1 ]);
  check "scan before write illegal" false
    (E.schedule_legal [ Sm.Engine.Scan 1; Sm.Engine.Write 1 ]);
  check "double write illegal" false
    (E.schedule_legal [ Sm.Engine.Write 1; Sm.Engine.Write 1 ]);
  check "double scan illegal" false
    (E.schedule_legal [ Sm.Engine.Scan 1; Sm.Engine.Scan 1 ]);
  check "independent processes fine" true
    (E.schedule_legal
       [ Sm.Engine.Write 1; Sm.Engine.Write 2; Sm.Engine.Scan 2; Sm.Engine.Scan 1 ])

(* ------------------------------------------------------------------ *)
(* The Lemma 5.3 bridge, exhaustively at the initial states *)

let test_bridge_everywhere () =
  let initials = E.initial_states ~n:3 ~values:[ 0; 1 ] in
  check_int "eight initials" 8 (List.length initials);
  List.iter
    (fun x ->
      List.iter
        (fun j ->
          let y =
            E.apply (E.apply x (act j (Sm.Engine.Read_late 3))) (act j Sm.Engine.Absent)
          in
          let y' =
            E.apply (E.apply x (act j Sm.Engine.Absent)) (act j (Sm.Engine.Read_late 0))
          in
          check "bridge modulo j" true (E.agree_modulo y y' j))
        [ 1; 2; 3 ])
    initials

(* ------------------------------------------------------------------ *)
(* Properties over random schedules *)

let action_gen n =
  QCheck.Gen.(
    pair (int_range 1 n)
      (frequency [ (1, return None); (4, map Option.some (int_bound n)) ])
    |> map (fun (slow, mode) ->
           match mode with
           | None -> { Sm.Engine.slow; mode = Sm.Engine.Absent }
           | Some k -> { Sm.Engine.slow; mode = Sm.Engine.Read_late k }))

let run_gen =
  QCheck.Gen.(pair (list_repeat 3 (int_bound 1)) (list_size (int_range 0 4) (action_gen 3)))

let run_arb = QCheck.make run_gen

let fold_run (inputs, actions) = List.fold_left E.apply (initial inputs) actions

let prop_single_writer =
  QCheck.Test.make ~name:"sm: register V_i only changes via process i" ~count:200 run_arb
    (fun (inputs, actions) ->
      (* Apply actions one at a time; if process i was absent, V_i must be
         unchanged. *)
      let ok = ref true in
      let _final =
        List.fold_left
          (fun x a ->
            let y = E.apply x a in
            (match a.Sm.Engine.mode with
            | Sm.Engine.Absent ->
                let j = a.Sm.Engine.slow in
                let reg_key = function None -> "_" | Some r -> P.reg_key r in
                if
                  not
                    (String.equal
                       (reg_key x.E.regs.(j - 1))
                       (reg_key y.E.regs.(j - 1)))
                then ok := false
            | Sm.Engine.Read_late _ -> ());
            y)
          (initial inputs) actions
      in
      !ok)

let prop_phase_counts =
  QCheck.Test.make ~name:"sm: phases count applied actions" ~count:200 run_arb
    (fun ((_, actions) as run) -> (fold_run run).E.phase = List.length actions)

let prop_validity_of_preferences =
  QCheck.Test.make ~name:"sm: decisions are input values (validity)" ~count:200 run_arb
    (fun ((inputs, _) as run) ->
      let x = fold_run run in
      Vset.subset (E.decided_vset x) (Vset.of_list inputs))

let prop_srw_layer_deduped =
  QCheck.Test.make ~name:"sm: srw layers carry no duplicate states" ~count:50 run_arb
    (fun run ->
      let layer = E.srw (fold_run run) in
      List.length (List.sort_uniq compare (List.map E.key layer)) = List.length layer)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "layered_async_sm"
    [
      ( "phases",
        [
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "action enumeration" `Quick test_actions_enumeration;
          Alcotest.test_case "absent untouched" `Quick test_absent_process_untouched;
          Alcotest.test_case "(j,0) independent of j" `Quick test_jk_independence_of_j;
          Alcotest.test_case "read-late semantics" `Quick test_read_late_k_semantics;
          Alcotest.test_case "compile = apply" `Quick test_compile_matches_apply;
          Alcotest.test_case "schedule legality" `Quick test_schedule_legality;
        ] );
      ("bridge", [ Alcotest.test_case "Lemma 5.3 bridge" `Quick test_bridge_everywhere ]);
      ( "properties",
        [
          qt prop_single_writer;
          qt prop_phase_counts;
          qt prop_validity_of_preferences;
          qt prop_srw_layer_deduped;
        ] );
    ]
