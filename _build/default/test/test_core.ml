(* Unit and property tests for layered_core. *)

open Layered_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Value / Vset *)

let test_value_basics () =
  check_int "zero" 0 Value.zero;
  check_int "one" 1 Value.one;
  check "equal" true (Value.equal (Value.of_int 5) 5);
  Alcotest.check_raises "of_int negative" (Invalid_argument "Value.of_int: out of range")
    (fun () -> ignore (Value.of_int (-1)));
  Alcotest.check_raises "of_int too large" (Invalid_argument "Value.of_int: out of range")
    (fun () -> ignore (Value.of_int 62))

let test_vset_basics () =
  let s = Vset.of_list [ 3; 1; 4; 1 ] in
  check_int "cardinal dedups" 3 (Vset.cardinal s);
  Alcotest.(check (list int)) "elements sorted" [ 1; 3; 4 ] (Vset.elements s);
  check "mem" true (Vset.mem 3 s);
  check "not mem" false (Vset.mem 2 s);
  check "empty" true (Vset.is_empty Vset.empty);
  check "subset" true (Vset.subset (Vset.of_list [ 1; 3 ]) s);
  check "not subset" false (Vset.subset (Vset.of_list [ 1; 2 ]) s);
  check "intersects" true (Vset.intersects s (Vset.singleton 4));
  check "no intersect" false (Vset.intersects s (Vset.singleton 2))

let vset_gen = QCheck.Gen.(map Vset.of_list (list_size (int_bound 8) (int_bound 20)))
let vset_arb = QCheck.make ~print:(Fmt.to_to_string Vset.pp) vset_gen

let prop_vset_union_inter =
  QCheck.Test.make ~name:"vset: distributivity and identities" ~count:200
    (QCheck.pair vset_arb vset_arb) (fun (a, b) ->
      Vset.equal (Vset.union a b) (Vset.union b a)
      && Vset.equal (Vset.inter a b) (Vset.inter b a)
      && Vset.subset (Vset.inter a b) a
      && Vset.subset a (Vset.union a b)
      && Vset.equal (Vset.union a a) a)

let prop_vset_roundtrip =
  QCheck.Test.make ~name:"vset: of_list/elements roundtrip" ~count:200 vset_arb (fun s ->
      Vset.equal (Vset.of_list (Vset.elements s)) s
      && List.length (Vset.elements s) = Vset.cardinal s)

(* ------------------------------------------------------------------ *)
(* Pid *)

let test_pid () =
  Alcotest.(check (list int)) "all" [ 1; 2; 3 ] (Pid.all 3);
  Alcotest.(check (list int)) "others" [ 1; 3 ] (Pid.others 3 2);
  Alcotest.check_raises "n too small" (Invalid_argument "Pid.all: need at least two processes")
    (fun () -> ignore (Pid.all 1))

(* ------------------------------------------------------------------ *)
(* Union_find *)

let test_union_find () =
  let uf = Union_find.create 6 in
  check_int "initial classes" 6 (Union_find.count uf);
  check "fresh union" true (Union_find.union uf 0 1);
  check "redundant union" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  check "transitively same" true (Union_find.same uf 1 2);
  check "separate" false (Union_find.same uf 4 5);
  check_int "classes after unions" 3 (Union_find.count uf);
  check_int "class sizes" 3 (List.length (Union_find.classes uf))

let edges_gen n = QCheck.Gen.(list_size (int_bound 12) (pair (int_bound (n - 1)) (int_bound (n - 1))))

let prop_union_find_vs_graph =
  QCheck.Test.make ~name:"union_find matches graph components" ~count:200
    (QCheck.make (edges_gen 8)) (fun edges ->
      let uf = Union_find.create 8 in
      List.iter (fun (i, j) -> ignore (Union_find.union uf i j)) edges;
      let g = Graph.of_edges ~size:8 edges in
      List.length (Graph.components g) = Union_find.count uf)

(* ------------------------------------------------------------------ *)
(* Graph *)

let line n = Graph.of_edges ~size:n (List.init (n - 1) (fun i -> (i, i + 1)))

let test_graph_basics () =
  let g = line 5 in
  check "line connected" true (Graph.is_connected g);
  check_int "line diameter" 4 (Option.get (Graph.diameter g));
  check_int "line edges" 4 (Graph.edge_count g);
  Alcotest.(check (list int)) "path" [ 0; 1; 2; 3 ] (Option.get (Graph.path g 0 3));
  let disconnected = Graph.of_edges ~size:4 [ (0, 1); (2, 3) ] in
  check "disconnected" false (Graph.is_connected disconnected);
  check "no diameter" true (Graph.diameter disconnected = None);
  check "no path" true (Graph.path disconnected 0 3 = None);
  check_int "components" 2 (List.length (Graph.components disconnected));
  check_int "eccentricity centre" 2 (Option.get (Graph.eccentricity (line 5) 2))

let test_graph_self_loops_ignored () =
  let g = Graph.of_edges ~size:3 [ (0, 0); (1, 1) ] in
  check_int "no edges" 0 (Graph.edge_count g);
  check "disconnected" false (Graph.is_connected g)

let prop_graph_path_valid =
  QCheck.Test.make ~name:"graph: BFS paths are valid and shortest-ish" ~count:200
    (QCheck.make (edges_gen 7)) (fun edges ->
      let g = Graph.of_edges ~size:7 edges in
      match Graph.path g 0 6 with
      | None -> true
      | Some p ->
          List.hd p = 0
          && List.nth p (List.length p - 1) = 6
          && (let rec adjacent = function
                | a :: (b :: _ as rest) ->
                    List.mem b (Graph.neighbours g a) && adjacent rest
                | [ _ ] | [] -> true
              in
              adjacent p))

let prop_graph_diameter_symmetry =
  QCheck.Test.make ~name:"graph: diameter >= any eccentricity" ~count:200
    (QCheck.make (edges_gen 7)) (fun edges ->
      (* Make it connected by adding a spanning line. *)
      let edges = edges @ List.init 6 (fun i -> (i, i + 1)) in
      let g = Graph.of_edges ~size:7 edges in
      let d = Option.get (Graph.diameter g) in
      List.for_all
        (fun i -> Option.get (Graph.eccentricity g i) <= d)
        (List.init 7 Fun.id))

(* ------------------------------------------------------------------ *)
(* Explore on a synthetic branching system *)

(* States are ints; successors of i are 2i+1 and 2i+2 (infinite binary
   tree, explored to bounded depth). *)
let tree_spec = { Explore.succ = (fun i -> [ (2 * i) + 1; (2 * i) + 2 ]); key = string_of_int }

let test_explore_tree () =
  check_int "depth 0" 1 (Explore.count_reachable tree_spec ~depth:0 0);
  check_int "depth 1" 3 (Explore.count_reachable tree_spec ~depth:1 0);
  check_int "depth 2" 7 (Explore.count_reachable tree_spec ~depth:2 0);
  let runs = ref 0 in
  Explore.iter_runs tree_spec ~depth:3 0 ~f:(fun run ->
      incr runs;
      check_int "run length" 4 (List.length run));
  check_int "runs at depth 3" 8 !runs;
  check "exists 5" true (Explore.exists_reachable tree_spec ~depth:2 ~pred:(fun i -> i = 5) 0);
  check "not exists 7 at depth 2" false
    (Explore.exists_reachable tree_spec ~depth:2 ~pred:(fun i -> i = 7) 0);
  check "find returns BFS-first" true
    (Explore.find_reachable tree_spec ~depth:3 ~pred:(fun i -> i > 2) 0 = Some 3)

let test_explore_dedup () =
  (* A diamond: 0 -> {1, 2} -> 3; state 3 must be visited once. *)
  let succ = function 0 -> [ 1; 2 ] | 1 | 2 -> [ 3 ] | _ -> [ 3 ] in
  let spec = { Explore.succ; key = string_of_int } in
  check_int "diamond dedup" 4 (Explore.count_reachable spec ~depth:5 0)

(* ------------------------------------------------------------------ *)
(* Valence on a hand-built automaton *)

(* A small deciding system:
       0 --> 1 --> 3(decides 0, terminal)
         \-> 2 --> 4(decides 1, terminal)
   plus 5 --> 5 (never decides). *)
let toy_spec =
  let succ = function
    | 0 -> [ 1; 2 ]
    | 1 -> [ 3 ]
    | 2 -> [ 4 ]
    | 3 -> [ 3 ]
    | 4 -> [ 4 ]
    | _ -> [ 5 ]
  in
  let decided = function
    | 3 -> Vset.singleton Value.zero
    | 4 -> Vset.singleton Value.one
    | _ -> Vset.empty
  in
  let terminal i = i = 3 || i = 4 in
  { Valence.succ; key = string_of_int; decided; terminal }

let test_valence_toy () =
  let v = Valence.create toy_spec in
  check "root bivalent" true (Valence.is_bivalent v ~depth:3 0);
  check "1 univalent-0" true
    (Valence.verdict_equal (Valence.classify v ~depth:3 1) (Valence.Univalent Value.zero));
  check "2 univalent-1" true
    (Valence.verdict_equal (Valence.classify v ~depth:3 2) (Valence.Univalent Value.one));
  check "5 unknown" true
    (Valence.verdict_equal (Valence.classify v ~depth:4 5) Valence.Unknown);
  (* Depth 0 at a non-terminal state sees nothing. *)
  check "root at depth 0 unknown" true
    (Valence.verdict_equal (Valence.classify v ~depth:0 0) Valence.Unknown);
  (* Terminal states classify immediately whatever the depth. *)
  check "terminal at depth 0" true
    (Valence.verdict_equal (Valence.classify v ~depth:0 3) (Valence.Univalent Value.zero));
  check "cache populated" true (Valence.cache_entries v > 0)

(* Random finite DAGs: state i has successors among {i+1, ..., n-1};
   states with no successors are terminal with a random decision. *)
let dag_gen =
  QCheck.Gen.(
    let n = 10 in
    list_size (return n) (pair (list_size (int_bound 2) (int_bound (n - 1))) (int_bound 1))
    |> map (fun rows -> Array.of_list rows))

let dag_spec dag =
  let n = Array.length dag in
  let succ i =
    if i >= n then []
    else List.filter (fun j -> j > i && j < n) (fst dag.(i)) |> List.sort_uniq compare
  in
  let terminal i = succ i = [] in
  let decided i = if terminal i then Vset.singleton (snd dag.(i)) else Vset.empty in
  { Valence.succ; key = string_of_int; decided; terminal }

let prop_valence_monotone_depth =
  QCheck.Test.make ~name:"valence: vals monotone in depth" ~count:200
    (QCheck.make dag_gen) (fun dag ->
      let spec = dag_spec dag in
      let v = Valence.create spec in
      List.for_all
        (fun d ->
          Vset.subset (Valence.vals v ~depth:d 0) (Valence.vals v ~depth:(d + 1) 0))
        [ 0; 1; 2; 3; 5 ])

let prop_valence_exhaustive_is_exact =
  QCheck.Test.make ~name:"valence: deep classification matches brute force" ~count:200
    (QCheck.make dag_gen) (fun dag ->
      let spec = dag_spec dag in
      let v = Valence.create spec in
      let n = Array.length dag in
      (* Brute force: reachable terminal decisions from 0. *)
      let reach = Explore.reachable { Explore.succ = spec.Valence.succ; key = spec.Valence.key } ~depth:n 0 in
      let brute =
        List.fold_left (fun acc i -> Vset.union acc (spec.Valence.decided i)) Vset.empty reach
      in
      Vset.equal (Valence.vals v ~depth:n 0) brute)

(* ------------------------------------------------------------------ *)
(* Connectivity *)

let test_connectivity_basics () =
  let near a b = abs (a - b) <= 1 in
  check "connected range" true (Connectivity.connected ~rel:near [ 1; 2; 3; 4 ]);
  check "gap disconnects" false (Connectivity.connected ~rel:near [ 1; 2; 9; 10 ]);
  check_int "two components" 2
    (List.length (Connectivity.components ~rel:near [ 1; 2; 9; 10 ]));
  check_int "diameter" 3 (Option.get (Connectivity.diameter ~rel:near [ 1; 2; 3; 4 ]));
  let path =
    Connectivity.path ~rel:near ~equal:Int.equal [ 1; 2; 3; 4 ] ~src:1 ~dst:4
  in
  Alcotest.(check (list int)) "path" [ 1; 2; 3; 4 ] (Option.get path);
  check "empty connected" true (Connectivity.connected ~rel:near []);
  check "singleton connected" true (Connectivity.connected ~rel:near [ 7 ])

let test_valence_connected () =
  let vals = function
    | 0 -> Vset.of_list [ 0 ]
    | 1 -> Vset.of_list [ 0; 1 ]
    | 2 -> Vset.of_list [ 1 ]
    | _ -> Vset.empty
  in
  check "bridge connects" true (Connectivity.valence_connected ~vals [ 0; 1; 2 ]);
  check "no bridge" false (Connectivity.valence_connected ~vals [ 0; 2 ]);
  check "empty vset isolates" false (Connectivity.valence_connected ~vals [ 0; 3 ])

let test_valence_connected_by_verdict () =
  let classify = function
    | 0 -> Valence.Univalent Value.zero
    | 1 -> Valence.Bivalent
    | 2 -> Valence.Univalent Value.one
    | _ -> Valence.Unknown
  in
  check "bivalent present" true
    (Connectivity.valence_connected_by_verdict ~classify [ 0; 1; 2 ]);
  check "mixed univalent" false (Connectivity.valence_connected_by_verdict ~classify [ 0; 2 ]);
  check "same univalent" true (Connectivity.valence_connected_by_verdict ~classify [ 0; 0 ]);
  check "unknown breaks" false (Connectivity.valence_connected_by_verdict ~classify [ 0; 3 ])

(* Cross-validate the two valence-connectivity formulations on random
   exact instances. *)
let prop_valence_connectivity_agree =
  QCheck.Test.make ~name:"valence connectivity: graph vs verdict shortcut" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 6) (QCheck.make QCheck.Gen.(int_bound 2)))
    (fun codes ->
      (* code 0 = univalent 0, 1 = univalent 1, 2 = bivalent *)
      let vals = function
        | 0 -> Vset.singleton Value.zero
        | 1 -> Vset.singleton Value.one
        | _ -> Vset.of_list [ Value.zero; Value.one ]
      in
      let classify = function
        | 0 -> Valence.Univalent Value.zero
        | 1 -> Valence.Univalent Value.one
        | _ -> Valence.Bivalent
      in
      let a = Connectivity.valence_connected ~vals codes in
      let b = Connectivity.valence_connected_by_verdict ~classify codes in
      a = b)

(* ------------------------------------------------------------------ *)
(* Layering *)

let test_bivalent_chain_toy () =
  (* States (i, b): b bivalent forever if b = true; layers alternate. *)
  let succ (i, b) = if b then [ (i + 1, true); (i + 1, false) ] else [ (i + 1, false) ] in
  let classify (_, b) = if b then Valence.Bivalent else Valence.Univalent Value.zero in
  let chain = Layering.bivalent_chain ~classify ~succ ~length:5 (0, true) in
  check "complete" true chain.Layering.complete;
  check_int "length" 5 (List.length chain.Layering.states);
  check "all bivalent" true (List.for_all snd chain.Layering.states);
  let stuck_chain = Layering.bivalent_chain ~classify ~succ ~length:5 (0, false) in
  check "not bivalent start" false stuck_chain.Layering.complete;
  check_int "empty chain" 0 (List.length stuck_chain.Layering.states)

let test_layering_validate () =
  (* micro: i -> i+1; succ: i -> i+2 (valid, two micro steps) and a bogus
     successor function jumping backwards (invalid). *)
  let micro i = [ i + 1 ] in
  let valid i = [ i + 2 ] in
  let invalid i = [ i - 1 ] in
  check "valid layering" true
    (Layering.validate ~micro ~key:string_of_int ~bound:3 ~states:[ 0; 5 ] valid = []);
  check_int "invalid layering reported" 2
    (List.length (Layering.validate ~micro ~key:string_of_int ~bound:3 ~states:[ 0; 5 ] invalid))

let test_find_bivalent () =
  let classify i = if i = 3 then Valence.Bivalent else Valence.Unknown in
  check "found" true (Layering.find_bivalent ~classify [ 1; 2; 3; 4 ] = Some 3);
  check "absent" true (Layering.find_bivalent ~classify [ 1; 2 ] = None)

let test_labelled_chain () =
  (* Labelled successors: action "a" keeps bivalence, "b" kills it. *)
  let succ i = [ ("b", (i + 1) * 10); ("a", i + 1) ] in
  let classify i = if i mod 10 = 0 then Valence.Univalent Value.zero else Valence.Bivalent in
  let chain = Layering.bivalent_chain_labelled ~classify ~succ ~length:4 1 in
  check "complete" true chain.Layering.complete_l;
  check_int "three steps after start" 3 (List.length chain.Layering.steps);
  check "picked the bivalence-preserving action" true
    (List.for_all (fun (l, _) -> l = "a") chain.Layering.steps);
  let stuck =
    Layering.bivalent_chain_labelled ~classify ~succ:(fun i -> [ ("b", i * 10) ])
      ~length:4 1
  in
  check "stuck without bivalent successor" false stuck.Layering.complete_l;
  check_int "no steps" 0 (List.length stuck.Layering.steps)

(* ------------------------------------------------------------------ *)
(* Report *)

let test_report () =
  let rows =
    [
      Report.check ~id:"X" ~claim:"c" ~params:"p" ~expected:"e" ~measured:"m" true;
      Report.row ~id:"Y" ~claim:"c" ~params:"p" ~expected:"e" ~measured:"m" Report.Info;
    ]
  in
  check "all pass with info" true (Report.all_pass rows);
  let with_fail =
    rows @ [ Report.check ~id:"Z" ~claim:"c" ~params:"p" ~expected:"e" ~measured:"m" false ]
  in
  check "fail detected" false (Report.all_pass with_fail);
  let md = Report.to_markdown with_fail in
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  check "markdown has header" true (String.length md > 0 && String.sub md 0 1 = "|");
  check "markdown mentions FAIL" true (contains md "FAIL");
  check "markdown mentions info" true (contains md "info")

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "layered_core"
    [
      ( "value-vset",
        [
          Alcotest.test_case "value basics" `Quick test_value_basics;
          Alcotest.test_case "vset basics" `Quick test_vset_basics;
          qt prop_vset_union_inter;
          qt prop_vset_roundtrip;
        ] );
      ("pid", [ Alcotest.test_case "pid" `Quick test_pid ]);
      ( "union-find",
        [ Alcotest.test_case "basics" `Quick test_union_find; qt prop_union_find_vs_graph ]
      );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "self loops" `Quick test_graph_self_loops_ignored;
          qt prop_graph_path_valid;
          qt prop_graph_diameter_symmetry;
        ] );
      ( "explore",
        [
          Alcotest.test_case "binary tree" `Quick test_explore_tree;
          Alcotest.test_case "diamond dedup" `Quick test_explore_dedup;
        ] );
      ( "valence",
        [
          Alcotest.test_case "toy automaton" `Quick test_valence_toy;
          qt prop_valence_monotone_depth;
          qt prop_valence_exhaustive_is_exact;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "basics" `Quick test_connectivity_basics;
          Alcotest.test_case "valence connected" `Quick test_valence_connected;
          Alcotest.test_case "verdict shortcut" `Quick test_valence_connected_by_verdict;
          qt prop_valence_connectivity_agree;
        ] );
      ( "layering",
        [
          Alcotest.test_case "bivalent chain" `Quick test_bivalent_chain_toy;
          Alcotest.test_case "validate" `Quick test_layering_validate;
          Alcotest.test_case "find bivalent" `Quick test_find_bivalent;
          Alcotest.test_case "labelled chain" `Quick test_labelled_chain;
        ] );
      ("report", [ Alcotest.test_case "rows and markdown" `Quick test_report ]);
    ]
