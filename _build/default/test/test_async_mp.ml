(* Tests for the asynchronous message-passing engine (permutation
   layering) and the synchronic message-passing variant. *)

open Layered_core
module Mp = Layered_async_mp

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module P = (val Layered_protocols.Mp_floodset.make ~horizon:2)
module E = Mp.Engine.Make (P)

let initial inputs = E.initial ~inputs:(Array.of_list inputs)
let solo p = List.map (fun i -> Mp.Engine.Solo i) p

(* ------------------------------------------------------------------ *)
(* Permutations and schedules *)

let test_permutations () =
  check_int "3! permutations" 6 (List.length (Mp.Engine.permutations [ 1; 2; 3 ]));
  check_int "0! = 1" 1 (List.length (Mp.Engine.permutations []));
  check "all distinct" true
    (let ps = Mp.Engine.permutations [ 1; 2; 3 ] in
     List.length (List.sort_uniq compare ps) = List.length ps)

let test_schedules_enumeration () =
  let ss = E.schedules ~n:3 in
  (* 6 full + 6 drop-last + 6 concurrent (each pair counted once). *)
  check_int "schedule count" 18 (List.length ss);
  check "no duplicates" true (List.length (List.sort_uniq compare ss) = List.length ss)

let test_schedule_validation () =
  let x = initial [ 0; 1; 1 ] in
  Alcotest.check_raises "repeat process"
    (Invalid_argument "Engine: schedule repeats a process") (fun () ->
      ignore (E.apply x (solo [ 1; 1; 2 ])));
  Alcotest.check_raises "too few processes"
    (Invalid_argument "Engine: schedule must involve n or n-1 processes") (fun () ->
      ignore (E.apply x (solo [ 1 ])));
  Alcotest.check_raises "pair in drop-last"
    (Invalid_argument "Engine: concurrent pair only allowed in full schedules")
    (fun () -> ignore (E.apply x [ Mp.Engine.Pair (1, 2) ]))

(* ------------------------------------------------------------------ *)
(* Phase mechanics *)

let test_solo_phase () =
  let x = initial [ 0; 1; 1 ] in
  let y = E.apply x (solo [ 1; 2; 3 ]) in
  check_int "round" 1 y.E.round;
  (* p1 moved first (2 pending), p2 second (1 pending), p3 last (0). *)
  check_int "in transit" 3 (E.in_transit y);
  check_int "mail for p1" 2 (List.length y.E.mail.(0))

let test_message_flow () =
  let x = initial [ 0; 1; 1 ] in
  (* [2;3;1]: p1 moves last, receiving both W-sets, so it knows {0,1}. *)
  let y = E.apply x (solo [ 2; 3; 1 ]) in
  let z = E.apply y (solo [ 2; 3; 1 ]) in
  (* After two full rounds everyone decided (horizon 2): the late mover
     knows the minimum. *)
  check "p1 decided 0" true ((E.decisions z).(0) = Some 0);
  check "everyone decided" true (E.terminal z);
  check "agreement on full schedules" true (Vset.cardinal (E.decided_vset z) = 1)

let test_drop_last_starves () =
  let x = initial [ 0; 1; 1 ] in
  (* Always exclude p1 (the only 0-holder): 1-valent runs. *)
  let y = E.apply (E.apply x (solo [ 2; 3 ])) (solo [ 2; 3 ]) in
  check "p2, p3 decided 1" true
    ((E.decisions y).(1) = Some 1 && (E.decisions y).(2) = Some 1);
  check "p1 undecided" true ((E.decisions y).(0) = None);
  check "not terminal" false (E.terminal y)

let test_mailbox_canonical_order () =
  let x = initial [ 0; 1; 1 ] in
  let y = E.apply x (solo [ 3; 2 ]) in
  (* Both messages to p1: mailbox sorted by source whatever the send
     order. *)
  match y.E.mail.(0) with
  | [ (s1, _); (s2, _) ] ->
      check "sorted by source" true (s1 = 2 && s2 = 3)
  | _ -> Alcotest.fail "expected two messages for p1"

let test_message_conservation () =
  let x = initial [ 0; 1; 1 ] in
  (* After a full round each process consumed its inbox and sent 2: the
     in-transit count equals messages sent after the receiver moved. *)
  let y = E.apply x (solo [ 1; 2; 3 ]) in
  (* p1: receives from nobody (moved first), gets mail from 2 and 3;
     p2: got p1's fresh message, receives mail from 3 after moving;
     p3: got both fresh messages, nothing pending. *)
  check_int "pending p1" 2 (List.length y.E.mail.(0));
  check_int "pending p2" 1 (List.length y.E.mail.(1));
  check_int "pending p3" 0 (List.length y.E.mail.(2))

(* ------------------------------------------------------------------ *)
(* The FLP diamond and pair semantics *)

let test_diamond () =
  let x = initial [ 0; 1; 1 ] in
  List.iter
    (fun p ->
      let front = List.filteri (fun i _ -> i < 2) p in
      let last = List.nth p 2 in
      let lhs = E.apply (E.apply x (solo p)) (solo front) in
      let rhs = E.apply (E.apply x (solo front)) (solo (last :: front)) in
      check "diamond equality" true (E.equal lhs rhs))
    (Mp.Engine.permutations [ 1; 2; 3 ])

let test_pair_blindness () =
  (* Three distinct inputs so that missing one message is visible in the
     value sets. *)
  let x = initial [ 0; 1; 2 ] in
  (* In [1; {2,3}] processes 2 and 3 both see p1's fresh message but not
     each other's. *)
  let y = E.apply x [ Mp.Engine.Solo 1; Mp.Engine.Pair (2, 3) ] in
  check_int "mutual messages pending" 2
    (List.length y.E.mail.(1) + List.length y.E.mail.(2));
  let seq = E.apply x (solo [ 1; 2; 3 ]) in
  (* Sequentially p3 also consumed p2's fresh message, so its state
     differs from the concurrent execution... *)
  check "pair differs from sequence at p3" false
    (String.equal (P.key y.E.locals.(2)) (P.key seq.E.locals.(2)));
  (* ...while p1 and p2 cannot tell the two schedules apart. *)
  check "p1 agrees" true (String.equal (P.key y.E.locals.(0)) (P.key seq.E.locals.(0)));
  check "p2 agrees" true (String.equal (P.key y.E.locals.(1)) (P.key seq.E.locals.(1)))

(* ------------------------------------------------------------------ *)
(* Properties *)

let schedule_arb =
  QCheck.make
    (QCheck.Gen.oneofl (E.schedules ~n:3))

let runs_arb =
  QCheck.make
    QCheck.Gen.(
      pair (list_repeat 3 (int_bound 1))
        (list_size (int_range 0 3) (oneofl (E.schedules ~n:3))))

let prop_sper_layer_deduped =
  QCheck.Test.make ~name:"mp: sper layers deduplicated" ~count:40 runs_arb
    (fun (inputs, schedules) ->
      let x = List.fold_left E.apply (initial inputs) schedules in
      let layer = E.sper x in
      List.length (List.sort_uniq compare (List.map E.key layer)) = List.length layer)

let prop_validity =
  QCheck.Test.make ~name:"mp: decisions are input values" ~count:100 runs_arb
    (fun (inputs, schedules) ->
      let x = List.fold_left E.apply (initial inputs) schedules in
      Vset.subset (E.decided_vset x) (Vset.of_list inputs))

let prop_mail_sorted_invariant =
  QCheck.Test.make ~name:"mp: mailboxes stay source-sorted" ~count:100 runs_arb
    (fun (inputs, schedules) ->
      let x = List.fold_left E.apply (initial inputs) schedules in
      Array.for_all
        (fun box ->
          let srcs = List.map fst box in
          List.sort compare srcs = srcs)
        x.E.mail)

let prop_diamond_general =
  QCheck.Test.make ~name:"mp: diamond holds from random states" ~count:60
    (QCheck.pair runs_arb (QCheck.make (QCheck.Gen.oneofl (Mp.Engine.permutations [ 1; 2; 3 ]))))
    (fun ((inputs, schedules), p) ->
      let x = List.fold_left E.apply (initial inputs) schedules in
      let front = List.filteri (fun i _ -> i < 2) p in
      let last = List.nth p 2 in
      let lhs = E.apply (E.apply x (solo p)) (solo front) in
      let rhs = E.apply (E.apply x (solo front)) (solo (last :: front)) in
      E.equal lhs rhs)

(* ------------------------------------------------------------------ *)
(* Synchronic message-passing variant *)

module PS = (val Layered_protocols.Sync_floodset.make ~t:1)
module ES = Mp.Synchronic.Make (PS)

let s_initial inputs = ES.initial ~inputs:(Array.of_list inputs)
let s_act slow mode = { Mp.Synchronic.slow; mode }

let test_synchronic_clean_round () =
  let x = s_initial [ 0; 1; 1 ] in
  let y = ES.apply x (s_act 1 (Mp.Synchronic.Late 0)) in
  check_int "round" 1 y.ES.round;
  check_int "all delivered" 0 (ES.in_transit y);
  let z = ES.apply y (s_act 1 (Mp.Synchronic.Late 0)) in
  check "decided min" true (Vset.equal (ES.decided_vset z) (Vset.singleton 0))

let test_synchronic_absent () =
  let x = s_initial [ 0; 1; 1 ] in
  let y = ES.apply x (s_act 1 Mp.Synchronic.Absent) in
  (* p1 did not send or receive; p2 and p3 exchanged their messages, and
     their messages to p1 stay in transit. *)
  check "p1 local unchanged" true
    (String.equal (PS.key y.ES.locals.(0)) (PS.key x.ES.locals.(0)));
  check_int "two messages await p1" 2 (ES.in_transit y);
  check "all pending addressed to p1" true
    (List.for_all (fun p -> p.ES.dst = 1) y.ES.transit)

let test_synchronic_late_delivery () =
  let x = s_initial [ 0; 1; 1 ] in
  (* (1, 3): everyone sends; proper processes 2, 3 (both <= 3) miss p1's
     fresh message, which stays in transit... *)
  let y = ES.apply x (s_act 1 (Mp.Synchronic.Late 3)) in
  check_int "p1's two messages pending" 2 (ES.in_transit y);
  check "pending sent at round 1" true (List.for_all (fun p -> p.ES.sent = 1) y.ES.transit);
  (* ...and is delivered in the next round (FIFO: p1's fresh round-2
     messages queue behind and remain). *)
  let z = ES.apply y (s_act 1 (Mp.Synchronic.Late 0)) in
  check "round-1 messages all delivered" true
    (List.for_all (fun p -> p.ES.sent = 2) z.ES.transit)

let test_synchronic_bridge () =
  (* The Lemma 5.3 bridge transfers: x(j,n)(j,A) agrees with
     x(j,A)(j,0) modulo j, given round-oblivious message content. *)
  List.iter
    (fun inputs ->
      let x = s_initial inputs in
      List.iter
        (fun j ->
          let y =
            ES.apply
              (ES.apply x (s_act j (Mp.Synchronic.Late 3)))
              (s_act j Mp.Synchronic.Absent)
          in
          let y' =
            ES.apply
              (ES.apply x (s_act j Mp.Synchronic.Absent))
              (s_act j (Mp.Synchronic.Late 0))
          in
          check "synchronic bridge" true (ES.agree_modulo y y' j))
        [ 1; 2; 3 ])
    [ [ 0; 1; 1 ]; [ 0; 0; 1 ]; [ 1; 0; 1 ] ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  ignore schedule_arb;
  Alcotest.run "layered_async_mp"
    [
      ( "schedules",
        [
          Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "enumeration" `Quick test_schedules_enumeration;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
        ] );
      ( "phases",
        [
          Alcotest.test_case "solo" `Quick test_solo_phase;
          Alcotest.test_case "message flow" `Quick test_message_flow;
          Alcotest.test_case "drop-last starves" `Quick test_drop_last_starves;
          Alcotest.test_case "mailbox order" `Quick test_mailbox_canonical_order;
          Alcotest.test_case "conservation" `Quick test_message_conservation;
        ] );
      ( "diamond",
        [
          Alcotest.test_case "state equality" `Quick test_diamond;
          Alcotest.test_case "pair blindness" `Quick test_pair_blindness;
        ] );
      ( "properties",
        [
          qt prop_sper_layer_deduped;
          qt prop_validity;
          qt prop_mail_sorted_invariant;
          qt prop_diamond_general;
        ] );
      ( "synchronic",
        [
          Alcotest.test_case "clean round" `Quick test_synchronic_clean_round;
          Alcotest.test_case "absent" `Quick test_synchronic_absent;
          Alcotest.test_case "late delivery" `Quick test_synchronic_late_delivery;
          Alcotest.test_case "bridge" `Quick test_synchronic_bridge;
        ] );
    ]
