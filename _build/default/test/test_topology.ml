(* Unit and property tests for layered_topology. *)

open Layered_core
open Layered_topology

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sx assoc = Simplex.of_assoc assoc

(* ------------------------------------------------------------------ *)
(* Vertex / Simplex *)

let test_vertex () =
  let v = Vertex.make 2 1 in
  check "equal" true (Vertex.equal v (Vertex.make 2 1));
  check "pid differs" false (Vertex.equal v (Vertex.make 3 1));
  check "value differs" false (Vertex.equal v (Vertex.make 2 0));
  check "ordered by pid first" true (Vertex.compare (Vertex.make 1 9) (Vertex.make 2 0) < 0)

let test_simplex_basics () =
  let s = sx [ (3, 1); (1, 0); (2, 1) ] in
  check_int "size" 3 (Simplex.size s);
  Alcotest.(check (list int)) "pids sorted" [ 1; 2; 3 ] (Simplex.pids s);
  Alcotest.(check (list int)) "values follow pid order" [ 0; 1; 1 ] (Simplex.values s);
  check "value_of" true (Simplex.value_of s 3 = Some 1);
  check "value_of absent" true (Simplex.value_of s 5 = None);
  check "value_set" true (Vset.equal (Simplex.value_set s) (Vset.of_list [ 0; 1 ]));
  Alcotest.check_raises "duplicate pid" (Invalid_argument "Simplex.of_vertices: duplicate pid")
    (fun () -> ignore (sx [ (1, 0); (1, 1) ]))

let test_simplex_operations () =
  let s = sx [ (1, 0); (2, 1) ] in
  let t = sx [ (2, 1); (3, 0) ] in
  check "subset of itself" true (Simplex.subset s s);
  check "inter" true (Simplex.equal (Simplex.inter s t) (sx [ (2, 1) ]));
  check "compatible union" true
    (match Simplex.compatible_union s t with
    | Some u -> Simplex.equal u (sx [ (1, 0); (2, 1); (3, 0) ])
    | None -> false);
  check "conflicting union" true (Simplex.compatible_union s (sx [ (2, 0) ]) = None);
  check "remove_pid" true (Simplex.equal (Simplex.remove_pid 1 s) (sx [ (2, 1) ]));
  check "restrict" true (Simplex.equal (Simplex.restrict [ 2; 3 ] s) (sx [ (2, 1) ]));
  check_int "faces count" 4 (List.length (Simplex.faces s));
  check "empty face present" true (List.exists Simplex.is_empty (Simplex.faces s))

let simplex_gen =
  QCheck.Gen.(
    list_size (int_range 0 4) (pair (int_range 1 5) (int_bound 2))
    |> map (fun assoc ->
           (* Dedup pids, keeping the first occurrence. *)
           let seen = Hashtbl.create 8 in
           List.filter
             (fun (p, _) ->
               if Hashtbl.mem seen p then false
               else begin
                 Hashtbl.add seen p ();
                 true
               end)
             assoc
           |> Simplex.of_assoc))

let simplex_arb = QCheck.make ~print:(Fmt.to_to_string Simplex.pp) simplex_gen

let prop_faces_are_subsets =
  QCheck.Test.make ~name:"simplex: faces are exactly the sub-simplexes" ~count:200
    simplex_arb (fun s ->
      let faces = Simplex.faces s in
      List.length faces = 1 lsl Simplex.size s
      && List.for_all (fun f -> Simplex.subset f s) faces
      && List.length (List.sort_uniq Simplex.compare faces) = List.length faces)

let prop_inter_commutative =
  QCheck.Test.make ~name:"simplex: inter commutative and bounded" ~count:200
    (QCheck.pair simplex_arb simplex_arb) (fun (s, t) ->
      Simplex.equal (Simplex.inter s t) (Simplex.inter t s)
      && Simplex.size (Simplex.inter s t) <= min (Simplex.size s) (Simplex.size t))

(* ------------------------------------------------------------------ *)
(* Complex *)

let test_complex_membership () =
  let c = Complex.of_simplexes [ sx [ (1, 0); (2, 0) ]; sx [ (2, 0); (3, 1) ] ] in
  check "generator member" true (Complex.mem (sx [ (1, 0); (2, 0) ]) c);
  check "face member" true (Complex.mem (sx [ (2, 0) ]) c);
  check "empty member" true (Complex.mem Simplex.empty c);
  check "non-member" false (Complex.mem (sx [ (1, 0); (3, 1) ]) c);
  check_int "dimension" 2 (Complex.dimension c);
  check_int "2-simplexes" 2 (List.length (Complex.simplexes_of_size c 2));
  (* Distinct vertices: (1,0), (2,0) shared, (3,1). *)
  check_int "1-simplexes" 3 (List.length (Complex.simplexes_of_size c 1))

let test_complex_normalise () =
  let c =
    Complex.of_simplexes [ sx [ (1, 0) ]; sx [ (1, 0); (2, 0) ]; sx [ (1, 0); (2, 0) ] ]
  in
  check_int "contained generators dropped" 1 (List.length (Complex.generators c))

let test_complex_union_subcomplex () =
  let a = Complex.of_simplexes [ sx [ (1, 0); (2, 0) ] ] in
  let b = Complex.of_simplexes [ sx [ (2, 0); (3, 0) ] ] in
  let u = Complex.union a b in
  check "subcomplex left" true (Complex.subcomplex a u);
  check "subcomplex right" true (Complex.subcomplex b u);
  check "not subcomplex" false (Complex.subcomplex u a)

(* ------------------------------------------------------------------ *)
(* Thick connectivity *)

let triangle v = sx [ (1, v); (2, v); (3, v) ]

let test_thick_disjoint () =
  let c = Complex.of_simplexes [ triangle 0; triangle 1 ] in
  check "disjoint triangles not 1-thick" false (Thick.k_thick_connected ~n:3 ~k:1 c);
  check "witness exists" true (Thick.disconnected_witness ~n:3 ~k:1 c <> None);
  (* k = 3 allows empty intersections: everything is connected. *)
  check "3-thick connects anything" true (Thick.k_thick_connected ~n:3 ~k:3 c)

let test_thick_shared_face () =
  let a = sx [ (1, 0); (2, 0); (3, 0) ] in
  let b = sx [ (1, 0); (2, 0); (3, 1) ] in
  let c = Complex.of_simplexes [ a; b ] in
  check "share a 2-face: 1-thick" true (Thick.k_thick_connected ~n:3 ~k:1 c);
  check_int "diameter 1" 1 (Option.get (Thick.diameter ~n:3 ~k:1 c));
  check "no witness" true (Thick.disconnected_witness ~n:3 ~k:1 c = None)

let test_similarity_graph () =
  let c = Complex.of_simplexes [ triangle 0; sx [ (1, 0); (2, 0); (3, 1) ] ] in
  let simplexes, g = Complex.similarity_graph c ~size:3 in
  check_int "two 3-simplexes" 2 (Array.length simplexes);
  check "adjacent" true (Graph.is_connected g)

(* ------------------------------------------------------------------ *)
(* Tasks *)

let test_task_shapes () =
  let t = Task.consensus ~n:3 ~values:[ 0; 1 ] in
  check_int "input assignments" 8 (List.length (Task.input_assignments t));
  check_int "consensus outputs" 2 (List.length (Complex.generators t.Task.outputs));
  let k2 = Task.k_set_agreement ~n:3 ~k:2 ~values:[ 0; 1; 2 ] in
  check_int "kset inputs" 27 (List.length (Task.input_assignments k2));
  (* 3-assignments over 3 values with <= 2 distinct = 27 - 6 all-distinct *)
  check_int "kset outputs" 21 (List.length (Complex.simplexes_of_size k2.Task.outputs 3))

let test_task_delta_within_outputs () =
  List.iter
    (fun task ->
      List.iter
        (fun s ->
          check
            (Printf.sprintf "%s delta within outputs" task.Task.name)
            true
            (Complex.subcomplex (task.Task.delta s) task.Task.outputs))
        (Task.input_assignments task))
    [
      Task.consensus ~n:3 ~values:[ 0; 1 ];
      Task.weak_consensus ~n:3;
      Task.identity ~n:3 ~values:[ 0; 1 ];
      Task.fixed_value ~n:3;
      Task.election ~n:3;
      Task.k_set_agreement ~n:3 ~k:2 ~values:[ 0; 1 ];
    ]

let test_task_delta_unanimous () =
  let t = Task.consensus ~n:3 ~values:[ 0; 1 ] in
  let all0 = sx [ (1, 0); (2, 0); (3, 0) ] in
  check_int "unanimous input forces one output" 1
    (List.length (Complex.simplexes_of_size (t.Task.delta all0) 3))

(* ------------------------------------------------------------------ *)
(* Solvability *)

let test_solvability_consensus () =
  let t = Task.consensus ~n:3 ~values:[ 0; 1 ] in
  let cond = Solvability.passes_necessary_condition t in
  let frag = Solvability.forced_fragmentation t in
  check "consensus fails condition" false cond.Solvability.ok;
  check "consensus fragments" true frag.Solvability.ok;
  check_int "two forced corners" 2 (List.length (Solvability.forced_outputs t))

let test_solvability_identity () =
  let t = Task.identity ~n:3 ~values:[ 0; 1 ] in
  check "identity passes" true (Solvability.passes_necessary_condition t).Solvability.ok;
  check "identity does not fragment" false
    (Solvability.forced_fragmentation t).Solvability.ok

(* ------------------------------------------------------------------ *)
(* Covering *)

let test_covering_membership () =
  let c0 = Complex.of_simplexes [ triangle 0 ] in
  let c1 = Complex.of_simplexes [ triangle 1 ] in
  let cover = Covering.of_complexes c0 c1 in
  check "partial all-0 in O0" true (cover.Covering.mem0 (sx [ (1, 0); (2, 0) ]));
  check "partial all-0 not in O1" false (cover.Covering.mem1 (sx [ (1, 0); (2, 0) ]));
  check "is_covering positive" true (Covering.is_covering cover [ triangle 0; triangle 1 ]);
  check "is_covering misses mixed" false
    (Covering.is_covering cover [ triangle 0; sx [ (1, 0); (2, 1); (3, 1) ] ]);
  check "is_covering needs both sides" false (Covering.is_covering cover [ triangle 0 ])

let test_covering_engine_toy () =
  (* Explicit successor map where terminal states carry full output
     simplexes: 0 branches to a 0-deciding and a 1-deciding terminal. *)
  let outputs = [| Simplex.empty; triangle 0; triangle 1 |] in
  let succ = function 0 -> [ 1; 2 ] | i -> [ i ] in
  let terminal i = i > 0 in
  let spec =
    { Covering.succ; key = string_of_int; terminal; output = (fun i -> outputs.(i)) }
  in
  let cover =
    Covering.of_complexes
      (Complex.of_simplexes [ triangle 0 ])
      (Complex.of_simplexes [ triangle 1 ])
  in
  let engine = Covering.create spec cover in
  check "root covering-bivalent" true
    (Valence.verdict_equal (Covering.classify engine ~depth:2 0) Valence.Bivalent);
  check "leaf univalent" true
    (Valence.verdict_equal (Covering.classify engine ~depth:2 1)
       (Valence.Univalent Value.zero))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "layered_topology"
    [
      ( "simplex",
        [
          Alcotest.test_case "vertex" `Quick test_vertex;
          Alcotest.test_case "basics" `Quick test_simplex_basics;
          Alcotest.test_case "operations" `Quick test_simplex_operations;
          qt prop_faces_are_subsets;
          qt prop_inter_commutative;
        ] );
      ( "complex",
        [
          Alcotest.test_case "membership" `Quick test_complex_membership;
          Alcotest.test_case "normalise" `Quick test_complex_normalise;
          Alcotest.test_case "union/subcomplex" `Quick test_complex_union_subcomplex;
        ] );
      ( "thick",
        [
          Alcotest.test_case "disjoint" `Quick test_thick_disjoint;
          Alcotest.test_case "shared face" `Quick test_thick_shared_face;
          Alcotest.test_case "similarity graph" `Quick test_similarity_graph;
        ] );
      ( "task",
        [
          Alcotest.test_case "shapes" `Quick test_task_shapes;
          Alcotest.test_case "delta within outputs" `Quick test_task_delta_within_outputs;
          Alcotest.test_case "unanimous forcing" `Quick test_task_delta_unanimous;
        ] );
      ( "solvability",
        [
          Alcotest.test_case "consensus" `Quick test_solvability_consensus;
          Alcotest.test_case "identity" `Quick test_solvability_identity;
        ] );
      ( "covering",
        [
          Alcotest.test_case "membership" `Quick test_covering_membership;
          Alcotest.test_case "engine" `Quick test_covering_engine_toy;
        ] );
    ]
