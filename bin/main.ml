(* Command-line driver: run the paper-reproduction experiments.

   Usage:
     layered list              enumerate experiments
     layered run E7 [E9 ...]   run selected experiments
     layered all               run everything and summarise
     layered all --markdown    emit the EXPERIMENTS.md table body
     layered verify -p early -n 4 -t 2
                               exhaustively verify a consensus protocol
     layered layers -m mp -n 3 -d 2
                               state-growth / layer-size sweep
     layered chain -m iis -n 3 -l 6
                               print an ever-bivalent adversary strategy
     layered graph con0 -n 3   DOT export of an analysed structure *)

open Layered_core
open Layered_analysis
module Pool = Layered_runtime.Pool
module Stats = Layered_runtime.Stats
module Budget = Layered_runtime.Budget
module Frontier = Layered_runtime.Frontier

let print_rows ~markdown rows =
  if markdown then print_string (Report.to_markdown rows)
  else Format.printf "%a" Report.pp_table rows

(* Counter snapshots go to stderr so that --stats never perturbs the
   (byte-identical across job counts) stdout streams. *)
let print_stats stats = if stats then Format.eprintf "%a" Stats.pp (Stats.snapshot ())

(* An interrupted run always dumps the counters: they are the only
   record of how far the cancelled work got. *)
let finish_stats ~stats budget =
  print_stats (stats || Budget.tripped budget = Some Budget.Interrupted)

(* Exit-code contract: 0 all checks passed, 1 a check failed (a
   counterexample is definitive even on a truncated run), 3 truncated
   with no failure (a clean verdict from a partial exploration is not a
   pass). *)
let exit_trunc = 3

(* Checkpoint flags shared by the run/all/layers commands.  All resume
   diagnostics go to stderr: stdout of a resumed run must stay
   byte-identical to an uninterrupted one. *)
type ckpt_opts = { ckpt_dir : string option; ckpt_every : int; ckpt_resume : bool }

(* [--resume] without a directory has nothing to resume from; reject it
   rather than silently running cold.  Exit 2 = usage error (0/1/3 keep
   their meanings on a resumed run). *)
let ckpt_invalid c =
  if c.ckpt_resume && c.ckpt_dir = None then begin
    Format.eprintf "layered: --resume requires --checkpoint-dir.@.";
    true
  end
  else false

let ckpt_hint budget c =
  match (Budget.tripped budget, c.ckpt_dir) with
  | Some _, Some dir ->
      Format.eprintf "checkpoint: resumable snapshots in %s (rerun with --resume)@." dir
  | _ -> ()

let run_experiments ids markdown jobs stats budget ckpt simgraph =
  Simgraph.set_default simgraph;
  let experiments =
    match ids with
    | [] -> Registry.all
    | ids ->
        List.map
          (fun id ->
            match Registry.find id with
            | Some e -> e
            | None -> Fmt.failwith "unknown experiment %s (try `layered list`)" id)
          ids
  in
  if ckpt_invalid ckpt then 2
  else begin
  let checkpoint =
    Option.map
      (fun dir -> { Registry.dir; resume = ckpt.ckpt_resume })
      ckpt.ckpt_dir
  in
  Stats.reset ();
  let results =
    Pool.with_pool ~jobs ~budget (fun pool ->
        Registry.run_all ~pool ~budget ?checkpoint experiments)
  in
  let rows =
    List.concat_map
      (fun ((e : Registry.experiment), rows) ->
        Format.printf "== %s: %s@." e.id e.title;
        print_rows ~markdown rows;
        Format.printf "@.";
        rows)
      results
  in
  (match Budget.tripped budget with
  | Some reason ->
      Format.printf "TRUNCATED: budget exhausted (%a); the report above is partial.@."
        Budget.pp_reason reason
  | None -> ());
  ckpt_hint budget ckpt;
  finish_stats ~stats budget;
  if not (Report.all_pass rows) then begin
    Format.printf "FAILURES among %d checks.@." (List.length rows);
    1
  end
  else
    match Budget.tripped budget with
    | Some _ -> exit_trunc
    | None ->
        Format.printf "All %d checks passed.@." (List.length rows);
        0
  end

open Cmdliner

let markdown =
  Arg.(value & flag & info [ "markdown" ] ~doc:"Print result tables as markdown.")

(* Bounds are rejected at parse time, with the offending flag named by
   cmdliner, rather than surfacing later as an exception (or a hang)
   from deep inside an engine. *)
let bounded_int ~min ~what =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= min -> Ok n
    | Ok n -> Error (`Msg (Printf.sprintf "%s must be at least %d, got %d" what min n))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let positive_float ~what =
  let parse s =
    match Arg.conv_parser Arg.float s with
    | Ok x when x > 0.0 -> Ok x
    | Ok x -> Error (`Msg (Printf.sprintf "%s must be positive, got %g" what x))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.float)

let jobs_arg =
  Arg.(
    value
    & opt (bounded_int ~min:1 ~what:"jobs") 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for parallel execution (1 = serial; results are identical).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print the runtime counter snapshot to stderr when done.")

(* Ablation switch for the similarity-graph construction: the bucketed
   builder is the default; the all-pairs reference stays reachable so a
   regression can be bisected from the CLI (stdout is byte-identical
   either way — asserted in CI). *)
let simgraph_arg =
  Arg.(
    value
    & opt
        (enum [ ("bucketed", Simgraph.Bucketed); ("pairwise", Simgraph.Pairwise) ])
        Simgraph.Bucketed
    & info [ "simgraph" ] ~docv:"BUILDER"
        ~doc:
          "Similarity-graph builder: $(b,bucketed) (signature bucketing, the \
           default) or $(b,pairwise) (the all-pairs reference, for ablation). \
           Output is identical; only construction cost differs.")

(* Symmetry reduction is an opt-in because it changes which states are
   materialised (orbit representatives) even though the printed report
   is byte-identical; the flag is recorded in checkpoint meta so
   snapshots never cross the setting. *)
let symmetry_arg =
  Arg.(
    value & flag
    & info [ "symmetry" ]
        ~doc:
          "Quotient the BFS frontier by role-respecting process-renaming \
           symmetry (currently the $(b,iis) model, whose partition actions \
           are renaming-closed and whose local states are pid-free).  One \
           representative per orbit is explored; reported rows are \
           byte-identical to the unreduced sweep (orbit-weighted counts), \
           but strictly fewer states are materialised — see the $(b,orbit \
           hits) and $(b,states expanded) counters under $(b,--stats).  \
           Other models either embed process ids in their state parts or \
           use prefix-blocked omission actions that leave partial orbits \
           reachable, where the quotient is unsound; the flag is a no-op \
           there.  Checkpoints record the setting and refuse to resume \
           across it.")

(* Every budgeted command gets a Budget.t even when no limit flag is
   given: the token doubles as the SIGINT cancellation point, and an
   unlimited budget costs nothing on the hot paths. *)
let budget_term =
  let timeout =
    Arg.(
      value
      & opt (some (positive_float ~what:"timeout")) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Wall-clock budget in seconds; on expiry the run stops at the next \
             safepoint and reports the completed prefix (exit code 3).")
  in
  let max_states =
    Arg.(
      value
      & opt (some (bounded_int ~min:1 ~what:"max-states")) None
      & info [ "max-states" ] ~docv:"N"
          ~doc:
            "Stop after visiting N states.  Applied at level boundaries in parallel \
             sweeps, so the truncation point is identical for every $(b,--jobs) count.")
  in
  let max_mem =
    Arg.(
      value
      & opt (some (bounded_int ~min:1 ~what:"max-mem")) None
      & info [ "max-mem" ] ~docv:"MB"
          ~doc:
            "Stop when the OCaml heap exceeds MB megabytes (sampled watermark, not a \
             hard cap).")
  in
  let mem_soft =
    Arg.(
      value
      & opt (some (bounded_int ~min:1 ~what:"mem-soft")) None
      & info [ "mem-soft" ] ~docv:"MB"
          ~doc:
            "Soft memory watermark in megabytes, below $(b,--max-mem): crossing it \
             triggers graceful degradation (one GC compaction, then — with \
             $(b,--spill-dir) on commands that support it — spill-to-disk and \
             backpressure) before the hard cap can trip.")
  in
  let make timeout_s max_states max_memory_mb soft_memory_mb =
    Budget.create ?timeout_s ?max_states ?max_memory_mb ?soft_memory_mb ()
  in
  Term.(const make $ timeout $ max_states $ max_mem $ mem_soft)

let ckpt_term =
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Write crash-safe, CRC-checksummed snapshots of run progress into DIR \
             (created if missing; each save is a new generation, written atomically). \
             $(b,run)/$(b,all) snapshot each experiment's rows as it completes; \
             $(b,layers) snapshots the BFS level prefix.")
  in
  let every =
    Arg.(
      value
      & opt (bounded_int ~min:1 ~what:"checkpoint-every") 1
      & info [ "checkpoint-every" ] ~docv:"K"
          ~doc:
            "Snapshot every K completed BFS levels (always at level boundaries, so \
             snapshot content is identical across $(b,--jobs)).  Used by $(b,layers); \
             experiment runs snapshot per experiment regardless.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the newest intact generation in $(b,--checkpoint-dir) \
             (torn or corrupt generations are skipped).  Work not covered by a \
             snapshot is re-run; output and exit codes are identical to an \
             uninterrupted run.")
  in
  Term.(
    const (fun ckpt_dir ckpt_every ckpt_resume -> { ckpt_dir; ckpt_every; ckpt_resume })
    $ dir $ every $ resume)

let list_cmd =
  let doc = "List available experiments." in
  let f () =
    List.iter
      (fun (e : Registry.experiment) -> Format.printf "%-4s %s@." e.id e.title)
      Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const f $ const ())

let run_cmd =
  let doc = "Run selected experiments (by id, e.g. E7)." in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_experiments $ ids $ markdown $ jobs_arg $ stats_arg $ budget_term
      $ ckpt_term $ simgraph_arg)

let all_cmd =
  let doc = "Run every experiment." in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const run_experiments $ const [] $ markdown $ jobs_arg $ stats_arg $ budget_term
      $ ckpt_term $ simgraph_arg)

let n_arg =
  Arg.(
    value
    & opt (bounded_int ~min:1 ~what:"n") 3
    & info [ "n" ] ~docv:"N" ~doc:"Number of processes (at least 1).")

let t_arg =
  Arg.(
    value
    & opt (bounded_int ~min:0 ~what:"t") 1
    & info [ "t" ] ~docv:"T" ~doc:"Resilience / horizon (at least 0).")

let verify_cmd =
  let doc =
    "Exhaustively verify a synchronous consensus protocol against every adversary of the \
     chosen failure model."
  in
  let protocol =
    Arg.(
      value
      & opt
          (enum
             [
               ("floodset", `Floodset); ("eig", `Eig); ("early", `Early);
               ("clean", `Clean); ("uniform", `Uniform); ("coordinator", `Coordinator);
             ])
          `Floodset
      & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
          ~doc:"floodset | eig | early | clean | uniform | coordinator")
  in
  let model =
    Arg.(
      value
      & opt (enum [ ("crash", `Crash); ("omission", `Omission); ("general", `General) ]) `Crash
      & info [ "model" ] ~docv:"MODEL" ~doc:"crash | omission | general (omission)")
  in
  let rounds =
    Arg.(value & opt (some int) None & info [ "r"; "rounds" ] ~docv:"R"
           ~doc:"Rounds to explore (default: the protocol's decision round + 1).")
  in
  let max_new =
    Arg.(value & opt int 2 & info [ "m"; "max-new" ] ~docv:"M"
           ~doc:"Maximum fresh failures per round.")
  in
  let f protocol model n t rounds max_new budget =
    let protocol, default_rounds =
      match protocol with
      | `Floodset -> (Layered_protocols.Sync_floodset.make ~t, t + 2)
      | `Eig -> (Layered_protocols.Sync_eig.make ~t, t + 2)
      | `Early -> (Layered_protocols.Sync_early.make ~t, t + 2)
      | `Clean -> (Layered_protocols.Sync_clean.make ~t, t + 2)
      | `Uniform -> (Layered_protocols.Sync_uniform.make ~t, t + 3)
      | `Coordinator -> (Layered_protocols.Sync_coordinator.make ~t, (3 * (t + 1)) + 1)
    in
    let rounds = Option.value rounds ~default:default_rounds in
    let ok, status =
      Budget.with_sigint budget (fun () ->
          match model with
          | `Crash ->
              let r = Consensus_check.check ~protocol ~n ~t ~rounds ~max_new ~budget () in
              Format.printf "%a@." Consensus_check.pp_result r;
              ( r.Consensus_check.agreement_ok && r.Consensus_check.validity_ok
                && r.Consensus_check.termination_ok,
                r.Consensus_check.status )
          | `Omission | `General ->
              let general = model = `General in
              let r =
                Omission_check.check ~protocol ~n ~t ~rounds ~max_new ~general ~budget ()
              in
              Format.printf "%a@." Omission_check.pp_result r;
              ( r.Omission_check.agreement_ok && r.Omission_check.validity_ok
                && r.Omission_check.termination_ok,
                r.Omission_check.status ))
    in
    if not ok then 1 else match status with Budget.Complete -> 0 | _ -> exit_trunc
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const f $ protocol $ model $ n_arg $ t_arg $ rounds $ max_new $ budget_term)

let layers_cmd =
  let doc = "Sweep a substrate: reachable states and layer sizes per depth." in
  let model =
    Arg.(
      value
      & opt (enum (List.map (fun m -> (m, m)) Sweep.models)) "sync"
      & info [ "m"; "model" ] ~docv:"MODEL"
          ~doc:"mobile | sync | sm | mp | smp | iis")
  in
  let depth =
    Arg.(
      value
      & opt (bounded_int ~min:0 ~what:"depth") 2
      & info [ "d"; "depth" ] ~docv:"D" ~doc:"Layers to explore (at least 0).")
  in
  let spill_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "spill-dir" ] ~docv:"DIR"
          ~doc:
            "Out-of-core exploration: under memory pressure (past $(b,--mem-soft), \
             or past $(b,--max-mem) with no soft watermark set), spill cold dedup \
             shards and the undelivered level prefix into CRC-validated segment \
             files under DIR and evict them from the heap.  Output bytes are \
             identical to an in-core run; a lost segment restarts the sweep \
             in-core.")
  in
  let f model n t depth jobs stats budget ckpt spill_dir symmetry =
    if ckpt_invalid ckpt then 2
    else begin
      let checkpoint =
        Option.map
          (fun dir ->
            { Sweep.dir; every = ckpt.ckpt_every; resume = ckpt.ckpt_resume })
          ckpt.ckpt_dir
      in
      let spill =
        Option.map
          (fun dir ->
            { Frontier.spill_dir = dir; spill_mode = Frontier.Pressure })
          spill_dir
      in
      Canon.set_enabled symmetry;
      Stats.reset ();
      match
        Pool.with_pool ~jobs ~budget (fun pool ->
            Sweep.run ~pool ~budget ?checkpoint ?spill ~model ~n ~t ~depth ())
      with
      | exception Layered_runtime.Checkpoint.Symmetry_mismatch
            { saved; requested } ->
          (* Structured refusal: the snapshot's committed keys belong to
             the other dedup discipline; resuming would misread them. *)
          Format.eprintf
            "layered: error=checkpoint-symmetry-mismatch saved=%s \
             requested=%s@.layered: rerun with the matching --symmetry \
             setting or point --checkpoint-dir elsewhere.@."
            (if saved then "on" else "off")
            (if requested then "on" else "off");
          2
      | sweep ->
          Format.printf "%a" Sweep.pp sweep;
          ckpt_hint budget ckpt;
          finish_stats ~stats budget;
          (match sweep.Sweep.status with
          | Budget.Complete -> 0
          | _ -> exit_trunc)
    end
  in
  Cmd.v (Cmd.info "layers" ~doc)
    Term.(
      const f $ model $ n_arg $ t_arg $ depth $ jobs_arg $ stats_arg $ budget_term
      $ ckpt_term $ spill_dir $ symmetry_arg)

let chain_cmd =
  let doc =
    "Construct an ever-bivalent run (Theorem 4.2) and print the adversary's strategy."
  in
  let model =
    Arg.(
      value
      & opt (enum (List.map (fun m -> (m, m)) Sweep.models)) "mobile"
      & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"mobile | sync | sm | mp | smp | iis")
  in
  let length =
    Arg.(
      value
      & opt (bounded_int ~min:2 ~what:"length") 6
      & info [ "l"; "length" ] ~docv:"L" ~doc:"Chain length in states (at least 2).")
  in
  let f model n t length =
    Format.printf "%a" Chains.pp (Chains.run ~model ~n ~t ~length);
    0
  in
  Cmd.v (Cmd.info "chain" ~doc) Term.(const f $ model $ n_arg $ t_arg $ length)

let graph_cmd =
  let doc = "Emit a Graphviz (DOT) rendering of an analysed structure." in
  let what =
    Arg.(
      required
      & pos 0 (some (enum [ ("con0", `Con0); ("layer", `Layer); ("task", `Task) ])) None
      & info [] ~docv:"WHAT" ~doc:"con0 | layer | task")
  in
  let task =
    Arg.(value & opt string "consensus"
         & info [ "task" ] ~docv:"TASK"
             ~doc:"consensus | election | weak-consensus | identity | kset2")
  in
  let f what n t task =
    let dot =
      match what with
      | `Con0 -> Export.con0_similarity ~n ~t
      | `Layer -> Export.st_layer ~n ~t
      | `Task -> Export.task_thickness ~name:task ~n
    in
    print_string dot;
    0
  in
  Cmd.v (Cmd.info "graph" ~doc) Term.(const f $ what $ n_arg $ t_arg $ task)

let oracles_cmd =
  let doc = "Run the differential/metamorphic runtime oracles." in
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME"
          ~doc:"Oracle names to run (default: all); see $(b,layered oracles) output.")
  in
  let f names jobs =
    (match
       List.filter (fun n -> Oracle.find n = None) names
     with
    | [] -> ()
    | unknown ->
        Format.eprintf "unknown oracle(s): %s@." (String.concat ", " unknown));
    let names = match names with [] -> None | ns -> Some ns in
    let rows = Oracle.rows ~jobs ?names () in
    Format.printf "%a" Report.pp_table rows;
    if rows <> [] && Report.all_pass rows then 0 else 1
  in
  Cmd.v (Cmd.info "oracles" ~doc) Term.(const f $ names $ jobs_arg)

let chaos_cmd =
  let doc =
    "Seeded fault-injection trials: every armed fault must be caught by its paired \
     oracles, every disarmed control must pass."
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Base seed; trial $(i,i) arms with seed+i.")
  in
  let trials =
    Arg.(
      value
      & opt (bounded_int ~min:1 ~what:"trials") 60
      & info [ "trials" ] ~docv:"N"
          ~doc:
            "Number of trials, assigned round-robin over the (site, oracle) pairing \
             table; fewer trials than pairs leaves cells uncovered, which fails.")
  in
  let faults =
    let site_conv =
      let parse s =
        match Layered_runtime.Fault.site_of_name s with
        | Some site -> Ok site
        | None ->
            Error
              (`Msg
                 (Printf.sprintf "unknown fault site %S (known: %s)" s
                    (String.concat ", "
                       (List.map Layered_runtime.Fault.site_name
                          Layered_runtime.Fault.all))))
      in
      Arg.conv (parse, fun ppf s -> Layered_runtime.Fault.pp_site ppf s)
    in
    Arg.(
      value
      & opt (list site_conv) Layered_runtime.Fault.all
      & info [ "faults" ] ~docv:"SITE,..."
          ~doc:"Comma-separated fault sites to inject (default: all).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as one JSON object.")
  in
  let f seed trials sites jobs json =
    let r = Chaos.run ~jobs ~sites ~seed ~trials () in
    if json then print_string (Chaos.to_json r)
    else Format.printf "@[<v>%a@]@." Chaos.pp r;
    if Chaos.ok r then 0 else 1
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const f $ seed $ trials $ faults $ jobs_arg $ json)

let classify_cmd =
  let doc =
    "Classify the valence of every binary initial state of a substrate (the \
     one-shot twin of the daemon's classify-valence query)."
  in
  let model =
    Arg.(
      value
      & opt (enum (List.map (fun m -> (m, m)) Sweep.models)) "sync"
      & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"mobile | sync | sm | mp | smp | iis")
  in
  let depth =
    Arg.(
      value
      & opt (bounded_int ~min:0 ~what:"depth") 3
      & info [ "d"; "depth" ] ~docv:"D" ~doc:"Exploration depth (at least 0).")
  in
  let f model n t depth stats =
    Stats.reset ();
    Format.printf "%a" Valence_query.pp (Valence_query.run ~model ~n ~t ~depth ());
    print_stats stats;
    0
  in
  Cmd.v (Cmd.info "classify" ~doc)
    Term.(const f $ model $ n_arg $ t_arg $ depth $ stats_arg)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let doc =
    "Run the persistent verification daemon: line-delimited JSON queries over a \
     Unix-domain socket, shared valence and result caches, admission control."
  in
  let queue_cap =
    Arg.(
      value
      & opt (bounded_int ~min:1 ~what:"queue-cap") 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"Shed compute requests queued more than N deep (overloaded response).")
  in
  let max_heap =
    Arg.(
      value
      & opt (bounded_int ~min:1 ~what:"max-heap") 1024
      & info [ "max-heap" ] ~docv:"MB"
          ~doc:
            "Shed new compute requests while the OCaml heap exceeds MB megabytes; \
             admitted requests truncate at the same watermark.")
  in
  let request_timeout =
    Arg.(
      value
      & opt float 10.
      & info [ "request-timeout" ] ~docv:"SECS"
          ~doc:
            "Per-request deadline for sweep and run-experiment queries (exit 3 in \
             the response when it trips); 0 disables it.")
  in
  let idle_timeout =
    Arg.(
      value
      & opt float 30.
      & info [ "idle-timeout" ] ~docv:"SECS"
          ~doc:
            "Slow-loris deadline: drop a connection holding a partial request \
             line longer than SECS (structured timeout error first); 0 disables \
             it.")
  in
  let spill_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "spill-dir" ] ~docv:"DIR"
          ~doc:
            "Warm-cache durability: reload the shared caches from DIR at \
             startup and spill them back through the checkpoint format, \
             periodically and on drain.")
  in
  let spill_every =
    Arg.(
      value
      & opt (bounded_int ~min:0 ~what:"spill-every") 32
      & info [ "spill-every" ] ~docv:"N"
          ~doc:
            "With --spill-dir, spill the caches after every N responses \
             (0 = on drain only).")
  in
  let spill_keep =
    Arg.(
      value
      & opt (bounded_int ~min:1 ~what:"spill-keep")
          Layered_serve.Spill.keep_generations
      & info [ "spill-keep" ] ~docv:"N"
          ~doc:
            "With --spill-dir, keep the N newest spill generations on disk \
             after each save (at least 1).")
  in
  let client_cap =
    Arg.(
      value
      & opt (bounded_int ~min:0 ~what:"client-cap") 16
      & info [ "client-cap" ] ~docv:"N"
          ~doc:
            "Shed compute requests from a connection that already has N of \
             its own in flight (overloaded response, reason per-client); 0 \
             disables the cap.")
  in
  let supervise =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Fork the daemon under a supervisor: abnormal exits respawn it \
             (same socket, warm caches via --spill-dir) after a jittered \
             exponential backoff; a crash loop trips a circuit breaker. \
             SIGTERM/SIGINT to the supervisor drain the daemon cleanly.")
  in
  let max_restarts =
    Arg.(
      value
      & opt (bounded_int ~min:0 ~what:"max-restarts") 5
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:
            "Circuit breaker for --supervise: give up after more than N \
             crashes inside a 30 s sliding window.")
  in
  let pid_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "pid-file" ] ~docv:"PATH"
          ~doc:
            "With --supervise, rewrite PATH with the daemon pid after every \
             (re)spawn.")
  in
  let f socket jobs stats queue_cap max_heap request_timeout client_cap
      idle_timeout spill_dir spill_every spill_keep supervise max_restarts
      pid_file =
    let cfg =
      {
        Layered_serve.Server.socket_path = socket;
        jobs;
        queue_cap;
        max_heap_mb = max_heap;
        request_timeout_s = request_timeout;
        per_client_cap = client_cap;
        idle_timeout_s = idle_timeout;
        spill_dir;
        spill_every;
        spill_keep;
        stats;
        install_signals = true;
      }
    in
    if not supervise then Layered_serve.Server.run cfg
    else
      let outcome =
        Layered_serve.Supervisor.run_forked
          ~config:
            {
              Layered_serve.Supervisor.default with
              max_restarts;
              pid_file;
            }
          (fun () -> Layered_serve.Server.run cfg)
      in
      outcome.Layered_serve.Supervisor.exit_code
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const f $ socket_arg $ jobs_arg $ stats_arg $ queue_cap $ max_heap
      $ request_timeout $ client_cap $ idle_timeout $ spill_dir $ spill_every
      $ spill_keep $ supervise $ max_restarts $ pid_file)

let serve_client_cmd =
  let doc =
    "Send request lines from stdin to a running daemon and print each response \
     line to stdout (a minimal client for scripts and smoke tests)."
  in
  let output_only =
    Arg.(
      value & flag
      & info [ "output-only" ]
          ~doc:
            "Print the decoded $(b,output) field of ok responses instead of raw \
             response lines (diffs directly against the one-shot CLI); any error \
             or overloaded response fails the client.")
  in
  let timeout =
    Arg.(
      value
      & opt (positive_float ~what:"timeout") 30.
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:"Per-request deadline, reconnects and replays included.")
  in
  let retry_overloaded =
    Arg.(
      value & flag
      & info [ "retry-overloaded" ]
          ~doc:
            "When the daemon sheds a request, sleep its retry-after hint and \
             re-send instead of failing.")
  in
  let pipeline =
    Arg.(
      value & flag
      & info [ "pipeline" ]
          ~doc:
            "Send every request line from stdin before reading any response \
             (one response line expected per request, $(b,--timeout) covers \
             the whole batch).  Exercises the daemon's admission and \
             fair-share paths, which a one-at-a-time exchange never fills; \
             forgoes the crash-replay resilience of the default mode.")
  in
  let f socket output_only timeout_s retry_overloaded pipeline =
    let module Client = Layered_serve.Client in
    let retry = { Client.default_retry with retry_overloaded } in
    match Client.connect ~retry socket with
    | Error e ->
        Format.eprintf "layered serve-client: %s@." e;
        1
    | Ok c ->
        let module Protocol = Layered_serve.Protocol in
        let bail msg =
          Format.eprintf "layered serve-client: %s@." msg;
          1
        in
        (* [k] continues on success so raw and decoded printing share the
           response handling in both exchange modes. *)
        let render resp ~k =
          if not output_only then begin
            print_endline resp;
            k ()
          end
          else
            match Protocol.decode_response resp with
            | Ok (Protocol.Resp_ok { output; _ }) ->
                print_string output;
                k ()
            | Ok (Protocol.Resp_error { code; message; _ }) ->
                bail
                  (Printf.sprintf "error response [%s]: %s"
                     (Protocol.error_code_name code) message)
            | Ok (Protocol.Resp_overloaded { reason; _ }) ->
                bail
                  (Printf.sprintf "overloaded (%s)"
                     (match reason with
                     | `Queue -> "queue-depth"
                     | `Memory -> "memory"
                     | `Client -> "per-client"))
            | Error e -> bail ("bad response line: " ^ e)
        in
        let rec loop () =
          match input_line stdin with
          | exception End_of_file -> 0
          | line -> (
              (* resilient exchange: a daemon crash mid-response reconnects
                 and replays this line under what is left of the deadline *)
              match Client.request_raw c line ~timeout_s with
              | Error e -> bail (Client.error_message e)
              | Ok resp -> render resp ~k:loop)
        in
        let pipelined () =
          let rec slurp acc =
            match input_line stdin with
            | exception End_of_file -> List.rev acc
            | line -> slurp (line :: acc)
          in
          let reqs = slurp [] in
          let rec send_all = function
            | [] -> Ok ()
            | line :: rest -> (
                match Client.send c line with
                | Ok () -> send_all rest
                | Error e -> Error e)
          in
          match send_all reqs with
          | Error e -> bail e
          | Ok () -> (
              match Client.read_lines c ~n:(List.length reqs) ~timeout_s with
              | Error e -> bail e
              | Ok resps ->
                  let rec each = function
                    | [] -> 0
                    | resp :: rest -> render resp ~k:(fun () -> each rest)
                  in
                  each resps)
        in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (if pipeline then pipelined else loop)
  in
  Cmd.v (Cmd.info "serve-client" ~doc)
    Term.(
      const f $ socket_arg $ output_only $ timeout $ retry_overloaded $ pipeline)

let () =
  (* The serve oracles live in layered_serve (which depends on the
     analysis library, not vice versa); registration here makes them
     visible to `layered oracles` and `layered chaos`. *)
  Layered_serve.Serve_oracles.register ();
  let doc = "layered-analysis reproduction of Moses & Rajsbaum (PODC 1998)" in
  let info = Cmd.info "layered" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            all_cmd;
            verify_cmd;
            layers_cmd;
            chain_cmd;
            graph_cmd;
            classify_cmd;
            oracles_cmd;
            chaos_cmd;
            serve_cmd;
            serve_client_cmd;
          ]))
