(* Unit tests for the durable checkpoint layer: format roundtrip,
   generation numbering, torn-write/corrupt-CRC rollback, and
   checkpoint/resume equivalence of the parallel frontier BFS. *)

open Layered_runtime
module Ckpt = Checkpoint

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Scratch directories *)

let tmp_counter = ref 0

let with_tmp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "layered-test-ckpt-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun x -> rm (Filename.concat path x)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

(* The on-disk name format is part of the documented contract
   ([<name>.g%06d.ckpt]); the corruption tests lean on it. *)
let gen_path dir name g = Filename.concat dir (Printf.sprintf "%s.g%06d.ckpt" name g)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  data

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* A crash mid-write: only a prefix of the file made it to disk. *)
let tear path =
  let data = read_file path in
  write_file path (String.sub data 0 (String.length data / 2))

(* Silent media corruption: one body byte flipped, length intact. *)
let flip_byte path =
  let data = read_file path in
  let b = Bytes.of_string data in
  let i = Bytes.length b - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  write_file path (Bytes.to_string b)

let meta ?budget progress = Ckpt.make_meta ?budget ~progress ()

(* ------------------------------------------------------------------ *)
(* Format roundtrip and generations *)

let test_roundtrip () =
  with_tmp_dir (fun dir ->
      let b = Budget.create ~timeout_s:60.0 ~max_states:100 () in
      Budget.charge b 7;
      let saved =
        Ckpt.save ~dir ~name:"rt" ~meta:(meta ~budget:b 3) ~payload:"the payload"
      in
      check_int "first save is generation 1" 1 saved.Ckpt.generation;
      check "on-disk size covers header + body" true (saved.Ckpt.bytes > 16);
      match Ckpt.load_latest ~dir ~name:"rt" with
      | None -> Alcotest.fail "roundtrip load failed"
      | Some l ->
          Alcotest.(check string) "payload" "the payload" l.Ckpt.payload;
          check_int "generation" 1 l.Ckpt.generation;
          check_int "rejected" 0 l.Ckpt.rejected;
          check_int "version" Ckpt.current_version l.Ckpt.meta.Ckpt.version;
          check_int "progress" 3 l.Ckpt.meta.Ckpt.progress;
          check_int "states charged" 7 l.Ckpt.meta.Ckpt.states_charged;
          (match l.Ckpt.meta.Ckpt.deadline_remaining_s with
          | Some s -> check "deadline remaining within budget" true (s > 0. && s <= 60.)
          | None -> Alcotest.fail "expected a recorded deadline");
          check "no fault armed at save" true (l.Ckpt.meta.Ckpt.fault = None))

let test_meta_captures_armed_fault () =
  Fault.arm ~seed:99 Fault.Torn_checkpoint_write;
  let m = Fun.protect ~finally:Fault.disarm (fun () -> meta 0) in
  check "armed site and seed recorded" true
    (m.Ckpt.fault = Some ("torn_checkpoint_write", 99))

let test_generations_accumulate () =
  with_tmp_dir (fun dir ->
      List.iter
        (fun g -> ignore (Ckpt.save ~dir ~name:"acc" ~meta:(meta g) ~payload:(string_of_int g)))
        [ 1; 2; 3 ];
      Alcotest.(check (list int)) "generations" [ 1; 2; 3 ] (Ckpt.generations ~dir ~name:"acc");
      (match Ckpt.load_latest ~dir ~name:"acc" with
      | Some l ->
          check_int "newest wins" 3 l.Ckpt.generation;
          Alcotest.(check string) "newest payload" "3" l.Ckpt.payload
      | None -> Alcotest.fail "load failed");
      (* names are namespaced: a sibling name sees nothing *)
      check "sibling name isolated" true (Ckpt.load_latest ~dir ~name:"other" = None);
      (* no .tmp litter once saves returned *)
      Array.iter
        (fun f -> check ("no tmp litter: " ^ f) false (Filename.check_suffix f ".tmp"))
        (Sys.readdir dir))

let test_missing_dir () =
  check "absent directory loads None" true
    (Ckpt.load_latest ~dir:"/nonexistent/layered-ckpt" ~name:"x" = None)

(* prune keeps the newest [keep] generations, deletes the rest, and
   never touches sibling names *)
let test_prune () =
  with_tmp_dir (fun dir ->
      List.iter
        (fun g ->
          ignore (Ckpt.save ~dir ~name:"p" ~meta:(meta g) ~payload:(string_of_int g)))
        [ 1; 2; 3; 4 ];
      ignore (Ckpt.save ~dir ~name:"sib" ~meta:(meta 0) ~payload:"s");
      let deleted = Ckpt.prune ~dir ~name:"p" ~keep:2 in
      check_int "two generations deleted" 2 deleted;
      Alcotest.(check (list int)) "newest two survive" [ 3; 4 ]
        (Ckpt.generations ~dir ~name:"p");
      check "sibling untouched" true (Ckpt.generations ~dir ~name:"sib" = [ 1 ]);
      (match Ckpt.load_latest ~dir ~name:"p" with
      | Some l -> Alcotest.(check string) "newest payload survives" "4" l.Ckpt.payload
      | None -> Alcotest.fail "load after prune failed");
      (* keep is clamped to at least one generation *)
      ignore (Ckpt.prune ~dir ~name:"p" ~keep:0);
      check "keep 0 still keeps the newest" true
        (Ckpt.generations ~dir ~name:"p" = [ 4 ]))

(* ------------------------------------------------------------------ *)
(* Rollback: torn and corrupt generations are rejected, newest intact
   generation wins *)

let test_torn_latest_rolls_back () =
  with_tmp_dir (fun dir ->
      ignore (Ckpt.save ~dir ~name:"t" ~meta:(meta 1) ~payload:"good");
      ignore (Ckpt.save ~dir ~name:"t" ~meta:(meta 2) ~payload:"newer");
      tear (gen_path dir "t" 2);
      Alcotest.(check (list (pair int bool)))
        "scan flags the torn generation"
        [ (1, true); (2, false) ]
        (Ckpt.scan ~dir ~name:"t");
      match Ckpt.load_latest ~dir ~name:"t" with
      | Some l ->
          check_int "rolled back to generation 1" 1 l.Ckpt.generation;
          check_int "one newer generation rejected" 1 l.Ckpt.rejected;
          Alcotest.(check string) "intact payload" "good" l.Ckpt.payload
      | None -> Alcotest.fail "rollback load failed")

let test_corrupt_crc_rolls_back () =
  with_tmp_dir (fun dir ->
      ignore (Ckpt.save ~dir ~name:"c" ~meta:(meta 1) ~payload:"good");
      ignore (Ckpt.save ~dir ~name:"c" ~meta:(meta 2) ~payload:"newer");
      flip_byte (gen_path dir "c" 2);
      (match Ckpt.load_latest ~dir ~name:"c" with
      | Some l ->
          check_int "rolled back to generation 1" 1 l.Ckpt.generation;
          check_int "one newer generation rejected" 1 l.Ckpt.rejected
      | None -> Alcotest.fail "rollback load failed");
      (* every generation damaged: the loader reports nothing usable *)
      flip_byte (gen_path dir "c" 1);
      check "all-corrupt loads None" true (Ckpt.load_latest ~dir ~name:"c" = None))

(* The same contract driven by the injection sites inside [save]: three
   saves under an armed fault tear or corrupt exactly one generation
   (the seed-derived firing index is < 3), and the loader returns the
   newest generation that survived. *)
let fault_site_rolls_back site () =
  with_tmp_dir (fun dir ->
      Fault.arm ~seed:7 site;
      Fun.protect ~finally:Fault.disarm (fun () ->
          List.iter
            (fun g ->
              ignore
                (Ckpt.save ~dir ~name:"f" ~meta:(meta g) ~payload:(string_of_int g)))
            [ 1; 2; 3 ]);
      check_int "the fault fired exactly once" 1 (Fault.fired ());
      let scan = Ckpt.scan ~dir ~name:"f" in
      check_int "exactly one generation damaged" 1
        (List.length (List.filter (fun (_, ok) -> not ok) scan));
      match Ckpt.load_latest ~dir ~name:"f" with
      | Some l ->
          Alcotest.(check string)
            "loaded payload matches its generation"
            (string_of_int l.Ckpt.generation)
            l.Ckpt.payload;
          check "loaded generation validated" true
            (List.assoc l.Ckpt.generation scan)
      | None -> Alcotest.fail "no intact generation survived")

(* ------------------------------------------------------------------ *)
(* Frontier checkpoint/resume *)

(* A graph big enough that a 40-state cap truncates well before depth. *)
let succ x = if x >= 500 then [] else [ ((3 * x) + 1) mod 601; (x + 7) mod 601 ]
let key = string_of_int

let save_sink ?budget dir name =
  fun (snap : int Frontier.snapshot) ->
   ignore
     (Ckpt.save ~dir ~name
        ~meta:(meta ?budget (List.length snap.Frontier.levels))
        ~payload:(Marshal.to_string snap []))

let load_snap dir name =
  match Ckpt.load_latest ~dir ~name with
  | None -> Alcotest.fail "no snapshot on disk"
  | Some l -> (Marshal.from_string l.Ckpt.payload 0 : int Frontier.snapshot)

(* Interrupt a capped run, resume it unbudgeted: the resumed levels must
   be byte-identical to an uninterrupted traversal, at jobs 1 and 4. *)
let test_frontier_resume_equivalence () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          with_tmp_dir (fun dir ->
              let reference = (Frontier.levels pool ~succ ~key ~depth:20 1).Budget.value in
              let b = Budget.create ~max_states:40 () in
              let o =
                Frontier.levels ~budget:b
                  ~checkpoint:{ Frontier.every = 1; save = save_sink dir "bfs" }
                  pool ~succ ~key ~depth:20 1
              in
              (match o.Budget.status with
              | Budget.Truncated _ -> ()
              | Budget.Complete -> Alcotest.fail "expected the cap to truncate");
              let resumed =
                Frontier.levels ~resume:(load_snap dir "bfs") pool ~succ ~key ~depth:20 1
              in
              check
                (Printf.sprintf "resumed run completes at jobs=%d" jobs)
                true
                (resumed.Budget.status = Budget.Complete);
              Alcotest.(check (list (list string)))
                (Printf.sprintf "resumed levels equal uninterrupted at jobs=%d" jobs)
                (List.map (List.map key) reference)
                (List.map (List.map key) resumed.Budget.value))))
    [ 1; 4 ]

(* Snapshot content — delivered levels and committed keys — is identical
   across job counts: a checkpoint taken at jobs=4 resumes a jobs=1 run
   and vice versa. *)
let test_snapshot_identical_across_jobs () =
  let capture jobs =
    Pool.with_pool ~jobs (fun pool ->
        let snaps = ref [] in
        let save (snap : int Frontier.snapshot) =
          snaps := (snap.Frontier.levels, snap.Frontier.committed) :: !snaps
        in
        ignore
          (Frontier.levels ~checkpoint:{ Frontier.every = 1; save } pool ~succ ~key
             ~depth:6 1);
        List.rev !snaps)
  in
  let s1 = capture 1 and s4 = capture 4 in
  check_int "same snapshot count" (List.length s1) (List.length s4);
  List.iter2
    (fun (l1, c1) (l4, c4) ->
      Alcotest.(check (list (list int))) "levels identical" l1 l4;
      Alcotest.(check (list string)) "committed keys identical" c1 c4)
    s1 s4

(* Re-imposing the interrupted run's consumption makes the cap trip at
   the same boundary: a resumed capped run reproduces the truncated
   levels and status exactly. *)
let test_cap_recharge_determinism () =
  Pool.with_pool ~jobs:2 (fun pool ->
      with_tmp_dir (fun dir ->
          let b = Budget.create ~max_states:40 () in
          let interrupted =
            Frontier.levels ~budget:b
              ~checkpoint:{ Frontier.every = 1; save = save_sink ~budget:b dir "cap" }
              pool ~succ ~key ~depth:20 1
          in
          let loaded = Option.get (Ckpt.load_latest ~dir ~name:"cap") in
          let snap = (Marshal.from_string loaded.Ckpt.payload 0 : int Frontier.snapshot) in
          let b' = Budget.create ~max_states:40 () in
          Budget.charge b' loaded.Ckpt.meta.Ckpt.states_charged;
          let resumed = Frontier.levels ~budget:b' ~resume:snap pool ~succ ~key ~depth:20 1 in
          check "same truncation status" true
            (resumed.Budget.status = interrupted.Budget.status);
          Alcotest.(check (list (list string)))
            "same truncated levels"
            (List.map (List.map key) interrupted.Budget.value)
            (List.map (List.map key) resumed.Budget.value)))

(* A snapshot of a completed traversal resumes to an immediate,
   identical completion — the idempotence the CLI's --resume relies on
   when a run was interrupted after its final flush. *)
let test_resume_of_complete_run () =
  Pool.with_pool ~jobs:2 (fun pool ->
      with_tmp_dir (fun dir ->
          let full =
            Frontier.levels
              ~checkpoint:{ Frontier.every = 1; save = save_sink dir "done" }
              pool ~succ ~key ~depth:6 1
          in
          let resumed =
            Frontier.levels ~resume:(load_snap dir "done") pool ~succ ~key ~depth:6 1
          in
          check "still complete" true (resumed.Budget.status = Budget.Complete);
          Alcotest.(check (list (list string)))
            "levels unchanged"
            (List.map (List.map key) full.Budget.value)
            (List.map (List.map key) resumed.Budget.value)))

let () =
  Alcotest.run "layered_checkpoint"
    [
      ( "format",
        [
          Alcotest.test_case "roundtrip with meta" `Quick test_roundtrip;
          Alcotest.test_case "meta records the armed fault" `Quick
            test_meta_captures_armed_fault;
          Alcotest.test_case "generations accumulate" `Quick test_generations_accumulate;
          Alcotest.test_case "missing directory" `Quick test_missing_dir;
          Alcotest.test_case "prune keeps the newest" `Quick test_prune;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "torn latest generation" `Quick test_torn_latest_rolls_back;
          Alcotest.test_case "corrupt CRC" `Quick test_corrupt_crc_rolls_back;
          Alcotest.test_case "injected torn write" `Quick
            (fault_site_rolls_back Fault.Torn_checkpoint_write);
          Alcotest.test_case "injected CRC corruption" `Quick
            (fault_site_rolls_back Fault.Corrupt_checkpoint_crc);
        ] );
      ( "resume",
        [
          Alcotest.test_case "equivalence at jobs 1 and 4" `Quick
            test_frontier_resume_equivalence;
          Alcotest.test_case "snapshot content identical across jobs" `Quick
            test_snapshot_identical_across_jobs;
          Alcotest.test_case "cap recharge is deterministic" `Quick
            test_cap_recharge_determinism;
          Alcotest.test_case "resume of a complete run" `Quick test_resume_of_complete_run;
        ] );
    ]
