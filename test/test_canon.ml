(* Tests for the symmetry-quotient machinery: Canon's canonical forms
   (permutation invariance, idempotence, role respect, orbit-size
   weights) as QCheck properties, plus end-to-end regressions — the
   --symmetry IIS sweep reports byte-identically to the unreduced sweep
   at jobs 1 and 4 while expanding strictly fewer states, and a
   checkpoint written under one symmetry setting refuses to resume under
   the other. *)

open Layered_core
module Sweep = Layered_analysis.Sweep
module Pool = Layered_runtime.Pool
module Stats = Layered_runtime.Stats
module Ckpt = Layered_runtime.Checkpoint

let check = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Generators: a role array (header slot -1, small role ids), a part
   array over a tiny alphabet (so multiplicity collisions are common),
   and a seed from which a role-respecting permutation is derived. *)

let tiny_string =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'c') (int_bound 2))

let case_gen =
  QCheck.Gen.(
    int_range 1 5 >>= fun n ->
    array_size (return n) (int_bound 2) >>= fun roles_tail ->
    array_size (return n) tiny_string >>= fun parts_tail ->
    tiny_string >>= fun header ->
    int >>= fun seed ->
    return
      ( Array.append [| -1 |] roles_tail,
        Array.append [| header |] parts_tail,
        seed ))

let case_print (roles, parts, seed) =
  Printf.sprintf "roles=[%s] parts=[%s] seed=%d"
    (String.concat ";" (Array.to_list (Array.map string_of_int roles)))
    (String.concat ";" (Array.to_list parts))
    seed

let case_arb = QCheck.make ~print:case_print case_gen

(* Positions 1.. grouped by role (the header never moves). *)
let classes_of roles =
  let tbl = Hashtbl.create 8 in
  for i = Array.length roles - 1 downto 1 do
    let c = try Hashtbl.find tbl roles.(i) with Not_found -> [] in
    Hashtbl.replace tbl roles.(i) (i :: c)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []

(* A role-respecting permutation: Fisher-Yates within each class. *)
let role_respecting_perm st roles =
  let perm = Array.init (Array.length roles) Fun.id in
  List.iter
    (fun members ->
      let m = Array.of_list members in
      for i = Array.length m - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = perm.(m.(i)) in
        perm.(m.(i)) <- perm.(m.(j));
        perm.(m.(j)) <- tmp
      done)
    (classes_of roles);
  perm

let permute parts p = Array.init (Array.length parts) (fun i -> parts.(p.(i)))

let prop_canon_perm_invariant =
  QCheck.Test.make ~name:"canon: key invariant under role-respecting renaming"
    ~count:500 case_arb (fun (roles, parts, seed) ->
      let st = Random.State.make [| seed |] in
      let p = role_respecting_perm st roles in
      String.equal (Canon.key ~roles parts) (Canon.key ~roles (permute parts p)))

let prop_canon_idempotent =
  QCheck.Test.make ~name:"canon: sort is idempotent" ~count:500 case_arb
    (fun (roles, parts, _) ->
      let canonical, _ = Canon.sort ~roles parts in
      fst (Canon.sort ~roles canonical) = canonical)

let prop_canon_witness_role_respecting =
  QCheck.Test.make
    ~name:"canon: witness is a role-respecting permutation onto the canonical form"
    ~count:500 case_arb (fun (roles, parts, _) ->
      let canonical, w = Canon.sort ~roles parts in
      let len = Array.length parts in
      w.(0) = 0
      && List.sort compare (Array.to_list w) = List.init len Fun.id
      && Array.for_all Fun.id (Array.init len (fun i -> roles.(w.(i)) = roles.(i)))
      && Canon.apply_witness ~witness:w parts = canonical)

(* Orbit enumerated the slow way: all role-respecting permutations,
   distinct images counted. *)
let all_perms_of_class members =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l)))
          l
  in
  List.map (fun p -> List.combine members p) (perms members)

let prop_canon_weight_is_orbit_size =
  QCheck.Test.make ~name:"canon: weight equals enumerated orbit size" ~count:200
    case_arb (fun (roles, parts, _) ->
      let assignments =
        List.fold_left
          (fun acc cls ->
            List.concat_map
              (fun partial -> List.map (fun a -> a @ partial) (all_perms_of_class cls))
              acc)
          [ [] ] (classes_of roles)
      in
      let image assignment =
        let p = Array.init (Array.length parts) Fun.id in
        List.iter (fun (i, j) -> p.(i) <- j) assignment;
        Canon.render (permute parts p)
      in
      let distinct = List.sort_uniq compare (List.map image assignments) in
      List.length distinct = Canon.weight ~roles parts)

(* ------------------------------------------------------------------ *)
(* End-to-end: the quotiented IIS sweep is report-equivalent.          *)

let with_symmetry sym f =
  Canon.set_enabled sym;
  Fun.protect ~finally:(fun () -> Canon.set_enabled false) f

let render sweep = Format.asprintf "%a" Sweep.pp sweep

let sweep_leg ~pool ?checkpoint ~sym () =
  with_symmetry sym (fun () ->
      let before = Stats.snapshot () in
      let s = Sweep.run ~pool ?checkpoint ~model:"iis" ~n:4 ~t:1 ~depth:2 () in
      let d = Stats.diff (Stats.snapshot ()) before in
      (render s, d.Stats.states_expanded))

let test_symmetry_report_identical () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let off, off_states = sweep_leg ~pool ~sym:false () in
          let on, on_states = sweep_leg ~pool ~sym:true () in
          check_string (Printf.sprintf "jobs=%d report byte-identical" jobs) off on;
          check
            (Printf.sprintf "jobs=%d strictly fewer states (%d < %d)" jobs
               on_states off_states)
            true (on_states < off_states)))
    [ 1; 4 ]

let test_symmetry_noop_on_sync () =
  (* Prefix-blocked omissions leave partial orbits reachable, so the
     sync substrate must ignore the flag entirely. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let leg sym =
        with_symmetry sym (fun () ->
            let before = Stats.snapshot () in
            let s = Sweep.run ~pool ~model:"sync" ~n:3 ~t:1 ~depth:2 () in
            let d = Stats.diff (Stats.snapshot ()) before in
            (render s, d.Stats.states_expanded))
      in
      let off, off_states = leg false in
      let on, on_states = leg true in
      check_string "sync report unchanged" off on;
      Alcotest.(check int) "sync states unchanged" off_states on_states)

(* ------------------------------------------------------------------ *)
(* Checkpoints refuse to cross the symmetry setting.                   *)

let tmp_counter = ref 0

let with_tmp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "canon-ckpt-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_checkpoint_symmetry_refusal () =
  with_tmp_dir (fun dir ->
      Pool.with_pool ~jobs:1 (fun pool ->
          let write = { Sweep.dir; every = 1; resume = false } in
          let resume = { Sweep.dir; every = 1; resume = true } in
          ignore (sweep_leg ~pool ~checkpoint:write ~sym:true ());
          Alcotest.check_raises "unreduced resume of a --symmetry snapshot"
            (Ckpt.Symmetry_mismatch { saved = true; requested = false })
            (fun () -> ignore (sweep_leg ~pool ~checkpoint:resume ~sym:false ()));
          (* The matching setting resumes fine and reports identically. *)
          let resumed, _ = sweep_leg ~pool ~checkpoint:resume ~sym:true () in
          let fresh, _ = sweep_leg ~pool ~sym:true () in
          check_string "matching resume reports identically" fresh resumed))

let test_checkpoint_meta_records_symmetry () =
  let m_off = Ckpt.make_meta ~progress:0 () in
  let m_on = Ckpt.make_meta ~symmetry:true ~progress:0 () in
  check "default meta is unreduced" false m_off.Ckpt.symmetry;
  check "symmetry recorded" true m_on.Ckpt.symmetry

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "layered_canon"
    [
      ( "canon",
        [
          qt prop_canon_perm_invariant;
          qt prop_canon_idempotent;
          qt prop_canon_witness_role_respecting;
          qt prop_canon_weight_is_orbit_size;
        ] );
      ( "symmetry-sweep",
        [
          Alcotest.test_case "report identical, fewer states" `Quick
            test_symmetry_report_identical;
          Alcotest.test_case "no-op on sync" `Quick test_symmetry_noop_on_sync;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "cross-setting resume refused" `Quick
            test_checkpoint_symmetry_refusal;
          Alcotest.test_case "meta records the flag" `Quick
            test_checkpoint_meta_records_symmetry;
        ] );
    ]
