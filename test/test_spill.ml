(* Unit tests for the out-of-core frontier: the Spill segment tier, the
   memory-pressure ladder, and spilled-vs-in-core byte identity. *)

open Layered_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tmp_counter = Atomic.make 0

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_tmp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "layered-spill-test-%d-%d" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1))
  in
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Spill segment tier *)

let test_spill_member_exact () =
  with_tmp_dir (fun dir ->
      let s = Spill.create ~dir in
      let keys = List.init 200 (fun i -> Printf.sprintf "key-%04d" (i * 2)) in
      check "validated write" true (Spill.spill_keys s keys);
      check_int "one segment" 1 (Spill.segments s);
      check_int "keys counted" 200 (Spill.spilled_keys s);
      List.iter
        (fun k -> check ("member " ^ k) true (Spill.member s k))
        keys;
      (* absent keys interleave the present ones, so fingerprint misses
         and full-probe misses both occur *)
      List.iter
        (fun i ->
          let k = Printf.sprintf "key-%04d" ((i * 2) + 1) in
          check ("not member " ^ k) false (Spill.member s k))
        (List.init 200 Fun.id);
      check "unrelated key absent" false (Spill.member s "zzz");
      Spill.discard s)

let test_spill_all_keys_ordered () =
  with_tmp_dir (fun dir ->
      let s = Spill.create ~dir in
      let seg1 = [ "a"; "b"; "c" ] and seg2 = [ "d"; "e" ] in
      check "seg1" true (Spill.spill_keys s seg1);
      check "seg2" true (Spill.spill_keys s seg2);
      Alcotest.(check (list string))
        "oldest segment first" (seg1 @ seg2) (Spill.all_keys s);
      check "empty spill is a no-op" true (Spill.spill_keys s []);
      check_int "no empty segment registered" 2 (Spill.segments s);
      Spill.discard s)

let test_spill_prefix_roundtrip () =
  with_tmp_dir (fun dir ->
      let s = Spill.create ~dir in
      let p1 = Marshal.to_string [ [ 1 ]; [ 2; 3 ] ] []
      and p2 = Marshal.to_string [ [ 4; 5; 6 ] ] [] in
      check "chunk 1" true (Spill.spill_prefix s p1);
      check "chunk 2" true (Spill.spill_prefix s p2);
      Alcotest.(check (list string))
        "payloads back, oldest first" [ p1; p2 ]
        (Spill.prefix_payloads s);
      Spill.discard s)

let test_spill_discard_removes_files () =
  with_tmp_dir (fun dir ->
      let s = Spill.create ~dir in
      check "write" true (Spill.spill_keys s [ "x"; "y" ]);
      check "prefix" true (Spill.spill_prefix s "payload");
      check "files on disk" true (Array.length (Sys.readdir dir) > 0);
      Spill.discard s;
      check_int "files removed" 0 (Array.length (Sys.readdir dir));
      check_int "segments forgotten" 0 (Spill.segments s))

(* A failed write keeps the data out of the registered tier.  The
   injector fires at a seed-derived visit ordinal < 3, so some seed in
   0..9 fires on the very first write. *)
let test_spill_write_failure_keeps_core () =
  with_tmp_dir (fun dir ->
      let fired_once = ref false in
      let seeds = List.init 10 Fun.id in
      List.iter
        (fun seed ->
          if not !fired_once then begin
            let s = Spill.create ~dir in
            Fault.arm ~seed Fault.Frontier_spill_enospc;
            let before = Stats.snapshot () in
            let ok =
              Fun.protect ~finally:Fault.disarm (fun () ->
                  Spill.spill_keys s [ "k1"; "k2" ])
            in
            let d = Stats.diff (Stats.snapshot ()) before in
            if Fault.fired () > 0 then begin
              fired_once := true;
              check "failed write returns false" false ok;
              check_int "nothing registered" 0 (Spill.segments s);
              check "member stays false" false (Spill.member s "k1");
              check_int "failure counted" 1 d.Stats.spill_write_failures
            end;
            Spill.discard s
          end)
        seeds;
      check "some seed fired on the first write" true !fired_once)

(* A torn write (fault after the rename) must fail read-back validation,
   stay unregistered, and leave debris on disk for post-mortems. *)
let test_spill_torn_write_leaves_debris () =
  with_tmp_dir (fun dir ->
      let fired_once = ref false in
      List.iter
        (fun seed ->
          if not !fired_once then begin
            let s = Spill.create ~dir in
            Fault.arm ~seed Fault.Frontier_spill_torn;
            let ok =
              Fun.protect ~finally:Fault.disarm (fun () ->
                  Spill.spill_keys s [ "k1"; "k2"; "k3" ])
            in
            if Fault.fired () > 0 then begin
              fired_once := true;
              check "torn write returns false" false ok;
              check_int "nothing registered" 0 (Spill.segments s);
              let debris =
                List.filter
                  (fun (_, intact) -> not intact)
                  (Checkpoint.scan_dir ~dir)
              in
              check "torn debris on disk, rejected by validation" true
                (debris <> [])
            end;
            Spill.discard s;
            Array.iter
              (fun e -> try Sys.remove (Filename.concat dir e) with _ -> ())
              (Sys.readdir dir)
          end)
        (List.init 10 Fun.id);
      check "some seed fired on the first write" true !fired_once)

(* ------------------------------------------------------------------ *)
(* Out-of-core frontier: spilled and in-core runs are byte-identical *)

let dag_bound = 120
let dag_succ x = if x >= dag_bound then [] else [ x + 1; x + 2; x + 3 ]
let dag_key = string_of_int
let dag_depth = 60
let forced dir = { Frontier.spill_dir = dir; spill_mode = Frontier.Always }

let dag_levels (o : int list list Budget.outcome) =
  List.map (List.map dag_key) o.Budget.value

let test_spilled_equals_in_core () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          with_tmp_dir (fun dir ->
              let reference =
                Frontier.levels pool ~succ:dag_succ ~key:dag_key
                  ~depth:dag_depth 0
              in
              let before = Stats.snapshot () in
              let spilled =
                Frontier.levels ~spill:(forced dir) pool ~succ:dag_succ
                  ~key:dag_key ~depth:dag_depth 0
              in
              let d = Stats.diff (Stats.snapshot ()) before in
              Alcotest.(check (list (list string)))
                (Printf.sprintf "byte-identical at jobs=%d" jobs)
                (dag_levels reference) (dag_levels spilled);
              check "segments were written" true (d.Stats.spill_segments > 0);
              check "keys were evicted" true (d.Stats.spill_keys > 0);
              check_int "no degraded writes" 0 d.Stats.spill_write_failures;
              check_int "no restarts" 0 d.Stats.spill_restarts;
              check_int "spill dir left clean" 0
                (Array.length (Sys.readdir dir)))))
    [ 1; 4 ]

let test_spilled_checkpoint_snapshots_identical () =
  Pool.with_pool ~jobs:2 (fun pool ->
      with_tmp_dir (fun dir ->
          let capture snaps (snap : int Frontier.snapshot) =
            snaps := (snap.Frontier.levels, snap.Frontier.committed) :: !snaps
          in
          let in_core = ref [] and spilled = ref [] in
          let run ?spill sink =
            Frontier.levels ?spill
              ~checkpoint:{ Frontier.every = 3; save = capture sink }
              pool ~succ:dag_succ ~key:dag_key ~depth:dag_depth 0
          in
          let a = run in_core in
          let b = run ~spill:(forced dir) spilled in
          check "both complete" true
            (a.Budget.status = Budget.Complete
            && b.Budget.status = Budget.Complete);
          check "same snapshot count" true
            (List.length !in_core = List.length !spilled);
          check "snapshot contents identical under spill" true
            (!in_core = !spilled)))

let test_spill_resume_composes () =
  Pool.with_pool ~jobs:2 (fun pool ->
      with_tmp_dir (fun dir ->
          let name = "resume" in
          let reference =
            Frontier.levels pool ~succ:dag_succ ~key:dag_key ~depth:dag_depth 0
          in
          let save (snap : int Frontier.snapshot) =
            ignore
              (Checkpoint.save ~dir ~name
                 ~meta:
                   (Checkpoint.make_meta
                      ~progress:(List.length snap.Frontier.levels)
                      ())
                 ~payload:(Marshal.to_string snap []))
          in
          let budget = Budget.create ~max_states:60 () in
          let interrupted =
            Frontier.levels ~budget ~spill:(forced dir)
              ~checkpoint:{ Frontier.every = 1; save }
              pool ~succ:dag_succ ~key:dag_key ~depth:dag_depth 0
          in
          check "interrupted" true
            (interrupted.Budget.status <> Budget.Complete);
          let loaded = Option.get (Checkpoint.load_latest ~dir ~name) in
          let snap =
            (Marshal.from_string loaded.Checkpoint.payload 0
              : int Frontier.snapshot)
          in
          let resumed =
            Frontier.levels ~resume:snap ~spill:(forced dir) pool
              ~succ:dag_succ ~key:dag_key ~depth:dag_depth 0
          in
          check "resumed completes" true
            (resumed.Budget.status = Budget.Complete);
          Alcotest.(check (list (list string)))
            "resumed spilled run equals uninterrupted in-core run"
            (dag_levels reference) (dag_levels resumed)))

(* A lost segment rolls the traversal back to in-core re-exploration:
   output is still byte-identical and the restart is counted. *)
let test_segment_lost_restarts_in_core () =
  Pool.with_pool ~jobs:2 (fun pool ->
      with_tmp_dir (fun dir ->
          let reference =
            Frontier.levels pool ~succ:dag_succ ~key:dag_key ~depth:dag_depth 0
          in
          let before = Stats.snapshot () in
          Fault.arm ~seed:0 Fault.Frontier_reload_corrupt;
          let spilled =
            Fun.protect ~finally:Fault.disarm (fun () ->
                Frontier.levels ~spill:(forced dir) pool ~succ:dag_succ
                  ~key:dag_key ~depth:dag_depth 0)
          in
          let d = Stats.diff (Stats.snapshot ()) before in
          check "fault fired" true (Fault.fired () > 0);
          Alcotest.(check (list (list string)))
            "restarted run equals the in-core run" (dag_levels reference)
            (dag_levels spilled);
          check_int "restart counted" 1 d.Stats.spill_restarts))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "layered_spill"
    [
      ( "segments",
        [
          Alcotest.test_case "member is exact" `Quick test_spill_member_exact;
          Alcotest.test_case "all_keys oldest-first" `Quick
            test_spill_all_keys_ordered;
          Alcotest.test_case "prefix roundtrip" `Quick
            test_spill_prefix_roundtrip;
          Alcotest.test_case "discard removes files" `Quick
            test_spill_discard_removes_files;
          Alcotest.test_case "failed write keeps data in core" `Quick
            test_spill_write_failure_keeps_core;
          Alcotest.test_case "torn write rejected, debris kept" `Quick
            test_spill_torn_write_leaves_debris;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "spilled = in-core (jobs 1 and 4)" `Quick
            test_spilled_equals_in_core;
          Alcotest.test_case "checkpoint snapshots identical under spill"
            `Quick test_spilled_checkpoint_snapshots_identical;
          Alcotest.test_case "resume composes with live segments" `Quick
            test_spill_resume_composes;
          Alcotest.test_case "lost segment restarts in-core" `Quick
            test_segment_lost_restarts_in_core;
        ] );
    ]
