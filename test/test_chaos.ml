(* Tests for the fault injector, the differential oracles, and the chaos
   harness: determinism of the injector, a clean (disarmed) oracle
   suite, and full detection across one round of the pairing matrix. *)

open Layered_core
open Layered_analysis
module Fault = Layered_runtime.Fault

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Injector *)

let test_disarmed_noop () =
  Fault.disarm ();
  check "no site armed" true (Fault.armed () = None);
  for _ = 1 to 100 do
    List.iter (fun s -> check "disarmed point never fires" false (Fault.point s)) Fault.all
  done;
  Alcotest.(check (list int))
    "disarmed mangle_level is the identity" [ 1; 2; 3 ]
    (Fault.mangle_level [ 1; 2; 3 ])

(* Arming with the same seed fires at the same visit; the fault fires
   exactly once however many visits follow. *)
let test_arm_deterministic () =
  let firing_index seed =
    Fault.arm ~seed Fault.Drop_successor;
    Fun.protect ~finally:Fault.disarm (fun () ->
        let fired_at = ref (-1) in
        for i = 0 to 9 do
          if Fault.point Fault.Drop_successor then fired_at := i
        done;
        check_int "exactly one firing" 1 (Fault.fired ());
        check_int "every visit was counted" 10 (Fault.hits ());
        check "fired within the first three visits" true
          (!fired_at >= 0 && !fired_at < 3);
        !fired_at)
  in
  List.iter
    (fun seed ->
      check_int
        (Printf.sprintf "seed %d fires at the same visit on re-arm" seed)
        (firing_index seed) (firing_index seed))
    [ 0; 1; 42; 1_000_003 ]

let test_site_names_roundtrip () =
  List.iter
    (fun s ->
      match Fault.site_of_name (Fault.site_name s) with
      | Some s' -> check (Fault.site_name s ^ " roundtrips") true (s = s')
      | None -> Alcotest.fail ("site_of_name failed for " ^ Fault.site_name s))
    Fault.all;
  check "unknown name rejected" true (Fault.site_of_name "no_such_site" = None)

(* Visits to sites other than the armed one are not counted and never
   fire. *)
let test_only_armed_site_counts () =
  Fault.arm ~seed:5 Fault.Worker_raise;
  Fun.protect ~finally:Fault.disarm (fun () ->
      for _ = 1 to 10 do
        check "unarmed site never fires" false (Fault.point Fault.Drop_successor)
      done;
      check_int "unarmed visits not counted" 0 (Fault.hits ()))

(* ------------------------------------------------------------------ *)
(* Oracles *)

let test_oracles_clean () =
  Fault.disarm ();
  let rows = Oracle.rows ~jobs:2 () in
  check_int "one row per oracle" (List.length (Oracle.all ())) (List.length rows);
  List.iter
    (fun (r : Report.row) ->
      check (r.Report.claim ^ " passes disarmed") true (r.Report.status = Report.Pass))
    rows

let test_pairings_resolve () =
  List.iter
    (fun (site, oracles) ->
      check
        (Fault.site_name site ^ " has at least three detectors")
        true
        (List.length oracles >= 3);
      List.iter
        (fun name ->
          check (name ^ " exists") true (Oracle.find name <> None))
        oracles)
    Chaos.pairings;
  check_int "every site is paired" (List.length Fault.all) (List.length Chaos.pairings)

(* ------------------------------------------------------------------ *)
(* Harness: one full round of the matrix detects everything. *)

let test_chaos_full_round () =
  let pairs =
    List.fold_left (fun n (_, os) -> n + List.length os) 0 Chaos.pairings
  in
  let r = Chaos.run ~jobs:2 ~seed:42 ~trials:pairs () in
  check "full detection with clean controls" true (Chaos.ok r);
  List.iter
    (fun (c : Chaos.cell) ->
      check_int
        (Printf.sprintf "%s x %s armed once" (Fault.site_name c.Chaos.site)
           c.Chaos.oracle)
        1 c.Chaos.armed_trials;
      check_int "detected" 1 c.Chaos.detected;
      check_int "exercised" 0 c.Chaos.unexercised;
      check_int "controls clean" 0 c.Chaos.control_failures)
    r.Chaos.cells;
  check "injector left disarmed" true (Fault.armed () = None)

(* A restricted site selection shrinks the matrix accordingly. *)
let test_chaos_site_filter () =
  let r =
    Chaos.run ~jobs:2 ~seed:1 ~trials:3 ~sites:[ Fault.Flip_valence_bit ] ()
  in
  check_int "three cells" 3 (List.length r.Chaos.cells);
  check "all detected" true (Chaos.ok r)

let () =
  (* The serve oracles register themselves from outside the analysis
     library; the pairing table names them, so tests must see them. *)
  Layered_serve.Serve_oracles.register ();
  Alcotest.run "layered_chaos"
    [
      ( "injector",
        [
          Alcotest.test_case "disarmed is a no-op" `Quick test_disarmed_noop;
          Alcotest.test_case "seeded arming is deterministic" `Quick
            test_arm_deterministic;
          Alcotest.test_case "site names roundtrip" `Quick test_site_names_roundtrip;
          Alcotest.test_case "only the armed site counts" `Quick
            test_only_armed_site_counts;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "all pass disarmed" `Quick test_oracles_clean;
          Alcotest.test_case "pairing table resolves" `Quick test_pairings_resolve;
        ] );
      ( "harness",
        [
          Alcotest.test_case "full round detects everything" `Quick
            test_chaos_full_round;
          Alcotest.test_case "site filter" `Quick test_chaos_site_filter;
        ] );
    ]
